// Minimal JSON tokenizer shared by the offline report CLIs (trace_report,
// health_report).
//
// Deliberately small but a real tokenizer, not a line-matcher: callers
// stream large arrays one element at a time, so memory stays proportional
// to what they keep, not the file. Numbers keep their raw token so time
// fields can be converted exactly (no double round-trip).
//
// Errors throw ParseError instead of aborting: report tools read files
// that may be truncated mid-write (a crash dump is by definition written
// at a bad moment), and a partial report with a warning beats no report.
// Callers catch ParseError, warn, and keep whatever they harvested.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpres::tools {

/// Thrown on malformed/truncated input; `byte` is the cursor position.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t byte, const char* what)
      : std::runtime_error(what), byte_(byte) {}
  [[nodiscard]] std::size_t byte() const noexcept { return byte_; }

 private:
  std::size_t byte_;
};

/// One parsed JSON value. Numbers keep their raw token so time fields can
/// be converted exactly.
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };
  Type type = Type::kNull;
  bool boolean = false;
  std::string raw;  ///< number token or decoded string
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// Parses one value at the cursor; throws ParseError on malformed input.
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': expect("true"); return make_bool(true);
      case 'f': expect("false"); return make_bool(false);
      case 'n': expect("null"); return JsonValue{};
      default: return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  /// Consumes `c` if present; returns whether it was.
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void require(char c) {
    if (!consume(c)) fail("expected character");
  }

  std::string parse_key() {
    JsonValue key = parse_string();
    require(':');
    return std::move(key.raw);
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw ParseError(pos_, what);
  }
  void expect(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
  }
  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4U;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Control-plane names are ASCII; encode BMP code points as UTF-8.
            if (cp < 0x80) {
              c = static_cast<char>(cp);
            } else {
              if (cp < 0x800) {
                v.raw.push_back(static_cast<char>(0xC0U | (cp >> 6U)));
              } else {
                v.raw.push_back(static_cast<char>(0xE0U | (cp >> 12U)));
                v.raw.push_back(
                    static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
              }
              c = static_cast<char>(0x80U | (cp & 0x3FU));
            }
            break;
          }
          default: fail("unknown escape");
        }
      }
      v.raw.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.raw.assign(text_.substr(start, pos_ - start));
    return v;
  }

  JsonValue parse_array() {
    require('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (consume(']')) return v;
    do {
      v.items.push_back(parse_value());
    } while (consume(','));
    require(']');
    return v;
  }

  JsonValue parse_object() {
    require('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (consume('}')) return v;
    do {
      std::string key = parse_key();
      v.members.emplace_back(std::move(key), parse_value());
    } while (consume(','));
    require('}');
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Exact "us.nnn" -> integer nanoseconds (the tracer always writes three
/// fractional digits; fewer/more are scaled, so hand-edited files work too).
inline std::int64_t time_us_to_ns(const std::string& raw) {
  const char* p = raw.c_str();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    ++p;
  }
  std::int64_t whole = 0;
  while (*p >= '0' && *p <= '9') whole = whole * 10 + (*p++ - '0');
  std::int64_t frac = 0;
  if (*p == '.') {
    ++p;
    int digits = 0;
    while (*p >= '0' && *p <= '9' && digits < 3) {
      frac = frac * 10 + (*p++ - '0');
      ++digits;
    }
    while (digits++ < 3) frac *= 10;
    while (*p >= '0' && *p <= '9') ++p;  // sub-ns digits: truncate
  }
  const std::int64_t ns = whole * 1000 + frac;
  return neg ? -ns : ns;
}

inline std::uint64_t to_u64(const JsonValue* v) {
  if (v == nullptr) return 0;
  return std::strtoull(v->raw.c_str(), nullptr, 10);
}

inline std::uint64_t to_u64_value(const JsonValue& v) {
  return std::strtoull(v.raw.c_str(), nullptr, 10);
}

inline std::int64_t to_i64_value(const JsonValue& v) {
  return std::strtoll(v.raw.c_str(), nullptr, 10);
}

inline std::int64_t to_i64(const JsonValue* v) {
  if (v == nullptr) return 0;
  return std::strtoll(v->raw.c_str(), nullptr, 10);
}

}  // namespace hpres::tools
