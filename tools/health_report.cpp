// health_report — offline post-mortem reader for flight-recorder dumps.
//
// Reads the JSON written by obs::FlightRecorder::dump_to_file (on crash
// injection, RPC-deadline timeout bursts, or bench finalize), tallies the
// failure symptoms recorded in each node's ring, reconstructs a merged
// post-mortem timeline, and names the most likely faulty node — from
// symptoms alone. The ground-truth FaultLog is deliberately not part of
// the dump, so this tool demonstrates that the recorded evidence
// (timeouts, drops, failovers, hedges, detector transitions) is sufficient
// to localize a fault after the fact.
//
// Optionally merges a metrics snapshot (--metrics=FILE, the --metrics-out
// JSON) to show the health plane's final per-node gauges next to the
// ring-derived tallies.
//
// Both inputs are parsed leniently (tools/mini_json.h): a dump truncated
// mid-write — the normal case for a file written at crash time — yields a
// warning and a partial report, never a parse abort.
//
// Multi-shard dumps are first-class input: a parallel run merges its
// per-shard flight domains node-by-node before dumping, so each node still
// appears exactly once with its ring in timestamp order. The timeline's
// stable sort breaks equal-timestamp ties by dump (node-major) order,
// which is shard-count independent — the report is byte-stable for a
// fixed (seed, shard count).
//
// Usage: health_report <flight.json> [--metrics=FILE] [--timeline=N]
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "mini_json.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"

namespace {

using namespace hpres;  // NOLINT(google-build-using-namespace)
using tools::JsonParser;
using tools::JsonValue;
using tools::ParseError;
using tools::to_i64;
using tools::to_u64;

struct Event {
  SimTime t_ns = 0;
  std::size_t node = 0;
  std::string name;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t code = 0;
};

struct NodeReport {
  std::size_t id = 0;
  std::string label;
  std::uint64_t written = 0;   ///< lifetime events (ring may have wrapped)
  std::uint64_t kept = 0;      ///< events present in the dump window
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops_down = 0;
  std::uint64_t drops_injected = 0;
  std::uint64_t failovers = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t hedges_against = 0;
  std::uint64_t degraded_ops = 0;
  std::uint64_t queue_max = 0;
  int last_health_state = -1;  ///< last kHealthState `a`, -1 = none seen

  [[nodiscard]] bool is_server() const {
    return label.rfind("server", 0) == 0;
  }

  /// Symptom-weighted suspicion: deadline expiries and message drops are
  /// the strongest distress signals a sick node leaves in its own ring
  /// (both are recorded against the node that failed to deliver), failover
  /// fetches and hedges mark the slots peers routed around, and a detector
  /// flag (recorded state >= kGraySlow) is near-conclusive — but inferred,
  /// not ground truth, so it weighs in rather than decides.
  [[nodiscard]] double suspicion() const {
    double s = 3.0 * static_cast<double>(timeouts) +
               2.0 * static_cast<double>(drops_down + drops_injected) +
               2.0 * static_cast<double>(failovers) +
               1.0 * static_cast<double>(hedges_against + retries);
    if (last_health_state >=
        static_cast<int>(obs::NodeHealthState::kGraySlow)) {
      s += 50.0;
    }
    return s;
  }
};

struct Dump {
  std::string reason;
  SimTime dumped_at_ns = 0;
  std::uint64_t ring_size = 0;
  std::uint64_t dropped_records = 0;
  std::vector<NodeReport> nodes;
  std::vector<Event> events;  ///< all nodes merged, dump order
};

void fold_event(const JsonValue& ev, NodeReport& node, Dump& dump) {
  Event e;
  e.t_ns = to_i64(ev.find("t"));
  e.node = node.id;
  const JsonValue* name = ev.find("e");
  e.name = name != nullptr ? name->raw : "?";
  e.a = to_u64(ev.find("a"));
  e.b = to_u64(ev.find("b"));
  e.code = to_u64(ev.find("c"));
  ++node.kept;

  if (e.name == "rpc_timeout") {
    ++node.timeouts;
  } else if (e.name == "rpc_retry") {
    ++node.retries;
  } else if (e.name == "net_drop") {
    e.code == 0 ? ++node.drops_down : ++node.drops_injected;
  } else if (e.name == "failover") {
    ++node.failovers;
  } else if (e.name == "fallback") {
    ++node.fallbacks;
  } else if (e.name == "hedge_fired") {
    ++node.hedges_against;
  } else if (e.name == "degraded") {
    ++node.degraded_ops;
  } else if (e.name == "queue_depth") {
    node.queue_max = std::max(node.queue_max, e.a);
  } else if (e.name == "health_state") {
    node.last_health_state = static_cast<int>(e.a);
  }
  dump.events.push_back(std::move(e));
}

/// Streams the dump: one node object at a time, folding events as they
/// parse. On ParseError everything already folded is kept.
bool parse_dump(std::string_view text, Dump& dump) {
  std::size_t events_before_error = 0;
  try {
    JsonParser parser(text);
    parser.require('{');
    std::string key = parser.parse_key();
    if (key != "flight") {
      std::fprintf(stderr, "health_report: not a flight dump (top-level"
                           " \"%s\")\n", key.c_str());
      return false;
    }
    parser.require('{');
    do {
      key = parser.parse_key();
      if (key == "reason") {
        dump.reason = parser.parse_value().raw;
      } else if (key == "dumped_at_ns") {
        dump.dumped_at_ns = tools::to_i64_value(parser.parse_value());
      } else if (key == "ring_size") {
        dump.ring_size = to_u64_value(parser.parse_value());
      } else if (key == "dropped_records") {
        dump.dropped_records = to_u64_value(parser.parse_value());
      } else if (key == "nodes") {
        parser.require('[');
        if (!parser.consume(']')) {
          do {
            const JsonValue node_obj = parser.parse_value();
            NodeReport node;
            node.id = to_u64(node_obj.find("node"));
            const JsonValue* label = node_obj.find("label");
            node.label = label != nullptr ? label->raw
                                          : "node" + std::to_string(node.id);
            node.written = to_u64(node_obj.find("written"));
            if (const JsonValue* evs = node_obj.find("events");
                evs != nullptr) {
              for (const JsonValue& ev : evs->items) {
                fold_event(ev, node, dump);
              }
            }
            dump.nodes.push_back(std::move(node));
            events_before_error = dump.events.size();
          } while (parser.consume(','));
          parser.require(']');
        }
      } else {
        (void)parser.parse_value();
      }
    } while (parser.consume(','));
    parser.require('}');  // flight
    parser.require('}');  // top level
  } catch (const ParseError& e) {
    std::fprintf(stderr,
                 "health_report: warning: malformed JSON at byte %zu (%s);"
                 " continuing with %zu nodes / %zu events parsed so far\n",
                 e.byte(), e.what(), dump.nodes.size(),
                 events_before_error);
    // Drop events from the node that was mid-parse when the error hit —
    // its tallies may be half-folded, the completed nodes are intact.
    dump.events.resize(events_before_error);
  }
  return true;
}

const char* state_name(int ordinal) {
  if (ordinal < 0) return "-";
  return obs::node_health_state_name(
      static_cast<obs::NodeHealthState>(ordinal));
}

double ms(SimTime t) { return static_cast<double>(t) * 1e-6; }

void print_timeline(const Dump& dump, std::size_t limit) {
  // Interesting events only: the periodic snapshots and per-op start/end
  // markers would drown the distress signals they contextualize. The sort
  // must be stable: merged multi-shard dumps carry equal timestamps across
  // nodes, and dump (node-major) order is the deterministic tie-break.
  std::vector<const Event*> line;
  for (const Event& e : dump.events) {
    if (e.name == "op_start" || e.name == "op_end" ||
        e.name == "queue_depth") {
      continue;
    }
    line.push_back(&e);
  }
  std::stable_sort(line.begin(), line.end(),
                   [](const Event* a, const Event* b) {
                     return a->t_ns < b->t_ns;
                   });
  const std::size_t skip = line.size() > limit ? line.size() - limit : 0;
  std::printf("\npost-mortem timeline (%zu of %zu distress events%s)\n",
              line.size() - skip, line.size(),
              skip > 0 ? ", oldest elided" : "");
  for (std::size_t i = skip; i < line.size(); ++i) {
    const Event& e = *line[i];
    std::string label = "node" + std::to_string(e.node);
    for (const NodeReport& n : dump.nodes) {
      if (n.id == e.node) {
        label = n.label;
        break;
      }
    }
    std::printf("  %10.3f ms  %-9s %-13s", ms(e.t_ns), label.c_str(),
                e.name.c_str());
    if (e.name == "rpc_timeout") {
      std::printf(" deadline %.1f ms expired (caller node %" PRIu64 ")",
                  ms(static_cast<SimTime>(e.a)), e.b);
    } else if (e.name == "rpc_retry") {
      std::printf(" attempt %" PRIu64 " re-sent (caller node %" PRIu64 ")",
                  e.a, e.b);
    } else if (e.name == "net_drop") {
      std::printf(" %" PRIu64 " B from node %" PRIu64 " (%s)", e.a, e.b,
                  e.code == 0 ? "node down" : "injected loss");
    } else if (e.name == "health_state") {
      std::printf(" %s -> %s", state_name(static_cast<int>(e.b)),
                  state_name(static_cast<int>(e.a)));
    } else if (e.name == "repair_phase") {
      static const char* const kPhases[] = {"probe", "fetch", "reconstruct",
                                            "replace"};
      std::printf(" %s done in %.3f ms",
                  e.code < 4 ? kPhases[e.code] : "?",
                  ms(static_cast<SimTime>(e.a)));
    } else if (e.name == "hedge_fired" || e.name == "hedge_won" ||
               e.name == "failover") {
      std::printf(" (client node %" PRIu64 ")", e.b);
    } else if (e.name == "dump") {
      std::printf(" trigger #%" PRIu64, e.a);
    }
    std::printf("\n");
  }
}

/// Metrics snapshot merge: shows the health plane's exported gauges
/// (health.node_state / health.score_x1000) next to the ring tallies.
void print_metrics(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "health_report: cannot open %s\n", path.c_str());
    return;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  struct Row {
    std::string name, node, op;
    std::int64_t value = 0;
  };
  std::vector<Row> rows;
  try {
    JsonParser parser(text);
    parser.require('{');
    do {
      const std::string key = parser.parse_key();
      if (key != "metrics") {
        (void)parser.parse_value();
        continue;
      }
      parser.require('[');
      if (parser.consume(']')) continue;
      do {
        const JsonValue m = parser.parse_value();
        const JsonValue* comp = m.find("component");
        if (comp == nullptr || comp->raw != "health") continue;
        Row row;
        const JsonValue* name = m.find("name");
        const JsonValue* node = m.find("node");
        const JsonValue* op = m.find("op");
        row.name = name != nullptr ? name->raw : "?";
        row.node = node != nullptr ? node->raw : "?";
        row.op = op != nullptr ? op->raw : "?";
        row.value = to_i64(m.find("value"));
        rows.push_back(std::move(row));
      } while (parser.consume(','));
      parser.require(']');
    } while (parser.consume(','));
  } catch (const ParseError& e) {
    std::fprintf(stderr,
                 "health_report: warning: malformed metrics JSON at byte"
                 " %zu (%s); continuing with %zu gauges\n",
                 e.byte(), e.what(), rows.size());
  }
  if (rows.empty()) {
    std::printf("\nmetrics snapshot: no health gauges found in %s\n",
                path.c_str());
    return;
  }
  std::printf("\nhealth gauges (metrics snapshot %s)\n", path.c_str());
  std::printf("  %-10s %-8s %-22s %12s\n", "node", "point", "gauge",
              "value");
  for (const Row& row : rows) {
    std::printf("  %-10s %-8s %-22s %12" PRId64, row.node.c_str(),
                row.op.c_str(), row.name.c_str(), row.value);
    if (row.name == "health.node_state") {
      std::printf("  (%s)", state_name(static_cast<int>(row.value)));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* metrics_path = nullptr;
  std::size_t timeline = 60;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = argv[i] + 10;
    } else if (arg.rfind("--timeline=", 0) == 0) {
      timeline = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: health_report <flight.json>"
                           " [--metrics=FILE] [--timeline=N]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: health_report <flight.json>"
                         " [--metrics=FILE] [--timeline=N]\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "health_report: cannot open %s\n", path);
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  Dump dump;
  if (!parse_dump(text, dump)) return 2;
  if (dump.nodes.empty()) {
    std::fprintf(stderr, "health_report: no nodes in dump\n");
    return 3;
  }

  std::printf("flight dump: reason=%s dumped_at=%.3f ms ring=%" PRIu64
              " records/node, %zu nodes, %" PRIu64 " dropped records\n",
              dump.reason.empty() ? "?" : dump.reason.c_str(),
              ms(dump.dumped_at_ns), dump.ring_size, dump.nodes.size(),
              dump.dropped_records);

  std::printf("\nper-node symptoms (ring window)\n");
  std::printf("  %-9s %7s %7s %7s %7s %7s %7s %7s %6s %-10s %9s\n", "node",
              "events", "tmo", "retry", "drop", "failov", "hedge", "degr",
              "qmax", "health", "suspicion");
  for (const NodeReport& n : dump.nodes) {
    std::printf("  %-9s %7" PRIu64 " %7" PRIu64 " %7" PRIu64 " %7" PRIu64
                " %7" PRIu64 " %7" PRIu64 " %7" PRIu64 " %6" PRIu64
                " %-10s %9.1f\n",
                n.label.c_str(), n.kept, n.timeouts, n.retries,
                n.drops_down + n.drops_injected, n.failovers,
                n.hedges_against, n.degraded_ops, n.queue_max,
                state_name(n.last_health_state), n.suspicion());
  }

  // Name the culprit from symptoms alone (servers only: client rings hold
  // op-level context, not per-node distress).
  const NodeReport* worst = nullptr;
  for (const NodeReport& n : dump.nodes) {
    if (!n.is_server() || n.suspicion() <= 0.0) continue;
    if (worst == nullptr || n.suspicion() > worst->suspicion()) worst = &n;
  }
  if (worst != nullptr) {
    std::printf("\nsuspected faulty node: %s (suspicion %.1f)\n",
                worst->label.c_str(), worst->suspicion());
  } else {
    std::printf("\nsuspected faulty node: none (no failure symptoms in"
                " window)\n");
  }

  print_timeline(dump, timeline);
  if (metrics_path != nullptr) print_metrics(metrics_path);

  std::printf("\nnodes: %zu, events: %zu\n", dump.nodes.size(),
              dump.events.size());
  return 0;
}
