// trace_report — offline critical-path reader for exported trace JSON.
//
// Reads a Chrome trace_event file written by `--trace-out` (any bench),
// rebuilds the tagged spans per process (experiment point), runs the same
// obs::analyze_critical_path coverage sweep the in-process harnesses use,
// and prints:
//   * a per-process aggregate attribution table (mean us per op kind),
//   * a tail-attribution table over the slowest 1% of ops,
//   * the slowest individual ops with their full phase split,
//   * a final "ops analyzed: N" summary line (CI greps for it).
//
// The parser is deliberately minimal but is a real tokenizer, not a
// line-matcher: it streams the "traceEvents" array one event at a time, so
// memory stays proportional to the tagged spans, not the file. Timestamps
// are parsed exactly (the tracer writes fractional microseconds with three
// decimals, i.e. integer nanoseconds), so the per-op phase sums reproduce
// the in-process invariant phase_sum == total exactly.
//
// Usage: trace_report <trace.json> [--tail-frac=F] [--slowest=N]
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/critical_path.h"
#include "obs/trace.h"

namespace {

using namespace hpres;  // NOLINT(google-build-using-namespace)

// ---------------------------------------------------------------- JSON ----

/// One parsed JSON value. Numbers keep their raw token so time fields can be
/// converted exactly (no double round-trip).
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };
  Type type = Type::kNull;
  bool boolean = false;
  std::string raw;  ///< number token or decoded string
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// Parses one value at the cursor; exits with a message on malformed input
  /// (this is a CLI reading a file we also validate with json.tool in CI —
  /// a hard error beats limping on).
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': expect("true"); return make_bool(true);
      case 'f': expect("false"); return make_bool(false);
      case 'n': expect("null"); return JsonValue{};
      default: return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  /// Consumes `c` if present; returns whether it was.
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void require(char c) {
    if (!consume(c)) fail("expected character");
  }

  std::string parse_key() {
    JsonValue key = parse_string();
    require(':');
    return std::move(key.raw);
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    std::fprintf(stderr, "trace_report: JSON error at byte %zu: %s\n", pos_,
                 what);
    std::exit(2);
  }
  void expect(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
  }
  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4U;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Control-plane names are ASCII; encode BMP code points as UTF-8.
            if (cp < 0x80) {
              c = static_cast<char>(cp);
            } else {
              if (cp < 0x800) {
                v.raw.push_back(static_cast<char>(0xC0U | (cp >> 6U)));
              } else {
                v.raw.push_back(static_cast<char>(0xE0U | (cp >> 12U)));
                v.raw.push_back(
                    static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
              }
              c = static_cast<char>(0x80U | (cp & 0x3FU));
            }
            break;
          }
          default: fail("unknown escape");
        }
      }
      v.raw.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.raw.assign(text_.substr(start, pos_ - start));
    return v;
  }

  JsonValue parse_array() {
    require('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (consume(']')) return v;
    do {
      v.items.push_back(parse_value());
    } while (consume(','));
    require(']');
    return v;
  }

  JsonValue parse_object() {
    require('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (consume('}')) return v;
    do {
      std::string key = parse_key();
      v.members.emplace_back(std::move(key), parse_value());
    } while (consume(','));
    require('}');
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Exact "us.nnn" -> integer nanoseconds (the tracer always writes three
/// fractional digits; fewer/more are scaled, so hand-edited files work too).
std::int64_t time_us_to_ns(const std::string& raw) {
  const char* p = raw.c_str();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    ++p;
  }
  std::int64_t whole = 0;
  while (*p >= '0' && *p <= '9') whole = whole * 10 + (*p++ - '0');
  std::int64_t frac = 0;
  if (*p == '.') {
    ++p;
    int digits = 0;
    while (*p >= '0' && *p <= '9' && digits < 3) {
      frac = frac * 10 + (*p++ - '0');
      ++digits;
    }
    while (digits++ < 3) frac *= 10;
    while (*p >= '0' && *p <= '9') ++p;  // sub-ns digits: truncate
  }
  const std::int64_t ns = whole * 1000 + frac;
  return neg ? -ns : ns;
}

std::uint64_t to_u64(const JsonValue* v) {
  if (v == nullptr) return 0;
  return std::strtoull(v->raw.c_str(), nullptr, 10);
}

// ------------------------------------------------------- span rebuild ----

struct ProcessTrace {
  std::string name;
  std::vector<obs::TraceSpan> spans;
};

/// Key for pairing async 'b'/'e' events, mirroring the tracer's emission:
/// one async id per (pid, id, name) span.
struct AsyncKey {
  std::uint64_t pid;
  std::uint64_t id;
  std::string name;

  bool operator<(const AsyncKey& o) const {
    if (pid != o.pid) return pid < o.pid;
    if (id != o.id) return id < o.id;
    return name < o.name;
  }
};

struct AsyncOpen {
  std::uint64_t trace = 0;
  std::int64_t begin_ns = 0;
  std::string cat;
};

void harvest_event(const JsonValue& ev, std::map<std::uint64_t, ProcessTrace>& procs,
                   std::map<AsyncKey, AsyncOpen>& open, std::size_t* events) {
  ++*events;
  const JsonValue* ph = ev.find("ph");
  if (ph == nullptr || ph->raw.size() != 1) return;
  const std::uint64_t pid = to_u64(ev.find("pid"));

  if (ph->raw[0] == 'M') {
    const JsonValue* args = ev.find("args");
    const JsonValue* name = args != nullptr ? args->find("name") : nullptr;
    if (name != nullptr) procs[pid].name = name->raw;
    return;
  }

  const JsonValue* args = ev.find("args");
  const std::uint64_t trace =
      args != nullptr ? to_u64(args->find("trace")) : 0;
  const JsonValue* name = ev.find("name");
  const JsonValue* cat = ev.find("cat");
  const JsonValue* ts = ev.find("ts");
  if (name == nullptr || ts == nullptr) return;

  switch (ph->raw[0]) {
    case 'X': {
      if (trace == 0) return;
      const JsonValue* dur = ev.find("dur");
      procs[pid].spans.push_back(obs::TraceSpan{
          trace, to_u64(ev.find("tid")), time_us_to_ns(ts->raw),
          dur != nullptr ? time_us_to_ns(dur->raw) : 0, name->raw,
          cat != nullptr ? cat->raw : ""});
      return;
    }
    case 'b': {
      if (trace == 0) return;
      AsyncKey key{pid, to_u64(ev.find("id")), name->raw};
      open[std::move(key)] = AsyncOpen{trace, time_us_to_ns(ts->raw),
                                       cat != nullptr ? cat->raw : ""};
      return;
    }
    case 'e': {
      AsyncKey key{pid, to_u64(ev.find("id")), name->raw};
      const auto it = open.find(key);
      if (it == open.end()) return;
      // tagged_spans() reports the async id as the span tid; keep that so
      // offline analysis matches the in-process sweep span-for-span.
      procs[pid].spans.push_back(obs::TraceSpan{
          it->second.trace, key.id, it->second.begin_ns,
          time_us_to_ns(ts->raw) - it->second.begin_ns, name->raw,
          it->second.cat});
      open.erase(it);
      return;
    }
    default:
      return;  // flows, instants, counters carry no duration
  }
}

// ------------------------------------------------------------ reports ----

double us(SimDur ns) { return static_cast<double>(ns) * 1e-3; }

void print_phase_header(const char* lead) {
  std::printf("%-24s %8s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s"
              " %10s %10s\n",
              lead, "ops", "serial_us", "encode_us", "decode_us", "queue_us",
              "fanout_us", "net_us", "server_us", "waitk_us", "other_us",
              "total_us", "dec_us", "dec_exp_us");
}

void print_aggregate_row(const std::string& label, const obs::PhaseAggregate& agg) {
  if (agg.count == 0) return;
  const double n = static_cast<double>(agg.count);
  std::printf("%-24s %8" PRIu64, label.c_str(), agg.count);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    std::printf(" %10.2f", us(agg.phase_ns[i]) / n);
  }
  std::printf(" %10.2f %10.2f %10.2f\n", us(agg.total_ns) / n,
              us(agg.decode_ns) / n, us(agg.decode_exposed_ns) / n);
}

void print_op_row(const obs::OpAttribution& op) {
  char label[64];
  std::snprintf(label, sizeof label, "%s #%" PRIu64, op.op.c_str(),
                op.trace_id);
  std::printf("%-24s %8d", label, 1);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    std::printf(" %10.2f", us(op.phase_ns[i]));
  }
  std::printf(" %10.2f %10.2f %10.2f\n", us(op.total_ns), us(op.decode_ns),
              us(op.decode_exposed_ns));
}

struct Options {
  const char* path = nullptr;
  double tail_frac = 0.01;
  std::size_t slowest = 10;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--tail-frac=", 0) == 0) {
      opt.tail_frac = std::strtod(argv[i] + 12, nullptr);
    } else if (arg.rfind("--slowest=", 0) == 0) {
      opt.slowest = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (opt.path == nullptr) {
      opt.path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_report <trace.json>"
                           " [--tail-frac=F] [--slowest=N]\n");
      std::exit(2);
    }
  }
  if (opt.path == nullptr) {
    std::fprintf(stderr, "usage: trace_report <trace.json>"
                         " [--tail-frac=F] [--slowest=N]\n");
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::ifstream in(opt.path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", opt.path);
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  // Stream the top-level object: everything except "traceEvents" is parsed
  // and dropped; events are harvested one at a time.
  std::map<std::uint64_t, ProcessTrace> procs;
  std::map<AsyncKey, AsyncOpen> open;
  std::size_t events = 0;
  {
    JsonParser parser(text);
    parser.require('{');
    if (!parser.consume('}')) {
      do {
        const std::string key = parser.parse_key();
        if (key == "traceEvents") {
          parser.require('[');
          if (!parser.consume(']')) {
            do {
              const JsonValue ev = parser.parse_value();
              harvest_event(ev, procs, open, &events);
            } while (parser.consume(','));
            parser.require(']');
          }
        } else {
          (void)parser.parse_value();
        }
      } while (parser.consume(','));
      parser.require('}');
    }
  }

  std::size_t total_ops = 0;
  for (auto& [pid, proc] : procs) {
    if (proc.spans.empty()) continue;
    const obs::CriticalPathAnalysis cp =
        obs::analyze_critical_path(proc.spans);
    std::printf("\n== process %" PRIu64 " — %s ==\n", pid,
                proc.name.empty() ? "(unnamed)" : proc.name.c_str());
    std::printf("tagged spans: %zu, ops: %zu, rootless traces: %zu\n",
                cp.spans_seen, cp.ops.size(), cp.traces_without_root);
    if (cp.ops.empty()) continue;
    total_ops += cp.ops.size();

    // Exactness invariant holds offline too (exact timestamp parsing).
    for (const obs::OpAttribution& op : cp.ops) {
      if (op.phase_sum() != op.total_ns) {
        std::fprintf(stderr,
                     "trace_report: phase sum %" PRId64 " != total %" PRId64
                     " for trace %" PRIu64 "\n",
                     op.phase_sum(), op.total_ns, op.trace_id);
        return 1;
      }
    }

    std::map<std::string, obs::PhaseAggregate> by_op;
    for (const obs::OpAttribution& op : cp.ops) by_op[op.op].add(op);
    std::printf("\ncritical-path attribution (mean us per op)\n");
    print_phase_header("op");
    for (const auto& [name, agg] : by_op) print_aggregate_row(name, agg);

    const std::vector<const obs::OpAttribution*> tail =
        obs::slowest_fraction(cp.ops, opt.tail_frac);
    obs::PhaseAggregate tail_agg;
    for (const obs::OpAttribution* op : tail) tail_agg.add(*op);
    std::printf("\ntail attribution (slowest %.1f%% = %zu ops, mean us)\n",
                opt.tail_frac * 100.0, tail.size());
    print_phase_header("cohort");
    print_aggregate_row("tail", tail_agg);

    std::printf("\nslowest ops\n");
    print_phase_header("op #trace");
    for (std::size_t i = 0; i < tail.size() && i < opt.slowest; ++i) {
      print_op_row(*tail[i]);
    }
  }

  std::printf("\nevents: %zu, ops analyzed: %zu\n", events, total_ops);
  return total_ops > 0 ? 0 : 3;
}
