// trace_report — offline critical-path reader for exported trace JSON.
//
// Reads a Chrome trace_event file written by `--trace-out` (any bench),
// rebuilds the tagged spans per process (experiment point), runs the same
// obs::analyze_critical_path coverage sweep the in-process harnesses use,
// and prints:
//   * a per-process aggregate attribution table (mean us per op kind),
//   * a tail-attribution table over the slowest 1% of ops,
//   * the slowest individual ops with their full phase split,
//   * a final "ops analyzed: N" summary line (CI greps for it).
//
// The parser (tools/mini_json.h, shared with health_report) is
// deliberately minimal but is a real tokenizer, not a line-matcher: it
// streams the "traceEvents" array one event at a time, so memory stays
// proportional to the tagged spans, not the file. Timestamps are parsed
// exactly (the tracer writes fractional microseconds with three decimals,
// i.e. integer nanoseconds), so the per-op phase sums reproduce the
// in-process invariant phase_sum == total exactly.
//
// Truncated or garbage trailing input does not abort the report: events
// harvested before the bad byte are analyzed as usual, with a warning on
// stderr. A process killed mid-write (the exact situation a post-mortem
// reader is for) still yields a useful partial report.
//
// Merged multi-shard exports (--shards > 1) are first-class input: the
// tracer concatenates per-shard domains shard-major, so events within one
// process are not globally time-ordered and trace/lane/async ids are
// strided across shards (interleaved id spaces). Nothing here assumes
// otherwise — async 'b'/'e' pairing keys on the exact (pid, id, name), the
// critical-path sweep orders spans itself, and slowest-op ranking breaks
// total-time ties on trace id, so the report is byte-stable for a fixed
// (seed, shard count) regardless of merge interleaving.
//
// Usage: trace_report <trace.json> [--tail-frac=F] [--slowest=N]
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mini_json.h"
#include "obs/critical_path.h"
#include "obs/trace.h"

namespace {

using namespace hpres;  // NOLINT(google-build-using-namespace)
using tools::JsonParser;
using tools::JsonValue;
using tools::ParseError;
using tools::time_us_to_ns;
using tools::to_u64;

// ------------------------------------------------------- span rebuild ----

struct ProcessTrace {
  std::string name;
  std::vector<obs::TraceSpan> spans;
};

/// Key for pairing async 'b'/'e' events, mirroring the tracer's emission:
/// one async id per (pid, id, name) span. Multi-shard exports stride async
/// ids per shard, so ids from different shards can never collide here even
/// though they interleave in the merged stream.
struct AsyncKey {
  std::uint64_t pid;
  std::uint64_t id;
  std::string name;

  bool operator<(const AsyncKey& o) const {
    if (pid != o.pid) return pid < o.pid;
    if (id != o.id) return id < o.id;
    return name < o.name;
  }
};

struct AsyncOpen {
  std::uint64_t trace = 0;
  std::int64_t begin_ns = 0;
  std::string cat;
};

void harvest_event(const JsonValue& ev, std::map<std::uint64_t, ProcessTrace>& procs,
                   std::map<AsyncKey, AsyncOpen>& open, std::size_t* events) {
  ++*events;
  const JsonValue* ph = ev.find("ph");
  if (ph == nullptr || ph->raw.size() != 1) return;
  const std::uint64_t pid = to_u64(ev.find("pid"));

  if (ph->raw[0] == 'M') {
    const JsonValue* args = ev.find("args");
    const JsonValue* name = args != nullptr ? args->find("name") : nullptr;
    if (name != nullptr) procs[pid].name = name->raw;
    return;
  }

  const JsonValue* args = ev.find("args");
  const std::uint64_t trace =
      args != nullptr ? to_u64(args->find("trace")) : 0;
  const JsonValue* name = ev.find("name");
  const JsonValue* cat = ev.find("cat");
  const JsonValue* ts = ev.find("ts");
  if (name == nullptr || ts == nullptr) return;

  switch (ph->raw[0]) {
    case 'X': {
      if (trace == 0) return;
      const JsonValue* dur = ev.find("dur");
      procs[pid].spans.push_back(obs::TraceSpan{
          trace, to_u64(ev.find("tid")), time_us_to_ns(ts->raw),
          dur != nullptr ? time_us_to_ns(dur->raw) : 0, name->raw,
          cat != nullptr ? cat->raw : ""});
      return;
    }
    case 'b': {
      if (trace == 0) return;
      AsyncKey key{pid, to_u64(ev.find("id")), name->raw};
      open[std::move(key)] = AsyncOpen{trace, time_us_to_ns(ts->raw),
                                       cat != nullptr ? cat->raw : ""};
      return;
    }
    case 'e': {
      AsyncKey key{pid, to_u64(ev.find("id")), name->raw};
      const auto it = open.find(key);
      if (it == open.end()) return;
      // tagged_spans() reports the async id as the span tid; keep that so
      // offline analysis matches the in-process sweep span-for-span.
      procs[pid].spans.push_back(obs::TraceSpan{
          it->second.trace, key.id, it->second.begin_ns,
          time_us_to_ns(ts->raw) - it->second.begin_ns, name->raw,
          it->second.cat});
      open.erase(it);
      return;
    }
    default:
      return;  // flows, instants, counters carry no duration
  }
}

// ------------------------------------------------------------ reports ----

double us(SimDur ns) { return static_cast<double>(ns) * 1e-3; }

void print_phase_header(const char* lead) {
  std::printf("%-24s %8s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s"
              " %10s %10s\n",
              lead, "ops", "serial_us", "encode_us", "decode_us", "queue_us",
              "fanout_us", "net_us", "server_us", "waitk_us", "other_us",
              "total_us", "dec_us", "dec_exp_us");
}

void print_aggregate_row(const std::string& label, const obs::PhaseAggregate& agg) {
  if (agg.count == 0) return;
  const double n = static_cast<double>(agg.count);
  std::printf("%-24s %8" PRIu64, label.c_str(), agg.count);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    std::printf(" %10.2f", us(agg.phase_ns[i]) / n);
  }
  std::printf(" %10.2f %10.2f %10.2f\n", us(agg.total_ns) / n,
              us(agg.decode_ns) / n, us(agg.decode_exposed_ns) / n);
}

void print_op_row(const obs::OpAttribution& op) {
  char label[64];
  std::snprintf(label, sizeof label, "%s #%" PRIu64, op.op.c_str(),
                op.trace_id);
  std::printf("%-24s %8d", label, 1);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    std::printf(" %10.2f", us(op.phase_ns[i]));
  }
  std::printf(" %10.2f %10.2f %10.2f\n", us(op.total_ns), us(op.decode_ns),
              us(op.decode_exposed_ns));
}

struct Options {
  const char* path = nullptr;
  double tail_frac = 0.01;
  std::size_t slowest = 10;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--tail-frac=", 0) == 0) {
      opt.tail_frac = std::strtod(argv[i] + 12, nullptr);
    } else if (arg.rfind("--slowest=", 0) == 0) {
      opt.slowest = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (opt.path == nullptr) {
      opt.path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_report <trace.json>"
                           " [--tail-frac=F] [--slowest=N]\n");
      std::exit(2);
    }
  }
  if (opt.path == nullptr) {
    std::fprintf(stderr, "usage: trace_report <trace.json>"
                         " [--tail-frac=F] [--slowest=N]\n");
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::ifstream in(opt.path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", opt.path);
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  // Stream the top-level object: everything except "traceEvents" is parsed
  // and dropped; events are harvested one at a time.
  std::map<std::uint64_t, ProcessTrace> procs;
  std::map<AsyncKey, AsyncOpen> open;
  std::size_t events = 0;
  try {
    JsonParser parser(text);
    parser.require('{');
    if (!parser.consume('}')) {
      do {
        const std::string key = parser.parse_key();
        if (key == "traceEvents") {
          parser.require('[');
          if (!parser.consume(']')) {
            do {
              const JsonValue ev = parser.parse_value();
              harvest_event(ev, procs, open, &events);
            } while (parser.consume(','));
            parser.require(']');
          }
        } else {
          (void)parser.parse_value();
        }
      } while (parser.consume(','));
      parser.require('}');
    }
  } catch (const ParseError& e) {
    // Keep everything harvested before the bad byte: a truncated export
    // (process killed mid-write) still yields a partial report.
    std::fprintf(stderr,
                 "trace_report: warning: malformed JSON at byte %zu (%s);"
                 " continuing with %zu events parsed so far\n",
                 e.byte(), e.what(), events);
  }

  std::size_t total_ops = 0;
  for (auto& [pid, proc] : procs) {
    if (proc.spans.empty()) continue;
    const obs::CriticalPathAnalysis cp =
        obs::analyze_critical_path(proc.spans);
    std::printf("\n== process %" PRIu64 " — %s ==\n", pid,
                proc.name.empty() ? "(unnamed)" : proc.name.c_str());
    std::printf("tagged spans: %zu, ops: %zu, rootless traces: %zu\n",
                cp.spans_seen, cp.ops.size(), cp.traces_without_root);
    if (cp.ops.empty()) continue;
    total_ops += cp.ops.size();

    // Exactness invariant holds offline too (exact timestamp parsing).
    for (const obs::OpAttribution& op : cp.ops) {
      if (op.phase_sum() != op.total_ns) {
        std::fprintf(stderr,
                     "trace_report: phase sum %" PRId64 " != total %" PRId64
                     " for trace %" PRIu64 "\n",
                     op.phase_sum(), op.total_ns, op.trace_id);
        return 1;
      }
    }

    std::map<std::string, obs::PhaseAggregate> by_op;
    for (const obs::OpAttribution& op : cp.ops) by_op[op.op].add(op);
    std::printf("\ncritical-path attribution (mean us per op)\n");
    print_phase_header("op");
    for (const auto& [name, agg] : by_op) print_aggregate_row(name, agg);

    const std::vector<const obs::OpAttribution*> tail =
        obs::slowest_fraction(cp.ops, opt.tail_frac);
    obs::PhaseAggregate tail_agg;
    for (const obs::OpAttribution* op : tail) tail_agg.add(*op);
    std::printf("\ntail attribution (slowest %.1f%% = %zu ops, mean us)\n",
                opt.tail_frac * 100.0, tail.size());
    print_phase_header("cohort");
    print_aggregate_row("tail", tail_agg);

    std::printf("\nslowest ops\n");
    print_phase_header("op #trace");
    for (std::size_t i = 0; i < tail.size() && i < opt.slowest; ++i) {
      print_op_row(*tail[i]);
    }
  }

  std::printf("\nevents: %zu, ops analyzed: %zu\n", events, total_ops);
  return total_ops > 0 ? 0 : 3;
}
