// Calibration tool: measures this host's real codec performance and prints
// (a) a table comparing the measured affine fit against the built-in
// CostModel defaults, and (b) the constants to paste into
// ec::CostModel::defaults if you want the simulation's compute costs to
// mirror this machine rather than the paper's Westmere reference.
//
//   $ ./tools/calibrate_cost_model [iterations]
#include <cstdio>
#include <cstdlib>

#include "ec/chunker.h"
#include "ec/cost_model.h"

using namespace hpres;      // NOLINT(google-build-using-namespace)
using namespace hpres::ec;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 20;
  constexpr std::size_t kK = 3;
  constexpr std::size_t kM = 2;
  constexpr std::size_t kSmall = 16 * 1024;
  constexpr std::size_t kLarge = 1024 * 1024;

  std::printf("Calibrating RS(%zu,%zu) codecs, %d iterations, probes %zu B"
              " and %zu B\n\n",
              kK, kM, iterations, kSmall, kLarge);
  std::printf("%-8s %14s %14s %14s %14s\n", "scheme", "enc 64K (us)",
              "enc 1M (us)", "dec1 1M (us)", "model enc 1M");

  for (const Scheme scheme :
       {Scheme::kRsVandermonde, Scheme::kCauchyRs, Scheme::kRaid6}) {
    const auto codec = make_codec(scheme, kK, kM);
    const CostModel measured =
        CostModel::calibrate(*codec, kSmall, kLarge, iterations);
    const CostModel builtin = CostModel::defaults(scheme, kK, kM);
    std::printf("%-8s %14.1f %14.1f %14.1f %14.1f\n",
                std::string(to_string(scheme)).c_str(),
                units::to_us(measured.encode_ns(64 * 1024)),
                units::to_us(measured.encode_ns(kLarge)),
                units::to_us(measured.decode_ns(kLarge, 1)),
                units::to_us(builtin.encode_ns(kLarge)));
  }

  std::printf("\nTo re-base the simulation on this host, replace the"
              " constants in src/ec/cost_model.cpp (CostModel::defaults)"
              " with the measured fits above, or construct engines with"
              " CostModel::calibrate(...) directly.\n");
  return 0;
}
