#!/usr/bin/env python3
"""Documentation consistency gate (stdlib only; CI runs this).

Two checks over the user-facing markdown:

1. Every relative link target in README.md / DESIGN.md / EXPERIMENTS.md /
   ROADMAP.md / docs/*.md resolves to a file or directory in the repo
   (external http(s)/mailto links and pure #anchors are skipped).
2. Every ``--flag`` mentioned in docs/TUNING.md is actually parsed
   somewhere under bench/, tools/ or src/ — a renamed or removed flag
   must take its documentation with it. Environment knobs (HPRES_*)
   are held to the same rule.
3. No orphan docs: every markdown file under docs/ must be reachable —
   linked from README.md or DESIGN.md (directly or via another doc
   under docs/) — and listed in DOCS above so its own links are
   checked. A doc nobody links is a doc nobody reads.

Exit code 0 = clean; 1 = problems (each printed one per line).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/OPERATIONS.md",
    "docs/TUNING.md",
]
SOURCE_DIRS = ["bench", "tools", "src", "tests", "examples"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]+")
ENV_RE = re.compile(r"\bHPRES_[A-Z0-9_]+\b")


def check_links(errors: list) -> None:
    for doc in DOCS:
        path = REPO / doc
        if not path.is_file():
            errors.append(f"{doc}: file missing (listed in check_docs.py)")
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if not (path.parent / rel).exists():
                    errors.append(f"{doc}:{n}: broken link -> {target}")


def source_corpus() -> str:
    chunks = []
    for d in SOURCE_DIRS:
        for p in (REPO / d).rglob("*"):
            if p.suffix in {".cpp", ".h", ".py", ".cmake", ".txt"}:
                chunks.append(p.read_text(errors="replace"))
    return "\n".join(chunks)


def check_flags(errors: list) -> None:
    tuning = REPO / "docs" / "TUNING.md"
    if not tuning.is_file():
        errors.append("docs/TUNING.md: missing, flag gate skipped")
        return
    text = tuning.read_text()
    corpus = source_corpus()
    for flag in sorted(set(FLAG_RE.findall(text))):
        # The parsers match on "--flag=" or the bare token; either form in
        # the sources counts.
        if flag not in corpus:
            errors.append(f"docs/TUNING.md: flag {flag} not found in sources")
    for env in sorted(set(ENV_RE.findall(text))):
        if env not in corpus:
            errors.append(f"docs/TUNING.md: env var {env} not found in sources")


def check_orphans(errors: list) -> None:
    """Every docs/*.md must be linked (transitively from README/DESIGN
    through other docs/ files) and listed in DOCS."""
    docs_dir = REPO / "docs"
    if not docs_dir.is_dir():
        return
    # Link targets of a doc, resolved repo-relative.
    def targets_of(doc: Path):
        out = set()
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (doc.parent / rel).resolve()
            try:
                out.add(resolved.relative_to(REPO).as_posix())
            except ValueError:
                pass
        return out

    reachable = set()
    frontier = ["README.md", "DESIGN.md"]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        path = REPO / name
        if path.is_file():
            frontier.extend(t for t in targets_of(path)
                            if t.startswith("docs/") and t.endswith(".md"))
    for doc in sorted(docs_dir.glob("*.md")):
        rel = doc.relative_to(REPO).as_posix()
        if rel not in reachable:
            errors.append(
                f"{rel}: orphan doc — not linked from README.md/DESIGN.md"
                " (directly or via another docs/ file)")
        if rel not in DOCS:
            errors.append(f"{rel}: not listed in check_docs.py DOCS —"
                          " its own links go unchecked")


def main() -> int:
    errors = []
    check_links(errors)
    check_flags(errors)
    check_orphans(errors)
    for e in errors:
        print(e)
    print(f"check_docs: {len(DOCS)} files checked, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
