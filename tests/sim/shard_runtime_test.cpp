// Conservative shard-runtime semantics: window math, cross-shard delivery,
// termination, oracle equivalence, and fixed-shard-count determinism.
#include "sim/shard_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hpres::sim {
namespace {

constexpr SimDur kLookahead = 1'000;

Task<void> record_at(Simulator* sim, SimDur delay, std::vector<SimTime>* log) {
  co_await sim->delay(delay);
  log->push_back(sim->now());
}

TEST(ShardRuntime, ZeroShardsNormalizesToOracle) {
  ShardRuntime rt(0, kLookahead);
  EXPECT_EQ(rt.num_shards(), 1u);
  EXPECT_FALSE(rt.parallel());
}

TEST(ShardRuntime, OracleModeRunsLikePlainSimulator) {
  ShardRuntime rt(1, kLookahead);
  std::vector<SimTime> log;
  rt.shard(0).spawn(record_at(&rt.shard(0), 500, &log));
  rt.shard(0).spawn(record_at(&rt.shard(0), 100, &log));
  const SimTime end = rt.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 500}));
  EXPECT_EQ(end, 500);
  EXPECT_EQ(rt.rounds(), 0u);  // oracle never takes the barrier path
}

TEST(ShardRuntime, RunIsRepeatable) {
  ShardRuntime rt(2, kLookahead);
  std::vector<SimTime> log;
  rt.shard(0).spawn(record_at(&rt.shard(0), 100, &log));
  rt.run();
  ASSERT_EQ(log.size(), 1u);
  // Second batch after quiescence — the harness "spawn, run, spawn, run"
  // pattern (preload then measured pass).
  rt.shard(1).spawn(record_at(&rt.shard(1), 50, &log));
  rt.run();
  EXPECT_EQ(log.size(), 2u);
}

// A message posted with the lookahead contract lands on the destination
// shard at exactly its due time.
TEST(ShardRuntime, CrossShardPostRunsAtDueTime) {
  ShardRuntime rt(2, kLookahead);
  std::vector<SimTime> log;
  std::atomic<SimTime> delivered_at{-1};
  // Shard 0 runs an event at t=100 that posts to shard 1 due t=100+L.
  rt.shard(0).spawn([](ShardRuntime* r, std::vector<SimTime>* lg,
                       std::atomic<SimTime>* at) -> Task<void> {
    Simulator* self = &r->shard(0);
    co_await self->delay(100);
    lg->push_back(self->now());
    r->post(0, 1, self->now() + kLookahead, [r, at] {
      at->store(r->shard(1).now(), std::memory_order_relaxed);
    });
  }(&rt, &log, &delivered_at));
  rt.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 100);
  EXPECT_EQ(delivered_at.load(std::memory_order_relaxed), 100 + kLookahead);
}

// Ping-pong across shards: each hop schedules the next one lookahead out.
// Exercises repeated window rounds, both lane directions, and termination
// with work still flowing right up to the end.
TEST(ShardRuntime, PingPongAcrossShards) {
  ShardRuntime rt(2, kLookahead);
  constexpr int kHops = 32;
  std::vector<std::pair<std::size_t, SimTime>> hops;
  std::mutex mu;  // hops alternate shards; the mutex keeps TSan exact
  // self-referential hop closure: posts the next hop until kHops.
  struct Bouncer {
    ShardRuntime* rt;
    std::vector<std::pair<std::size_t, SimTime>>* hops;
    std::mutex* mu;
    void hop(std::size_t at_shard, int remaining) {
      {
        const std::lock_guard<std::mutex> lock(*mu);
        hops->emplace_back(at_shard, rt->shard(at_shard).now());
      }
      if (remaining == 0) return;
      const std::size_t next = 1 - at_shard;
      rt->post(at_shard, next, rt->shard(at_shard).now() + kLookahead,
               [this, next, remaining] { hop(next, remaining - 1); });
    }
  };
  Bouncer b{&rt, &hops, &mu};
  rt.shard(0).spawn([](Bouncer* bp) -> Task<void> {
    bp->hop(0, kHops);
    co_return;
  }(&b));
  rt.run();
  ASSERT_EQ(hops.size(), static_cast<std::size_t>(kHops) + 1);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i].first, i % 2) << "hop " << i;
    EXPECT_EQ(hops[i].second, static_cast<SimTime>(i) * kLookahead)
        << "hop " << i;
  }
  EXPECT_GT(rt.rounds(), 0u);
}

// Lane overflow: more same-round messages than the SPSC ring holds must all
// arrive (the spill vector) and still in FIFO order per source shard.
TEST(ShardRuntime, LaneOverflowPreservesAllMessagesInOrder)  {
  ShardRuntime rt(2, kLookahead);
  constexpr std::size_t kMessages = 1'000;  // > kLaneCapacity
  std::vector<std::size_t> order;
  rt.shard(0).spawn([](ShardRuntime* r,
                       std::vector<std::size_t>* out) -> Task<void> {
    co_await r->shard(0).delay(10);
    const SimTime due = r->shard(0).now() + kLookahead;
    for (std::size_t i = 0; i < kMessages; ++i) {
      r->post(0, 1, due, [out, i] { out->push_back(i); });
    }
  }(&rt, &order));
  rt.run();
  ASSERT_EQ(order.size(), kMessages);
  for (std::size_t i = 0; i < kMessages; ++i) {
    EXPECT_EQ(order[i], i);
    if (order[i] != i) break;
  }
}

// Fixed (program, shard count) => bit-identical execution order, regardless
// of thread scheduling. Runs the ping-pong twice and compares transcripts.
TEST(ShardRuntime, DeterministicForFixedShardCount) {
  auto transcript = [] {
    ShardRuntime rt(4, kLookahead);
    std::vector<std::vector<SimTime>> logs(4);
    for (std::size_t s = 0; s < 4; ++s) {
      for (int i = 0; i < 50; ++i) {
        rt.shard(s).spawn(
            record_at(&rt.shard(s), (i * 37 + static_cast<int>(s) * 11) % 23,
                      &logs[s]));
      }
    }
    rt.run();
    return logs;
  };
  EXPECT_EQ(transcript(), transcript());
}

// Quiescence time: every shard's clock ends on the same final window, so
// harness makespans read the same value from any shard.
TEST(ShardRuntime, ShardsAgreeOnFinalTime) {
  ShardRuntime rt(3, kLookahead);
  std::vector<SimTime> log;
  rt.shard(1).spawn(record_at(&rt.shard(1), 12'345, &log));
  rt.run();
  EXPECT_EQ(rt.shard(0).now(), rt.shard(1).now());
  EXPECT_EQ(rt.shard(1).now(), rt.shard(2).now());
}

}  // namespace
}  // namespace hpres::sim
