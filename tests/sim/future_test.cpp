// Promise/Future completion semantics (the iset/iget handle machinery).
#include "sim/future.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpres::sim {
namespace {

Task<void> fulfill_after(Simulator* sim, Promise<int> promise, SimDur d,
                         int value) {
  co_await sim->delay(d);
  promise.set_value(value);
}

Task<void> await_future(Simulator* sim, Future<int> future,
                        std::vector<std::pair<int, SimTime>>* log) {
  const int v = co_await future.wait();
  log->push_back({v, sim->now()});
}

TEST(Future, DeliversValueAtFulfillmentTime) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(fulfill_after(&sim, p, 250, 7));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 7);
  EXPECT_EQ(log[0].second, 250);
}

TEST(Future, MultipleWaitersAllReceive) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(fulfill_after(&sim, p, 10, 5));
  sim.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(Future, WaitAfterFulfillmentIsImmediate) {
  Simulator sim;
  Promise<int> p(sim);
  p.set_value(3);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 0);
}

TEST(Future, TryGetPollsWithoutSuspending) {
  Simulator sim;
  Promise<int> p(sim);
  Future<int> f = p.get_future();
  EXPECT_FALSE(f.ready());
  EXPECT_EQ(f.try_get(), nullptr);
  p.set_value(9);
  EXPECT_TRUE(f.ready());
  ASSERT_NE(f.try_get(), nullptr);
  EXPECT_EQ(*f.try_get(), 9);
}

TEST(Future, OutlivesPromise) {
  Simulator sim;
  Future<int> f;
  {
    Promise<int> p(sim);
    f = p.get_future();
    p.set_value(11);
  }  // promise destroyed
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(*f.try_get(), 11);
}

TEST(Future, DefaultConstructedIsInvalid) {
  const Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
}

}  // namespace
}  // namespace hpres::sim
