// Promise/Future completion semantics (the iset/iget handle machinery).
#include "sim/future.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpres::sim {
namespace {

Task<void> fulfill_after(Simulator* sim, Promise<int> promise, SimDur d,
                         int value) {
  co_await sim->delay(d);
  promise.set_value(value);
}

Task<void> await_future(Simulator* sim, Future<int> future,
                        std::vector<std::pair<int, SimTime>>* log) {
  const int v = co_await future.wait();
  log->push_back({v, sim->now()});
}

TEST(Future, DeliversValueAtFulfillmentTime) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(fulfill_after(&sim, p, 250, 7));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 7);
  EXPECT_EQ(log[0].second, 250);
}

TEST(Future, MultipleWaitersAllReceive) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.spawn(fulfill_after(&sim, p, 10, 5));
  sim.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(Future, WaitAfterFulfillmentIsImmediate) {
  Simulator sim;
  Promise<int> p(sim);
  p.set_value(3);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(await_future(&sim, p.get_future(), &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 0);
}

TEST(Future, TryGetPollsWithoutSuspending) {
  Simulator sim;
  Promise<int> p(sim);
  Future<int> f = p.get_future();
  EXPECT_FALSE(f.ready());
  EXPECT_EQ(f.try_get(), nullptr);
  p.set_value(9);
  EXPECT_TRUE(f.ready());
  ASSERT_NE(f.try_get(), nullptr);
  EXPECT_EQ(*f.try_get(), 9);
}

TEST(Future, OutlivesPromise) {
  Simulator sim;
  Future<int> f;
  {
    Promise<int> p(sim);
    f = p.get_future();
    p.set_value(11);
  }  // promise destroyed
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(*f.try_get(), 11);
}

TEST(Future, DefaultConstructedIsInvalid) {
  const Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
}

// --- Future::wait_for (RPC deadline primitive) -------------------------------

Task<void> timed_await(Simulator* sim, Future<int> future, SimDur timeout,
                       std::vector<std::pair<std::optional<int>, SimTime>>* log) {
  std::optional<int> v = co_await future.wait_for(timeout);
  log->push_back({std::move(v), sim->now()});
}

TEST(FutureWaitFor, DeliversValueBeforeDeadline) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<std::optional<int>, SimTime>> log;
  sim.spawn(timed_await(&sim, p.get_future(), 1'000, &log));
  sim.spawn(fulfill_after(&sim, p, 250, 7));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  ASSERT_TRUE(log[0].first.has_value());
  EXPECT_EQ(*log[0].first, 7);
  EXPECT_EQ(log[0].second, 250);
}

TEST(FutureWaitFor, NulloptAtExactDeadline) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<std::pair<std::optional<int>, SimTime>> log;
  sim.spawn(timed_await(&sim, p.get_future(), 1'000, &log));
  sim.spawn(fulfill_after(&sim, p, 5'000, 7));  // too late
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].first.has_value());
  EXPECT_EQ(log[0].second, 1'000);
}

TEST(FutureWaitFor, LateFulfillmentStillObservable) {
  Simulator sim;
  Promise<int> p(sim);
  Future<int> f = p.get_future();
  std::vector<std::pair<std::optional<int>, SimTime>> log;
  sim.spawn(timed_await(&sim, f, 100, &log));
  sim.spawn(fulfill_after(&sim, p, 700, 42));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].first.has_value());
  ASSERT_TRUE(f.ready());  // the shared state caught the late value
  EXPECT_EQ(*f.try_get(), 42);
}

TEST(FutureWaitFor, ManyRacingWaitersStress) {
  // Dense race coverage around the deadline: fulfillment lands before, at,
  // and after each waiter's deadline, all at close-packed timestamps.
  Simulator sim;
  std::vector<std::pair<std::optional<int>, SimTime>> log;
  std::vector<Promise<int>> promises;
  promises.reserve(64);
  for (int i = 0; i < 64; ++i) {
    promises.emplace_back(sim);
    const SimDur timeout = 10 + (i % 7);
    const SimDur fulfill = 8 + (i % 9);
    sim.spawn(timed_await(&sim, promises[static_cast<std::size_t>(i)]
                                    .get_future(),
                          timeout, &log));
    sim.spawn(fulfill_after(&sim, promises[static_cast<std::size_t>(i)],
                            fulfill, i));
  }
  sim.run();
  EXPECT_EQ(log.size(), 64u);
  for (const auto& [value, at] : log) {
    if (value.has_value()) {
      const int i = *value;
      EXPECT_LE(8 + (i % 9), 10 + (i % 7)) << "value delivered past deadline";
    }
  }
}

}  // namespace
}  // namespace hpres::sim
