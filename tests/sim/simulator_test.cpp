// Event-loop semantics: virtual time, ordering, determinism, task lifetime.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hpres::sim {
namespace {

Task<void> record_at(Simulator* sim, SimDur delay, std::vector<SimTime>* log) {
  co_await sim->delay(delay);
  log->push_back(sim->now());
}

TEST(Simulator, StartsAtTimeZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, DelayAdvancesVirtualTime) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 1000, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 500, &log));
  sim.spawn(record_at(&sim, 100, &log));
  sim.spawn(record_at(&sim, 300, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 300, 500}));
}

Task<void> record_label(Simulator* sim, SimDur delay, std::string label,
                        std::vector<std::string>* log) {
  co_await sim->delay(delay);
  log->push_back(std::move(label));
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn(record_label(&sim, 100, "first", &log));
  sim.spawn(record_label(&sim, 100, "second", &log));
  sim.spawn(record_label(&sim, 100, "third", &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first", "second", "third"}));
}

Task<void> nested_child(Simulator* sim, std::vector<std::string>* log) {
  log->push_back("child-start");
  co_await sim->delay(10);
  log->push_back("child-end");
}

Task<void> nested_parent(Simulator* sim, std::vector<std::string>* log) {
  log->push_back("parent-start");
  co_await nested_child(sim, log);
  log->push_back("parent-end");
}

TEST(Simulator, AwaitingSubTaskRunsInline) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn(nested_parent(&sim, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-end"}));
  EXPECT_EQ(sim.now(), 10);
}

Task<int> produce_value(Simulator* sim) {
  co_await sim->delay(5);
  co_return 41 + 1;
}

Task<void> consume_value(Simulator* sim, int* out) {
  *out = co_await produce_value(sim);
}

TEST(Simulator, TaskReturnsValue) {
  Simulator sim;
  int result = 0;
  sim.spawn(consume_value(&sim, &result));
  sim.run();
  EXPECT_EQ(result, 42);
}

Task<void> spawner(Simulator* sim, std::vector<SimTime>* log) {
  co_await sim->delay(50);
  // Spawn from inside a running process; child starts at current time.
  sim->spawn(record_at(sim, 25, log));
}

TEST(Simulator, SpawnFromInsideProcess) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(spawner(&sim, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 75);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 100, &log));
  sim.spawn(record_at(&sim, 10'000, &log));
  sim.run_until(5'000);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(sim.now(), 5'000);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(log.size(), 2u);
}

#ifdef NDEBUG
// Release builds keep the defensive clamp: a stale-timestamp delay never
// schedules into the past.
TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, -50, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0);
}
#else
// Debug builds assert instead of silently clamping — a negative delay means
// the caller computed a deadline from a stale timestamp (the class of bug
// the clamp used to hide).
TEST(SimulatorDeathTest, NegativeDelayAssertsInDebug) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        sim.schedule(std::noop_coroutine(), -50);
      },
      "negative schedule\\(\\) delay");
}
#endif

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 1, &log));
  sim.spawn(record_at(&sim, 2, &log));
  sim.run();
  EXPECT_GE(sim.events_executed(), 2u);
}

Task<void> record_seq(Simulator* sim, SimDur delay, std::size_t seq,
                      std::vector<std::pair<SimTime, std::size_t>>* log) {
  co_await sim->delay(delay);
  log->emplace_back(sim->now(), seq);
}

// Property: over many events with heavy timestamp collisions, execution is
// sorted by time, and equal-time events run in exact spawn (FIFO) order —
// the tie-break the whole replay/trace layer depends on.
TEST(Simulator, EqualTimeFifoProperty) {
  Simulator sim;
  std::vector<std::pair<SimTime, std::size_t>> log;
  constexpr std::size_t kEvents = 500;
  for (std::size_t i = 0; i < kEvents; ++i) {
    // Only 7 distinct timestamps for 500 events: every bucket collides.
    sim.spawn(record_seq(&sim, static_cast<SimDur>((i * 13) % 7), i, &log));
  }
  sim.run();
  ASSERT_EQ(log.size(), kEvents);
  std::vector<std::pair<SimTime, std::size_t>> expected = log;
  // Stable sort by time alone: within a timestamp, spawn order survives.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // The log must already be sorted by (time, spawn order) — i.e. equal to
  // its own stable sort by time, with seq strictly increasing per bucket.
  EXPECT_EQ(log, expected);
  for (std::size_t i = 1; i < log.size(); ++i) {
    if (log[i].first == log[i - 1].first) {
      EXPECT_LT(log[i - 1].second, log[i].second);
    }
  }
}

// Property: run_until(D) executes exactly the events due at or before D and
// leaves every later event queued and runnable — nothing is dropped.
TEST(Simulator, RunUntilLeavesPostDeadlineEventsQueued) {
  Simulator sim;
  std::vector<SimTime> log;
  constexpr SimTime kDeadline = 1'000;
  std::size_t due_before = 0;
  std::size_t total = 0;
  for (SimDur d = 100; d <= 2'000; d += 100) {
    sim.spawn(record_at(&sim, d, &log));
    ++total;
    if (d <= kDeadline) ++due_before;
  }
  sim.run_until(kDeadline);
  EXPECT_EQ(log.size(), due_before);
  EXPECT_EQ(sim.now(), kDeadline);
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.next_event_time(), kDeadline + 100);
  sim.run();
  ASSERT_EQ(log.size(), total);
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.next_event_time(), Simulator::kNever);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<SimTime> log;
    for (int i = 0; i < 100; ++i) {
      sim.spawn(record_at(&sim, (i * 37) % 11, &log));
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpres::sim
