// Event-loop semantics: virtual time, ordering, determinism, task lifetime.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"

namespace hpres::sim {
namespace {

Task<void> record_at(Simulator* sim, SimDur delay, std::vector<SimTime>* log) {
  co_await sim->delay(delay);
  log->push_back(sim->now());
}

TEST(Simulator, StartsAtTimeZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, DelayAdvancesVirtualTime) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 1000, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 500, &log));
  sim.spawn(record_at(&sim, 100, &log));
  sim.spawn(record_at(&sim, 300, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 300, 500}));
}

Task<void> record_label(Simulator* sim, SimDur delay, std::string label,
                        std::vector<std::string>* log) {
  co_await sim->delay(delay);
  log->push_back(std::move(label));
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn(record_label(&sim, 100, "first", &log));
  sim.spawn(record_label(&sim, 100, "second", &log));
  sim.spawn(record_label(&sim, 100, "third", &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first", "second", "third"}));
}

Task<void> nested_child(Simulator* sim, std::vector<std::string>* log) {
  log->push_back("child-start");
  co_await sim->delay(10);
  log->push_back("child-end");
}

Task<void> nested_parent(Simulator* sim, std::vector<std::string>* log) {
  log->push_back("parent-start");
  co_await nested_child(sim, log);
  log->push_back("parent-end");
}

TEST(Simulator, AwaitingSubTaskRunsInline) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn(nested_parent(&sim, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-end"}));
  EXPECT_EQ(sim.now(), 10);
}

Task<int> produce_value(Simulator* sim) {
  co_await sim->delay(5);
  co_return 41 + 1;
}

Task<void> consume_value(Simulator* sim, int* out) {
  *out = co_await produce_value(sim);
}

TEST(Simulator, TaskReturnsValue) {
  Simulator sim;
  int result = 0;
  sim.spawn(consume_value(&sim, &result));
  sim.run();
  EXPECT_EQ(result, 42);
}

Task<void> spawner(Simulator* sim, std::vector<SimTime>* log) {
  co_await sim->delay(50);
  // Spawn from inside a running process; child starts at current time.
  sim->spawn(record_at(sim, 25, log));
}

TEST(Simulator, SpawnFromInsideProcess) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(spawner(&sim, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 75);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 100, &log));
  sim.spawn(record_at(&sim, 10'000, &log));
  sim.run_until(5'000);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(sim.now(), 5'000);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, -50, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(record_at(&sim, 1, &log));
  sim.spawn(record_at(&sim, 2, &log));
  sim.run();
  EXPECT_GE(sim.events_executed(), 2u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<SimTime> log;
    for (int i = 0; i < 100; ++i) {
      sim.spawn(record_at(&sim, (i * 37) % 11, &log));
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpres::sim
