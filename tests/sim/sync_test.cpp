// Channel / Event / Semaphore / Latch / WorkerPool semantics.
#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpres::sim {
namespace {

// --- Event -------------------------------------------------------------------

Task<void> wait_and_log(Simulator* sim, Event* ev, std::string label,
                        std::vector<std::string>* log) {
  co_await ev->wait();
  log->push_back(label + "@" + std::to_string(sim->now()));
}

Task<void> set_after(Simulator* sim, Event* ev, SimDur d) {
  co_await sim->delay(d);
  ev->set();
}

TEST(Event, BroadcastWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  std::vector<std::string> log;
  sim.spawn(wait_and_log(&sim, &ev, "a", &log));
  sim.spawn(wait_and_log(&sim, &ev, "b", &log));
  sim.spawn(set_after(&sim, &ev, 100));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a@100", "b@100"}));
}

TEST(Event, WaitOnSetEventCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  std::vector<std::string> log;
  sim.spawn(wait_and_log(&sim, &ev, "x", &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"x@0"}));
}

TEST(Event, DoubleSetIsIdempotent) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  ev.set();
  EXPECT_TRUE(ev.is_set());
}

// --- Channel -----------------------------------------------------------------

Task<void> drain(Channel<int>* ch, std::vector<int>* out) {
  for (;;) {
    const std::optional<int> v = co_await ch->recv();
    if (!v) break;
    out->push_back(*v);
  }
}

Task<void> feed(Simulator* sim, Channel<int>* ch, int count, SimDur gap) {
  for (int i = 0; i < count; ++i) {
    co_await sim->delay(gap);
    ch->send(i);
  }
  ch->close();
}

TEST(Channel, FifoDelivery) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> out;
  sim.spawn(drain(&ch, &out));
  sim.spawn(feed(&sim, &ch, 5, 10));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BufferedItemsSurviveUntilReceived) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(7);
  ch.send(8);
  ch.close();
  std::vector<int> out;
  sim.spawn(drain(&ch, &out));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
}

TEST(Channel, CloseReleasesBlockedReceiver) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> out;
  bool finished = false;
  struct Helper {
    static Task<void> run(Channel<int>* c, std::vector<int>* o, bool* done) {
      const auto v = co_await c->recv();
      EXPECT_FALSE(v.has_value());
      (void)o;
      *done = true;
    }
  };
  sim.spawn(Helper::run(&ch, &out, &finished));
  struct Closer {
    static Task<void> run(Simulator* s, Channel<int>* c) {
      co_await s->delay(100);
      c->close();
    }
  };
  sim.spawn(Closer::run(&sim, &ch));
  sim.run();
  EXPECT_TRUE(finished);
}

TEST(Channel, SendAfterCloseIsDropped) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.close();
  ch.send(1);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, TryRecvDoesNotSuspend) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(3);
  const auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(Channel, MultipleConsumersShareItems) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> out_a;
  std::vector<int> out_b;
  sim.spawn(drain(&ch, &out_a));
  sim.spawn(drain(&ch, &out_b));
  sim.spawn(feed(&sim, &ch, 10, 1));
  sim.run();
  EXPECT_EQ(out_a.size() + out_b.size(), 10u);
}

// --- Semaphore ---------------------------------------------------------------

Task<void> hold_permit(Simulator* sim, Semaphore* sem, SimDur hold,
                       std::vector<SimTime>* acquired) {
  co_await sem->acquire();
  acquired->push_back(sim->now());
  co_await sim->delay(hold);
  sem->release();
}

TEST(Semaphore, SerializesBeyondPermits) {
  Simulator sim;
  Semaphore sem(sim, 2);
  std::vector<SimTime> acquired;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(hold_permit(&sim, &sem, 100, &acquired));
  }
  sim.run();
  // Two run at t=0, the next two at t=100.
  EXPECT_EQ(acquired, (std::vector<SimTime>{0, 0, 100, 100}));
}

TEST(Semaphore, TryAcquireNonBlocking) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

// --- Latch -------------------------------------------------------------------

Task<void> latch_waiter(Simulator* sim, Latch* latch, SimTime* completed_at) {
  co_await latch->wait();
  *completed_at = sim->now();
}

Task<void> latch_worker(Simulator* sim, Latch* latch, SimDur d) {
  co_await sim->delay(d);
  latch->count_down();
}

TEST(Latch, WaitsForAllParties) {
  Simulator sim;
  Latch latch(sim, 3);
  SimTime completed_at = -1;
  sim.spawn(latch_waiter(&sim, &latch, &completed_at));
  sim.spawn(latch_worker(&sim, &latch, 10));
  sim.spawn(latch_worker(&sim, &latch, 200));
  sim.spawn(latch_worker(&sim, &latch, 50));
  sim.run();
  EXPECT_EQ(completed_at, 200);  // slowest party gates completion
}

TEST(Latch, ZeroCountIsImmediatelyOpen) {
  Simulator sim;
  Latch latch(sim, 0);
  SimTime completed_at = -1;
  sim.spawn(latch_waiter(&sim, &latch, &completed_at));
  sim.run();
  EXPECT_EQ(completed_at, 0);
}

// --- WorkerPool ---------------------------------------------------------------

Task<void> submit_job(Simulator* sim, WorkerPool* pool, SimDur d,
                      std::vector<SimTime>* done) {
  co_await pool->execute(d);
  done->push_back(sim->now());
}

TEST(WorkerPool, ParallelismBoundedByWorkerCount) {
  Simulator sim;
  WorkerPool pool(sim, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(submit_job(&sim, &pool, 100, &done));
  }
  sim.run();
  // 4 jobs x 100ns on 2 workers: finish at 100,100,200,200.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100, 200, 200}));
  EXPECT_EQ(pool.busy_time(), 400);
}

TEST(WorkerPool, SingleWorkerSerializesFifo) {
  Simulator sim;
  WorkerPool pool(sim, 1);
  std::vector<SimTime> done;
  sim.spawn(submit_job(&sim, &pool, 10, &done));
  sim.spawn(submit_job(&sim, &pool, 20, &done));
  sim.spawn(submit_job(&sim, &pool, 30, &done));
  sim.run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 30, 60}));
}

// --- Event::wait_for (deadline primitive) ------------------------------------

Task<void> timed_wait_and_log(Simulator* sim, Event* ev, SimDur timeout,
                              std::vector<std::pair<bool, SimTime>>* log) {
  const bool fired = co_await ev->wait_for(timeout);
  log->push_back({fired, sim->now()});
}

TEST(EventWaitFor, TimesOutAtExactDeadline) {
  Simulator sim;
  Event ev(sim);
  std::vector<std::pair<bool, SimTime>> log;
  sim.spawn(timed_wait_and_log(&sim, &ev, 500, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].first);
  EXPECT_EQ(log[0].second, 500);
}

TEST(EventWaitFor, SignaledBeforeDeadlineReturnsTrue) {
  Simulator sim;
  Event ev(sim);
  std::vector<std::pair<bool, SimTime>> log;
  sim.spawn(timed_wait_and_log(&sim, &ev, 500, &log));
  sim.spawn(set_after(&sim, &ev, 100));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].first);
  EXPECT_EQ(log[0].second, 100);
}

TEST(EventWaitFor, AlreadySetCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  std::vector<std::pair<bool, SimTime>> log;
  sim.spawn(timed_wait_and_log(&sim, &ev, 500, &log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].first);
  EXPECT_EQ(log[0].second, 0);
}

TEST(EventWaitFor, SetAtExactDeadlineInstantWakesOnce) {
  // The deadline timer and the set() land at the same simulated instant;
  // whichever runs first must win exactly once (no double resume).
  Simulator sim;
  Event ev(sim);
  std::vector<std::pair<bool, SimTime>> log;
  sim.spawn(timed_wait_and_log(&sim, &ev, 300, &log));
  sim.spawn(set_after(&sim, &ev, 300));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 300);
}

TEST(EventWaitFor, MixedTimedAndPlainWaiters) {
  Simulator sim;
  Event ev(sim);
  std::vector<std::string> plain_log;
  std::vector<std::pair<bool, SimTime>> timed_log;
  sim.spawn(wait_and_log(&sim, &ev, "p", &plain_log));
  sim.spawn(timed_wait_and_log(&sim, &ev, 50, &timed_log));   // expires
  sim.spawn(timed_wait_and_log(&sim, &ev, 500, &timed_log));  // fires
  sim.spawn(set_after(&sim, &ev, 200));
  sim.run();
  EXPECT_EQ(plain_log, (std::vector<std::string>{"p@200"}));
  ASSERT_EQ(timed_log.size(), 2u);
  EXPECT_FALSE(timed_log[0].first);
  EXPECT_EQ(timed_log[0].second, 50);
  EXPECT_TRUE(timed_log[1].first);
  EXPECT_EQ(timed_log[1].second, 200);
}

}  // namespace
}  // namespace hpres::sim
