// Shared test scaffolding: a 5-server cluster with one or more clients and
// helpers to run coroutine test bodies to completion inside the simulation.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"

namespace hpres::testing {

/// Spawns `body(args...)` as a simulation process, runs to quiescence, and
/// fails the test if the body never finished (deadlock in simulated time).
template <typename Fn, typename... Args>
void run_sim(sim::Simulator& sim, Fn body, Args*... args) {
  bool finished = false;
  struct Runner {
    static sim::Task<void> run(Fn fn, bool* done, Args*... a) {
      co_await fn(a...);
      *done = true;
    }
  };
  sim.spawn(Runner::run(std::move(body), &finished, args...));
  sim.run();
  EXPECT_TRUE(finished) << "coroutine test body never completed";
}

/// 5 servers + 1 client on RDMA-QDR with an RS(3,2) codec: the paper's
/// micro-benchmark configuration.
class FiveNodeClusterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kServers = 5;

  FiveNodeClusterTest()
      : codec_(3, 2),
        cost_(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2)),
        cluster_(cluster::ClusterConfig{.num_servers = kServers,
                                        .num_clients = 1}) {
    cluster_.enable_server_ec(codec_, cost_, /*materialize=*/true);
  }

  /// Builds an engine for client 0. Call before cluster_.start().
  std::unique_ptr<resilience::Engine> make_engine(
      resilience::Design design, std::uint32_t rep_factor = 3,
      resilience::ArpeParams arpe = {}, resilience::HedgeParams hedge = {},
      resilience::PackParams pack = {}) {
    resilience::EngineContext ctx;
    ctx.sim = &cluster_.sim();
    ctx.client = &cluster_.client(0);
    ctx.ring = &cluster_.ring();
    ctx.membership = &cluster_.membership();
    ctx.server_nodes = &cluster_.server_nodes();
    ctx.materialize = true;
    return resilience::make_engine(design, ctx, rep_factor, &codec_, cost_,
                                   arpe, hedge, pack);
  }

  ec::RsVandermondeCodec codec_;
  ec::CostModel cost_;
  cluster::Cluster cluster_;
};

}  // namespace hpres::testing
