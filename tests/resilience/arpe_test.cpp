// ARPE window and buffer-pool semantics.
#include "resilience/arpe.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpres::resilience {
namespace {

sim::Task<void> op(sim::Simulator* sim, Arpe* arpe, SimDur hold,
                   std::vector<SimTime>* admitted) {
  arpe->submit();
  co_await arpe->admit();
  admitted->push_back(sim->now());
  co_await sim->delay(hold);
  arpe->complete();
}

TEST(Arpe, WindowBoundsInFlightOps) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 2, .buffers = 16});
  std::vector<SimTime> admitted;
  for (int i = 0; i < 6; ++i) {
    sim.spawn(op(&sim, &arpe, 100, &admitted));
  }
  sim.run();
  // 6 ops through a window of 2: admission waves at t=0, 100, 200.
  EXPECT_EQ(admitted,
            (std::vector<SimTime>{0, 0, 100, 100, 200, 200}));
  EXPECT_EQ(arpe.stats().submitted, 6u);
  EXPECT_EQ(arpe.stats().admitted, 6u);
  EXPECT_EQ(arpe.stats().window_waits, 4u);
  EXPECT_EQ(arpe.in_flight(), 0u);
  EXPECT_EQ(arpe.pending(), 0u);
}

TEST(Arpe, BufferPoolCanBeTheBottleneck) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 16, .buffers = 1});
  std::vector<SimTime> admitted;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(op(&sim, &arpe, 50, &admitted));
  }
  sim.run();
  EXPECT_EQ(admitted, (std::vector<SimTime>{0, 50, 100}));
  EXPECT_EQ(arpe.buffer_stats().backpressure_waits, 2u);
  EXPECT_EQ(arpe.buffer_stats().high_water, 1u);
}

sim::Task<void> drain_then_mark(sim::Simulator* sim, Arpe* arpe,
                                SimTime* drained_at) {
  co_await sim->delay(1);  // let the ops enter the window first
  co_await arpe->drain();
  *drained_at = sim->now();
}

TEST(Arpe, DrainWaitsForAllInFlight) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 8, .buffers = 8});
  std::vector<SimTime> admitted;
  sim.spawn(op(&sim, &arpe, 300, &admitted));
  sim.spawn(op(&sim, &arpe, 700, &admitted));
  SimTime drained_at = -1;
  sim.spawn(drain_then_mark(&sim, &arpe, &drained_at));
  sim.run();
  EXPECT_EQ(drained_at, 700);
}

TEST(Arpe, DrainOnIdleEngineReturnsImmediately) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{});
  SimTime drained_at = -1;
  struct Helper {
    static sim::Task<void> run(sim::Simulator* s, Arpe* a, SimTime* t) {
      co_await a->drain();
      *t = s->now();
    }
  };
  sim.spawn(Helper::run(&sim, &arpe, &drained_at));
  sim.run();
  EXPECT_EQ(drained_at, 0);
}

sim::Task<void> commit_worker(sim::Simulator* sim, Arpe* arpe, SimDur start,
                              SimDur hold, std::vector<SimTime>* got) {
  co_await sim->delay(start);
  co_await arpe->acquire_commit_buffer();
  got->push_back(sim->now());
  co_await sim->delay(hold);
  arpe->release_commit_buffer();
}

sim::Task<void> hedge_probe(sim::Simulator* sim, Arpe* arpe, SimDur at,
                            bool* won, std::uint32_t* in_use_at_probe) {
  co_await sim->delay(at);
  *in_use_at_probe = arpe->buffers_in_use();
  *won = arpe->try_acquire_hedge_buffer();
  if (*won) arpe->release_hedge_buffer();
}

TEST(Arpe, HedgeNeverStealsBufferFromQueuedCommit) {
  // Regression for the group-commit / hedge priority inversion: an op holds
  // the pool's only buffer, two sealed-stripe commits queue behind it, and
  // a hedge probes exactly when the op releases. At that instant a buffer
  // is momentarily free while a commit is still queued — the no-steal rule
  // (BufferPool::try_acquire refuses whenever the pool has waiters) must
  // hand it to the commits, never the hedge.
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 8, .buffers = 1});
  std::vector<SimTime> op_admitted;
  std::vector<SimTime> commits;
  bool hedge_won = true;
  std::uint32_t in_use_at_probe = 99;
  sim.spawn(op(&sim, &arpe, 100, &op_admitted));  // holds the buffer 0..100
  sim.spawn(commit_worker(&sim, &arpe, 1, 10, &commits));
  sim.spawn(commit_worker(&sim, &arpe, 2, 10, &commits));
  sim.spawn(hedge_probe(&sim, &arpe, 100, &hedge_won, &in_use_at_probe));
  sim.run();
  // The probe really saw a free buffer (op released at t=100 first) and
  // still lost it to the queued commits.
  EXPECT_EQ(in_use_at_probe, 0u);
  EXPECT_FALSE(hedge_won);
  EXPECT_EQ(commits, (std::vector<SimTime>{100, 110}));
  EXPECT_EQ(arpe.stats().commit_buffers, 2u);
  EXPECT_EQ(arpe.stats().commit_buffer_waits, 2u);
  EXPECT_EQ(arpe.stats().hedge_denials, 1u);
  EXPECT_EQ(arpe.stats().hedge_buffers, 0u);
}

TEST(Arpe, CommitBufferDoesNotBlockWhenPoolHasSpares) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 2, .buffers = 4});
  std::vector<SimTime> admitted;
  std::vector<SimTime> commits;
  sim.spawn(op(&sim, &arpe, 100, &admitted));
  sim.spawn(op(&sim, &arpe, 100, &admitted));
  sim.spawn(commit_worker(&sim, &arpe, 1, 10, &commits));
  sim.run();
  EXPECT_EQ(commits, (std::vector<SimTime>{1}));  // spare buffer, no wait
  EXPECT_EQ(arpe.stats().commit_buffer_waits, 0u);
}

TEST(BufferPool, WatermarkExportsAsPrometheusGauge) {
  // high_water is a watermark, not an event count: it must carry gauge
  // semantics in the Prometheus exposition (rate() over it is meaningless)
  // while the true event counters stay counters.
  sim::Simulator sim;
  BufferPool pool(sim, 4);
  ASSERT_TRUE(pool.try_acquire());
  obs::MetricsRegistry reg;
  pool.stats().register_with(reg, "client0", "pt0");
  reg.capture();
  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("# TYPE hpres_bufpool_high_water gauge"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE hpres_bufpool_acquisitions counter"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE hpres_bufpool_backpressure_waits counter"),
            std::string::npos)
      << out;
  pool.release();
}

}  // namespace
}  // namespace hpres::resilience
