// ARPE window and buffer-pool semantics.
#include "resilience/arpe.h"

#include <gtest/gtest.h>

#include <vector>

namespace hpres::resilience {
namespace {

sim::Task<void> op(sim::Simulator* sim, Arpe* arpe, SimDur hold,
                   std::vector<SimTime>* admitted) {
  arpe->submit();
  co_await arpe->admit();
  admitted->push_back(sim->now());
  co_await sim->delay(hold);
  arpe->complete();
}

TEST(Arpe, WindowBoundsInFlightOps) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 2, .buffers = 16});
  std::vector<SimTime> admitted;
  for (int i = 0; i < 6; ++i) {
    sim.spawn(op(&sim, &arpe, 100, &admitted));
  }
  sim.run();
  // 6 ops through a window of 2: admission waves at t=0, 100, 200.
  EXPECT_EQ(admitted,
            (std::vector<SimTime>{0, 0, 100, 100, 200, 200}));
  EXPECT_EQ(arpe.stats().submitted, 6u);
  EXPECT_EQ(arpe.stats().admitted, 6u);
  EXPECT_EQ(arpe.stats().window_waits, 4u);
  EXPECT_EQ(arpe.in_flight(), 0u);
  EXPECT_EQ(arpe.pending(), 0u);
}

TEST(Arpe, BufferPoolCanBeTheBottleneck) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 16, .buffers = 1});
  std::vector<SimTime> admitted;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(op(&sim, &arpe, 50, &admitted));
  }
  sim.run();
  EXPECT_EQ(admitted, (std::vector<SimTime>{0, 50, 100}));
  EXPECT_EQ(arpe.buffer_stats().backpressure_waits, 2u);
  EXPECT_EQ(arpe.buffer_stats().high_water, 1u);
}

sim::Task<void> drain_then_mark(sim::Simulator* sim, Arpe* arpe,
                                SimTime* drained_at) {
  co_await sim->delay(1);  // let the ops enter the window first
  co_await arpe->drain();
  *drained_at = sim->now();
}

TEST(Arpe, DrainWaitsForAllInFlight) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{.window = 8, .buffers = 8});
  std::vector<SimTime> admitted;
  sim.spawn(op(&sim, &arpe, 300, &admitted));
  sim.spawn(op(&sim, &arpe, 700, &admitted));
  SimTime drained_at = -1;
  sim.spawn(drain_then_mark(&sim, &arpe, &drained_at));
  sim.run();
  EXPECT_EQ(drained_at, 700);
}

TEST(Arpe, DrainOnIdleEngineReturnsImmediately) {
  sim::Simulator sim;
  Arpe arpe(sim, ArpeParams{});
  SimTime drained_at = -1;
  struct Helper {
    static sim::Task<void> run(sim::Simulator* s, Arpe* a, SimTime* t) {
      co_await a->drain();
      *t = s->now();
    }
  };
  sim.spawn(Helper::run(&sim, &arpe, &drained_at));
  sim.run();
  EXPECT_EQ(drained_at, 0);
}

}  // namespace
}  // namespace hpres::resilience
