// Engine delete semantics across all designs, and the server-side-encode
// read-after-write race (staging + fallback path).
#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class DeleteTest : public FiveNodeClusterTest,
                   public ::testing::WithParamInterface<Design> {};

TEST_P(DeleteTest, DeleteRemovesEverythingEverywhere) {
  auto engine = make_engine(GetParam());
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("victim",
                            make_shared_bytes(make_pattern(20'000, 1)));
      // Quiesce (SE designs distribute in the background).
      co_await cl->sim().delay(units::kMillisecond);
      const Status del = co_await e->del("victim");
      EXPECT_TRUE(del.ok()) << del;
      std::size_t items = 0;
      for (std::size_t s = 0; s < 5; ++s) {
        items += cl->server(s).store().items();
      }
      EXPECT_EQ(items, 0u);
      const Result<Bytes> got = co_await e->get("victim");
      EXPECT_FALSE(got.ok());
      EXPECT_EQ(e->stats().dels, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_P(DeleteTest, DeleteMissingKeyIsNotFound) {
  auto engine = make_engine(GetParam());
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      EXPECT_EQ((co_await e->del("ghost")).code(), StatusCode::kNotFound);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DeleteTest,
    ::testing::Values(Design::kNoRep, Design::kSyncRep, Design::kAsyncRep,
                      Design::kEraCeCd, Design::kEraSeSd, Design::kEraSeCd),
    [](const ::testing::TestParamInfo<Design>& param_info) {
      std::string name{to_string(param_info.param)};
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// --- Server-side encode read-after-write -------------------------------------

class SeRaceTest : public FiveNodeClusterTest,
                   public ::testing::WithParamInterface<Design> {};

TEST_P(SeRaceTest, ImmediateReadAfterSeSetIsByteCorrect) {
  // The SE ack covers ingest only; fragments may still be in flight when
  // the very next read arrives. The stager + fallback must make the read
  // byte-correct anyway — for both decode sides.
  auto engine = make_engine(GetParam());
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const Bytes original = make_pattern(800'000, 42);  // long in-flight
      const Status s =
          co_await e->set("race", make_shared_bytes(Bytes(original)));
      EXPECT_TRUE(s.ok());
      // No quiesce: read immediately.
      const Result<Bytes> got = co_await e->get("race");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

INSTANTIATE_TEST_SUITE_P(
    SeDesigns, SeRaceTest,
    ::testing::Values(Design::kEraSeSd, Design::kEraSeCd),
    [](const ::testing::TestParamInfo<Design>& param_info) {
      std::string name{to_string(param_info.param)};
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

class SeFallbackTest : public FiveNodeClusterTest {};

TEST_F(SeFallbackTest, RacyCdReadFallsBackThenFragmentsTakeOver) {
  auto engine = make_engine(Design::kEraSeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes original = make_pattern(900'000, 7);
      (void)co_await e->set("racy", make_shared_bytes(Bytes(original)));
      const Result<Bytes> got = co_await e->get("racy");
      EXPECT_TRUE(got.ok());
      if (got.ok()) { EXPECT_EQ(*got, original); }
      // The immediate read raced the distribution and took the fallback.
      EXPECT_GE(e->stats().fallback_gets, 1u);
      const std::uint64_t fallbacks = e->stats().fallback_gets;
      // Once distribution settles, reads use fragments directly again.
      co_await cl->sim().delay(10 * units::kMillisecond);
      const Result<Bytes> later = co_await e->get("racy");
      EXPECT_TRUE(later.ok());
      if (later.ok()) { EXPECT_EQ(*later, original); }
      EXPECT_EQ(e->stats().fallback_gets, fallbacks);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(SeFallbackTest, StagingIsDroppedAfterDistribution) {
  auto engine = make_engine(Design::kEraSeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("staged",
                            make_shared_bytes(make_pattern(50'000, 9)));
      co_await cl->sim().delay(units::kMillisecond);
      // Exactly one fragment per server, no lingering full copy.
      for (std::size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(cl->server(s).store().items(), 1u) << "server " << s;
      }
      const std::size_t primary = cl->ring().slot_index("staged", 0);
      EXPECT_FALSE(cl->server(primary).store().get("staged").ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

}  // namespace
}  // namespace hpres::resilience
