// Repair coordinator: discovery via scan, fragment rebuild onto recovered
// servers, and restoration of full fault tolerance.
#include "resilience/repair.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class RepairTest : public FiveNodeClusterTest {
 protected:
  std::unique_ptr<RepairCoordinator> make_coordinator() {
    EngineContext ctx;
    ctx.sim = &cluster_.sim();
    ctx.client = &cluster_.client(0);
    ctx.ring = &cluster_.ring();
    ctx.membership = &cluster_.membership();
    ctx.server_nodes = &cluster_.server_nodes();
    ctx.materialize = true;
    return std::make_unique<RepairCoordinator>(ctx, codec_, cost_);
  }
};

TEST_F(RepairTest, DiscoverListsBaseKeysOfFragments) {
  auto engine = make_engine(Design::kEraCeCd);
  auto repair = make_coordinator();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, RepairCoordinator* rc) {
      (void)co_await e->set("alpha", make_shared_bytes(make_pattern(9000, 1)));
      (void)co_await e->set("beta", make_shared_bytes(make_pattern(9000, 2)));
      const auto keys = co_await rc->discover(0);
      EXPECT_TRUE(keys.ok());
      if (keys.ok()) {
        // Every server holds one fragment of each key (5 = k+m servers).
        EXPECT_EQ(keys->size(), 2u);
        EXPECT_NE(std::find(keys->begin(), keys->end(), "alpha"),
                  keys->end());
        EXPECT_NE(std::find(keys->begin(), keys->end(), "beta"),
                  keys->end());
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), repair.get());
}

TEST_F(RepairTest, DiscoverFromDeadServerFails) {
  auto repair = make_coordinator();
  cluster_.fail_server(2);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(RepairCoordinator* rc) {
      const auto keys = co_await rc->discover(2);
      EXPECT_EQ(keys.status().code(), StatusCode::kUnavailable);
    }
  };
  run_sim(cluster_.sim(), Body::run, repair.get());
}

TEST_F(RepairTest, RebuildsFragmentsOntoRecoveredServer) {
  auto engine = make_engine(Design::kEraCeCd);
  auto repair = make_coordinator();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, RepairCoordinator* rc,
                               cluster::Cluster* cl) {
      const Bytes original = make_pattern(60'000, 3);
      (void)co_await e->set("obj", make_shared_bytes(Bytes(original)));

      // Server dies, loses its fragment, and comes back empty.
      const std::size_t victim = cl->ring().slot_index("obj", 0);
      cl->fail_server(victim);
      // Simulate total state loss on the dead node.
      while (!cl->server(victim).store().keys().empty()) {
        cl->server(victim).store().erase(
            cl->server(victim).store().keys().front());
      }
      cl->recover_server(victim);
      EXPECT_EQ(cl->server(victim).store().items(), 0u);

      const Status s = co_await rc->repair_key("obj");
      EXPECT_TRUE(s.ok()) << s;
      EXPECT_EQ(rc->stats().fragments_rebuilt, 1u);
      EXPECT_EQ(cl->server(victim).store().items(), 1u);

      // The rebuilt fragment is byte-identical: kill two OTHER servers and
      // reconstruct through the rebuilt one.
      cl->fail_server(cl->ring().slot_index("obj", 1));
      cl->fail_server(cl->ring().slot_index("obj", 2));
      const Result<Bytes> got = co_await e->get("obj");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), repair.get(), &cluster_);
}

TEST_F(RepairTest, IntactKeyIsNoOp) {
  auto engine = make_engine(Design::kEraCeCd);
  auto repair = make_coordinator();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, RepairCoordinator* rc) {
      (void)co_await e->set("fine", make_shared_bytes(make_pattern(5000, 4)));
      const Status s = co_await rc->repair_key("fine");
      EXPECT_TRUE(s.ok());
      EXPECT_EQ(rc->stats().fragments_rebuilt, 0u);
      EXPECT_EQ(rc->stats().keys_repaired, 0u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), repair.get());
}

TEST_F(RepairTest, UnrepairableBeyondTolerance) {
  auto engine = make_engine(Design::kEraCeCd);
  auto repair = make_coordinator();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, RepairCoordinator* rc,
                               cluster::Cluster* cl) {
      (void)co_await e->set("doomed",
                            make_shared_bytes(make_pattern(5000, 5)));
      // Wipe three fragments (owners stay up, data gone): only 2 < k left.
      for (std::size_t slot = 0; slot < 3; ++slot) {
        const std::size_t owner = cl->ring().slot_index("doomed", slot);
        cl->server(owner).store().erase(kv::chunk_key("doomed", slot));
      }
      const Status s = co_await rc->repair_key("doomed");
      EXPECT_EQ(s.code(), StatusCode::kTooManyFailures);
      EXPECT_EQ(rc->stats().unrepairable_keys, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), repair.get(), &cluster_);
}

TEST_F(RepairTest, RepairAllCoversEveryAffectedKey) {
  auto engine = make_engine(Design::kEraCeCd);
  auto repair = make_coordinator();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, RepairCoordinator* rc,
                               cluster::Cluster* cl) {
      for (int i = 0; i < 10; ++i) {
        (void)co_await e->set("key" + std::to_string(i),
                              make_shared_bytes(make_pattern(4000, static_cast<std::uint64_t>(i))));
      }
      // Node 0 loses everything, then rejoins empty.
      cl->fail_server(0);
      while (!cl->server(0).store().keys().empty()) {
        cl->server(0).store().erase(cl->server(0).store().keys().front());
      }
      cl->recover_server(0);

      const Status s = co_await rc->repair_all();
      EXPECT_TRUE(s.ok()) << s;
      // Every key had a fragment on server 0 (5 servers, 5 fragments).
      EXPECT_EQ(rc->stats().fragments_rebuilt, 10u);
      EXPECT_EQ(cl->server(0).store().items(), 10u);
      // Degraded-free reads everywhere afterwards.
      for (int i = 0; i < 10; ++i) {
        const Result<Bytes> got =
            co_await e->get("key" + std::to_string(i));
        EXPECT_TRUE(got.ok());
        if (got.ok()) {
          EXPECT_EQ(*got, make_pattern(4000, static_cast<std::uint64_t>(i)));
        }
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), repair.get(), &cluster_);
}

}  // namespace
}  // namespace hpres::resilience
