// Hybrid replication/erasure engine: routing by size, read fallback,
// deletes across both schemes, failure tolerance.
#include "resilience/hybrid.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class HybridTest : public FiveNodeClusterTest {
 protected:
  static constexpr std::size_t kThreshold = 16 * 1024;

  std::unique_ptr<HybridEngine> make_hybrid() {
    EngineContext ctx;
    ctx.sim = &cluster_.sim();
    ctx.client = &cluster_.client(0);
    ctx.ring = &cluster_.ring();
    ctx.membership = &cluster_.membership();
    ctx.server_nodes = &cluster_.server_nodes();
    ctx.materialize = true;
    // rep_factor m+1 = 3 keeps tolerance uniform at 2 across schemes.
    return std::make_unique<HybridEngine>(ctx, codec_, cost_, 3, kThreshold);
  }
};

TEST_F(HybridTest, SmallValuesAreReplicated) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e, cluster::Cluster* cl) {
      (void)co_await e->set("small", make_shared_bytes(make_pattern(512, 1)));
      EXPECT_EQ(e->replication_stats().sets, 1u);
      EXPECT_EQ(e->erasure_stats().sets, 0u);
      // 3 full copies under the plain key, no fragments.
      std::size_t items = 0;
      for (std::size_t s = 0; s < 5; ++s) {
        items += cl->server(s).store().items();
      }
      EXPECT_EQ(items, 3u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(HybridTest, LargeValuesAreErasureCoded) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e, cluster::Cluster* cl) {
      (void)co_await e->set("large",
                            make_shared_bytes(make_pattern(64 * 1024, 2)));
      EXPECT_EQ(e->replication_stats().sets, 0u);
      EXPECT_EQ(e->erasure_stats().sets, 1u);
      std::size_t items = 0;
      for (std::size_t s = 0; s < 5; ++s) {
        items += cl->server(s).store().items();
      }
      EXPECT_EQ(items, 5u);  // k+m fragments
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(HybridTest, GetsRouteTransparently) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e) {
      const Bytes small = make_pattern(1000, 3);
      const Bytes large = make_pattern(100'000, 4);
      (void)co_await e->set("s", make_shared_bytes(Bytes(small)));
      (void)co_await e->set("l", make_shared_bytes(Bytes(large)));
      const Result<Bytes> got_s = co_await e->get("s");
      const Result<Bytes> got_l = co_await e->get("l");
      EXPECT_TRUE(got_s.ok());
      EXPECT_TRUE(got_l.ok());
      if (got_s.ok()) { EXPECT_EQ(*got_s, small); }
      if (got_l.ok()) { EXPECT_EQ(*got_l, large); }
      // The large read probed replication (miss), then hit erasure.
      EXPECT_EQ(e->erasure_stats().gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(HybridTest, MissingKeyIsNotFoundAfterBothProbes) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e) {
      const Result<Bytes> got = co_await e->get("ghost");
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(HybridTest, SurvivesTwoFailuresOnBothPaths) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e, cluster::Cluster* cl) {
      const Bytes small = make_pattern(1000, 5);
      const Bytes large = make_pattern(80'000, 6);
      (void)co_await e->set("s", make_shared_bytes(Bytes(small)));
      (void)co_await e->set("l", make_shared_bytes(Bytes(large)));
      cl->fail_server(cl->ring().slot_index("l", 0));
      cl->fail_server(cl->ring().slot_index("l", 1));
      const Result<Bytes> got_l = co_await e->get("l");
      EXPECT_TRUE(got_l.ok()) << got_l.status();
      if (got_l.ok()) { EXPECT_EQ(*got_l, large); }
      const Result<Bytes> got_s = co_await e->get("s");
      // Small value survives iff <= 2 of ITS replicas died; with 2 dead
      // servers of 5 and F=3 consecutive placement, at least one replica
      // remains.
      EXPECT_TRUE(got_s.ok()) << got_s.status();
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(HybridTest, DeleteClearsWhicheverSchemeHolds) {
  auto engine = make_hybrid();
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* e, cluster::Cluster* cl) {
      (void)co_await e->set("s", make_shared_bytes(make_pattern(100, 7)));
      (void)co_await e->set("l",
                            make_shared_bytes(make_pattern(50'000, 8)));
      EXPECT_TRUE((co_await e->del("s")).ok());
      EXPECT_TRUE((co_await e->del("l")).ok());
      std::size_t items = 0;
      for (std::size_t s = 0; s < 5; ++s) {
        items += cl->server(s).store().items();
      }
      EXPECT_EQ(items, 0u);
      EXPECT_EQ((co_await e->del("never")).code(), StatusCode::kNotFound);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(HybridTest, MemoryFootprintBeatsPureReplicationForMixedSizes) {
  auto hybrid = make_hybrid();
  auto rep = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(HybridEngine* h, Engine* r,
                               cluster::Cluster* cl) {
      // Mixed workload: a few small hot keys, many large objects.
      for (int i = 0; i < 4; ++i) {
        (void)co_await h->set("hs" + std::to_string(i),
                              make_shared_bytes(make_pattern(512, static_cast<std::uint64_t>(i))));
        (void)co_await h->set("hl" + std::to_string(i),
                              make_shared_bytes(make_pattern(90'000, static_cast<std::uint64_t>(i))));
      }
      const std::uint64_t hybrid_bytes = cl->total_bytes_used();
      for (int i = 0; i < 4; ++i) {
        (void)co_await r->set("rs" + std::to_string(i),
                              make_shared_bytes(make_pattern(512, static_cast<std::uint64_t>(i))));
        (void)co_await r->set("rl" + std::to_string(i),
                              make_shared_bytes(make_pattern(90'000, static_cast<std::uint64_t>(i))));
      }
      const std::uint64_t rep_bytes = cl->total_bytes_used() - hybrid_bytes;
      EXPECT_LT(static_cast<double>(hybrid_bytes),
                0.7 * static_cast<double>(rep_bytes));
    }
  };
  run_sim(cluster_.sim(), Body::run, hybrid.get(), rep.get(), &cluster_);
}

}  // namespace
}  // namespace hpres::resilience
