// Hedged (late-binding) reads and load-aware read-set selection: the
// tracker's score ordering, the codec's preference-preserving read-set
// selection, a hedge racing a crashed primary, suppression under buffer
// pressure, and the correctness property that hedging never changes the
// bytes a Get returns.
#include <gtest/gtest.h>

#include "resilience/load_tracker.h"
#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

TEST(NodeLoadTracker, OrdersSlotsByOwnerScore) {
  NodeLoadTracker tracker(5);
  // Server 2 is clearly loaded, server 4 clearly idle, the rest unknown.
  tracker.observe_rtt(2, 400'000, 12);
  tracker.observe_rtt(4, 5'000, 0);
  EXPECT_GT(tracker.score(2), tracker.score(4));
  EXPECT_DOUBLE_EQ(tracker.score(0), 1.0);  // unknown servers are neutral

  const std::vector<std::size_t> slots{0, 1, 2, 3, 4};
  const std::vector<std::size_t> owners{0, 1, 2, 3, 4};  // slot i on server i
  const std::vector<std::size_t> order =
      tracker.order_slots(slots, owners, /*randomize_ties=*/false);
  // Unknown servers (neutral 1.0) rank ahead of anything with an observed
  // RTT; the loaded server sorts dead last; equal scores keep slot order
  // (stable sort).
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 3, 4, 2}));
  // The unrandomized ordering is a pure function of the observations.
  EXPECT_EQ(order, tracker.order_slots(slots, owners, false));
}

TEST(NodeLoadTracker, EwmaTracksQueueMovement) {
  NodeLoadTracker tracker(3);
  tracker.observe(1, 10);
  const double warm = tracker.queue_estimate(1);
  EXPECT_DOUBLE_EQ(warm, 10.0);  // first sample seeds the EWMA directly
  for (int i = 0; i < 20; ++i) tracker.observe(1, 0);
  EXPECT_LT(tracker.queue_estimate(1), 1.0);  // drains toward the new level
  EXPECT_EQ(tracker.total_samples(), 21u);
}

TEST(SelectReadSetOrdered, PreservesPreferenceOrder) {
  ec::RsVandermondeCodec codec(3, 2);
  std::vector<bool> available(5, true);
  const std::vector<std::size_t> preference{4, 2, 1, 0, 3};
  const Result<std::vector<std::size_t>> chosen =
      codec.select_read_set_ordered(available, preference);
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  // RS-Vandermonde is MDS: the first k of the preference decode, and the
  // result keeps the caller's order (cheapest server first), unsorted.
  EXPECT_EQ(*chosen, (std::vector<std::size_t>{4, 2, 1}));

  available[4] = false;
  const Result<std::vector<std::size_t>> without4 =
      codec.select_read_set_ordered(available, preference);
  ASSERT_TRUE(without4.ok());
  EXPECT_EQ(*without4, (std::vector<std::size_t>{2, 1, 0}));

  available.assign(5, false);
  available[0] = available[3] = true;  // only 2 of k=3 left
  EXPECT_FALSE(codec.select_read_set_ordered(available, preference).ok());
}

TEST(SelectReadSetOrdered, PartialPreferenceFallsBackToNaturalOrder) {
  ec::RsVandermondeCodec codec(3, 2);
  const std::vector<bool> available(5, true);
  // A preference mentioning fewer than k slots is topped up in slot order.
  const Result<std::vector<std::size_t>> chosen =
      codec.select_read_set_ordered(available, std::vector<std::size_t>{3});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(*chosen, (std::vector<std::size_t>{3, 0, 1}));
}

class HedgeTest : public FiveNodeClusterTest {};

// The flagship scenario: a primary fragment owner crashes after the Get's
// fetches are sent but before it answers. Without a deadline policy that
// fetch would hang forever; the hedge completes the op (late binding: the
// first k arrivals win) and the straggler is cancelled — no failover loop,
// no degraded accounting, correct bytes.
TEST_F(HedgeTest, HedgeWinsOverCrashedPrimary) {
  HedgeParams hedge;
  hedge.delta = 1;  // hedge fires with the primaries (no delay)
  auto engine = make_engine(Design::kEraCeCd, 3, {}, hedge);
  cluster_.start();
  struct Body {
    static sim::Task<void> killer(sim::Simulator* sim, kv::Server* victim) {
      // 5 us: after the Get posts its fetches (~1 us of issue CPU), far
      // before an ~85 KB fragment response can arrive. The server dies
      // silently — membership keeps routing to it (gray crash).
      co_await sim->delay(5'000);
      victim->fail();
    }
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes original = make_pattern(256 * 1024, 11);
      const Status s =
          co_await e->set("hedged", make_shared_bytes(Bytes(original)));
      EXPECT_TRUE(s.ok()) << s;
      const std::size_t owner0 = cl->ring().slot_index("hedged", 0);
      cl->sim().spawn(killer(&cl->sim(), &cl->server(owner0)));
      const Result<Bytes> got = co_await e->get("hedged");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
      const EngineStats& st = e->stats();
      EXPECT_EQ(st.hedges_fired, 1u);
      EXPECT_EQ(st.hedged_gets, 1u);
      EXPECT_EQ(st.hedge_wins, 1u);
      // The hedge resolved the op before anything looked like a failure:
      // no failover round, no degraded read, and the hung straggler was
      // cancelled rather than retried.
      EXPECT_EQ(st.failover_fetches, 0u);
      EXPECT_EQ(st.degraded_gets, 0u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

// Hedges borrow spare ARPE buffers opportunistically: with the pool sized
// so the admitted op holds the only buffer, every hedge is suppressed and
// the Get completes exactly like an unhedged one.
TEST_F(HedgeTest, HedgeSuppressedWhenBufferPoolTight) {
  HedgeParams hedge;
  hedge.delta = 2;
  ArpeParams arpe;
  arpe.buffers = 1;
  auto engine = make_engine(Design::kEraCeCd, 3, arpe, hedge);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const Bytes original = make_pattern(60'000, 4);
      (void)co_await e->set("tight", make_shared_bytes(Bytes(original)));
      // iget: ARPE admission holds the pool's only buffer for the op's
      // lifetime, so the hedge finds nothing to borrow. (A blocking get()
      // bypasses the window and would leave the pool free.)
      sim::Future<Result<Bytes>> fut = e->iget("tight");
      co_await e->wait_all();
      const Result<Bytes>* got = fut.try_get();
      EXPECT_NE(got, nullptr);
      if (got != nullptr) {
        EXPECT_TRUE(got->ok()) << got->status();
        if (got->ok()) { EXPECT_EQ(got->value(), original); }
      }
      EXPECT_EQ(e->stats().hedges_fired, 0u);
      EXPECT_GE(e->stats().hedges_suppressed, 1u);
      EXPECT_GE(e->arpe().stats().hedge_denials, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

// Property: hedging and load-aware selection change WHICH fragments are
// fetched and WHEN, never the bytes returned. The same keys read through
// an unhedged engine and through an aggressive hedged one (delta=2,
// load-aware, zero delay) must agree exactly, across sizes that exercise
// padding, sub-fragment tails and multi-MTU fragments.
TEST_F(HedgeTest, HedgingNeverChangesReturnedValues) {
  auto plain = make_engine(Design::kEraCeCd);
  HedgeParams hedge;
  hedge.delta = 2;
  hedge.load_aware = true;
  auto hedged = make_engine(Design::kEraCeCd, 3, {}, hedge);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* p, Engine* h) {
      constexpr std::size_t kKeys = 24;
      for (std::size_t i = 0; i < kKeys; ++i) {
        const kv::Key key = "prop-" + std::to_string(i);
        const Bytes original = make_pattern(1'000 + i * 4'337, i + 1);
        const Status s =
            co_await p->set(key, make_shared_bytes(Bytes(original)));
        EXPECT_TRUE(s.ok()) << key << ": " << s;
      }
      for (std::size_t i = 0; i < kKeys; ++i) {
        const kv::Key key = "prop-" + std::to_string(i);
        const Result<Bytes> via_plain = co_await p->get(key);
        const Result<Bytes> via_hedged = co_await h->get(key);
        EXPECT_TRUE(via_plain.ok()) << key << ": " << via_plain.status();
        EXPECT_TRUE(via_hedged.ok()) << key << ": " << via_hedged.status();
        if (via_plain.ok() && via_hedged.ok()) {
          EXPECT_EQ(*via_hedged, *via_plain) << key;
        }
      }
      // The hedged engine really took the hedged path throughout.
      EXPECT_EQ(h->stats().hedged_gets, kKeys);
      EXPECT_EQ(h->stats().get_failures, 0u);
    }
  };
  run_sim(cluster_.sim(), Body::run, plain.get(), hedged.get());
}

// Degraded reads stay correct on the hedged path: with a fragment owner
// down before the Get starts, selection avoids it, the hedge rides along,
// and reconstruction returns the original bytes.
TEST_F(HedgeTest, HedgedDegradedReadReconstructs) {
  HedgeParams hedge;
  hedge.delta = 1;
  hedge.load_aware = true;
  auto engine = make_engine(Design::kEraCeCd, 3, {}, hedge);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes original = make_pattern(96'000, 7);
      (void)co_await e->set("degr", make_shared_bytes(Bytes(original)));
      cl->fail_server(cl->ring().slot_index("degr", 1));
      const Result<Bytes> got = co_await e->get("degr");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
      EXPECT_GE(e->stats().degraded_gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

}  // namespace
}  // namespace hpres::resilience
