// Batched small-object write path: stripe packing + group commit.
// Byte-exactness of packed round trips (healthy and degraded), overwrite /
// delete races against an open stripe, capacity vs timer sealing, and the
// off-by-default guarantee that threshold 0 never touches the new path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class PackingTest : public FiveNodeClusterTest {};

/// Deterministic per-key test value; sizes straddle the pack threshold.
Bytes value_for(std::size_t i, std::size_t size) {
  return make_pattern(size, i * 7 + 1);
}

TEST_F(PackingTest, MixedPackedAndPerKeySetsRoundTripByteIdentical) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const std::vector<std::size_t> sizes{0,   1,    17,  100, 300,
                                           511, 512,  900, 2048, 20'000};
      std::vector<Bytes> originals;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        originals.push_back(value_for(i, sizes[i]));
        (void)e->iset("key" + std::to_string(i),
                      make_shared_bytes(Bytes(originals[i])));
      }
      co_await e->wait_all();
      // 6 values sit below the threshold; the rest took the per-key path.
      EXPECT_EQ(e->stats().packed_sets, 6u);
      EXPECT_GE(e->stats().stripes_sealed, 1u);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const Result<Bytes> got = co_await e->get("key" + std::to_string(i));
        EXPECT_TRUE(got.ok()) << "key" << i << ": " << got.status();
        if (got.ok()) { EXPECT_EQ(*got, originals[i]) << "key" << i; }
      }
      EXPECT_GE(e->stats().packed_get_hits, 6u);
      EXPECT_EQ(e->stats().packed_degraded_gets, 0u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(PackingTest, PackedGetsSurviveMServerFailures) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      constexpr std::size_t kKeys = 24;
      std::vector<Bytes> originals;
      for (std::size_t i = 0; i < kKeys; ++i) {
        originals.push_back(value_for(i, 40 + i * 13));
        (void)e->iset("deg" + std::to_string(i),
                      make_shared_bytes(Bytes(originals[i])));
      }
      co_await e->wait_all();
      co_await cl->sim().delay(units::kMillisecond);  // quiesce
      // m = 2 failures: exactly k fragment owners and at least one locator
      // directory owner survive for every stripe.
      cl->fail_server(0);
      cl->fail_server(3);
      for (std::size_t i = 0; i < kKeys; ++i) {
        const Result<Bytes> got = co_await e->get("deg" + std::to_string(i));
        EXPECT_TRUE(got.ok()) << "deg" << i << ": " << got.status();
        if (got.ok()) { EXPECT_EQ(*got, originals[i]) << "deg" << i; }
      }
      EXPECT_GE(e->stats().packed_degraded_gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(PackingTest, OverwriteInsideOpenStripeReturnsNewestValue) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const Bytes v1 = value_for(1, 100);
      const Bytes v2 = value_for(2, 200);
      // Both land before the stripe seals: the stale record's locator
      // install must be skipped at commit (staging pointer filter).
      (void)e->iset("hot", make_shared_bytes(Bytes(v1)));
      (void)e->iset("hot", make_shared_bytes(Bytes(v2)));
      co_await e->wait_all();
      const Result<Bytes> got = co_await e->get("hot");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, v2); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(PackingTest, LargeOverwriteUnlinksThePackedLocator) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const Bytes small = value_for(3, 64);
      const Bytes big = value_for(4, 9'000);  // above threshold: per-key
      const Status s1 = co_await e->set("grow", make_shared_bytes(Bytes(small)));
      EXPECT_TRUE(s1.ok()) << s1;
      const Status s2 = co_await e->set("grow", make_shared_bytes(Bytes(big)));
      EXPECT_TRUE(s2.ok()) << s2;
      const Result<Bytes> got = co_await e->get("grow");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, big); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(PackingTest, DeleteRacingAnOpenStripeStaysDeleted) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)e->iset("gone", make_shared_bytes(value_for(5, 80)));
      // Let the set be admitted and appended, but not committed (the 50 us
      // group-commit timer has not fired): the delete races the open stripe.
      co_await cl->sim().delay(1'000);
      (void)co_await e->del("gone");
      co_await e->wait_all();
      const Result<Bytes> got = co_await e->get("gone");
      EXPECT_FALSE(got.ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(PackingTest, ImmediateReadAfterPackedWriteHitsStaging) {
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes v = value_for(6, 120);
      (void)e->iset("fresh", make_shared_bytes(Bytes(v)));
      // The record is appended but its stripe has not committed (timer at
      // 50 us): the read must be served from the staging map, byte-exact.
      co_await cl->sim().delay(1'000);
      const Result<Bytes> got = co_await e->get("fresh");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, v); }
      EXPECT_GE(e->stats().staged_reads, 1u);
      co_await e->wait_all();
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(PackingTest, CapacitySealRollsOverToFreshStripe) {
  // Tiny stripes force capacity seals well before the 50 us timer.
  auto engine = make_engine(
      Design::kEraCeCd, 3, {}, {},
      PackParams{.pack_threshold = 512, .stripe_capacity = 256});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      std::vector<Bytes> originals;
      for (std::size_t i = 0; i < 10; ++i) {
        originals.push_back(value_for(i, 100));
        (void)e->iset("roll" + std::to_string(i),
                      make_shared_bytes(Bytes(originals[i])));
      }
      co_await e->wait_all();
      EXPECT_GE(e->stats().stripes_sealed, 4u);
      EXPECT_GT(e->stats().stripes_sealed, e->stats().stripes_timer_sealed);
      for (std::size_t i = 0; i < 10; ++i) {
        const Result<Bytes> got =
            co_await e->get("roll" + std::to_string(i));
        EXPECT_TRUE(got.ok()) << "roll" << i << ": " << got.status();
        if (got.ok()) { EXPECT_EQ(*got, originals[i]) << "roll" << i; }
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(PackingTest, ThresholdZeroNeverTouchesThePackedPath) {
  // PackParams{} defaults to threshold 0: every Set must take the legacy
  // per-key path and no locator directory entry may appear anywhere — the
  // structural half of the determinism-suite byte-identical gate.
  auto engine = make_engine(Design::kEraCeCd, 3, {}, {}, PackParams{});
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      for (std::size_t i = 0; i < 8; ++i) {
        const Status s = co_await e->set(
            "off" + std::to_string(i), make_shared_bytes(value_for(i, 64)));
        EXPECT_TRUE(s.ok()) << s;
      }
      EXPECT_EQ(e->stats().packed_sets, 0u);
      EXPECT_EQ(e->stats().stripes_sealed, 0u);
      for (std::size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(cl->server(s).stripe_index_entries(), 0u);
        EXPECT_EQ(cl->server(s).stripe_index_bytes(), 0u);
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(PackingTest, NonCeCdModesIgnorePacking) {
  auto engine = make_engine(Design::kEraSeSd, 3, {}, {},
                            PackParams{.pack_threshold = 512});
  EXPECT_FALSE(
      static_cast<ErasureEngine*>(engine.get())->packing_active());
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      const Bytes v = value_for(7, 64);
      const Status s = co_await e->set("se", make_shared_bytes(Bytes(v)));
      EXPECT_TRUE(s.ok()) << s;
      EXPECT_EQ(e->stats().packed_sets, 0u);
      const Result<Bytes> got = co_await e->get("se");
      EXPECT_TRUE(got.ok());
      if (got.ok()) { EXPECT_EQ(*got, v); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

}  // namespace
}  // namespace hpres::resilience
