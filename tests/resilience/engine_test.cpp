// Resilience engines end-to-end: data integrity under every design, failure
// tolerance, latency orderings predicted by the paper's model, and the
// non-blocking API path.
#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class EngineTest : public FiveNodeClusterTest {};

sim::Task<void> set_get_roundtrip(Engine* engine) {
  // Mixed sizes, including the paper's KV range endpoints.
  for (const std::size_t size :
       {std::size_t{512}, std::size_t{16 * 1024}, std::size_t{1024 * 1024}}) {
    const Bytes value = make_pattern(size, size);
    const kv::Key key = "key" + std::to_string(size);
    const Status s = co_await engine->set(key, make_shared_bytes(Bytes(value)));
    EXPECT_TRUE(s.ok()) << s;
    const Result<Bytes> got = co_await engine->get(key);
    EXPECT_TRUE(got.ok()) << got.status();
    if (got.ok()) { EXPECT_EQ(*got, value); }
  }
}

// --- Data integrity across all designs ---------------------------------------

class DesignRoundTrip
    : public FiveNodeClusterTest,
      public ::testing::WithParamInterface<Design> {};

TEST_P(DesignRoundTrip, SetGetPreservesBytes) {
  auto engine = make_engine(GetParam());
  cluster_.start();
  run_sim(cluster_.sim(), set_get_roundtrip, engine.get());
}

TEST_P(DesignRoundTrip, SurvivesMaxTolerableFailures) {
  auto engine = make_engine(GetParam());
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes v = make_pattern(48'000, 5);
      const Status s = co_await e->set("obj", make_shared_bytes(Bytes(v)));
      EXPECT_TRUE(s.ok());
      // Controlled-failure model: server-side-encode designs ack before
      // fragment distribution finishes; quiesce before injecting failures.
      co_await cl->sim().delay(units::kMillisecond);
      // Fail as many servers as the design tolerates, starting with the
      // key's primary (worst case for reads).
      const std::size_t tolerance = e->fault_tolerance();
      for (std::size_t i = 0; i < tolerance; ++i) {
        cl->fail_server(cl->ring().slot_index("obj", i));
      }
      const Result<Bytes> got = co_await e->get("obj");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, v); }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignRoundTrip,
    ::testing::Values(Design::kNoRep, Design::kSyncRep, Design::kAsyncRep,
                      Design::kEraCeCd, Design::kEraSeSd, Design::kEraSeCd,
                      Design::kEraCeSd),
    [](const ::testing::TestParamInfo<Design>& param_info) {
      std::string name{to_string(param_info.param)};
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// --- Replication specifics ----------------------------------------------------

TEST_F(EngineTest, SyncRepStoresFactorCopies) {
  auto engine = make_engine(Design::kSyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("k", make_shared_bytes(make_pattern(1000, 1)));
      std::size_t copies = 0;
      for (std::size_t s = 0; s < 5; ++s) {
        copies += cl->server(s).store().items();
      }
      EXPECT_EQ(copies, 3u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(EngineTest, AsyncSetFasterThanSyncForLargeValues) {
  auto sync_engine = make_engine(Design::kSyncRep, 3);
  auto async_engine = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* sync_e, Engine* async_e,
                               sim::Simulator* sim) {
      const auto v = make_shared_bytes(make_pattern(256 * 1024, 2));
      const SimTime t0 = sim->now();
      (void)co_await sync_e->set("a", v);
      const SimDur sync_time = sim->now() - t0;
      const SimTime t1 = sim->now();
      (void)co_await async_e->set("b", v);
      const SimDur async_time = sim->now() - t1;
      // Equation 2 vs Equation 6: ~3x response-wait collapses to ~1x.
      EXPECT_LT(async_time, sync_time * 2 / 3);
    }
  };
  run_sim(cluster_.sim(), Body::run, sync_engine.get(), async_engine.get(),
          &cluster_.sim());
}

TEST_F(EngineTest, ReplicationGetFallsBackAfterPrimaryFailure) {
  auto engine = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes v = make_pattern(4096, 3);
      (void)co_await e->set("k", make_shared_bytes(Bytes(v)));
      cl->fail_server(cl->ring().slot_index("k", 0));
      const Result<Bytes> got = co_await e->get("k");
      EXPECT_TRUE(got.ok());
      if (got.ok()) { EXPECT_EQ(*got, v); }
      EXPECT_EQ(e->stats().degraded_gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(EngineTest, AllReplicasDownIsUnavailable) {
  auto engine = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("k", make_shared_bytes(make_pattern(100, 4)));
      for (std::size_t i = 0; i < 3; ++i) {
        cl->fail_server(cl->ring().slot_index("k", i));
      }
      const Result<Bytes> got = co_await e->get("k");
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

// --- Erasure specifics ---------------------------------------------------------

TEST_F(EngineTest, EraCeCdDistributesOneFragmentPerServer) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("obj",
                            make_shared_bytes(make_pattern(30'000, 5)));
      for (std::size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(cl->server(s).store().items(), 1u) << "server " << s;
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(EngineTest, ErasureUsesLessMemoryThanReplication) {
  // The paper's core storage-efficiency claim: RS(3,2) stores 5/3 D vs 3 D.
  auto era = make_engine(Design::kEraCeCd);
  auto rep = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* era_e, Engine* rep_e,
                               cluster::Cluster* cl) {
      constexpr std::size_t kSize = 90'000;
      (void)co_await era_e->set("era-obj",
                                make_shared_bytes(make_pattern(kSize, 6)));
      const std::uint64_t after_era = cl->total_bytes_used();
      (void)co_await rep_e->set("rep-obj",
                                make_shared_bytes(make_pattern(kSize, 7)));
      const std::uint64_t rep_bytes = cl->total_bytes_used() - after_era;
      // 5/3 vs 3 copies: replication should cost ~1.8x more memory.
      EXPECT_GT(static_cast<double>(rep_bytes),
                1.6 * static_cast<double>(after_era));
    }
  };
  run_sim(cluster_.sim(), Body::run, era.get(), rep.get(), &cluster_);
}

TEST_F(EngineTest, EraGetBeyondToleranceFails) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("obj",
                            make_shared_bytes(make_pattern(10'000, 8)));
      for (std::size_t i = 0; i < 3; ++i) {
        cl->fail_server(cl->ring().slot_index("obj", i));
      }
      const Result<Bytes> got = co_await e->get("obj");
      EXPECT_EQ(got.status().code(), StatusCode::kTooManyFailures);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(EngineTest, DegradedEraGetChargesDecodeCompute) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      (void)co_await e->set("obj",
                            make_shared_bytes(make_pattern(64'000, 9)));
      // Healthy get: no decode compute recorded.
      (void)co_await e->get("obj");
      EXPECT_EQ(e->stats().get_phases.compute_ns, 0);
      // Degraded get: decode compute shows up.
      cl->fail_server(cl->ring().slot_index("obj", 0));
      (void)co_await e->get("obj");
      EXPECT_GT(e->stats().get_phases.compute_ns, 0);
      EXPECT_EQ(e->stats().degraded_gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(EngineTest, EncodeComputeRecordedOnClientForCeNotSe) {
  auto ce = make_engine(Design::kEraCeCd);
  auto se = make_engine(Design::kEraSeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* ce_e, Engine* se_e) {
      const auto v = make_shared_bytes(make_pattern(128 * 1024, 10));
      (void)co_await ce_e->set("a", v);
      (void)co_await se_e->set("b", v);
      EXPECT_GT(ce_e->stats().set_phases.compute_ns, 0);
      EXPECT_EQ(se_e->stats().set_phases.compute_ns, 0);
    }
  };
  run_sim(cluster_.sim(), Body::run, ce.get(), se.get());
}

TEST_F(EngineTest, EraCeCdSetFasterThanSyncRepForLargeValues) {
  // Paper Figure 8(a): Era-CE-CD improves over Sync-Rep by 1.6-2.8x.
  auto era = make_engine(Design::kEraCeCd);
  auto sync_rep = make_engine(Design::kSyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* era_e, Engine* sync_e,
                               sim::Simulator* sim) {
      const auto v = make_shared_bytes(make_pattern(512 * 1024, 11));
      const SimTime t0 = sim->now();
      (void)co_await sync_e->set("a", v);
      const SimDur sync_time = sim->now() - t0;
      const SimTime t1 = sim->now();
      (void)co_await era_e->set("b", v);
      const SimDur era_time = sim->now() - t1;
      EXPECT_LT(era_time, sync_time);
    }
  };
  run_sim(cluster_.sim(), Body::run, era.get(), sync_rep.get(),
          &cluster_.sim());
}

// --- Non-blocking API -----------------------------------------------------------

TEST_F(EngineTest, NonBlockingOpsCompleteViaWaitAll) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      std::vector<sim::Future<Status>> sets;
      for (int i = 0; i < 16; ++i) {
        sets.push_back(e->iset("k" + std::to_string(i),
                               make_shared_bytes(make_pattern(8192, static_cast<std::uint64_t>(i)))));
      }
      co_await e->wait_all();
      for (const auto& f : sets) {
        EXPECT_TRUE(f.ready());
        EXPECT_TRUE(f.try_get()->ok());
      }
      // And read them back through iget.
      std::vector<sim::Future<Result<Bytes>>> gets;
      for (int i = 0; i < 16; ++i) {
        gets.push_back(e->iget("k" + std::to_string(i)));
      }
      co_await e->wait_all();
      for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(gets[static_cast<std::size_t>(i)].ready());
        const auto* r = gets[static_cast<std::size_t>(i)].try_get();
        EXPECT_TRUE(r->ok());
        if (r->ok()) {
          EXPECT_EQ(r->value(),
                    make_pattern(8192, static_cast<std::uint64_t>(i)));
        }
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(EngineTest, PipeliningBeatsSequentialBlockingOps) {
  // The ARPE's raison d'etre: N ops through the window finish well before
  // N back-to-back blocking ops.
  auto pipelined = make_engine(Design::kEraCeCd);
  auto blocking = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* pipe_e, Engine* block_e,
                               sim::Simulator* sim) {
      constexpr int kOps = 32;
      const auto v = make_shared_bytes(make_pattern(64 * 1024, 12));
      const SimTime t0 = sim->now();
      for (int i = 0; i < kOps; ++i) {
        (void)block_e->iset("blk" + std::to_string(i), v);
        co_await block_e->wait_all();  // serialize: degenerate window use
      }
      const SimDur blocking_time = sim->now() - t0;
      const SimTime t1 = sim->now();
      for (int i = 0; i < kOps; ++i) {
        (void)pipe_e->iset("pip" + std::to_string(i), v);
      }
      co_await pipe_e->wait_all();
      const SimDur pipelined_time = sim->now() - t1;
      // With the SIMD-refit cost model the encode slice is thin, so the
      // overlap win at 64 KB is network-bound at ~1.8x (abl_window agrees);
      // require a solid 1.5x, not the 2x the scalar-cost era delivered.
      EXPECT_LT(pipelined_time, blocking_time * 2 / 3);
    }
  };
  run_sim(cluster_.sim(), Body::run, pipelined.get(), blocking.get(),
          &cluster_.sim());
}

TEST_F(EngineTest, StatsCountOperationsAndLatencies) {
  auto engine = make_engine(Design::kAsyncRep, 3);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      for (int i = 0; i < 5; ++i) {
        (void)co_await e->set("k" + std::to_string(i),
                              make_shared_bytes(make_pattern(1024, static_cast<std::uint64_t>(i))));
      }
      (void)co_await e->get("k0");
      (void)co_await e->get("missing");
      EXPECT_EQ(e->stats().sets, 5u);
      EXPECT_EQ(e->stats().gets, 2u);
      EXPECT_EQ(e->stats().get_failures, 1u);
      EXPECT_EQ(e->stats().set_latency.count(), 5u);
      EXPECT_GT(e->stats().set_latency.mean(), 0.0);
      EXPECT_GT(e->stats().set_phases.wait_ns, 0);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

}  // namespace
}  // namespace hpres::resilience
