// Online failure handling: degraded reads that fail over to alternate
// fragments, deletes issued while an owner is down (no resurrection, orphan
// accounting), and RPC deadline/retry exhaustion on a lossy fabric.
#include <gtest/gtest.h>

#include "resilience/repair.h"
#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class FailureHandlingTest : public FiveNodeClusterTest {};

// Regression for the fragment-miss hang/failure: a Get whose chosen read
// set hits a live server that lost its fragment (crash before the Set,
// restart after) must re-select and succeed — any k live fragments suffice.
TEST_F(FailureHandlingTest, GetFailsOverWhenLiveServerMissesFragment) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const std::size_t owner0 = cl->ring().slot_index("phoenix", 0);
      cl->fail_server(owner0);
      const Bytes original = make_pattern(30'000, 9);
      // Set skips the down owner: 4 of 5 fragments stored (>= k = 3).
      const Status s =
          co_await e->set("phoenix", make_shared_bytes(Bytes(original)));
      EXPECT_TRUE(s.ok()) << s;
      // The owner returns but never received its fragment.
      cl->recover_server(owner0);
      const Result<Bytes> got = co_await e->get("phoenix");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
      // The miss on the live server was worked around, not fatal: the slot
      // was dropped from the read set and an alternate fragment fetched.
      EXPECT_GE(e->stats().failover_fetches, 1u);
      EXPECT_GE(e->stats().degraded_gets, 1u);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

TEST_F(FailureHandlingTest, GetWorksWithExactlyKFragmentsLeft) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const Bytes original = make_pattern(24'000, 3);
      (void)co_await e->set("exactk", make_shared_bytes(Bytes(original)));
      // Kill two owners (the m = 2 tolerance): exactly k = 3 remain.
      cl->fail_server(cl->ring().slot_index("exactk", 0));
      cl->fail_server(cl->ring().slot_index("exactk", 3));
      const Result<Bytes> got = co_await e->get("exactk");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
      EXPECT_GE(e->stats().degraded_gets, 1u);
      // One more failure exceeds the tolerance: the Get must fail cleanly,
      // not hang.
      cl->fail_server(cl->ring().slot_index("exactk", 1));
      const Result<Bytes> gone = co_await e->get("exactk");
      EXPECT_FALSE(gone.ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

// Delete while one fragment owner is down: the live fragments and any
// staged full copy must go; the unreachable fragment becomes an orphan
// that repair counts and purges instead of resurrecting the key.
TEST_F(FailureHandlingTest, DeleteUnderFailureLeavesNoResurrection) {
  auto engine = make_engine(Design::kEraCeCd);
  EngineContext rctx;
  rctx.sim = &cluster_.sim();
  rctx.client = &cluster_.client(0);
  rctx.ring = &cluster_.ring();
  rctx.membership = &cluster_.membership();
  rctx.server_nodes = &cluster_.server_nodes();
  rctx.materialize = true;
  RepairCoordinator repair(rctx, codec_, cost_);
  repair.set_purge_orphans(true);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl,
                               RepairCoordinator* repair) {
      const Bytes original = make_pattern(20'000, 5);
      (void)co_await e->set("victim", make_shared_bytes(Bytes(original)));
      const std::size_t owner0 = cl->ring().slot_index("victim", 0);
      cl->fail_server(owner0);
      const Status del = co_await e->del("victim");
      EXPECT_TRUE(del.ok()) << del;
      // The down owner still holds its fragment — an orphan out of reach.
      EXPECT_TRUE(
          cl->server(owner0).store().get(kv::chunk_key("victim", 0)).ok());
      cl->recover_server(owner0);
      // One stale fragment cannot resurrect the value: k are required.
      const Result<Bytes> got = co_await e->get("victim");
      EXPECT_FALSE(got.ok());

      // Repair recognises the remnant as unrepairable, counts it, and
      // purges the orphan fragment when asked to.
      (void)co_await repair->repair_all();
      EXPECT_GE(repair->stats().orphaned_keys, 1u);
      EXPECT_GE(repair->stats().orphan_fragments_purged, 1u);
      EXPECT_FALSE(
          cl->server(owner0).store().get(kv::chunk_key("victim", 0)).ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_, &repair);
}

// Server-side encode stages the full value under the plain key on the
// first *live* owner. A delete issued while slot 0's owner is down must
// route the staged-copy delete to that same first live owner — before the
// fix it was only ever sent to slot 0, leaving the staged copy behind.
TEST_F(FailureHandlingTest, DeleteReachesStagedCopyWhenSlotZeroOwnerDown) {
  auto engine = make_engine(Design::kEraSeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      const std::size_t owner0 = cl->ring().slot_index("staged", 0);
      cl->fail_server(owner0);
      // The stager is now the first live owner (slot 1's).
      const Status s = co_await e->set(
          "staged", make_shared_bytes(make_pattern(400'000, 8)));
      EXPECT_TRUE(s.ok()) << s;
      // Delete races the background distribution: the staged full copy is
      // still on the stager and must be removed by this delete.
      const Status del = co_await e->del("staged");
      EXPECT_TRUE(del.ok()) << del;
      for (std::size_t srv = 0; srv < 5; ++srv) {
        if (srv == owner0) continue;
        EXPECT_FALSE(cl->server(srv).store().get("staged").ok())
            << "staged full copy survived the delete on server " << srv;
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

// A fully lossy fabric with both endpoints nominally up: without deadlines
// every call would hang forever on the silently-dropping fabric. With a
// policy armed the operation must resolve as kTimeout after exhausting
// every retry, with the attempts accounted.
TEST_F(FailureHandlingTest, TimeoutAfterRetryExhaustionOnLossyFabric) {
  kv::RpcPolicy policy;
  policy.timeout_ns = 50'000;  // 50 us per attempt
  policy.max_retries = 2;      // 3 attempts total
  policy.backoff_ns = 10'000;
  cluster_.set_rpc_policy(policy);
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e, cluster::Cluster* cl) {
      cl->fabric().set_loss(1.0, 0xfee1);
      const Result<Bytes> got = co_await e->get("unreachable");
      EXPECT_FALSE(got.ok());
      EXPECT_EQ(got.status().code(), StatusCode::kTimeout);
      // k = 3 fragment fetches, each timing out 3 times.
      const kv::RpcStats& rpc = cl->client(0).rpc_stats();
      EXPECT_EQ(rpc.timeouts, 9u);
      EXPECT_EQ(rpc.retries, 6u);
      cl->fabric().set_loss(0.0);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get(), &cluster_);
}

// Without an armed policy the guarded paths must behave exactly like the
// legacy unguarded ones (no timer events, no overhead) — a Set against a
// healthy cluster is byte-identical either way.
TEST_F(FailureHandlingTest, DefaultPolicyMatchesUnguardedTiming) {
  auto run_with = [&](bool armed) {
    ec::RsVandermondeCodec codec(3, 2);
    const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
    cluster::Cluster cl(
        cluster::ClusterConfig{.num_servers = 5, .num_clients = 1});
    cl.enable_server_ec(codec, cost, false);
    if (armed) cl.set_rpc_policy(kv::RpcPolicy{});  // defaults: disabled
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(0);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    auto e = resilience::make_engine(resilience::Design::kEraCeCd, ctx, 3,
                                     &codec, cost);
    cl.start();
    struct Ops {
      static sim::Task<void> run(resilience::Engine* eng) {
        (void)co_await eng->set("tick", zero_bytes(64 * 1024));
        (void)co_await eng->get("tick");
      }
    };
    run_sim(cl.sim(), Ops::run, e.get());
    return std::pair{cl.sim().now(), cl.sim().events_executed()};
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

}  // namespace
}  // namespace hpres::resilience
