// Engine factory: design names, construction, fault tolerance reporting.
#include "resilience/factory.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;

class FactoryTest : public FiveNodeClusterTest {};

TEST_F(FactoryTest, NamesMatchDesigns) {
  EXPECT_EQ(to_string(Design::kNoRep), "no-rep");
  EXPECT_EQ(to_string(Design::kSyncRep), "sync-rep");
  EXPECT_EQ(to_string(Design::kAsyncRep), "async-rep");
  EXPECT_EQ(to_string(Design::kEraCeCd), "era-ce-cd");
  EXPECT_EQ(to_string(Design::kEraSeSd), "era-se-sd");
  EXPECT_EQ(to_string(Design::kEraSeCd), "era-se-cd");
  EXPECT_EQ(to_string(Design::kEraCeSd), "era-ce-sd");
}

TEST_F(FactoryTest, IsErasureClassifier) {
  EXPECT_FALSE(is_erasure(Design::kNoRep));
  EXPECT_FALSE(is_erasure(Design::kSyncRep));
  EXPECT_FALSE(is_erasure(Design::kAsyncRep));
  EXPECT_TRUE(is_erasure(Design::kEraCeCd));
  EXPECT_TRUE(is_erasure(Design::kEraSeSd));
  EXPECT_TRUE(is_erasure(Design::kEraSeCd));
  EXPECT_TRUE(is_erasure(Design::kEraCeSd));
}

TEST_F(FactoryTest, EnginesReportTheirNames) {
  for (const Design d :
       {Design::kSyncRep, Design::kAsyncRep, Design::kEraCeCd,
        Design::kEraSeSd, Design::kEraSeCd, Design::kEraCeSd}) {
    const auto engine = make_engine(d);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), to_string(d)) << to_string(d);
  }
  // kNoRep maps onto single-copy async replication.
  EXPECT_EQ(make_engine(Design::kNoRep)->name(), "async-rep");
}

TEST_F(FactoryTest, FaultToleranceByDesign) {
  EXPECT_EQ(make_engine(Design::kNoRep)->fault_tolerance(), 0u);
  EXPECT_EQ(make_engine(Design::kSyncRep, 3)->fault_tolerance(), 2u);
  EXPECT_EQ(make_engine(Design::kAsyncRep, 2)->fault_tolerance(), 1u);
  EXPECT_EQ(make_engine(Design::kEraCeCd)->fault_tolerance(), 2u);  // m = 2
}

TEST_F(FactoryTest, EraModePredicates) {
  EXPECT_TRUE(client_encodes(EraMode::kCeCd));
  EXPECT_TRUE(client_encodes(EraMode::kCeSd));
  EXPECT_FALSE(client_encodes(EraMode::kSeCd));
  EXPECT_FALSE(client_encodes(EraMode::kSeSd));
  EXPECT_TRUE(client_decodes(EraMode::kCeCd));
  EXPECT_TRUE(client_decodes(EraMode::kSeCd));
  EXPECT_FALSE(client_decodes(EraMode::kCeSd));
  EXPECT_FALSE(client_decodes(EraMode::kSeSd));
}

}  // namespace
}  // namespace hpres::resilience
