// Bulk mset/mget semantics and end-to-end LRC-backed engine operation.
#include <gtest/gtest.h>

#include "ec/lrc.h"
#include "testing/fixtures.h"

namespace hpres::resilience {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

class BulkTest : public FiveNodeClusterTest {};

TEST_F(BulkTest, MsetMgetRoundTrip) {
  auto engine = make_engine(Design::kEraCeCd);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      std::vector<kv::Key> keys;
      std::vector<SharedBytes> values;
      for (int i = 0; i < 12; ++i) {
        keys.push_back("bulk" + std::to_string(i));
        values.push_back(make_shared_bytes(
            make_pattern(4096 + 512 * static_cast<std::size_t>(i),
                         static_cast<std::uint64_t>(i))));
      }
      const std::vector<Status> sets =
          co_await e->mset(std::vector<kv::Key>(keys), std::move(values));
      EXPECT_EQ(sets.size(), 12u);
      for (const auto& s : sets) EXPECT_TRUE(s.ok());

      const std::vector<Result<Bytes>> gets = co_await e->mget(keys);
      EXPECT_EQ(gets.size(), 12u);
      for (int i = 0; i < 12; ++i) {
        const auto& r = gets[static_cast<std::size_t>(i)];
        EXPECT_TRUE(r.ok());
        if (r.ok()) {
          EXPECT_EQ(r.value(),
                    make_pattern(4096 + 512 * static_cast<std::size_t>(i),
                                 static_cast<std::uint64_t>(i)));
        }
      }
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(BulkTest, MgetReportsPerKeyMisses) {
  auto engine = make_engine(Design::kAsyncRep);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* e) {
      (void)co_await e->set("exists", make_shared_bytes(make_pattern(100, 1)));
      std::vector<kv::Key> keys{"exists", "missing"};
      const auto results = co_await e->mget(std::move(keys));
      EXPECT_EQ(results.size(), 2u);
      EXPECT_TRUE(results[0].ok());
      EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
    }
  };
  run_sim(cluster_.sim(), Body::run, engine.get());
}

TEST_F(BulkTest, BulkBatchOverlapsTransfers) {
  // The Section III-B claim: a batch of B sets through the window finishes
  // well before B sequential blocking sets.
  auto batched = make_engine(Design::kAsyncRep);
  auto serial = make_engine(Design::kAsyncRep);
  cluster_.start();
  struct Body {
    static sim::Task<void> run(Engine* batch_e, Engine* serial_e,
                               sim::Simulator* sim) {
      constexpr int kOps = 16;
      const auto v = make_shared_bytes(make_pattern(128 * 1024, 7));
      const SimTime t0 = sim->now();
      for (int i = 0; i < kOps; ++i) {
        (void)co_await serial_e->set("s" + std::to_string(i), v);
      }
      const SimDur serial_time = sim->now() - t0;
      std::vector<kv::Key> keys;
      std::vector<SharedBytes> values;
      for (int i = 0; i < kOps; ++i) {
        keys.push_back("b" + std::to_string(i));
        values.push_back(v);
      }
      const SimTime t1 = sim->now();
      (void)co_await batch_e->mset(std::move(keys), std::move(values));
      const SimDur batch_time = sim->now() - t1;
      // The batch is client-NIC bound (3 copies x 128 KB per op); serial
      // ops additionally pay per-op round trips and server processing.
      EXPECT_LT(batch_time, serial_time * 3 / 4);
    }
  };
  run_sim(cluster_.sim(), Body::run, batched.get(), serial.get(),
          &cluster_.sim());
}

// --- LRC-backed engine ---------------------------------------------------------

TEST(LrcEngine, EndToEndOnTenServers) {
  ec::LrcCodec lrc(6, 2, 2);  // n = 10
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 6, 4);
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = 10, .num_clients = 1});
  cl.enable_server_ec(lrc, cost, true);
  resilience::EngineContext ctx;
  ctx.sim = &cl.sim();
  ctx.client = &cl.client(0);
  ctx.ring = &cl.ring();
  ctx.membership = &cl.membership();
  ctx.server_nodes = &cl.server_nodes();
  ctx.materialize = true;
  ErasureEngine engine(ctx, lrc, cost, EraMode::kCeCd);
  cl.start();
  struct Body {
    static sim::Task<void> run(ErasureEngine* e, cluster::Cluster* cl2) {
      const Bytes original = make_pattern(120'000, 11);
      const Status s =
          co_await e->set("lrc-obj", make_shared_bytes(Bytes(original)));
      EXPECT_TRUE(s.ok()) << s;
      // Fragments land one per server.
      std::size_t items = 0;
      for (std::size_t i = 0; i < 10; ++i) {
        items += cl2->server(i).store().items();
      }
      EXPECT_EQ(items, 10u);
      // Healthy read.
      Result<Bytes> got = co_await e->get("lrc-obj");
      EXPECT_TRUE(got.ok());
      if (got.ok()) { EXPECT_EQ(*got, original); }
      // g + 1 = 3 failures: still reconstructs.
      for (std::size_t slot = 0; slot < 3; ++slot) {
        cl2->fail_server(cl2->ring().slot_index("lrc-obj", slot));
      }
      got = co_await e->get("lrc-obj");
      EXPECT_TRUE(got.ok()) << got.status();
      if (got.ok()) { EXPECT_EQ(*got, original); }
    }
  };
  run_sim(cl.sim(), Body::run, &engine, &cl);
}

}  // namespace
}  // namespace hpres::resilience
