// Wire-protocol helpers: payload sizing, chunk-key round trips, verb names.
#include "kv/protocol.h"

#include <gtest/gtest.h>

namespace hpres::kv {
namespace {

TEST(Protocol, ChunkKeyRoundTrips) {
  for (std::size_t slot = 0; slot < 14; ++slot) {
    const Key ck = chunk_key("some/base:key", slot);
    const auto parsed = parse_chunk_key(ck);
    ASSERT_TRUE(parsed.has_value()) << "slot " << slot;
    EXPECT_EQ(parsed->base, "some/base:key");
    EXPECT_EQ(parsed->slot, slot);
  }
}

TEST(Protocol, ChunkKeysAreDistinctPerSlot) {
  EXPECT_NE(chunk_key("k", 0), chunk_key("k", 1));
  EXPECT_NE(chunk_key("k", 0), chunk_key("q", 0));
}

TEST(Protocol, PlainKeysDoNotParseAsChunks) {
  EXPECT_FALSE(parse_chunk_key("ordinary-key").has_value());
  EXPECT_FALSE(parse_chunk_key("").has_value());
  EXPECT_FALSE(parse_chunk_key("x").has_value());
}

TEST(Protocol, ChunkKeysNeverCollideWithPrintableUserKeys) {
  // The separator is \x01, unreachable from printable benchmark keys.
  const Key user = "user000000000001";
  EXPECT_FALSE(parse_chunk_key(user).has_value());
  EXPECT_NE(chunk_key(user, 0), user);
}

TEST(Protocol, RequestPayloadCountsKeyAndValue) {
  Request r;
  r.key = "0123456789";  // 10 bytes
  EXPECT_EQ(payload_bytes(r), 10u + 16u);
  r.value = make_shared_bytes(Bytes(100));
  EXPECT_EQ(payload_bytes(r), 10u + 100u + 16u);
}

TEST(Protocol, ResponsePayloadCountsValueAndKeys) {
  Response r;
  EXPECT_EQ(payload_bytes(r), 16u);
  r.value = make_shared_bytes(Bytes(50));
  EXPECT_EQ(payload_bytes(r), 66u);
  r.keys = {"abc", "defgh"};  // 3+4 + 5+4
  EXPECT_EQ(payload_bytes(r), 66u + 16u);
}

TEST(Protocol, VerbNamesAreStable) {
  EXPECT_EQ(to_string(Verb::kSet), "SET");
  EXPECT_EQ(to_string(Verb::kGet), "GET");
  EXPECT_EQ(to_string(Verb::kDelete), "DELETE");
  EXPECT_EQ(to_string(Verb::kSetEncode), "SET_ENCODE");
  EXPECT_EQ(to_string(Verb::kGetDecode), "GET_DECODE");
  EXPECT_EQ(to_string(Verb::kScan), "SCAN");
}

TEST(Protocol, ChunkInfoEquality) {
  const ChunkInfo a{100, 2, 3, 2};
  ChunkInfo b = a;
  EXPECT_EQ(a, b);
  b.chunk_index = 3;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hpres::kv
