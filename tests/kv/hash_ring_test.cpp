// Consistent hashing and chunk placement properties.
#include "kv/hash_ring.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace hpres::kv {
namespace {

TEST(HashRing, PrimaryIsStable) {
  const HashRing ring(5);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(ring.primary_index(key), ring.primary_index(key));
  }
}

TEST(HashRing, PrimaryInRange) {
  const HashRing ring(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(ring.primary_index("k" + std::to_string(i)), 5u);
  }
}

TEST(HashRing, DistributionIsRoughlyBalanced) {
  const HashRing ring(5, /*vnodes=*/256);
  std::vector<int> counts(5, 0);
  constexpr int kKeys = 20'000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.primary_index("user:" + std::to_string(i))];
  }
  for (const int c : counts) {
    // Each server should own 20% +- 8% absolute of keys.
    EXPECT_NEAR(c, kKeys / 5, kKeys * 8 / 100);
  }
}

TEST(HashRing, SlotPlacementIsListSuccessors) {
  const HashRing ring(5);
  const std::string key = "abc";
  const std::size_t p = ring.primary_index(key);
  for (std::size_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(ring.slot_index(key, slot), (p + slot) % 5);
  }
}

TEST(HashRing, NSlotsCoverNDistinctServers) {
  // The paper places K+M fragments on K+M unique nodes.
  const HashRing ring(5);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "obj" + std::to_string(i);
    std::set<std::size_t> owners;
    for (std::size_t slot = 0; slot < 5; ++slot) {
      owners.insert(ring.slot_index(key, slot));
    }
    EXPECT_EQ(owners.size(), 5u);
  }
}

TEST(HashRing, DifferentSeedsGiveDifferentLayouts) {
  const HashRing a(5, 128, 1);
  const HashRing b(5, 128, 2);
  int diff = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (a.primary_index(key) != b.primary_index(key)) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(HashRing, SingleServerOwnsEverything) {
  const HashRing ring(1);
  EXPECT_EQ(ring.primary_index("anything"), 0u);
  EXPECT_EQ(ring.slot_index("anything", 3), 0u);
}

TEST(HashRing, HashAvoidsTrivialCollisions) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 10'000; ++i) {
    hashes.insert(HashRing::hash_key("key-" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10'000u);
}

// --- Elastic placement: epochs, active sets, moved-range diffs ------------

TEST(HashRingEpoch, GrownRingMatchesFixedMembershipRing) {
  // A partial ring grown to the full provisioned set places every key and
  // slot exactly like the classic constructor — migration converges to the
  // same layout a fresh cluster of that size would have.
  const HashRing fixed(5);
  HashRing grown(5, 128, 0x5eed, /*initial_active=*/3);
  EXPECT_EQ(grown.num_active(), 3u);
  EXPECT_EQ(grown.epoch(), 1u);
  grown.add_server(3);
  grown.add_server(4);
  EXPECT_EQ(grown.num_active(), 5u);
  EXPECT_EQ(grown.epoch(), 3u);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(grown.primary_index(key), fixed.primary_index(key));
    for (std::size_t slot = 0; slot < 5; ++slot) {
      EXPECT_EQ(grown.slot_index(key, slot), fixed.slot_index(key, slot));
    }
  }
}

TEST(HashRingEpoch, PartialRingOnlyUsesActiveServers) {
  const HashRing ring(6, 128, 0x5eed, /*initial_active=*/4);
  EXPECT_TRUE(ring.is_active(0));
  EXPECT_TRUE(ring.is_active(3));
  EXPECT_FALSE(ring.is_active(4));
  EXPECT_FALSE(ring.is_active(5));
  EXPECT_EQ(ring.num_servers(), 6u);  // provisioned space is unchanged
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (std::size_t slot = 0; slot < 4; ++slot) {
      EXPECT_LT(ring.slot_index(key, slot), 4u);
    }
  }
}

TEST(HashRingEpoch, JoinMovesKeysOnlyToTheJoiner) {
  // Consistent-hashing minimality: after a join, a key either keeps its
  // primary or moves to the joining server — never between two incumbents.
  HashRing before(6, 128, 0x5eed, /*initial_active=*/4);
  HashRing after = before;
  after.add_server(4);
  const auto ranges = HashRing::moved_ranges(before, after);
  EXPECT_FALSE(ranges.empty());
  for (const auto& r : ranges) {
    EXPECT_NE(r.from, 4u);
    EXPECT_EQ(r.to, 4u);
  }
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t was = before.primary_index(key);
    const std::size_t now = after.primary_index(key);
    if (now != was) {
      EXPECT_EQ(now, 4u);
    }
    // The range diff is exact: a key moved iff some range covers its hash.
    EXPECT_EQ(now != was,
              HashRing::any_covers(ranges, HashRing::hash_key(key)));
  }
  // Roughly 1/5 of the circle should move to the fifth active server.
  EXPECT_NEAR(HashRing::moved_fraction(ranges), 0.2, 0.1);
}

TEST(HashRingEpoch, LeaveSpillsKeysOnlyFromTheLeaver) {
  HashRing before(6, 128, 0x5eed, /*initial_active=*/5);
  HashRing after = before;
  after.remove_server(2);
  for (const auto& r : HashRing::moved_ranges(before, after)) {
    EXPECT_EQ(r.from, 2u);
    EXPECT_NE(r.to, 2u);
  }
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (before.primary_index(key) != 2u) {
      EXPECT_EQ(after.primary_index(key), before.primary_index(key));
    } else {
      EXPECT_NE(after.primary_index(key), 2u);
    }
  }
}

TEST(HashRingEpoch, AddThenRemoveRoundTripsPlacement) {
  const HashRing original(6, 128, 0x5eed, /*initial_active=*/4);
  HashRing ring = original;
  ring.add_server(5);
  ring.remove_server(5);
  EXPECT_EQ(ring.epoch(), 3u);  // epochs only move forward
  EXPECT_TRUE(HashRing::moved_ranges(original, ring).empty());
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (std::size_t slot = 0; slot < 4; ++slot) {
      EXPECT_EQ(ring.slot_index(key, slot), original.slot_index(key, slot));
    }
  }
}

TEST(HashRingEpoch, UnmovedPrimariesKeepOwnersWithinOldUnionJoiner) {
  // For a key whose primary did not move, the joiner merely splices into
  // the successor walk: the new owner set is drawn from the old owners
  // plus the joiner, so at most one fragment of such a key migrates.
  HashRing before(6, 128, 0x5eed, /*initial_active=*/5);
  HashRing after = before;
  after.add_server(5);
  int checked = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (after.primary_index(key) != before.primary_index(key)) continue;
    ++checked;
    std::set<std::size_t> old_owners;
    for (std::size_t slot = 0; slot < 4; ++slot) {
      old_owners.insert(before.slot_index(key, slot));
    }
    old_owners.insert(5);
    for (std::size_t slot = 0; slot < 4; ++slot) {
      EXPECT_TRUE(old_owners.count(after.slot_index(key, slot)) == 1)
          << "key " << key << " slot " << slot;
    }
  }
  EXPECT_GT(checked, 300);  // most keys keep their primary after one join
}

TEST(HashRingEpoch, MovedRangesCoverMutuallyExclusiveArcs) {
  HashRing before(8, 128, 0x5eed, /*initial_active=*/6);
  HashRing after = before;
  after.add_server(6);
  const auto ranges = HashRing::moved_ranges(before, after);
  // Arcs are disjoint: no hash may be covered twice (the migration pass
  // would otherwise move a key twice).
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    int covered = 0;
    for (const auto& r : ranges) {
      if (r.covers(ranges[i].end)) ++covered;
    }
    EXPECT_EQ(covered, 1) << "arc " << i;
  }
  EXPECT_GT(HashRing::moved_fraction(ranges), 0.0);
  EXPECT_LT(HashRing::moved_fraction(ranges), 0.5);
}

}  // namespace
}  // namespace hpres::kv
