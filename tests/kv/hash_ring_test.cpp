// Consistent hashing and chunk placement properties.
#include "kv/hash_ring.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace hpres::kv {
namespace {

TEST(HashRing, PrimaryIsStable) {
  const HashRing ring(5);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(ring.primary_index(key), ring.primary_index(key));
  }
}

TEST(HashRing, PrimaryInRange) {
  const HashRing ring(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(ring.primary_index("k" + std::to_string(i)), 5u);
  }
}

TEST(HashRing, DistributionIsRoughlyBalanced) {
  const HashRing ring(5, /*vnodes=*/256);
  std::vector<int> counts(5, 0);
  constexpr int kKeys = 20'000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.primary_index("user:" + std::to_string(i))];
  }
  for (const int c : counts) {
    // Each server should own 20% +- 8% absolute of keys.
    EXPECT_NEAR(c, kKeys / 5, kKeys * 8 / 100);
  }
}

TEST(HashRing, SlotPlacementIsListSuccessors) {
  const HashRing ring(5);
  const std::string key = "abc";
  const std::size_t p = ring.primary_index(key);
  for (std::size_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(ring.slot_index(key, slot), (p + slot) % 5);
  }
}

TEST(HashRing, NSlotsCoverNDistinctServers) {
  // The paper places K+M fragments on K+M unique nodes.
  const HashRing ring(5);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "obj" + std::to_string(i);
    std::set<std::size_t> owners;
    for (std::size_t slot = 0; slot < 5; ++slot) {
      owners.insert(ring.slot_index(key, slot));
    }
    EXPECT_EQ(owners.size(), 5u);
  }
}

TEST(HashRing, DifferentSeedsGiveDifferentLayouts) {
  const HashRing a(5, 128, 1);
  const HashRing b(5, 128, 2);
  int diff = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (a.primary_index(key) != b.primary_index(key)) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(HashRing, SingleServerOwnsEverything) {
  const HashRing ring(1);
  EXPECT_EQ(ring.primary_index("anything"), 0u);
  EXPECT_EQ(ring.slot_index("anything", 3), 0u);
}

TEST(HashRing, HashAvoidsTrivialCollisions) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 10'000; ++i) {
    hashes.insert(HashRing::hash_key("key-" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10'000u);
}

}  // namespace
}  // namespace hpres::kv
