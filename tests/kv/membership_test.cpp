#include "kv/membership.h"

#include <gtest/gtest.h>

namespace hpres::kv {
namespace {

TEST(Membership, AllUpInitially) {
  const Membership m(5);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.alive(), 5u);
  EXPECT_TRUE(m.all_up());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(m.up(i));
}

TEST(Membership, FailAndRecover) {
  Membership m(3);
  m.set_up(1, false);
  EXPECT_FALSE(m.up(1));
  EXPECT_EQ(m.alive(), 2u);
  EXPECT_FALSE(m.all_up());
  m.set_up(1, true);
  EXPECT_TRUE(m.all_up());
}

TEST(Membership, EpochBumpsOnChangeOnly) {
  Membership m(2);
  const auto e0 = m.epoch();
  m.set_up(0, true);  // no change
  EXPECT_EQ(m.epoch(), e0);
  m.set_up(0, false);
  EXPECT_EQ(m.epoch(), e0 + 1);
  m.set_up(0, false);  // idempotent
  EXPECT_EQ(m.epoch(), e0 + 1);
  m.set_up(0, true);
  EXPECT_EQ(m.epoch(), e0 + 2);
}

TEST(Membership, CheckCostIsConfigurable) {
  const Membership fast(4, 500);
  const Membership slow(4, 9'000);
  EXPECT_EQ(fast.check_cost_ns(), 500);
  EXPECT_EQ(slow.check_cost_ns(), 9'000);
}

}  // namespace
}  // namespace hpres::kv
