// SSD-assisted hybrid store: demotion on memory pressure, promotion on
// access, stale-copy hygiene, loss accounting, and device-latency charging
// at the server.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/bytes.h"
#include "kv/store.h"

namespace hpres::kv {
namespace {

SharedBytes value_of(std::size_t size, std::uint64_t seed = 1) {
  return make_shared_bytes(make_pattern(size, seed));
}

std::uint64_t charge_for(std::size_t key_len, std::size_t value_len) {
  return key_len + value_len + StorageEngine::kItemOverhead;
}

TEST(SsdTier, DisabledByDefaultEvictionsLoseData) {
  StorageEngine store(2 * charge_for(1, 100));
  ASSERT_TRUE(store.set("a", value_of(100)).ok());
  ASSERT_TRUE(store.set("b", value_of(100)).ok());
  ASSERT_TRUE(store.set("c", value_of(100)).ok());
  EXPECT_FALSE(store.ssd_enabled());
  EXPECT_EQ(store.stats().evicted_bytes, 100u);
  EXPECT_FALSE(store.get("a").ok());
}

TEST(SsdTier, EvictionDemotesInsteadOfDropping) {
  StorageEngine store(2 * charge_for(1, 100));
  store.enable_ssd(SsdConfig{1 << 20});
  ASSERT_TRUE(store.set("a", value_of(100, 1)).ok());
  ASSERT_TRUE(store.set("b", value_of(100, 2)).ok());
  ASSERT_TRUE(store.set("c", value_of(100, 3)).ok());
  EXPECT_EQ(store.stats().demotions, 1u);
  EXPECT_EQ(store.stats().evicted_bytes, 0u);  // nothing lost
  EXPECT_GT(store.ssd_bytes_used(), 0u);
  // "a" still readable — from the SSD.
  const auto got = store.get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->from_ssd);
  EXPECT_EQ(*got->value, make_pattern(100, 1));
}

TEST(SsdTier, PromotionMovesBackToMemory) {
  StorageEngine store(2 * charge_for(1, 100));
  store.enable_ssd(SsdConfig{1 << 20});
  ASSERT_TRUE(store.set("a", value_of(100, 1)).ok());
  ASSERT_TRUE(store.set("b", value_of(100, 2)).ok());
  ASSERT_TRUE(store.set("c", value_of(100, 3)).ok());  // demotes "a"
  ASSERT_TRUE(store.get("a").ok());                    // promotes "a"
  EXPECT_EQ(store.stats().promotions, 1u);
  // Second read now hits memory.
  const auto again = store.get("a");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->from_ssd);
  // Promotion displaced the LRU memory item ("b") to SSD.
  EXPECT_EQ(store.stats().demotions, 2u);
  const auto b = store.get("b");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->from_ssd);
}

TEST(SsdTier, SsdOverflowIsRealLoss) {
  StorageEngine store(1 * charge_for(1, 100));
  store.enable_ssd(SsdConfig{2 * charge_for(1, 100)});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        store.set(std::string(1, static_cast<char>('a' + i)), value_of(100))
            .ok());
  }
  // 1 in memory + 2 on SSD survive; 2 lost from the SSD tail.
  EXPECT_GT(store.stats().evicted_bytes, 0u);
  EXPECT_LE(store.ssd_bytes_used(), store.ssd_capacity());
  int readable = 0;
  for (int i = 0; i < 5; ++i) {
    if (store.get(std::string(1, static_cast<char>('a' + i))).ok()) {
      ++readable;
    }
  }
  EXPECT_EQ(readable, 3);
}

TEST(SsdTier, OverwriteDropsStaleSsdCopy) {
  StorageEngine store(2 * charge_for(1, 100));
  store.enable_ssd(SsdConfig{1 << 20});
  ASSERT_TRUE(store.set("a", value_of(100, 1)).ok());
  ASSERT_TRUE(store.set("b", value_of(100, 2)).ok());
  ASSERT_TRUE(store.set("c", value_of(100, 3)).ok());  // "a" -> SSD
  ASSERT_TRUE(store.set("a", value_of(100, 9)).ok());  // fresh write
  // Evict the fresh "a" again, then read: must be the new content.
  ASSERT_TRUE(store.set("d", value_of(100, 4)).ok());
  ASSERT_TRUE(store.set("e", value_of(100, 5)).ok());
  const auto got = store.get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got->value, make_pattern(100, 9));
}

TEST(SsdTier, EraseReachesTheSsdTier) {
  StorageEngine store(2 * charge_for(1, 100));
  store.enable_ssd(SsdConfig{1 << 20});
  ASSERT_TRUE(store.set("a", value_of(100)).ok());
  ASSERT_TRUE(store.set("b", value_of(100)).ok());
  ASSERT_TRUE(store.set("c", value_of(100)).ok());  // "a" -> SSD
  EXPECT_TRUE(store.erase("a"));
  EXPECT_EQ(store.ssd_bytes_used(), 0u);
  EXPECT_FALSE(store.get("a").ok());
}

// --- Server-level latency charging --------------------------------------------

TEST(SsdTier, SsdHitsAreSlowerThanMemoryHits) {
  cluster::ClusterConfig cfg{.num_servers = 1, .num_clients = 1};
  cfg.server.memory_bytes = 2 * charge_for(2, 65536);
  cfg.server.ssd_bytes = 64ULL << 20;
  cluster::Cluster cl(cfg);
  cl.start();
  struct Body {
    static sim::Task<void> run(cluster::Cluster* cl) {
      auto& client = cl->client(0);
      auto set = [](const Key& k, std::size_t size) {
        Request r;
        r.verb = Verb::kSet;
        r.key = k;
        r.value = make_shared_bytes(Bytes(size));
        return r;
      };
      (void)co_await client.invoke(0, set("s1", 65536));
      (void)co_await client.invoke(0, set("s2", 65536));
      (void)co_await client.invoke(0, set("s3", 65536));  // s1 -> SSD

      Request get_mem;
      get_mem.verb = Verb::kGet;
      get_mem.key = "s3";
      const SimTime t0 = cl->sim().now();
      (void)co_await client.invoke(0, std::move(get_mem));
      const SimDur mem_time = cl->sim().now() - t0;

      Request get_ssd;
      get_ssd.verb = Verb::kGet;
      get_ssd.key = "s1";
      const SimTime t1 = cl->sim().now();
      (void)co_await client.invoke(0, std::move(get_ssd));
      const SimDur ssd_time = cl->sim().now() - t1;

      // Device access latency + read rate dominate the SSD hit.
      EXPECT_GT(ssd_time, mem_time + 50'000);
    }
  };
  bool finished = false;
  struct Runner {
    static sim::Task<void> run(cluster::Cluster* cl, bool* done) {
      co_await Body::run(cl);
      *done = true;
    }
  };
  cl.sim().spawn(Runner::run(&cl, &finished));
  cl.run();
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace hpres::kv
