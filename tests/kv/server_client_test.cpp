// Client/server integration on a simulated cluster: plain verbs, server-
// side erasure offloads, failure behaviour, concurrency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ec/rs_vandermonde.h"
#include "common/bytes.h"

namespace hpres::kv {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;

/// Runs a coroutine test body inside a fresh cluster simulation.
template <typename Fn>
void run_on(Cluster& c, Fn body) {
  c.start();
  bool finished = false;
  struct Runner {
    static sim::Task<void> run(Fn fn, Cluster* cl, bool* done) {
      co_await fn(cl);
      *done = true;
    }
  };
  c.sim().spawn(Runner::run(std::move(body), &c, &finished));
  c.run();
  EXPECT_TRUE(finished) << "test body deadlocked in simulation";
}

Request make_set(Key key, std::size_t size, std::uint64_t seed = 1) {
  Request r;
  r.verb = Verb::kSet;
  r.key = std::move(key);
  r.value = make_shared_bytes(make_pattern(size, seed));
  return r;
}

Request make_get(Key key) {
  Request r;
  r.verb = Verb::kGet;
  r.key = std::move(key);
  return r;
}

TEST(ServerClient, SetThenGetRoundTrips) {
  Cluster c(ClusterConfig{.num_servers = 2, .num_clients = 1});
  run_on(c, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    const Response set = co_await client.invoke(0, make_set("k", 4096, 7));
    EXPECT_EQ(set.code, StatusCode::kOk);
    const Response get = co_await client.invoke(0, make_get("k"));
    EXPECT_EQ(get.code, StatusCode::kOk);
    EXPECT_TRUE(get.value != nullptr);
    if (get.value) { EXPECT_EQ(*get.value, make_pattern(4096, 7)); }
  });
}

TEST(ServerClient, GetMissingKeyIsNotFound) {
  Cluster c(ClusterConfig{.num_servers = 1, .num_clients = 1});
  run_on(c, [](Cluster* cl) -> sim::Task<void> {
    const Response r = co_await cl->client(0).invoke(0, make_get("nope"));
    EXPECT_EQ(r.code, StatusCode::kNotFound);
  });
}

TEST(ServerClient, DeleteRemovesKey) {
  Cluster c(ClusterConfig{.num_servers = 1, .num_clients = 1});
  run_on(c, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    (void)co_await client.invoke(0, make_set("k", 128));
    Request del;
    del.verb = Verb::kDelete;
    del.key = "k";
    EXPECT_EQ((co_await client.invoke(0, std::move(del))).code,
              StatusCode::kOk);
    EXPECT_EQ((co_await client.invoke(0, make_get("k"))).code,
              StatusCode::kNotFound);
  });
}

TEST(ServerClient, LargerValuesTakeLonger) {
  // Eq. 1: latency grows with D/B. Measure two blocking sets.
  Cluster c(ClusterConfig{.num_servers = 1, .num_clients = 1});
  run_on(c, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    const SimTime t0 = cl->sim().now();
    (void)co_await client.invoke(0, make_set("small", 512));
    const SimTime small = cl->sim().now() - t0;
    const SimTime t1 = cl->sim().now();
    (void)co_await client.invoke(0, make_set("big", 1024 * 1024));
    const SimTime big = cl->sim().now() - t1;
    EXPECT_GT(big, 4 * small);
  });
}

TEST(ServerClient, CallToFailedServerFailsFast) {
  Cluster c(ClusterConfig{.num_servers = 2, .num_clients = 1});
  c.fail_server(1);
  run_on(c, [](Cluster* cl) -> sim::Task<void> {
    const Response r = co_await cl->client(0).invoke(1, make_get("k"));
    EXPECT_EQ(r.code, StatusCode::kUnavailable);
  });
}

TEST(ServerClient, ConcurrentClientsAllComplete) {
  Cluster c(ClusterConfig{.num_servers = 3, .num_clients = 8});
  c.start();
  int completed = 0;
  struct Worker {
    static sim::Task<void> run(Cluster* cl, std::size_t idx, int* done) {
      auto& client = cl->client(idx);
      for (int op = 0; op < 20; ++op) {
        const Key key = "c" + std::to_string(idx) + "-" + std::to_string(op);
        const auto server =
            static_cast<net::NodeId>(cl->ring().primary_index(key));
        const Response s =
            co_await client.invoke(server, make_set(key, 2048, idx));
        EXPECT_EQ(s.code, StatusCode::kOk);
        const Response g = co_await client.invoke(server, make_get(key));
        EXPECT_EQ(g.code, StatusCode::kOk);
      }
      ++*done;
    }
  };
  for (std::size_t i = 0; i < 8; ++i) {
    c.sim().spawn(Worker::run(&c, i, &completed));
  }
  c.run();
  EXPECT_EQ(completed, 8);
}

// --- Server-side erasure offloads -------------------------------------------

class ServerEcTest : public ::testing::Test {
 protected:
  ServerEcTest()
      : codec_(3, 2),
        cluster_(ClusterConfig{.num_servers = 5, .num_clients = 1}) {
    cluster_.enable_server_ec(
        codec_, ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2),
        /*materialize=*/true);
  }

  ec::RsVandermondeCodec codec_;
  Cluster cluster_;
};

TEST_F(ServerEcTest, SetEncodeDistributesFragmentsToAllServers) {
  run_on(cluster_, [](Cluster* cl) -> sim::Task<void> {
    Request req = make_set("obj", 30'000, 3);
    req.verb = Verb::kSetEncode;
    const auto primary =
        static_cast<net::NodeId>(cl->ring().primary_index("obj"));
    const Response r = co_await cl->client(0).invoke(primary, std::move(req));
    EXPECT_EQ(r.code, StatusCode::kOk);
    // The ack covers ingest; distribution continues on the server ARPE.
    // Let the cluster quiesce before inspecting stores.
    co_await cl->sim().delay(units::kMillisecond);
    // Every server holds exactly one fragment.
    for (std::size_t s = 0; s < 5; ++s) {
      EXPECT_EQ(cl->server(s).store().items(), 1u) << "server " << s;
    }
  });
}

TEST_F(ServerEcTest, GetDecodeReturnsOriginalValue) {
  run_on(cluster_, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    const auto primary =
        static_cast<net::NodeId>(cl->ring().primary_index("obj"));
    Request set = make_set("obj", 50'000, 9);
    set.verb = Verb::kSetEncode;
    (void)co_await client.invoke(primary, std::move(set));

    Request get;
    get.verb = Verb::kGetDecode;
    get.key = "obj";
    const Response r = co_await client.invoke(primary, std::move(get));
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_TRUE(r.value != nullptr);
    if (r.value) { EXPECT_EQ(*r.value, make_pattern(50'000, 9)); }
  });
}

TEST_F(ServerEcTest, GetDecodeSurvivesTwoFailures) {
  run_on(cluster_, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    const std::size_t primary_idx = cl->ring().primary_index("obj");
    Request set = make_set("obj", 64'000, 11);
    set.verb = Verb::kSetEncode;
    (void)co_await client.invoke(static_cast<net::NodeId>(primary_idx),
                                 std::move(set));
    // Controlled-failure model: quiesce (let background fragment
    // distribution finish) before injecting failures.
    co_await cl->sim().delay(units::kMillisecond);

    // Fail two *data-fragment* owners (slots 0 and 1). The surviving
    // servers must reconstruct.
    const std::size_t dead1 = cl->ring().slot_index("obj", 0);
    const std::size_t dead2 = cl->ring().slot_index("obj", 1);
    cl->fail_server(dead1);
    cl->fail_server(dead2);

    // Send the decode-get to a live server.
    std::size_t target = cl->ring().slot_index("obj", 2);
    Request get;
    get.verb = Verb::kGetDecode;
    get.key = "obj";
    const Response r = co_await client.invoke(
        static_cast<net::NodeId>(target), std::move(get));
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_TRUE(r.value != nullptr);
    if (r.value) { EXPECT_EQ(*r.value, make_pattern(64'000, 11)); }
  });
}

TEST_F(ServerEcTest, GetDecodeFailsBeyondTolerance) {
  run_on(cluster_, [](Cluster* cl) -> sim::Task<void> {
    auto& client = cl->client(0);
    const std::size_t primary_idx = cl->ring().primary_index("obj");
    Request set = make_set("obj", 10'000, 13);
    set.verb = Verb::kSetEncode;
    (void)co_await client.invoke(static_cast<net::NodeId>(primary_idx),
                                 std::move(set));
    co_await cl->sim().delay(units::kMillisecond);

    // Kill three of five servers: only 2 < k = 3 fragments survive.
    std::vector<std::size_t> dead;
    for (std::size_t slot = 0; slot < 3; ++slot) {
      dead.push_back(cl->ring().slot_index("obj", slot));
    }
    for (const auto d : dead) cl->fail_server(d);

    const std::size_t target = cl->ring().slot_index("obj", 3);
    Request get;
    get.verb = Verb::kGetDecode;
    get.key = "obj";
    const Response r = co_await client.invoke(
        static_cast<net::NodeId>(target), std::move(get));
    EXPECT_EQ(r.code, StatusCode::kTooManyFailures);
  });
}

TEST_F(ServerEcTest, FragmentsCarryChunkMetadata) {
  run_on(cluster_, [](Cluster* cl) -> sim::Task<void> {
    Request set = make_set("obj", 12'345, 17);
    set.verb = Verb::kSetEncode;
    const auto primary =
        static_cast<net::NodeId>(cl->ring().primary_index("obj"));
    (void)co_await cl->client(0).invoke(primary, std::move(set));
    co_await cl->sim().delay(units::kMillisecond);
    const std::size_t owner2 = cl->ring().slot_index("obj", 2);
    auto got = cl->server(owner2).store().get(chunk_key("obj", 2));
    EXPECT_TRUE(got.ok());
    if (got.ok() && got->chunk.has_value()) {
      EXPECT_EQ(got->chunk->original_size, 12'345u);
      EXPECT_EQ(got->chunk->chunk_index, 2u);
      EXPECT_EQ(got->chunk->k, 3u);
      EXPECT_EQ(got->chunk->m, 2u);
    } else {
      ADD_FAILURE() << "fragment or metadata missing";
    }
  });
}

}  // namespace
}  // namespace hpres::kv
