// Storage engine: LRU eviction, capacity accounting, chunk metadata.
#include "kv/store.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace hpres::kv {
namespace {

SharedBytes value_of(std::size_t size, std::uint64_t seed = 1) {
  return make_shared_bytes(make_pattern(size, seed));
}

TEST(Store, SetGetRoundTrip) {
  StorageEngine store(1 << 20);
  const auto v = value_of(100);
  ASSERT_TRUE(store.set("k", v).ok());
  const auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value->size(), 100u);
  EXPECT_EQ(*got->value, *v);
}

TEST(Store, MissReturnsNotFound) {
  StorageEngine store(1 << 20);
  EXPECT_EQ(store.get("absent").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(Store, OverwriteReplacesAndReaccounts) {
  StorageEngine store(1 << 20);
  ASSERT_TRUE(store.set("k", value_of(100)).ok());
  const auto used_small = store.bytes_used();
  ASSERT_TRUE(store.set("k", value_of(5000)).ok());
  EXPECT_EQ(store.items(), 1u);
  EXPECT_EQ(store.bytes_used(), used_small - 100 + 5000);
  EXPECT_EQ(store.get("k")->value->size(), 5000u);
}

TEST(Store, EraseFreesSpace) {
  StorageEngine store(1 << 20);
  ASSERT_TRUE(store.set("k", value_of(100)).ok());
  EXPECT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.erase("k"));
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_EQ(store.items(), 0u);
}

TEST(Store, EvictsLeastRecentlyUsed) {
  // Capacity fits ~3 items of 1000B (plus overhead).
  StorageEngine store(3 * (1000 + 1 + StorageEngine::kItemOverhead));
  ASSERT_TRUE(store.set("a", value_of(1000)).ok());
  ASSERT_TRUE(store.set("b", value_of(1000)).ok());
  ASSERT_TRUE(store.set("c", value_of(1000)).ok());
  // Touch "a" so "b" becomes LRU.
  ASSERT_TRUE(store.get("a").ok());
  ASSERT_TRUE(store.set("d", value_of(1000)).ok());
  EXPECT_TRUE(store.get("a").ok());
  EXPECT_EQ(store.get("b").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.get("c").ok());
  EXPECT_TRUE(store.get("d").ok());
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().evicted_bytes, 1000u);
}

TEST(Store, RejectsItemLargerThanCapacity) {
  StorageEngine store(500);
  const Status s = store.set("big", value_of(1000));
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(store.stats().rejected_sets, 1u);
  EXPECT_EQ(store.items(), 0u);
}

TEST(Store, EvictionCascadeMakesRoomForLargeItem) {
  StorageEngine store(10'000);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.set("k" + std::to_string(i), value_of(1000)).ok());
  }
  // An 8000B item forces several evictions but fits.
  ASSERT_TRUE(store.set("large", value_of(8000)).ok());
  EXPECT_TRUE(store.get("large").ok());
  EXPECT_LE(store.bytes_used(), store.capacity());
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(Store, ChunkMetadataRoundTrips) {
  StorageEngine store(1 << 20);
  const ChunkInfo info{123456, 2, 3, 2};
  ASSERT_TRUE(store.set("c", value_of(64), info).ok());
  const auto got = store.get("c");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->chunk.has_value());
  EXPECT_EQ(*got->chunk, info);
}

TEST(Store, StatsTrackHitsAndOps) {
  StorageEngine store(1 << 20);
  ASSERT_TRUE(store.set("k", value_of(10)).ok());
  (void)store.get("k");
  (void)store.get("k");
  (void)store.get("nope");
  EXPECT_EQ(store.stats().set_ops, 1u);
  EXPECT_EQ(store.stats().get_ops, 3u);
  EXPECT_EQ(store.stats().hits, 2u);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(Store, ValueSharingAvoidsCopies) {
  StorageEngine store(1 << 20);
  const auto v = value_of(100);
  ASSERT_TRUE(store.set("k", v).ok());
  const auto got = store.get("k");
  EXPECT_EQ(got->value.get(), v.get());  // same buffer, not a copy
}

}  // namespace
}  // namespace hpres::kv
