// Distribution properties of the workload generators.
#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace hpres::workload {
namespace {

TEST(Uniform, CoversRangeEvenly) {
  UniformGenerator gen(100);
  Xoshiro256 rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t v = gen.next(rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*lo, 700);
  EXPECT_LT(*hi, 1350);
}

TEST(Zipfian, RanksWithinRange) {
  ZipfianGenerator gen(1'000);
  Xoshiro256 rng(2);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_LT(gen.next(rng), 1'000u);
  }
}

TEST(Zipfian, LowRanksDominante) {
  // With theta=0.99 over 10k items, rank 0 should receive close to its
  // theoretical ~10% of draws, and the head should vastly outdraw the tail.
  ZipfianGenerator gen(10'000);
  Xoshiro256 rng(3);
  constexpr int kDraws = 200'000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.next(rng)];
  const double rank0 = static_cast<double>(counts[0]) / kDraws;
  EXPECT_GT(rank0, 0.05);
  EXPECT_LT(rank0, 0.20);
  // Head (top 10) vs a same-width band in the tail.
  int head = 0;
  int tail = 0;
  for (std::uint64_t r = 0; r < 10; ++r) head += counts[r];
  for (std::uint64_t r = 5'000; r < 5'010; ++r) {
    const auto it = counts.find(r);
    tail += it == counts.end() ? 0 : it->second;
  }
  EXPECT_GT(head, 50 * std::max(tail, 1));
}

TEST(Zipfian, MonotoneDecreasingFrequencies) {
  ZipfianGenerator gen(100, 0.99);
  Xoshiro256 rng(4);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 300'000; ++i) ++counts[gen.next(rng)];
  // Compare coarse buckets to smooth out noise.
  int first = 0;
  int second = 0;
  int third = 0;
  for (std::size_t i = 0; i < 5; ++i) first += counts[i];
  for (std::size_t i = 5; i < 25; ++i) second += counts[i];
  for (std::size_t i = 25; i < 100; ++i) third += counts[i];
  EXPECT_GT(first, second / 2);
  EXPECT_GT(second, third / 2);
  EXPECT_GT(first, counts[50] * 10);
}

TEST(Zipfian, DeterministicGivenSeed) {
  ZipfianGenerator gen(1'000);
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(gen.next(a), gen.next(b));
  }
}

TEST(ScrambledZipfian, SpreadsHotKeysAcrossKeyspace) {
  // The raw Zipfian clusters popularity at low ranks; the scrambled variant
  // must not (hot items land anywhere in [0, n)).
  ScrambledZipfianGenerator gen(10'000);
  Xoshiro256 rng(5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[gen.next(rng)];
  // The most popular item should NOT be at rank 0..9 systematically; check
  // that the top item is simply somewhere in range and dominant.
  std::uint64_t top_key = 0;
  int top_count = 0;
  int low_range = 0;
  for (const auto& [key, count] : counts) {
    ASSERT_LT(key, 10'000u);
    if (count > top_count) {
      top_count = count;
      top_key = key;
    }
    if (key < 10) low_range += count;
  }
  EXPECT_GT(top_count, 2'000);  // skew survives scrambling
  // Scrambled: the low-id band holds no special mass (< 2% of draws).
  EXPECT_LT(low_range, 2'000);
  (void)top_key;
}

TEST(ScrambledZipfian, HottestKeyMatchesAnalyticZipfMass) {
  // Scrambling permutes ranks but must preserve per-item mass: the hottest
  // key's draw share should match rank 0's analytic probability
  // p0 = 1 / zeta(n, theta). The old `hash % items` reduction folded the
  // 64-bit hash range unevenly and collided hot ranks onto shared keys,
  // inflating the observed head mass; the multiply-shift reduction keeps it
  // within sampling noise of the analytic value.
  constexpr std::uint64_t kItems = 10'000;
  constexpr double kTheta = ZipfianGenerator::kYcsbTheta;
  double zeta = 0.0;
  for (std::uint64_t r = 0; r < kItems; ++r) {
    zeta += 1.0 / std::pow(static_cast<double>(r + 1), kTheta);
  }
  const double p0 = 1.0 / zeta;

  ScrambledZipfianGenerator gen(kItems);
  Xoshiro256 rng(8);
  constexpr int kDraws = 400'000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.next(rng)];
  int top = 0;
  for (const auto& [key, count] : counts) top = std::max(top, count);
  const double observed = static_cast<double>(top) / kDraws;
  // Allow +/-50%: scrambling can (rarely) land two hot ranks on one key,
  // but the systematic pile-up of the modulo reduction sat far outside.
  EXPECT_GT(observed, 0.5 * p0);
  EXPECT_LT(observed, 1.5 * p0);
}

TEST(ScrambledZipfian, SkewStrongerThanUniform) {
  ScrambledZipfianGenerator zipf(1'000);
  UniformGenerator uni(1'000);
  Xoshiro256 rng_a(6);
  Xoshiro256 rng_b(7);
  std::map<std::uint64_t, int> zc;
  std::map<std::uint64_t, int> uc;
  for (int i = 0; i < 100'000; ++i) {
    ++zc[zipf.next(rng_a)];
    ++uc[uni.next(rng_b)];
  }
  auto max_count = [](const std::map<std::uint64_t, int>& m) {
    int best = 0;
    for (const auto& [k, v] : m) best = std::max(best, v);
    return best;
  };
  EXPECT_GT(max_count(zc), 10 * max_count(uc));
}

}  // namespace
}  // namespace hpres::workload
