// YCSB driver: key formatting, load + run phases against a simulated
// cluster, read/write mix, result merging.
#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "workload/ohb.h"

namespace hpres::workload {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

TEST(YcsbKey, FixedWidthPadding) {
  EXPECT_EQ(ycsb_key(0, 16), "user000000000000");
  EXPECT_EQ(ycsb_key(1234, 16), "user000000001234");
  EXPECT_EQ(ycsb_key(0, 16).size(), 16u);
  EXPECT_EQ(ycsb_key(99, 8).size(), 8u);
}

TEST(YcsbKey, DistinctIdsDistinctKeys) {
  EXPECT_NE(ycsb_key(1, 16), ycsb_key(2, 16));
}

TEST(YcsbResult, MergeAggregates) {
  YcsbResult a;
  YcsbResult b;
  a.reads = 10;
  a.writes = 5;
  a.duration_ns = 1000;
  a.read_latency.record(100);
  b.reads = 3;
  b.writes = 7;
  b.failures = 2;
  b.duration_ns = 2000;
  b.read_latency.record(300);
  a.merge(b);
  EXPECT_EQ(a.reads, 13u);
  EXPECT_EQ(a.writes, 12u);
  EXPECT_EQ(a.failures, 2u);
  EXPECT_EQ(a.duration_ns, 2000);  // max, not sum
  EXPECT_EQ(a.read_latency.count(), 2u);
}

TEST(YcsbResult, ThroughputFromMakespan) {
  YcsbResult r;
  r.reads = 500;
  r.writes = 500;
  EXPECT_DOUBLE_EQ(r.throughput_ops_per_s(units::kSecond), 1000.0);
  EXPECT_EQ(r.throughput_ops_per_s(0), 0.0);
}

TEST(YcsbConfig, Presets) {
  EXPECT_DOUBLE_EQ(YcsbConfig::workload_a().read_fraction, 0.5);
  EXPECT_DOUBLE_EQ(YcsbConfig::workload_b().read_fraction, 0.95);
}

class YcsbDriverTest : public FiveNodeClusterTest {};

TEST_F(YcsbDriverTest, LoadThenRunProducesExpectedMix) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  YcsbConfig cfg;
  cfg.record_count = 200;
  cfg.ops_per_client = 400;
  cfg.value_size = 4096;
  struct Body {
    static sim::Task<void> run(sim::Simulator* sim,
                               resilience::Engine* engine, YcsbConfig* cfg,
                               YcsbResult* result) {
      co_await ycsb_load(sim, engine, *cfg, 0, cfg->record_count);
      co_await ycsb_client(sim, engine, *cfg, /*client_seed=*/77, result);
    }
  };
  YcsbResult result;
  run_sim(cluster_.sim(), Body::run, &cluster_.sim(), engine.get(), &cfg,
          &result);

  EXPECT_EQ(result.reads + result.writes, 400u);
  // 50:50 mix within generous bounds.
  EXPECT_GT(result.reads, 140u);
  EXPECT_GT(result.writes, 140u);
  // Every key was preloaded, so no failures.
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.duration_ns, 0);
  EXPECT_GT(result.read_latency.count(), 0u);
  EXPECT_GT(result.write_latency.count(), 0u);
  EXPECT_GT(result.throughput_ops_per_s(result.duration_ns), 0.0);
}

TEST_F(YcsbDriverTest, ReadHeavyMixSkewsToReads) {
  auto engine = make_engine(resilience::Design::kAsyncRep);
  cluster_.start();
  YcsbConfig cfg = YcsbConfig::workload_b();
  cfg.record_count = 100;
  cfg.ops_per_client = 400;
  cfg.value_size = 1024;
  struct Body {
    static sim::Task<void> run(sim::Simulator* sim,
                               resilience::Engine* engine, YcsbConfig* cfg,
                               YcsbResult* result) {
      co_await ycsb_load(sim, engine, *cfg, 0, cfg->record_count);
      co_await ycsb_client(sim, engine, *cfg, 99, result);
    }
  };
  YcsbResult result;
  run_sim(cluster_.sim(), Body::run, &cluster_.sim(), engine.get(), &cfg,
          &result);
  EXPECT_GT(result.reads, 7 * result.writes);
  EXPECT_EQ(result.failures, 0u);
}

class OhbDriverTest : public FiveNodeClusterTest {};

TEST_F(OhbDriverTest, SetThenGetWorkloadsComplete) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  OhbConfig cfg;
  cfg.operations = 100;
  cfg.value_size = 16 * 1024;
  struct Body {
    static sim::Task<void> run(sim::Simulator* sim,
                               resilience::Engine* engine, OhbConfig* cfg,
                               OhbResult* set_result, OhbResult* get_result) {
      co_await ohb_set_workload(sim, engine, *cfg, set_result);
      co_await ohb_get_workload(sim, engine, *cfg, get_result);
    }
  };
  OhbResult set_result;
  OhbResult get_result;
  run_sim(cluster_.sim(), Body::run, &cluster_.sim(), engine.get(), &cfg,
          &set_result, &get_result);

  EXPECT_EQ(set_result.operations, 100u);
  EXPECT_EQ(set_result.failures, 0u);
  EXPECT_GT(set_result.avg_latency_us(), 0.0);
  // Client-side encode shows up as compute in the Set breakdown...
  EXPECT_GT(set_result.phases.compute_ns, 0);
  // ...but healthy Gets never decode.
  EXPECT_EQ(get_result.failures, 0u);
  EXPECT_EQ(get_result.phases.compute_ns, 0);
  EXPECT_GT(get_result.phases.wait_ns, 0);
}

}  // namespace
}  // namespace hpres::workload
