// Packed-stripe record framing, sub-slot addressing and footprint math.
#include "ec/stripe.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"

namespace hpres::ec {
namespace {

TEST(Stripe, AppendParseRoundTrip) {
  Bytes stripe;
  const Bytes v1 = make_pattern(100, 1);
  const Bytes v2 = make_pattern(0, 2);  // empty value is legal
  const Bytes v3 = make_pattern(1, 3);
  const std::size_t o1 = stripe_append(stripe, "alpha", v1);
  const std::size_t o2 = stripe_append(stripe, "b", v2);
  const std::size_t o3 = stripe_append(stripe, "gamma-key", v3);
  EXPECT_EQ(o1, kStripeRecordHeader + 5);
  EXPECT_EQ(stripe.size(), stripe_record_bytes(5, 100) +
                               stripe_record_bytes(1, 0) +
                               stripe_record_bytes(9, 1));

  const Result<std::vector<StripeRecord>> parsed = stripe_parse(stripe);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].key, "alpha");
  EXPECT_EQ((*parsed)[0].value_offset, o1);
  EXPECT_EQ((*parsed)[0].value_len, 100u);
  EXPECT_EQ((*parsed)[1].key, "b");
  EXPECT_EQ((*parsed)[1].value_offset, o2);
  EXPECT_EQ((*parsed)[1].value_len, 0u);
  EXPECT_EQ((*parsed)[2].key, "gamma-key");
  EXPECT_EQ((*parsed)[2].value_offset, o3);
  // The appended value bytes sit exactly where the offsets claim.
  EXPECT_EQ(Bytes(stripe.begin() + static_cast<std::ptrdiff_t>(o1),
                  stripe.begin() + static_cast<std::ptrdiff_t>(o1 + 100)),
            v1);
}

TEST(Stripe, ParseRejectsTruncatedFraming) {
  Bytes stripe;
  stripe_append(stripe, "key", make_pattern(10, 4));
  Bytes cut_header(stripe.begin(), stripe.begin() + 3);  // mid-header
  EXPECT_FALSE(stripe_parse(cut_header).ok());
  Bytes cut_body(stripe.begin(), stripe.end() - 1);  // body short one byte
  EXPECT_FALSE(stripe_parse(cut_body).ok());
}

TEST(Stripe, OwningFragmentsCoversSubSlotRanges) {
  const ChunkLayout layout = make_layout(400, 4, 1);  // fragment = 100
  // Entirely inside fragment 1.
  FragmentRange r = owning_fragments(layout, 150, 30);
  EXPECT_EQ(r.first, 1u);
  EXPECT_EQ(r.last, 1u);
  EXPECT_EQ(r.count(), 1u);
  // Straddles the 1|2 boundary.
  r = owning_fragments(layout, 190, 20);
  EXPECT_EQ(r.first, 1u);
  EXPECT_EQ(r.last, 2u);
  // Ends exactly on a boundary: byte 199 is the last touched.
  r = owning_fragments(layout, 150, 50);
  EXPECT_EQ(r.last, 1u);
  // Empty range pins to the offset's fragment.
  r = owning_fragments(layout, 200, 0);
  EXPECT_EQ(r.first, 2u);
  EXPECT_EQ(r.last, 2u);
  // Tail of the padded region clamps to the last data slot.
  r = owning_fragments(layout, 399, 1);
  EXPECT_EQ(r.last, 3u);
}

TEST(Stripe, ExtractFromFragmentsSplicesExactBytes) {
  // Build a stripe, split it like the commit path does, then extract each
  // record's value from only its owning fragments.
  Bytes stripe;
  std::vector<std::string> keys;
  std::vector<Bytes> values;
  std::vector<std::size_t> offsets;
  for (int i = 0; i < 12; ++i) {
    keys.push_back("user" + std::to_string(i));
    values.push_back(make_pattern(37 + static_cast<std::size_t>(i) * 11,
                                  static_cast<std::size_t>(i)));
    offsets.push_back(stripe_append(stripe, keys.back(), values.back()));
  }
  const ChunkLayout layout = make_layout(stripe.size(), 4, 1);
  const std::vector<Bytes> frags = split_value(stripe, layout);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const FragmentRange range =
        owning_fragments(layout, offsets[i], values[i].size());
    std::vector<ConstByteSpan> spans;
    for (std::size_t s = range.first; s <= range.last; ++s) {
      spans.emplace_back(frags[s]);
    }
    const Result<Bytes> got = extract_from_fragments(
        spans, range, layout, offsets[i], values[i].size());
    ASSERT_TRUE(got.ok()) << "record " << i;
    EXPECT_EQ(*got, values[i]) << "record " << i;
  }
}

TEST(Stripe, ExtractRejectsWrongFragmentCountOrSize) {
  const ChunkLayout layout = make_layout(400, 4, 1);
  const FragmentRange range{1, 2};
  const Bytes good(layout.fragment_size);
  const Bytes bad(layout.fragment_size - 1);
  {
    const std::vector<ConstByteSpan> one{good};  // range wants two
    EXPECT_FALSE(extract_from_fragments(one, range, layout, 150, 100).ok());
  }
  {
    const std::vector<ConstByteSpan> sized{good, bad};
    EXPECT_FALSE(extract_from_fragments(sized, range, layout, 150, 100).ok());
  }
}

TEST(Stripe, FootprintPackedBeatsStripedForSmallValues) {
  // The ISSUE acceptance point: 128 B values, RS(4,2), 16 KiB stripes.
  FootprintParams p;
  p.key_size = 16;
  p.value_size = 128;
  p.k = 4;
  p.m = 2;
  p.alignment = 1;
  p.stripe_capacity = 16 * 1024;
  p.stripe_key_size = 8;
  p.item_overhead = 56;        // kv::Store kItemOverhead
  p.chunk_info_bytes = 16;     // sizeof(kv::ChunkInfo)
  p.locator_entry_overhead = 12;
  p.locator_copies = 3;        // m + 1
  const StorageFootprint f = predict_footprint(p);
  EXPECT_GE(f.savings_ratio, 2.0);
  EXPECT_GT(f.striped_per_key, f.packed_per_key);
}

TEST(Stripe, FootprintConvergesForLargeValues) {
  // Near the pack threshold the padding amortization vanishes and the two
  // paths cost about the same — the crossover the sweep bench looks for.
  FootprintParams p;
  p.key_size = 16;
  p.value_size = 64 * 1024;
  p.k = 4;
  p.m = 2;
  p.alignment = 1;
  p.stripe_capacity = 128 * 1024;
  p.stripe_key_size = 8;
  p.item_overhead = 56;
  p.chunk_info_bytes = 16;
  p.locator_entry_overhead = 12;
  p.locator_copies = 3;
  const StorageFootprint f = predict_footprint(p);
  EXPECT_LT(f.savings_ratio, 1.3);
  EXPECT_GT(f.savings_ratio, 0.8);
}

}  // namespace
}  // namespace hpres::ec
