// End-to-end erasure codec properties: encode/erase/reconstruct round-trips
// across schemes, (k, m) shapes, sizes and every erasure pattern.
#include "ec/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <tuple>

#include "common/bytes.h"
#include "common/rng.h"
#include "ec/chunker.h"

namespace hpres::ec {
namespace {

struct Encoded {
  ChunkLayout layout;
  std::vector<Bytes> fragments;  // k data then m parity
};

Encoded encode_value(const Codec& codec, ConstByteSpan value) {
  Encoded out;
  out.layout = make_layout(value.size(), codec.k(), codec.alignment());
  out.fragments = split_value(value, out.layout);
  std::vector<ConstByteSpan> data(out.fragments.begin(), out.fragments.end());
  for (std::size_t p = 0; p < codec.m(); ++p) {
    out.fragments.emplace_back(out.layout.fragment_size);
  }
  std::vector<ByteSpan> parity(
      out.fragments.begin() + static_cast<std::ptrdiff_t>(codec.k()),
      out.fragments.end());
  codec.encode(data, parity);
  return out;
}

/// Zeroes the erased fragments, reconstructs, and checks byte-exactness of
/// every fragment plus the re-joined value.
void expect_full_recovery(const Codec& codec, ConstByteSpan value,
                          const std::vector<bool>& present) {
  const Encoded golden = encode_value(codec, value);
  std::vector<Bytes> working = golden.fragments;
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (!present[i]) std::fill(working[i].begin(), working[i].end(), std::byte{0});
  }
  std::vector<ByteSpan> spans(working.begin(), working.end());
  ASSERT_TRUE(codec.reconstruct(spans, present).ok());
  for (std::size_t i = 0; i < working.size(); ++i) {
    EXPECT_EQ(working[i], golden.fragments[i]) << "fragment " << i;
  }
  std::vector<ConstByteSpan> data(
      working.begin(), working.begin() + static_cast<std::ptrdiff_t>(codec.k()));
  const Result<Bytes> joined = join_fragments(data, golden.layout);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(std::equal(joined->begin(), joined->end(), value.begin(),
                         value.end()));
}

using Shape = std::tuple<Scheme, std::size_t, std::size_t>;  // scheme, k, m

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const auto scheme = std::get<0>(info.param);
  return std::string(to_string(scheme)) + "_k" +
         std::to_string(std::get<1>(info.param)) + "m" +
         std::to_string(std::get<2>(info.param));
}

class CodecRoundTrip : public ::testing::TestWithParam<Shape> {
 protected:
  [[nodiscard]] std::unique_ptr<Codec> codec() const {
    const auto [scheme, k, m] = GetParam();
    return make_codec(scheme, k, m);
  }
};

TEST_P(CodecRoundTrip, EveryErasurePatternRecovers) {
  const auto c = codec();
  const Bytes value = make_pattern(4096 + 17, /*seed=*/100);
  const std::size_t n = c->n();
  // All subsets of erased fragments with |erased| <= m.
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > c->m()) continue;
    std::vector<bool> present(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) present[i] = false;
    }
    expect_full_recovery(*c, value, present);
  }
}

TEST_P(CodecRoundTrip, TooManyErasuresRejected) {
  const auto c = codec();
  if (c->m() == c->n()) GTEST_SKIP();
  const Encoded enc = encode_value(*c, make_pattern(1024, 7));
  std::vector<Bytes> working = enc.fragments;
  std::vector<ByteSpan> spans(working.begin(), working.end());
  std::vector<bool> present(c->n(), true);
  for (std::size_t i = 0; i <= c->m(); ++i) present[i % c->n()] = false;
  const Status s = c->reconstruct(spans, present);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTooManyFailures);
}

TEST_P(CodecRoundTrip, SizesIncludingUnalignedTails) {
  const auto c = codec();
  for (const std::size_t size : {std::size_t{1}, std::size_t{3},
                                 std::size_t{1024}, std::size_t{1025},
                                 std::size_t{65536 + 13}}) {
    const Bytes value = make_pattern(size, size);
    std::vector<bool> present(c->n(), true);
    present[0] = false;  // worst common case: primary data fragment lost
    expect_full_recovery(*c, value, present);
  }
}

TEST_P(CodecRoundTrip, ReconstructDataSkipsParityRepair) {
  const auto c = codec();
  if (c->m() == 0) GTEST_SKIP();
  const Bytes value = make_pattern(2048, 9);
  const Encoded golden = encode_value(*c, value);
  std::vector<Bytes> working = golden.fragments;
  std::vector<bool> present(c->n(), true);
  present[0] = false;
  present[c->k()] = false;  // one data + one parity erased
  if (c->m() < 2) present[c->k()] = true;
  std::fill(working[0].begin(), working[0].end(), std::byte{0});
  std::vector<ByteSpan> spans(working.begin(), working.end());
  ASSERT_TRUE(c->reconstruct_data(spans, present).ok());
  EXPECT_EQ(working[0], golden.fragments[0]);  // data repaired
}

TEST_P(CodecRoundTrip, EncodeIsDeterministic) {
  const auto c = codec();
  const Bytes value = make_pattern(8192, 11);
  const Encoded a = encode_value(*c, value);
  const Encoded b = encode_value(*c, value);
  EXPECT_EQ(a.fragments, b.fragments);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(
        // The paper's headline configuration: RS(3,2) on a 5-node cluster.
        Shape{Scheme::kRsVandermonde, 3, 2},
        Shape{Scheme::kCauchyRs, 3, 2}, Shape{Scheme::kRaid6, 3, 2},
        // Wider / narrower shapes.
        Shape{Scheme::kRsVandermonde, 1, 1},
        Shape{Scheme::kRsVandermonde, 2, 1},
        Shape{Scheme::kRsVandermonde, 4, 2},
        Shape{Scheme::kRsVandermonde, 6, 3},
        Shape{Scheme::kRsVandermonde, 10, 4},
        Shape{Scheme::kCauchyRs, 2, 2}, Shape{Scheme::kCauchyRs, 6, 3},
        Shape{Scheme::kRaid6, 8, 2}, Shape{Scheme::kRaid6, 4, 1}),
    shape_name);

// --- Cross-scheme agreements ------------------------------------------------

TEST(CodecCross, AllSchemesAreSystematic) {
  // Data fragments pass through unchanged: fragment i of the encoding
  // equals slice i of the (padded) value for every scheme.
  const Bytes value = make_pattern(3000, 5);
  for (const Scheme s :
       {Scheme::kRsVandermonde, Scheme::kCauchyRs, Scheme::kRaid6}) {
    const auto c = make_codec(s, 3, 2);
    const Encoded enc = encode_value(*c, value);
    const std::vector<Bytes> plain = split_value(value, enc.layout);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(enc.fragments[i], plain[i]) << to_string(s) << " frag " << i;
    }
  }
}

TEST(CodecCross, Raid6FirstParityIsXorOfData) {
  const auto c = make_codec(Scheme::kRaid6, 5, 2);
  const Bytes value = make_pattern(5 * 64, 21);
  const Encoded enc = encode_value(*c, value);
  Bytes expect = enc.fragments[0];
  for (std::size_t i = 1; i < 5; ++i) {
    GF256::xor_region(enc.fragments[i], expect);
  }
  EXPECT_EQ(enc.fragments[5], expect);
}

TEST(CodecCross, StorageOverheadMatchesTheory) {
  // RS(3,2) stores N/K = 5/3 of the original data: the paper's memory
  // efficiency argument (vs 3x for replication).
  const auto c = make_codec(Scheme::kRsVandermonde, 3, 2);
  const std::size_t value_size = 3 * 4096;
  const Encoded enc = encode_value(*c, make_pattern(value_size, 3));
  std::size_t stored = 0;
  for (const auto& f : enc.fragments) stored += f.size();
  EXPECT_EQ(stored, value_size * 5 / 3);
}

TEST(CodecFactory, NamesAreStable) {
  EXPECT_EQ(make_codec(Scheme::kRsVandermonde, 3, 2)->name(), "rs_van");
  EXPECT_EQ(make_codec(Scheme::kCauchyRs, 3, 2)->name(), "crs");
  EXPECT_EQ(make_codec(Scheme::kRaid6, 3, 2)->name(), "raid6");
}

}  // namespace
}  // namespace hpres::ec
