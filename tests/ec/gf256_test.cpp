// Field-axiom and region-kernel tests for GF(2^8).
#include "ec/gf256.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace hpres::ec {
namespace {

const GF256& gf() { return GF256::instance(); }

TEST(Gf256, MultiplicativeIdentity) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().mul(x, 1), x);
    EXPECT_EQ(gf().mul(1, x), x);
  }
}

TEST(Gf256, ZeroAnnihilates) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().mul(x, 0), 0);
    EXPECT_EQ(gf().mul(0, x), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf().mul(a, b), gf().mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf().mul(gf().mul(a, b), c), gf().mul(a, gf().mul(b, c)));
  }
}

TEST(Gf256, DistributesOverXor) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf().mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf().mul(a, b) ^ gf().mul(a, c));
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    const std::uint8_t ix = gf().inv(x);
    EXPECT_EQ(gf().mul(x, ix), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    auto b = static_cast<std::uint8_t>(rng());
    if (b == 0) b = 1;
    EXPECT_EQ(gf().div(gf().mul(a, b), b), a);
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().exp(gf().log(x)), x);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 is primitive: its powers enumerate all 255 non-zero elements.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const std::uint8_t v = gf().exp(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at exponent " << i;
    seen[v] = true;
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto e = static_cast<unsigned>(rng() % 16);
    std::uint8_t expect = 1;
    for (unsigned j = 0; j < e; ++j) expect = gf().mul(expect, a);
    EXPECT_EQ(gf().pow(a, e), expect);
  }
}

TEST(Gf256, PowZeroConventions) {
  EXPECT_EQ(gf().pow(0, 0), 1);
  EXPECT_EQ(gf().pow(0, 5), 0);
  EXPECT_EQ(gf().pow(7, 0), 1);
}

TEST(Gf256, MulRegionMatchesScalar) {
  Xoshiro256 rng(6);
  const Bytes src = make_pattern(1000, 7);
  for (const int ci : {0, 1, 2, 37, 255}) {
    const auto c = static_cast<std::uint8_t>(ci);
    Bytes dst(src.size());
    gf().mul_region(c, src, dst);
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(std::to_integer<std::uint8_t>(dst[i]),
                gf().mul(c, std::to_integer<std::uint8_t>(src[i])));
    }
  }
}

TEST(Gf256, MulRegionInPlace) {
  Bytes buf = make_pattern(257, 8);
  Bytes expect(buf.size());
  gf().mul_region(19, buf, expect);
  gf().mul_region(19, buf, buf);  // dst == src allowed
  EXPECT_EQ(buf, expect);
}

TEST(Gf256, MulRegionAccAccumulates) {
  const Bytes src = make_pattern(512, 9);
  Bytes dst = make_pattern(512, 10);
  const Bytes original = dst;
  gf().mul_region_acc(33, src, dst);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const auto expect = static_cast<std::uint8_t>(
        std::to_integer<std::uint8_t>(original[i]) ^
        gf().mul(33, std::to_integer<std::uint8_t>(src[i])));
    EXPECT_EQ(std::to_integer<std::uint8_t>(dst[i]), expect);
  }
}

TEST(Gf256, XorRegionAllLengths) {
  // Exercise the word-wide loop plus every tail length.
  for (std::size_t len = 0; len < 40; ++len) {
    const Bytes a = make_pattern(len, 11);
    Bytes b = make_pattern(len, 12);
    const Bytes original = b;
    GF256::xor_region(a, b);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(b[i], a[i] ^ original[i]);
    }
    // XOR is an involution.
    GF256::xor_region(a, b);
    EXPECT_EQ(b, original);
  }
}

}  // namespace
}  // namespace hpres::ec
