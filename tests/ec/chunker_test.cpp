// Value <-> fragment layout math and round-trips.
#include "ec/chunker.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace hpres::ec {
namespace {

TEST(Chunker, LayoutDividesEvenly) {
  const ChunkLayout l = make_layout(3000, 3, 1);
  EXPECT_EQ(l.fragment_size, 1000u);
  EXPECT_EQ(l.original_size, 3000u);
}

TEST(Chunker, LayoutRoundsUpToK) {
  const ChunkLayout l = make_layout(3001, 3, 1);
  EXPECT_EQ(l.fragment_size, 1001u);
}

TEST(Chunker, LayoutAlignsFragment) {
  const ChunkLayout l = make_layout(3001, 3, 8);
  EXPECT_EQ(l.fragment_size, 1008u);
  EXPECT_EQ(l.fragment_size % 8, 0u);
}

TEST(Chunker, ZeroSizeValueStillHasNonEmptyFragments) {
  const ChunkLayout l = make_layout(0, 3, 8);
  EXPECT_EQ(l.fragment_size, 8u);
  const std::vector<Bytes> frags = split_value({}, l);
  ASSERT_EQ(frags.size(), 3u);
  for (const auto& f : frags) EXPECT_EQ(f.size(), 8u);
}

TEST(Chunker, ValueSmallerThanAlignmentRoundTrips) {
  // A 3-byte value with k=4, alignment 8: every fragment is one alignment
  // unit and the value lives entirely inside fragment 0.
  const Bytes value = make_pattern(3, 9);
  const ChunkLayout layout = make_layout(3, 4, 8);
  EXPECT_EQ(layout.fragment_size, 8u);
  const std::vector<Bytes> frags = split_value(value, layout);
  ASSERT_EQ(frags.size(), 4u);
  const std::vector<ConstByteSpan> spans(frags.begin(), frags.end());
  const Result<Bytes> joined = join_fragments(spans, layout);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, value);
}

TEST(Chunker, ValueSmallerThanKBytesRoundTrips) {
  // Fewer bytes than data fragments: with alignment 1 each fragment is a
  // single byte and the trailing ones are pure padding.
  const Bytes value = make_pattern(2, 5);
  const ChunkLayout layout = make_layout(2, 4, 1);
  EXPECT_EQ(layout.fragment_size, 1u);
  const std::vector<Bytes> frags = split_value(value, layout);
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_EQ(frags[2][0], std::byte{0});
  EXPECT_EQ(frags[3][0], std::byte{0});
  const std::vector<ConstByteSpan> spans(frags.begin(), frags.end());
  const Result<Bytes> joined = join_fragments(spans, layout);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, value);
}

TEST(Chunker, ExactlyKTimesAlignmentHasNoPadding) {
  const ChunkLayout layout = make_layout(4 * 8, 4, 8);
  EXPECT_EQ(layout.fragment_size, 8u);  // no rounding slack
  const Bytes value = make_pattern(32, 2);
  const std::vector<Bytes> frags = split_value(value, layout);
  const std::vector<ConstByteSpan> spans(frags.begin(), frags.end());
  const Result<Bytes> joined = join_fragments(spans, layout);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, value);
}

TEST(Chunker, SplitJoinRoundTripAcrossSizes) {
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1024},
        std::size_t{1'000'000}, std::size_t{1'048'576}}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
      const Bytes value = make_pattern(size, size + k);
      const ChunkLayout layout = make_layout(size, k, 8);
      const std::vector<Bytes> frags = split_value(value, layout);
      ASSERT_EQ(frags.size(), k);
      const std::vector<ConstByteSpan> spans(frags.begin(), frags.end());
      const Result<Bytes> joined = join_fragments(spans, layout);
      ASSERT_TRUE(joined.ok()) << "size=" << size << " k=" << k;
      EXPECT_EQ(*joined, value);
    }
  }
}

TEST(Chunker, TailFragmentIsZeroPadded) {
  const Bytes value = make_pattern(10, 1);
  const ChunkLayout layout = make_layout(10, 3, 8);  // fragment 8, holds 24
  const std::vector<Bytes> frags = split_value(value, layout);
  // value fills fragment 0 (8 bytes) and 2 bytes of fragment 1.
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_EQ(frags[1][i], std::byte{0});
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(frags[2][i], std::byte{0});
  }
}

TEST(Chunker, JoinRejectsWrongArity) {
  const ChunkLayout layout = make_layout(100, 3, 1);
  const Bytes frag(layout.fragment_size);
  const std::vector<ConstByteSpan> two{frag, frag};
  EXPECT_EQ(join_fragments(two, layout).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Chunker, JoinRejectsWrongFragmentSize) {
  const ChunkLayout layout = make_layout(100, 2, 1);
  const Bytes good(layout.fragment_size);
  const Bytes bad(layout.fragment_size + 1);
  const std::vector<ConstByteSpan> frags{good, bad};
  EXPECT_EQ(join_fragments(frags, layout).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Chunker, JoinRejectsInconsistentLayout) {
  ChunkLayout layout = make_layout(100, 2, 1);
  layout.original_size = 1000;  // exceeds k * fragment_size
  const Bytes frag(layout.fragment_size);
  const std::vector<ConstByteSpan> frags{frag, frag};
  EXPECT_EQ(join_fragments(frags, layout).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpres::ec
