// Bit-matrix expansion and XOR-packet application.
#include "ec/bitmatrix.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace hpres::ec {
namespace {

TEST(BitMatrix, FromGfIdentityIsBitIdentity) {
  const BitMatrix b = BitMatrix::from_gf_matrix(GfMatrix::identity(3));
  ASSERT_EQ(b.rows(), 24u);
  ASSERT_EQ(b.cols(), 24u);
  for (std::size_t r = 0; r < 24; ++r) {
    for (std::size_t c = 0; c < 24; ++c) {
      EXPECT_EQ(b.get(r, c), r == c);
    }
  }
}

TEST(BitMatrix, BlockColumnsArePatternsOfAMulXc) {
  GfMatrix m(1, 1);
  m.at(0, 0) = 0x53;
  const BitMatrix b = BitMatrix::from_gf_matrix(m);
  const GF256& gf = GF256::instance();
  for (unsigned c = 0; c < 8; ++c) {
    const std::uint8_t pattern =
        gf.mul(0x53, static_cast<std::uint8_t>(1u << c));
    for (unsigned r = 0; r < 8; ++r) {
      EXPECT_EQ(b.get(r, c), (pattern >> r & 1) != 0);
    }
  }
}

TEST(BitMatrix, ApplyIdentityCopies) {
  const BitMatrix id = BitMatrix::from_gf_matrix(GfMatrix::identity(2));
  const Bytes a = make_pattern(64, 1);
  const Bytes b = make_pattern(64, 2);
  Bytes out_a(64);
  Bytes out_b(64);
  const std::vector<ConstByteSpan> sources{a, b};
  std::vector<ByteSpan> outputs{out_a, out_b};
  bitmatrix_apply(id, 8, sources, outputs);
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
}

TEST(BitMatrix, ApplyZeroMatrixClearsOutputs) {
  const BitMatrix zero(8, 16);
  const Bytes a = make_pattern(32, 3);
  const Bytes b = make_pattern(32, 4);
  Bytes out = make_pattern(32, 5);  // pre-filled garbage must be cleared
  const std::vector<ConstByteSpan> sources{a, b};
  std::vector<ByteSpan> outputs{ByteSpan{out}};
  bitmatrix_apply(zero, 8, sources, outputs);
  for (const auto byte : out) EXPECT_EQ(byte, std::byte{0});
}

TEST(BitMatrix, ApplyIsLinearInSources) {
  // apply(M, x ^ y) == apply(M, x) ^ apply(M, y)
  Xoshiro256 rng(6);
  GfMatrix gm(1, 2);
  gm.at(0, 0) = static_cast<std::uint8_t>(rng());
  gm.at(0, 1) = static_cast<std::uint8_t>(rng());
  const BitMatrix bm = BitMatrix::from_gf_matrix(gm);

  const Bytes x0 = make_pattern(40, 7);
  const Bytes x1 = make_pattern(40, 8);
  const Bytes y0 = make_pattern(40, 9);
  const Bytes y1 = make_pattern(40, 10);
  Bytes xy0(40);
  Bytes xy1(40);
  for (std::size_t i = 0; i < 40; ++i) {
    xy0[i] = x0[i] ^ y0[i];
    xy1[i] = x1[i] ^ y1[i];
  }

  auto apply1 = [&bm](const Bytes& a, const Bytes& b) {
    Bytes out(a.size());
    const std::vector<ConstByteSpan> sources{a, b};
    std::vector<ByteSpan> outputs{ByteSpan{out}};
    bitmatrix_apply(bm, 8, sources, outputs);
    return out;
  };

  const Bytes fx = apply1(x0, x1);
  const Bytes fy = apply1(y0, y1);
  const Bytes fxy = apply1(xy0, xy1);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(fxy[i], fx[i] ^ fy[i]);
  }
}

TEST(BitMatrix, PopcountCountsSetBits) {
  BitMatrix b(4, 4);
  EXPECT_EQ(b.popcount(), 0u);
  b.set(0, 0, true);
  b.set(3, 2, true);
  b.set(3, 2, true);  // idempotent
  EXPECT_EQ(b.popcount(), 2u);
  b.set(3, 2, false);
  EXPECT_EQ(b.popcount(), 1u);
}

TEST(BitMatrix, Raid6BitmatrixIsSparserThanCauchy) {
  // The density argument behind minimum-density RAID-6 codes: the P/Q
  // generator expands to far fewer bits than a Cauchy block of equal shape.
  const std::size_t k = 6;
  GfMatrix raid6(2, k);
  const GfMatrix full = raid6_generator(k, 2);
  for (std::size_t c = 0; c < k; ++c) {
    raid6.at(0, c) = full.at(k, c);
    raid6.at(1, c) = full.at(k + 1, c);
  }
  const GfMatrix cauchy = GfMatrix::cauchy(2, k);
  EXPECT_LT(BitMatrix::from_gf_matrix(raid6).popcount(),
            BitMatrix::from_gf_matrix(cauchy).popcount());
}

}  // namespace
}  // namespace hpres::ec
