// Cost-model shape checks: monotonicity, scaling, calibration sanity.
#include "ec/cost_model.h"

#include <gtest/gtest.h>

namespace hpres::ec {
namespace {

TEST(CostModel, EncodeGrowsWithSize) {
  const CostModel m = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  EXPECT_LT(m.encode_ns(1024), m.encode_ns(64 * 1024));
  EXPECT_LT(m.encode_ns(64 * 1024), m.encode_ns(1024 * 1024));
}

TEST(CostModel, NoFailuresMeansNoDecodeWork) {
  const CostModel m = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  EXPECT_EQ(m.decode_ns(1024 * 1024, 0), 0);
  EXPECT_GT(m.decode_ns(1024 * 1024, 1), 0);
}

TEST(CostModel, DecodeScalesWithFailures) {
  const CostModel m = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  const SimDur one = m.decode_ns(256 * 1024, 1);
  const SimDur two = m.decode_ns(256 * 1024, 2);
  EXPECT_EQ(two, 2 * one);
}

TEST(CostModel, MoreParitiesCostMore) {
  const CostModel rs32 = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  const CostModel rs33 = CostModel::defaults(Scheme::kRsVandermonde, 3, 3);
  EXPECT_LT(rs32.encode_ns(1024 * 1024), rs33.encode_ns(1024 * 1024));
}

TEST(CostModel, FasterCpuShrinksAllCosts) {
  const CostModel base = CostModel::defaults(Scheme::kCauchyRs, 3, 2, 1.0);
  const CostModel fast = CostModel::defaults(Scheme::kCauchyRs, 3, 2, 2.0);
  EXPECT_GT(base.encode_ns(65536), fast.encode_ns(65536));
  EXPECT_GT(base.decode_ns(65536, 1), fast.decode_ns(65536, 1));
  // Halved, within integer rounding.
  EXPECT_NEAR(static_cast<double>(base.encode_ns(65536)),
              2.0 * static_cast<double>(fast.encode_ns(65536)), 4.0);
}

TEST(CostModel, RsVandermondeIsFastestInKvRange) {
  // The paper's Figure 4 conclusion: RS_Van wins for 1 KB - 1 MB because
  // the XOR-oriented schemes (CRS, R6) pay per-operation schedule setup
  // that only amortizes on much larger objects.
  const CostModel rs = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  const CostModel crs = CostModel::defaults(Scheme::kCauchyRs, 3, 2);
  const CostModel r6 = CostModel::defaults(Scheme::kRaid6, 3, 2);
  for (std::size_t size = 1024; size <= 1024 * 1024; size *= 4) {
    EXPECT_LT(rs.encode_ns(size), crs.encode_ns(size)) << size;
    EXPECT_LT(rs.encode_ns(size), r6.encode_ns(size)) << size;
    EXPECT_LT(rs.decode_ns(size, 1), crs.decode_ns(size, 1)) << size;
  }
}

TEST(CostModel, XorSchemesWinAtVeryLargeObjects) {
  // ...while at ~256 MB (the paper's cited amortization point) the lower
  // per-byte cost of the XOR schemes takes over.
  const std::size_t huge = 256 * 1024 * 1024;
  const CostModel rs = CostModel::defaults(Scheme::kRsVandermonde, 3, 2);
  const CostModel crs = CostModel::defaults(Scheme::kCauchyRs, 3, 2);
  const CostModel r6 = CostModel::defaults(Scheme::kRaid6, 3, 2);
  EXPECT_LT(crs.encode_ns(huge), rs.encode_ns(huge));
  EXPECT_LT(r6.encode_ns(huge), rs.encode_ns(huge));
}

TEST(CostModel, CalibrationProducesPositiveMonotoneCosts) {
  // Tiny real measurement: just verifies the fitting pipeline works; not a
  // performance assertion.
  const auto codec = make_codec(Scheme::kRsVandermonde, 3, 2);
  const CostModel m = CostModel::calibrate(*codec, 4 * 1024, 64 * 1024, 3);
  EXPECT_GT(m.encode_ns(64 * 1024), 0);
  EXPECT_LE(m.encode_ns(8 * 1024), m.encode_ns(512 * 1024));
  EXPECT_GT(m.decode_ns(64 * 1024, 1), 0);
}

}  // namespace
}  // namespace hpres::ec
