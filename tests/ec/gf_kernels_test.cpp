// SIMD GF(2^8) kernel layer tests: every runnable variant must be
// byte-identical to the scalar reference across sizes (including
// non-multiple-of-vector tails), unaligned offsets, dst == src aliasing and
// all 256 coefficients; dispatch must honor HPRES_FORCE_SCALAR_GF without
// changing any output; the fused StripeCoder must match the row-by-row
// reference transform.
#include "ec/gf_kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/bytes.h"
#include "common/rng.h"
#include "ec/gf256.h"

namespace hpres::ec {
namespace {

const GF256& gf() { return GF256::instance(); }

// Sizes exercising empty regions, sub-vector tails, every alignment of the
// 16/32/64-byte SIMD strides, tile boundaries and a large odd region.
const std::size_t kSizes[] = {0,    1,    2,    7,     15,    16,   17,
                              31,   32,   33,   63,    64,    65,   255,
                              1000, 4096, 8191, 8192,  8193,  16384,
                              20001, 65536, 70000};

std::vector<const GfKernelOps*> runnable_variants() {
  std::vector<const GfKernelOps*> out;
  for (const GfKernelVariant v : available_variants()) {
    out.push_back(kernels_for(v));
  }
  return out;
}

TEST(GfKernels, NibbleTablesMatchFieldMultiplication) {
  const detail::NibbleTables* tables = detail::nibble_tables();
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned x = 0; x < 256; ++x) {
      const std::uint8_t split = static_cast<std::uint8_t>(
          tables[c].lo[x & 0x0F] ^ tables[c].hi[x >> 4]);
      ASSERT_EQ(split, gf().mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(GfKernels, ScalarVariantAlwaysRunnableAndFirst) {
  const std::vector<GfKernelVariant> avail = available_variants();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), GfKernelVariant::kScalar);
  EXPECT_NE(kernels_for(GfKernelVariant::kScalar), nullptr);
}

TEST(GfKernels, AllVariantsMatchScalarAcrossSizes) {
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  for (const GfKernelOps* ops : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      const Bytes src = make_pattern(n, 17 + n);
      for (const unsigned c : {0u, 1u, 2u, 29u, 87u, 255u}) {
        const auto coeff = static_cast<std::uint8_t>(c);
        Bytes want(n);
        Bytes got(n);
        gf_mul_region(scalar, coeff,
                      reinterpret_cast<const std::uint8_t*>(src.data()),
                      reinterpret_cast<std::uint8_t*>(want.data()), n);
        gf_mul_region(*ops, coeff,
                      reinterpret_cast<const std::uint8_t*>(src.data()),
                      reinterpret_cast<std::uint8_t*>(got.data()), n);
        ASSERT_EQ(got, want) << "mul_region variant="
                             << to_string(ops->variant) << " n=" << n
                             << " c=" << c;

        Bytes want_acc = make_pattern(n, 99);
        Bytes got_acc = want_acc;
        gf_mul_region_acc(scalar, coeff,
                          reinterpret_cast<const std::uint8_t*>(src.data()),
                          reinterpret_cast<std::uint8_t*>(want_acc.data()), n);
        gf_mul_region_acc(*ops, coeff,
                          reinterpret_cast<const std::uint8_t*>(src.data()),
                          reinterpret_cast<std::uint8_t*>(got_acc.data()), n);
        ASSERT_EQ(got_acc, want_acc)
            << "mul_region_acc variant=" << to_string(ops->variant)
            << " n=" << n << " c=" << c;
      }
    }
  }
}

TEST(GfKernels, AllVariantsAllCoefficients) {
  // An odd size keeps both the vector main loop and the scalar tail hot.
  constexpr std::size_t kN = 1531;
  const Bytes src = make_pattern(kN, 5);
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  for (const GfKernelOps* ops : runnable_variants()) {
    for (unsigned c = 0; c < 256; ++c) {
      const auto coeff = static_cast<std::uint8_t>(c);
      Bytes want(kN);
      Bytes got(kN);
      gf_mul_region(scalar, coeff,
                    reinterpret_cast<const std::uint8_t*>(src.data()),
                    reinterpret_cast<std::uint8_t*>(want.data()), kN);
      gf_mul_region(*ops, coeff,
                    reinterpret_cast<const std::uint8_t*>(src.data()),
                    reinterpret_cast<std::uint8_t*>(got.data()), kN);
      ASSERT_EQ(got, want) << "variant=" << to_string(ops->variant)
                           << " c=" << c;
      Bytes want_acc = make_pattern(kN, 6);
      Bytes got_acc = want_acc;
      gf_mul_region_acc(scalar, coeff,
                        reinterpret_cast<const std::uint8_t*>(src.data()),
                        reinterpret_cast<std::uint8_t*>(want_acc.data()), kN);
      gf_mul_region_acc(*ops, coeff,
                        reinterpret_cast<const std::uint8_t*>(src.data()),
                        reinterpret_cast<std::uint8_t*>(got_acc.data()), kN);
      ASSERT_EQ(got_acc, want_acc)
          << "acc variant=" << to_string(ops->variant) << " c=" << c;
    }
  }
}

TEST(GfKernels, UnalignedOffsets) {
  // SIMD kernels use unaligned loads/stores; prove it by running on spans
  // that start at every offset within a vector register.
  constexpr std::size_t kN = 4096;
  const Bytes backing_src = make_pattern(kN + 64, 7);
  Bytes backing_want(kN + 64);
  Bytes backing_got(kN + 64);
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  for (const GfKernelOps* ops : runnable_variants()) {
    for (const std::size_t off : {1u, 2u, 3u, 5u, 15u, 17u, 31u, 33u}) {
      const auto* s =
          reinterpret_cast<const std::uint8_t*>(backing_src.data()) + off;
      auto* want = reinterpret_cast<std::uint8_t*>(backing_want.data()) + off;
      auto* got = reinterpret_cast<std::uint8_t*>(backing_got.data()) + off;
      scalar.mul_region(37, s, want, kN);
      ops->mul_region(37, s, got, kN);
      ASSERT_EQ(std::memcmp(got, want, kN), 0)
          << "variant=" << to_string(ops->variant) << " offset=" << off;
    }
  }
}

TEST(GfKernels, DstEqualsSrcAliasing) {
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  for (const GfKernelOps* ops : runnable_variants()) {
    for (const std::size_t n : {33u, 1000u, 8193u}) {
      Bytes want = make_pattern(n, 8);
      Bytes got = want;
      scalar.mul_region(19, reinterpret_cast<const std::uint8_t*>(want.data()),
                        reinterpret_cast<std::uint8_t*>(want.data()), n);
      ops->mul_region(19, reinterpret_cast<const std::uint8_t*>(got.data()),
                      reinterpret_cast<std::uint8_t*>(got.data()), n);
      ASSERT_EQ(got, want) << "in-place mul, variant="
                           << to_string(ops->variant) << " n=" << n;

      Bytes want_acc = make_pattern(n, 9);
      Bytes got_acc = want_acc;
      scalar.mul_region_acc(
          19, reinterpret_cast<const std::uint8_t*>(want_acc.data()),
          reinterpret_cast<std::uint8_t*>(want_acc.data()), n);
      ops->mul_region_acc(
          19, reinterpret_cast<const std::uint8_t*>(got_acc.data()),
          reinterpret_cast<std::uint8_t*>(got_acc.data()), n);
      ASSERT_EQ(got_acc, want_acc)
          << "in-place acc, variant=" << to_string(ops->variant) << " n=" << n;
    }
  }
}

TEST(GfKernels, XorRegionMatchesScalarAndInvolutes) {
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  for (const GfKernelOps* ops : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      const Bytes a = make_pattern(n, 10);
      Bytes want = make_pattern(n, 11);
      Bytes got = want;
      const Bytes original = want;
      scalar.xor_region(reinterpret_cast<const std::uint8_t*>(a.data()),
                        reinterpret_cast<std::uint8_t*>(want.data()), n);
      ops->xor_region(reinterpret_cast<const std::uint8_t*>(a.data()),
                      reinterpret_cast<std::uint8_t*>(got.data()), n);
      ASSERT_EQ(got, want) << "variant=" << to_string(ops->variant)
                           << " n=" << n;
      ops->xor_region(reinterpret_cast<const std::uint8_t*>(a.data()),
                      reinterpret_cast<std::uint8_t*>(got.data()), n);
      ASSERT_EQ(got, original) << "involution, variant="
                               << to_string(ops->variant) << " n=" << n;
    }
  }
}

TEST(GfKernels, ForceScalarEnvChangesDispatchNotOutput) {
  // The whole suite may itself run under HPRES_FORCE_SCALAR_GF=1 (the CI
  // forced-scalar job does exactly that), so save the inherited value and
  // restore it on the way out instead of assuming it starts unset.
  const char* prior = std::getenv("HPRES_FORCE_SCALAR_GF");
  const std::string saved = prior != nullptr ? prior : "";

  const Bytes src = make_pattern(10000, 12);
  Bytes before(src.size());
  gf().mul_region(173, src, before);

  ASSERT_EQ(setenv("HPRES_FORCE_SCALAR_GF", "1", /*overwrite=*/1), 0);
  detail::refresh_dispatch();
  EXPECT_EQ(active_variant(), GfKernelVariant::kScalar);
  Bytes after(src.size());
  gf().mul_region(173, src, after);
  EXPECT_EQ(after, before) << "forcing scalar must not change any byte";

  // With the variable absent — or set to the documented "0" meaning "not
  // forced" — dispatch picks the widest runnable variant.
  const GfKernelVariant widest = available_variants().back();
  ASSERT_EQ(unsetenv("HPRES_FORCE_SCALAR_GF"), 0);
  detail::refresh_dispatch();
  EXPECT_EQ(active_variant(), widest);
  ASSERT_EQ(setenv("HPRES_FORCE_SCALAR_GF", "0", /*overwrite=*/1), 0);
  detail::refresh_dispatch();
  EXPECT_EQ(active_variant(), widest);

  if (prior != nullptr) {
    ASSERT_EQ(setenv("HPRES_FORCE_SCALAR_GF", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("HPRES_FORCE_SCALAR_GF"), 0);
  }
  detail::refresh_dispatch();
}

TEST(GfKernels, ActiveVariantIsWidestAvailable) {
  // Unless the environment forces scalar, dispatch must pick the widest
  // runnable variant (the last entry of available_variants()).
  if (std::getenv("HPRES_FORCE_SCALAR_GF") != nullptr &&
      active_variant() == GfKernelVariant::kScalar) {
    GTEST_SKIP() << "scalar forced via environment";
  }
  EXPECT_EQ(active_variant(), available_variants().back());
}

// Row-by-row reference for StripeCoder: out[r] = sum_c coeff(r,c) * src[c]
// with plain (unfused) region sweeps through the scalar kernels.
std::vector<Bytes> reference_stripe(const StripeCoder& coder,
                                    const std::vector<Bytes>& sources,
                                    std::size_t len) {
  const GfKernelOps& scalar = *kernels_for(GfKernelVariant::kScalar);
  std::vector<Bytes> out(coder.rows(), Bytes(len));
  for (std::size_t r = 0; r < coder.rows(); ++r) {
    for (std::size_t c = 0; c < coder.cols(); ++c) {
      const auto* s = reinterpret_cast<const std::uint8_t*>(sources[c].data());
      auto* d = reinterpret_cast<std::uint8_t*>(out[r].data());
      if (c == 0) {
        gf_mul_region(scalar, coder.at(r, c), s, d, len);
      } else {
        gf_mul_region_acc(scalar, coder.at(r, c), s, d, len);
      }
    }
  }
  return out;
}

TEST(StripeCoder, MatchesRowByRowReferenceAcrossTileBoundaries) {
  Xoshiro256 rng(21);
  // Sizes straddling the fused tile size, including zero and odd tails.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{1000},
        StripeCoder::kTileBytes - 1, StripeCoder::kTileBytes,
        StripeCoder::kTileBytes + 1, std::size_t{20001}}) {
    for (const auto& [rows, cols] :
         {std::pair<std::size_t, std::size_t>{2, 3},
          std::pair<std::size_t, std::size_t>{4, 6},
          std::pair<std::size_t, std::size_t>{1, 1}}) {
      StripeCoder coder(rows, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          coder.set(r, c, static_cast<std::uint8_t>(rng()));
        }
      }
      // Plant the special coefficients on the first output row.
      coder.set(0, 0, 0);
      if (cols > 1) coder.set(0, 1, 1);

      std::vector<Bytes> sources;
      sources.reserve(cols);
      for (std::size_t c = 0; c < cols; ++c) {
        sources.push_back(make_pattern(len, 100 + c));
      }
      const std::vector<Bytes> want = reference_stripe(coder, sources, len);

      for (const GfKernelOps* ops : runnable_variants()) {
        std::vector<Bytes> got(rows, make_pattern(len, 77));  // stale content
        std::vector<ConstByteSpan> src_spans(sources.begin(), sources.end());
        std::vector<ByteSpan> out_spans(got.begin(), got.end());
        coder.apply_with(*ops, src_spans, out_spans);
        for (std::size_t r = 0; r < rows; ++r) {
          ASSERT_EQ(got[r], want[r])
              << "variant=" << to_string(ops->variant) << " len=" << len
              << " rows=" << rows << " cols=" << cols << " row=" << r;
        }
      }
    }
  }
}

TEST(StripeCoder, AllZeroRowZeroFillsOutput) {
  constexpr std::size_t kLen = 9000;
  StripeCoder coder(1, 2);  // both coefficients zero
  const std::vector<Bytes> sources{make_pattern(kLen, 1),
                                   make_pattern(kLen, 2)};
  Bytes out = make_pattern(kLen, 3);  // stale nonzero content
  std::vector<ConstByteSpan> src_spans(sources.begin(), sources.end());
  std::vector<ByteSpan> out_spans{ByteSpan{out}};
  coder.apply(src_spans, out_spans);
  EXPECT_EQ(out, Bytes(kLen));
}

}  // namespace
}  // namespace hpres::ec
