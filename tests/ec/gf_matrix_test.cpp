// Matrix algebra over GF(2^8): inversion, generator constructions, MDS
// property sweeps.
#include "ec/gf_matrix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace hpres::ec {
namespace {

TEST(GfMatrix, IdentityActsNeutrally) {
  const GfMatrix id = GfMatrix::identity(4);
  GfMatrix a(4, 4);
  Xoshiro256 rng(1);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.at(r, c) = static_cast<std::uint8_t>(rng());
    }
  }
  EXPECT_EQ(a.multiply(id), a);
  EXPECT_EQ(id.multiply(a), a);
}

TEST(GfMatrix, InverseTimesSelfIsIdentity) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(8);
    GfMatrix a(n, n);
    // Random matrices over GF(256) are overwhelmingly nonsingular; retry on
    // the rare singular draw.
    Result<GfMatrix> inv = Status{StatusCode::kInternal};
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          a.at(r, c) = static_cast<std::uint8_t>(rng());
        }
      }
      inv = a.inverted();
    } while (!inv.ok());
    EXPECT_EQ(a.multiply(*inv), GfMatrix::identity(n));
    EXPECT_EQ(inv->multiply(a), GfMatrix::identity(n));
  }
}

TEST(GfMatrix, SingularMatrixReportsError) {
  GfMatrix a(3, 3);  // all zeros
  EXPECT_FALSE(a.inverted().ok());

  // Duplicate rows.
  GfMatrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 9;
  b.at(1, 0) = 5;
  b.at(1, 1) = 9;
  const auto inv = b.inverted();
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), StatusCode::kInternal);
}

TEST(GfMatrix, NonSquareInversionRejected) {
  const GfMatrix a(2, 3);
  EXPECT_EQ(a.inverted().status().code(), StatusCode::kInvalidArgument);
}

TEST(GfMatrix, VandermondeRowsAreGeometric) {
  const GfMatrix v = GfMatrix::vandermonde(5, 3);
  const GF256& gf = GF256::instance();
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(v.at(r, 0), 1);  // x^0
    for (std::size_t c = 1; c < 3; ++c) {
      EXPECT_EQ(v.at(r, c),
                gf.mul(v.at(r, c - 1), static_cast<std::uint8_t>(r)));
    }
  }
}

TEST(GfMatrix, CauchyEntriesMatchDefinition) {
  const GfMatrix c = GfMatrix::cauchy(2, 3);
  const GF256& gf = GF256::instance();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t col = 0; col < 3; ++col) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(2 + col);
      EXPECT_EQ(c.at(r, col), gf.inv(static_cast<std::uint8_t>(x ^ y)));
    }
  }
}

TEST(GfMatrix, SelectRowsPreservesContent) {
  const GfMatrix v = GfMatrix::vandermonde(6, 4);
  const GfMatrix sel = v.select_rows({5, 0, 3});
  ASSERT_EQ(sel.rows(), 3u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(sel.at(0, c), v.at(5, c));
    EXPECT_EQ(sel.at(1, c), v.at(0, c));
    EXPECT_EQ(sel.at(2, c), v.at(3, c));
  }
}

// --- Generator constructions -----------------------------------------------

class GeneratorParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GeneratorParamTest, SystematicRsTopBlockIsIdentity) {
  const auto [k, m] = GetParam();
  const GfMatrix g = systematic_rs_generator(k, m);
  ASSERT_EQ(g.rows(), k + m);
  ASSERT_EQ(g.cols(), k);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      EXPECT_EQ(g.at(r, c), r == c ? 1 : 0);
    }
  }
}

// Exhaustive MDS check: every way of choosing k rows yields an invertible
// matrix, i.e. ANY k surviving fragments reconstruct the data.
void expect_mds(const GfMatrix& g, std::size_t k) {
  const std::size_t n = g.rows();
  std::vector<bool> mask(n, false);
  std::fill(mask.begin(), mask.begin() + static_cast<std::ptrdiff_t>(k), true);
  do {
    std::vector<std::size_t> choice;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask[i]) choice.push_back(i);
    }
    EXPECT_TRUE(g.select_rows(choice).inverted().ok())
        << "singular row choice found";
  } while (std::prev_permutation(mask.begin(), mask.end()));
}

TEST_P(GeneratorParamTest, SystematicRsIsMds) {
  const auto [k, m] = GetParam();
  expect_mds(systematic_rs_generator(k, m), k);
}

TEST_P(GeneratorParamTest, SystematicCauchyIsMds) {
  const auto [k, m] = GetParam();
  expect_mds(systematic_cauchy_generator(k, m), k);
}

INSTANTIATE_TEST_SUITE_P(
    KMGrid, GeneratorParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 2},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{4, 3},
                      std::pair<std::size_t, std::size_t>{5, 3},
                      std::pair<std::size_t, std::size_t>{6, 3},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{10, 4}));

TEST(GfMatrix, Raid6GeneratorIsMdsUpToTwoParities) {
  for (std::size_t k = 1; k <= 10; ++k) {
    expect_mds(raid6_generator(k, 2), k);
  }
}

TEST(GfMatrix, Raid6SingleParityIsXorRow) {
  const GfMatrix g = raid6_generator(4, 1);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(g.at(4, c), 1);
}

}  // namespace
}  // namespace hpres::ec
