// Locally Repairable Codes: construction guarantees, decodability bounds,
// repair locality, and the XOR local-rebuild path.
#include "ec/lrc.h"

#include <gtest/gtest.h>

#include <bit>

#include "common/bytes.h"
#include "ec/chunker.h"
#include "ec/rs_vandermonde.h"

namespace hpres::ec {
namespace {

struct Encoded {
  ChunkLayout layout;
  std::vector<Bytes> fragments;
};

Encoded encode_value(const Codec& codec, ConstByteSpan value) {
  Encoded out;
  out.layout = make_layout(value.size(), codec.k(), codec.alignment());
  out.fragments = split_value(value, out.layout);
  std::vector<ConstByteSpan> data(out.fragments.begin(), out.fragments.end());
  for (std::size_t p = 0; p < codec.m(); ++p) {
    out.fragments.emplace_back(out.layout.fragment_size);
  }
  std::vector<ByteSpan> parity(
      out.fragments.begin() + static_cast<std::ptrdiff_t>(codec.k()),
      out.fragments.end());
  codec.encode(data, parity);
  return out;
}

TEST(Lrc, ShapeAndGroups) {
  const LrcCodec lrc(6, 2, 2);
  EXPECT_EQ(lrc.k(), 6u);
  EXPECT_EQ(lrc.m(), 4u);  // 2 local + 2 global
  EXPECT_EQ(lrc.n(), 10u);
  EXPECT_EQ(lrc.group_size(), 3u);
  EXPECT_EQ(lrc.group_of(0), 0u);
  EXPECT_EQ(lrc.group_of(2), 0u);
  EXPECT_EQ(lrc.group_of(3), 1u);
  EXPECT_EQ(lrc.group_of(6), 0u);  // local parity of group 0
  EXPECT_EQ(lrc.group_of(7), 1u);
  EXPECT_FALSE(lrc.group_of(8).has_value());  // global parity
  EXPECT_FALSE(lrc.group_of(9).has_value());
  EXPECT_EQ(lrc.name(), "lrc");
}

TEST(Lrc, LocalParityIsGroupXor) {
  const LrcCodec lrc(4, 2, 2);
  const Bytes value = make_pattern(4 * 100, 1);
  const Encoded enc = encode_value(lrc, value);
  // Local parity of group 0 = frag0 ^ frag1.
  Bytes expect = enc.fragments[0];
  GF256::xor_region(enc.fragments[1], expect);
  EXPECT_EQ(enc.fragments[4], expect);
  // Group 1.
  expect = enc.fragments[2];
  GF256::xor_region(enc.fragments[3], expect);
  EXPECT_EQ(enc.fragments[5], expect);
}

TEST(Lrc, EveryPatternUpToGPlusOneRecovers) {
  // The construction-time guarantee, revalidated end-to-end with bytes.
  const LrcCodec lrc(4, 2, 2);  // n = 8, tolerates any 3
  const Bytes value = make_pattern(4 * 64 + 9, 2);
  const Encoded golden = encode_value(lrc, value);
  const std::size_t n = lrc.n();
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (std::popcount(mask) > 3) continue;
    std::vector<Bytes> working = golden.fragments;
    std::vector<bool> present(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        present[i] = false;
        std::fill(working[i].begin(), working[i].end(), std::byte{0});
      }
    }
    std::vector<ByteSpan> spans(working.begin(), working.end());
    ASSERT_TRUE(lrc.reconstruct(spans, present).ok()) << "mask " << mask;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(working[i], golden.fragments[i]) << "mask " << mask;
    }
  }
}

TEST(Lrc, SomePatternsBeyondGuaranteeAreUndecodable) {
  // Losing a group's data, its local parity AND one global parity leaves
  // rank < k: the code must refuse rather than fabricate bytes.
  const LrcCodec lrc(4, 2, 2);
  const Encoded enc = encode_value(lrc, make_pattern(400, 3));
  std::vector<Bytes> working = enc.fragments;
  std::vector<bool> present(8, true);
  for (const std::size_t slot : {0u, 1u, 4u, 6u}) present[slot] = false;
  std::vector<ByteSpan> spans(working.begin(), working.end());
  EXPECT_EQ(lrc.reconstruct(spans, present).code(),
            StatusCode::kTooManyFailures);
}

TEST(Lrc, SomeFourFailurePatternsStillDecode) {
  // ...while information-complete 4-loss patterns (spread across groups)
  // decode fine — the rank-based survivor selection finds them.
  const LrcCodec lrc(4, 2, 2);
  const Bytes value = make_pattern(444, 4);
  const Encoded golden = encode_value(lrc, value);
  std::vector<Bytes> working = golden.fragments;
  std::vector<bool> present(8, true);
  // One data loss per group + both local parities: globals + survivors
  // still span full rank.
  for (const std::size_t slot : {0u, 2u, 4u, 5u}) {
    present[slot] = false;
    std::fill(working[slot].begin(), working[slot].end(), std::byte{0});
  }
  std::vector<ByteSpan> spans(working.begin(), working.end());
  ASSERT_TRUE(lrc.reconstruct(spans, present).ok());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(working[i], golden.fragments[i]);
  }
}

TEST(Lrc, MinimalRepairSourcesAreTheGroup) {
  const LrcCodec lrc(6, 2, 2);
  std::vector<bool> all_present(10, true);
  // Data slot 1 (group 0): peers 0,2 + local parity 6.
  const auto src = lrc.minimal_repair_sources(1, all_present);
  ASSERT_TRUE(src.has_value());
  EXPECT_EQ(*src, (std::vector<std::size_t>{0, 2, 6}));
  // Local parity 7 (group 1): data 3,4,5.
  const auto lp = lrc.minimal_repair_sources(7, all_present);
  ASSERT_TRUE(lp.has_value());
  EXPECT_EQ(*lp, (std::vector<std::size_t>{3, 4, 5}));
  // Global parity: no locality.
  EXPECT_FALSE(lrc.minimal_repair_sources(8, all_present).has_value());
  // Second loss in the group: no locality.
  std::vector<bool> degraded = all_present;
  degraded[2] = false;
  EXPECT_FALSE(lrc.minimal_repair_sources(1, degraded).has_value());
}

TEST(Lrc, RebuildFromSourcesMatchesOriginal) {
  const LrcCodec lrc(6, 2, 2);
  const Bytes value = make_pattern(6 * 128, 5);
  const Encoded enc = encode_value(lrc, value);
  std::vector<bool> present(10, true);
  for (std::size_t slot = 0; slot < 8; ++slot) {  // data + local parities
    const auto src = lrc.minimal_repair_sources(slot, present);
    ASSERT_TRUE(src.has_value()) << slot;
    std::vector<ConstByteSpan> sources;
    for (const std::size_t s : *src) sources.push_back(enc.fragments[s]);
    Bytes out(enc.layout.fragment_size);
    ASSERT_TRUE(lrc.rebuild_from_sources(slot, sources, out).ok()) << slot;
    EXPECT_EQ(out, enc.fragments[slot]) << slot;
  }
}

TEST(Lrc, RepairLocalityBeatsRsReadCount) {
  // The whole point: single-fragment repair reads group_size fragments
  // instead of k.
  const LrcCodec lrc(6, 2, 2);
  std::vector<bool> present(10, true);
  const auto src = lrc.minimal_repair_sources(0, present);
  ASSERT_TRUE(src.has_value());
  EXPECT_EQ(src->size(), 3u);  // vs k = 6 for RS
  EXPECT_LT(src->size(), lrc.k());
}

TEST(Lrc, MdsBaseCodecsAdvertiseNoLocality) {
  const RsVandermondeCodec rs(3, 2);
  EXPECT_FALSE(
      rs.minimal_repair_sources(0, std::vector<bool>(5, true)).has_value());
  Bytes out(8);
  const std::vector<ConstByteSpan> none;
  EXPECT_EQ(rs.rebuild_from_sources(0, none, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(Lrc, SingleGroupDegeneratesGracefully) {
  // l = 1: one local parity over all data (RAID-5-like) + globals.
  const LrcCodec lrc(4, 1, 1);
  EXPECT_EQ(lrc.n(), 6u);
  const Bytes value = make_pattern(777, 6);
  const Encoded golden = encode_value(lrc, value);
  std::vector<Bytes> working = golden.fragments;
  std::vector<bool> present(6, true);
  present[1] = false;
  present[5] = false;  // data + global: within g+1 = 2
  std::fill(working[1].begin(), working[1].end(), std::byte{0});
  std::fill(working[5].begin(), working[5].end(), std::byte{0});
  std::vector<ByteSpan> spans(working.begin(), working.end());
  ASSERT_TRUE(lrc.reconstruct(spans, present).ok());
  EXPECT_EQ(working[1], golden.fragments[1]);
}

}  // namespace
}  // namespace hpres::ec
