// Fabric timing model: Equation 1 behaviour, NIC serialization, incast
// queueing, eager/rendezvous switch, failure drops, FIFO per pair.
#include "net/fabric.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpres::net {
namespace {

using TestFabric = Fabric<int>;

FabricParams flat_params() {
  // Round numbers for exact arithmetic: L = 1000ns, 8 Gbps = 1 byte/ns,
  // no per-message cost, no header, eager everywhere with no copy cost.
  FabricParams p;
  p.name = "test";
  p.latency_ns = 1'000;
  p.bandwidth_gbps = 8.0;
  p.per_message_ns = 0;
  p.rendezvous_threshold = static_cast<std::size_t>(-1);
  p.eager_copy_ns_per_byte = 0.0;
  p.header_bytes = 0;
  return p;
}

struct Receiver {
  static sim::Task<void> run(TestFabric* fabric, NodeId id,
                             std::vector<std::pair<int, SimTime>>* log,
                             sim::Simulator* sim, int expected) {
    auto& inbox = fabric->inbox(id);
    for (int i = 0; i < expected; ++i) {
      const auto env = co_await inbox.recv();
      if (!env) break;
      log->push_back({env->body, sim->now()});
    }
  }
};

TEST(Fabric, UnloadedTransferMatchesEquationOne) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 1));
  fabric.send(0, 1, 7, 4096);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  // T = L + D/B = 1000 + 4096 ns.
  EXPECT_EQ(log[0].second, 1'000 + 4'096);
}

TEST(Fabric, ZeroByteMessageTakesLatencyOnly) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 1));
  fabric.send(0, 1, 1, 0);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 1'000);
}

TEST(Fabric, SenderNicSerializesConcurrentSends) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 3);
  std::vector<std::pair<int, SimTime>> log1;
  std::vector<std::pair<int, SimTime>> log2;
  sim.spawn(Receiver::run(&fabric, 1, &log1, &sim, 1));
  sim.spawn(Receiver::run(&fabric, 2, &log2, &sim, 1));
  fabric.send(0, 1, 1, 10'000);
  fabric.send(0, 2, 2, 10'000);  // queued behind the first at node 0's NIC
  sim.run();
  ASSERT_EQ(log1.size(), 1u);
  ASSERT_EQ(log2.size(), 1u);
  EXPECT_EQ(log1[0].second, 1'000 + 10'000);
  EXPECT_EQ(log2[0].second, 1'000 + 20'000);  // waited for tx slot
}

TEST(Fabric, ReceiverNicQueuesIncast) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 3);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 2, &log, &sim, 2));
  // Two different senders target node 2 simultaneously.
  fabric.send(0, 2, 1, 10'000);
  fabric.send(1, 2, 2, 10'000);
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].second, 11'000);  // first stream lands at L + D/B
  EXPECT_EQ(log[1].second, 21'000);  // second queues at the receiver NIC
}

TEST(Fabric, ParallelDisjointPairsDoNotInterfere) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 4);
  std::vector<std::pair<int, SimTime>> log2;
  std::vector<std::pair<int, SimTime>> log3;
  sim.spawn(Receiver::run(&fabric, 2, &log2, &sim, 1));
  sim.spawn(Receiver::run(&fabric, 3, &log3, &sim, 1));
  fabric.send(0, 2, 1, 10'000);
  fabric.send(1, 3, 2, 10'000);
  sim.run();
  EXPECT_EQ(log2[0].second, 11'000);
  EXPECT_EQ(log3[0].second, 11'000);  // full parallelism
}

TEST(Fabric, RendezvousAddsHandshakeRoundTrip) {
  FabricParams p = flat_params();
  p.rendezvous_threshold = 16 * 1024;
  sim::Simulator sim;
  TestFabric fabric(sim, p, 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 2));
  fabric.send(0, 1, 1, 16 * 1024);      // rendezvous: 2L handshake first
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 2'000 + 1'000 + 16 * 1024);
  EXPECT_EQ(fabric.stats().rendezvous_handshakes, 1u);
}

TEST(Fabric, EagerCopyCostDelaysSmallMessages) {
  FabricParams p = flat_params();
  p.eager_copy_ns_per_byte = 1.0;
  sim::Simulator sim;
  TestFabric fabric(sim, p, 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 1));
  fabric.send(0, 1, 1, 1'000);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  // copy (1000) + L (1000) + D/B (1000)
  EXPECT_EQ(log[0].second, 3'000);
}

TEST(Fabric, HeaderBytesRideTheWire) {
  FabricParams p = flat_params();
  p.header_bytes = 64;
  sim::Simulator sim;
  TestFabric fabric(sim, p, 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 1));
  fabric.send(0, 1, 1, 1'000);
  sim.run();
  EXPECT_EQ(log[0].second, 1'000 + 1'064);
}

TEST(Fabric, SendToFailedNodeIsDropped) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  fabric.set_node_up(1, false);
  fabric.send(0, 1, 1, 100);
  sim.run();
  EXPECT_EQ(fabric.stats().messages_dropped, 1u);
  EXPECT_EQ(fabric.inbox(1).size(), 0u);
  fabric.set_node_up(1, true);
  EXPECT_TRUE(fabric.node_up(1));
}

TEST(Fabric, FifoPerPairEvenWithMixedSizes) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 3));
  fabric.send(0, 1, 1, 50'000);  // big first
  fabric.send(0, 1, 2, 10);      // small cannot overtake on an RC QP
  fabric.send(0, 1, 3, 10);
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 1);
  EXPECT_EQ(log[1].first, 2);
  EXPECT_EQ(log[2].first, 3);
  EXPECT_LT(log[0].second, log[1].second);
  EXPECT_LE(log[1].second, log[2].second);
}

TEST(Fabric, LoopbackSkipsNic) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 0, &log, &sim, 1));
  fabric.send(0, 0, 1, 1'000'000);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_LT(log[0].second, 1'000);  // far below any wire transfer
}

TEST(Fabric, StatsCountTraffic) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  std::vector<std::pair<int, SimTime>> log;
  sim.spawn(Receiver::run(&fabric, 1, &log, &sim, 2));
  fabric.send(0, 1, 1, 100);
  fabric.send(0, 1, 2, 200);
  sim.run();
  EXPECT_EQ(fabric.stats().messages_sent, 2u);
  EXPECT_EQ(fabric.stats().bytes_sent, 300u);
}

TEST(Fabric, DroppedMessagesCountBytesAndConserve) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 3);
  fabric.set_node_up(1, false);
  fabric.send(0, 1, 1, 700);  // dst down: dropped
  fabric.send(1, 2, 2, 300);  // src down: dropped
  fabric.send(0, 2, 3, 100);
  fabric.send(0, 2, 4, 150);
  sim.run();
  const FabricStats& s = fabric.stats();
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(s.drops_dst_down, 1u);
  EXPECT_EQ(s.drops_src_down, 1u);
  EXPECT_EQ(s.bytes_dropped, 1'000u);
  EXPECT_EQ(fabric.inbox(2).size(), 2u);
  // Conservation identities at quiescence (header_bytes == 0): everything
  // sent was either delivered or accounted as dropped — nothing vanishes.
  EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
  EXPECT_EQ(s.bytes_sent, s.bytes_delivered + s.bytes_dropped);
  EXPECT_EQ(fabric.in_flight_bytes(), 0u);
}

TEST(Fabric, SeededLossIsDeterministicAndConserves) {
  auto run_lossy = [](std::uint64_t seed) {
    sim::Simulator sim;
    TestFabric fabric(sim, flat_params(), 2);
    fabric.set_loss(0.5, seed);
    for (int i = 0; i < 200; ++i) fabric.send(0, 1, i, 64);
    sim.run();
    const FabricStats& s = fabric.stats();
    EXPECT_GT(s.drops_injected, 0u);
    EXPECT_LT(s.drops_injected, 200u);
    EXPECT_EQ(s.messages_dropped, s.drops_injected);
    EXPECT_EQ(s.bytes_dropped, 64u * s.drops_injected);
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
    EXPECT_EQ(s.bytes_sent, s.bytes_delivered + s.bytes_dropped);
    return s.drops_injected;
  };
  EXPECT_EQ(run_lossy(42), run_lossy(42));       // same seed, same drops
  EXPECT_NE(run_lossy(42), run_lossy(0xbeef));   // loss pattern is seeded
}

TEST(Fabric, FullLossDropsEverything) {
  sim::Simulator sim;
  TestFabric fabric(sim, flat_params(), 2);
  fabric.set_loss(1.0);
  for (int i = 0; i < 10; ++i) fabric.send(0, 1, i, 32);
  sim.run();
  EXPECT_EQ(fabric.stats().drops_injected, 10u);
  EXPECT_EQ(fabric.stats().messages_delivered, 0u);
  EXPECT_EQ(fabric.inbox(1).size(), 0u);
}

TEST(FabricParams, PresetsAreOrderedByGeneration) {
  const auto qdr = FabricParams::rdma_qdr();
  const auto fdr = FabricParams::rdma_fdr();
  const auto edr = FabricParams::rdma_edr();
  const auto ipoib = FabricParams::ipoib_qdr();
  EXPECT_LT(qdr.bandwidth_gbps, fdr.bandwidth_gbps);
  EXPECT_LT(fdr.bandwidth_gbps, edr.bandwidth_gbps);
  EXPECT_GT(qdr.latency_ns, fdr.latency_ns);
  EXPECT_GT(ipoib.latency_ns, 5 * qdr.latency_ns);  // kernel TCP stack
  EXPECT_LT(ipoib.bandwidth_gbps, qdr.bandwidth_gbps);
}

}  // namespace
}  // namespace hpres::net
