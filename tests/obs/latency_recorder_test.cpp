// LatencyRecorder: log-bucketed percentile accuracy against exact sorted
// quantiles, edge cases (empty, single sample, bucket boundaries), tail
// sampling semantics, and the O(1)-memory-per-label bound.
#include "obs/latency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/histogram.h"

namespace hpres::obs {
namespace {

/// Deterministic 64-bit LCG (no std::random in tests: identical sequences
/// on every platform).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17U;
  }
  /// Uniform in [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

/// Exact quantile with the histogram's rank convention:
/// sorted[floor(q * (n - 1))].
std::int64_t exact_quantile(std::vector<std::int64_t> sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// One bucket's relative error: the histogram reports the midpoint of the
/// bucket holding the ranked sample, so the error is bounded by the bucket
/// width: width <= value / kSubBuckets for values past the first bucket run,
/// and 1 ns below it.
void expect_within_bucket_error(std::int64_t approx, std::int64_t exact,
                                const char* what) {
  const double tol = std::max(
      1.0, static_cast<double>(exact) /
               static_cast<double>(LatencyHistogram::kSubBuckets));
  EXPECT_LE(std::abs(static_cast<double>(approx - exact)), tol)
      << what << ": approx=" << approx << " exact=" << exact;
}

void check_quantiles_against_exact(const std::vector<std::int64_t>& samples) {
  LatencyRecorder rec;
  for (const std::int64_t v : samples) rec.record("get", "era", false, v);

  std::vector<std::int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  const std::vector<LatencyRow> rows = rec.rows();
  ASSERT_EQ(rows.size(), 1u);
  const LatencyRow& row = rows[0];
  EXPECT_EQ(row.count, samples.size());
  expect_within_bucket_error(row.p50_ns, exact_quantile(sorted, 0.50), "p50");
  expect_within_bucket_error(row.p95_ns, exact_quantile(sorted, 0.95), "p95");
  expect_within_bucket_error(row.p99_ns, exact_quantile(sorted, 0.99), "p99");
  expect_within_bucket_error(row.p999_ns, exact_quantile(sorted, 0.999),
                             "p999");
  // max is tracked exactly, outside the bucketing.
  EXPECT_EQ(row.max_ns, sorted.back());
}

TEST(LatencyRecorder, UniformSamplesMatchExactQuantiles) {
  Lcg rng(1);
  std::vector<std::int64_t> samples;
  samples.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) samples.push_back(rng.uniform(100, 5'000'000));
  check_quantiles_against_exact(samples);
}

TEST(LatencyRecorder, HeavyTailSamplesMatchExactQuantiles) {
  // Log-uniform across six decades: the regime percentile engines exist for.
  Lcg rng(2);
  std::vector<std::int64_t> samples;
  samples.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const double exponent = 2.0 + 6.0 * static_cast<double>(rng.next() % 10'000) / 10'000.0;
    samples.push_back(static_cast<std::int64_t>(std::pow(10.0, exponent)));
  }
  check_quantiles_against_exact(samples);
}

TEST(LatencyRecorder, BucketBoundaryValuesMatchExactQuantiles) {
  // Powers of two and their neighbours land exactly on sub-bucket edges.
  std::vector<std::int64_t> samples;
  for (int k = 0; k < 40; ++k) {
    const std::int64_t v = std::int64_t{1} << k;
    samples.push_back(v - 1);
    samples.push_back(v);
    samples.push_back(v + 1);
  }
  check_quantiles_against_exact(samples);
}

TEST(LatencyRecorder, ConstantSamplesAreExact) {
  LatencyRecorder rec;
  for (int i = 0; i < 1'000; ++i) rec.record("get", "era", false, 12'345);
  const std::vector<LatencyRow> rows = rec.rows();
  ASSERT_EQ(rows.size(), 1u);
  // All quantiles clamp into [min, max] = [12345, 12345]: exact.
  EXPECT_EQ(rows[0].p50_ns, 12'345);
  EXPECT_EQ(rows[0].p999_ns, 12'345);
  EXPECT_EQ(rows[0].max_ns, 12'345);
}

TEST(LatencyRecorder, EmptyAndSingleSample) {
  LatencyRecorder empty;
  EXPECT_TRUE(empty.rows().empty());
  EXPECT_EQ(empty.label_count(), 0u);
  EXPECT_TRUE(empty.kept_traces().empty());

  LatencyRecorder one;
  one.record("set", "rep", false, 777);
  const std::vector<LatencyRow> rows = one.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[0].p50_ns, 777);
  EXPECT_EQ(rows[0].p999_ns, 777);
  EXPECT_EQ(rows[0].max_ns, 777);
}

TEST(LatencyRecorder, LabelsSeparateAndSortDeterministically) {
  LatencyRecorder rec;
  rec.record("set", "era", false, 10);
  rec.record("get", "era", true, 30);
  rec.record("get", "era", false, 20);
  const std::vector<LatencyRow> rows = rec.rows();
  ASSERT_EQ(rows.size(), 3u);
  // std::map key order: ("get", era, false), ("get", era, true), ("set", ...).
  EXPECT_EQ(rows[0].key.op, "get");
  EXPECT_FALSE(rows[0].key.degraded);
  EXPECT_EQ(rows[1].key.op, "get");
  EXPECT_TRUE(rows[1].key.degraded);
  EXPECT_EQ(rows[2].key.op, "set");
}

TEST(LatencyRecorder, TailKeepsThresholdHitsAndSlowestReservoir) {
  LatencyRecorder rec;
  rec.set_tail({/*threshold_ns=*/1'000'000, /*keep_slowest=*/3});
  // Trace ids 1..100 with latency = id us; only 2 exceed the 1 ms threshold,
  // and the slowest-3 reservoir holds {98, 99, 100}.
  for (std::uint64_t id = 1; id <= 100; ++id) {
    const auto lat = static_cast<SimDur>(id * 10'000);
    rec.record("get", "era", false, lat, id);
  }
  const std::unordered_set<std::uint64_t> kept = rec.kept_traces();
  EXPECT_TRUE(kept.contains(100));
  EXPECT_TRUE(kept.contains(99));
  EXPECT_TRUE(kept.contains(98));
  EXPECT_FALSE(kept.contains(50));
  // Threshold hits: 99 (990 us) is below 1 ms, 100 hits exactly 1 ms.
  EXPECT_LE(kept.size(), 3u + 1u);
}

TEST(LatencyRecorder, UntracedOpsNeverEnterTailSets) {
  LatencyRecorder rec;
  rec.set_tail({/*threshold_ns=*/1, /*keep_slowest=*/8});
  for (int i = 0; i < 100; ++i) rec.record("get", "era", false, 1'000'000, 0);
  EXPECT_TRUE(rec.kept_traces().empty());
}

// Acceptance invariant: memory per label set is O(1) — the histogram is a
// fixed bucket array and the tail sets are hard-bounded — no matter how many
// ops are recorded.
TEST(LatencyRecorder, MemoryPerLabelIsBounded) {
  LatencyRecorder rec;
  rec.set_tail({/*threshold_ns=*/1, /*keep_slowest=*/16});
  const LatencyKey key{"get", "era", false};
  for (std::uint64_t id = 1; id <= 200'000; ++id) {
    rec.record("get", "era", false, static_cast<SimDur>(id), id);
  }
  EXPECT_EQ(rec.label_count(), 1u);
  // Every op beat the (absurdly low) threshold, yet the kept set is capped.
  EXPECT_LE(rec.kept_count(key),
            LatencyRecorder::kMaxThresholdKept + 16u);
  // And the histogram keeps exact counts regardless.
  const LatencyHistogram* hist = rec.histogram(key);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 200'000u);
}

TEST(LatencyRecorder, MergeCombinesCountsAndTails) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.set_tail({/*threshold_ns=*/500, /*keep_slowest=*/2});
  b.set_tail({/*threshold_ns=*/500, /*keep_slowest=*/2});
  a.record("get", "era", false, 100, 1);
  a.record("get", "era", false, 900, 2);  // over threshold
  b.record("get", "era", false, 300, 3);
  b.record("get", "era", true, 800, 4);  // over threshold, new label

  a.merge(b);
  const std::vector<LatencyRow> rows = a.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, 3u);  // healthy gets: 100, 900, 300
  EXPECT_EQ(rows[1].count, 1u);  // degraded get
  const std::unordered_set<std::uint64_t> kept = a.kept_traces();
  EXPECT_TRUE(kept.contains(2));
  EXPECT_TRUE(kept.contains(4));

  a.clear();
  EXPECT_EQ(a.label_count(), 0u);
  EXPECT_TRUE(a.rows().empty());
}

}  // namespace
}  // namespace hpres::obs
