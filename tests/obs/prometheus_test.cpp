// Prometheus text-exposition exporter: label values are escaped per the
// exposition-format grammar (backslash, double-quote, newline), metric
// names are sanitized, and hostile label values can never break a sample
// line apart or smuggle in an extra one.
#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace hpres::obs {
namespace {

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("health.score_x1000"), "hpres_health_score_x1000");
  EXPECT_EQ(prometheus_name("rpc.timeouts"), "hpres_rpc_timeouts");
  EXPECT_EQ(prometheus_name("a/b-c d"), "hpres_a_b_c_d");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "hpres_ok_name:sub");
}

TEST(Prometheus, HostileLabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("evil", MetricLabels{"back\\slash", "quo\"te", "new\nline"})
      .inc(7);
  const std::string out = reg.to_prometheus();

  EXPECT_NE(out.find("component=\"back\\\\slash\""), std::string::npos) << out;
  EXPECT_NE(out.find("node=\"quo\\\"te\""), std::string::npos) << out;
  EXPECT_NE(out.find("op=\"new\\nline\""), std::string::npos) << out;

  // The raw hostile bytes must not survive unescaped: a literal newline
  // inside a label would split the sample into two bogus lines, a literal
  // quote would terminate the value early.
  EXPECT_EQ(out.find("new\nline"), std::string::npos);
  EXPECT_EQ(out.find("quo\"te\""), std::string::npos);

  // Exactly one # TYPE line and one sample line — nothing leaked extra
  // newlines into the body.
  std::size_t lines = 0;
  for (const char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u) << out;
}

TEST(Prometheus, HostileValueRoundTripsThroughAllThreeLabels) {
  // The same worst-case value in every label slot renders one well-formed
  // sample ending in the numeric value.
  const std::string evil = "a\\\"\n";
  MetricsRegistry reg;
  reg.gauge("g", MetricLabels{evil, evil, evil}).set(42);
  const std::string out = reg.to_prometheus();
  const std::string escaped = "a\\\\\\\"\\n";
  EXPECT_NE(out.find("component=\"" + escaped + "\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"} 42\n"), std::string::npos) << out;
}

TEST(Prometheus, EmptyLabelsOmitBraces) {
  MetricsRegistry reg;
  reg.counter("plain", MetricLabels{}).inc();
  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("hpres_plain 1\n"), std::string::npos) << out;
  EXPECT_EQ(out.find('{'), std::string::npos);
}

}  // namespace
}  // namespace hpres::obs
