// Span tracer and periodic gauge sampler: zero-overhead-when-disabled,
// duration totals, Chrome trace_event JSON shape, and the sampler's
// simulated-time tick loop with its stop protocol.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/sampler.h"
#include "sim/simulator.h"

namespace hpres::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;  // disabled by default
  EXPECT_FALSE(t.enabled());
  const std::uint32_t pid = t.declare_process("pt0");
  t.complete(pid, 1, "set", "engine", 0, 100);
  t.async_span(pid, 7, "wait", "arpe", 0, 50);
  t.instant(pid, 1, "drop", "fabric", 10);
  t.counter(pid, "depth", 10, 3);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.total_ns(pid, "set"), 0);
  EXPECT_EQ(t.span_count(pid, "set"), 0u);
}

TEST(Tracer, ProcessIdsAreSequentialRegardlessOfEnabled) {
  Tracer t;
  EXPECT_EQ(t.declare_process("a"), 0u);
  t.set_enabled(true);
  EXPECT_EQ(t.declare_process("b"), 1u);
  EXPECT_EQ(t.declare_process("c"), 2u);
  // Only the enabled declarations emitted metadata events.
  EXPECT_EQ(t.event_count(), 2u);
}

TEST(Tracer, CompleteSpansAccumulateTotals) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  t.complete(pid, 1, "set", "engine", 0, 100);
  t.complete(pid, 2, "set", "engine", 50, 250);
  t.complete(pid, 1, "get", "engine", 400, 30);
  EXPECT_EQ(t.total_ns(pid, "set"), 350);
  EXPECT_EQ(t.span_count(pid, "set"), 2u);
  EXPECT_EQ(t.total_ns(pid, "get"), 30);
  // Totals are per process.
  const std::uint32_t other = t.declare_process("pt1");
  EXPECT_EQ(t.total_ns(other, "set"), 0);
}

TEST(Tracer, AsyncSpanCountsOnceAndEmitsBeginEndPair) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  const std::size_t before = t.event_count();
  t.async_span(pid, 42, "arpe/window_wait", "arpe", 1000, 500);
  EXPECT_EQ(t.event_count(), before + 2);  // 'b' + 'e'
  EXPECT_EQ(t.total_ns(pid, "arpe/window_wait"), 500);
  EXPECT_EQ(t.span_count(pid, "arpe/window_wait"), 1u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
}

TEST(Tracer, JsonHasTraceEventShape) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("point \"zero\"");
  t.complete(pid, Tracer::kNicTidBase + 3, "fabric/send", "fabric", 1500, 750);
  t.counter(pid, "in_flight_bytes", 2000, 4096);
  t.instant(pid, 1, "drop", "fabric", 2500);
  const std::string json = t.to_json();
  for (const char* needle :
       {"\"displayTimeUnit\":\"ns\"", "\"traceEvents\":[",
        "\"ph\":\"M\"", "\"process_name\"",
        "\"point \\\"zero\\\"\"",  // escaping
        "\"ph\":\"X\"", "\"fabric/send\"", "\"ph\":\"C\"",
        "\"args\":{\"value\":4096}", "\"ph\":\"i\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Timestamps serialize in fixed-width fractional microseconds:
  // 1500 ns -> "1.500".
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.750"), std::string::npos);
}

TEST(Tracer, JsonIsAPureFunctionOfTheEvents) {
  const auto build = [] {
    Tracer t(true);
    const std::uint32_t pid = t.declare_process("pt0");
    t.complete(pid, 1, "set", "engine", 0, 100);
    t.async_span(pid, 2, "wait", "arpe", 10, 20);
    t.counter(pid, "depth", 30, 1);
    return t.to_json();
  };
  EXPECT_EQ(build(), build());
}

// --- Sampler ---------------------------------------------------------------

struct SamplerRig {
  sim::Simulator sim;
  Tracer tracer{true};
  std::uint32_t pid = tracer.declare_process("rig");
  std::int64_t depth = 0;
};

sim::Task<void> workload(SamplerRig* rig, Sampler* sampler) {
  for (int i = 1; i <= 5; ++i) {
    co_await rig->sim.delay(1'000);
    rig->depth = i;
  }
  sampler->request_stop();
}

TEST(Sampler, SamplesGaugesOnSimClockUntilStopped) {
  SamplerRig rig;
  Sampler sampler(rig.sim, rig.tracer, rig.pid, /*interval_ns=*/500);
  sampler.add_gauge("queue_depth", [&rig] { return rig.depth; });
  rig.sim.spawn(workload(&rig, &sampler));
  sampler.start();
  rig.sim.run();
  // Workload runs 5 ms of sim time; the 0.5 ms sampler must have ticked
  // roughly ten times (one immediate sample + one per interval) and then
  // stopped — the run() above returned, proving the queue drained.
  EXPECT_GE(sampler.samples(), 10u);
  EXPECT_LE(sampler.samples(), 12u);
  EXPECT_EQ(sampler.num_gauges(), 1u);
  EXPECT_EQ(sampler.series_stats(0).min(), 0.0);
  // Whether the final tick lands before or after the stop request is a
  // same-timestamp ordering detail; the sampler saw depth reach at least 4.
  EXPECT_GE(sampler.series_stats(0).max(), 4.0);
  EXPECT_LE(sampler.series_stats(0).max(), 5.0);
  // Every tick emitted one counter event.
  const std::string json = rig.tracer.to_json();
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Sampler, DisabledTracerMakesStartANoOp) {
  sim::Simulator sim;
  Tracer tracer;  // disabled
  Sampler sampler(sim, tracer, 0, 500);
  std::int64_t v = 0;
  sampler.add_gauge("g", [&v] { return v; });
  sampler.start();
  sim.run();  // no sampler process was spawned; returns immediately
  EXPECT_EQ(sampler.samples(), 0u);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Sampler, NoGaugesMakesStartANoOp) {
  sim::Simulator sim;
  Tracer tracer(true);
  Sampler sampler(sim, tracer, 0, 500);
  sampler.start();
  sim.run();
  EXPECT_EQ(sampler.samples(), 0u);
}

}  // namespace
}  // namespace hpres::obs
