// Span tracer and periodic gauge sampler: zero-overhead-when-disabled,
// duration totals, Chrome trace_event JSON shape, and the sampler's
// simulated-time tick loop with its stop protocol.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/sampler.h"
#include "sim/simulator.h"

namespace hpres::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;  // disabled by default
  EXPECT_FALSE(t.enabled());
  const std::uint32_t pid = t.declare_process("pt0");
  t.complete(pid, 1, "set", "engine", 0, 100);
  t.async_span(pid, 7, "wait", "arpe", 0, 50);
  t.instant(pid, 1, "drop", "fabric", 10);
  t.counter(pid, "depth", 10, 3);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.total_ns(pid, "set"), 0);
  EXPECT_EQ(t.span_count(pid, "set"), 0u);
}

TEST(Tracer, ProcessIdsAreSequentialRegardlessOfEnabled) {
  Tracer t;
  EXPECT_EQ(t.declare_process("a"), 0u);
  t.set_enabled(true);
  EXPECT_EQ(t.declare_process("b"), 1u);
  EXPECT_EQ(t.declare_process("c"), 2u);
  // Only the enabled declarations emitted metadata events.
  EXPECT_EQ(t.event_count(), 2u);
}

TEST(Tracer, CompleteSpansAccumulateTotals) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  t.complete(pid, 1, "set", "engine", 0, 100);
  t.complete(pid, 2, "set", "engine", 50, 250);
  t.complete(pid, 1, "get", "engine", 400, 30);
  EXPECT_EQ(t.total_ns(pid, "set"), 350);
  EXPECT_EQ(t.span_count(pid, "set"), 2u);
  EXPECT_EQ(t.total_ns(pid, "get"), 30);
  // Totals are per process.
  const std::uint32_t other = t.declare_process("pt1");
  EXPECT_EQ(t.total_ns(other, "set"), 0);
}

TEST(Tracer, AsyncSpanCountsOnceAndEmitsBeginEndPair) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  const std::size_t before = t.event_count();
  t.async_span(pid, 42, "arpe/window_wait", "arpe", 1000, 500);
  EXPECT_EQ(t.event_count(), before + 2);  // 'b' + 'e'
  EXPECT_EQ(t.total_ns(pid, "arpe/window_wait"), 500);
  EXPECT_EQ(t.span_count(pid, "arpe/window_wait"), 1u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
}

TEST(Tracer, JsonHasTraceEventShape) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("point \"zero\"");
  t.complete(pid, Tracer::kNicTidBase + 3, "fabric/send", "fabric", 1500, 750);
  t.counter(pid, "in_flight_bytes", 2000, 4096);
  t.instant(pid, 1, "drop", "fabric", 2500);
  const std::string json = t.to_json();
  for (const char* needle :
       {"\"displayTimeUnit\":\"ns\"", "\"traceEvents\":[",
        "\"ph\":\"M\"", "\"process_name\"",
        "\"point \\\"zero\\\"\"",  // escaping
        "\"ph\":\"X\"", "\"fabric/send\"", "\"ph\":\"C\"",
        "\"args\":{\"value\":4096}", "\"ph\":\"i\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Timestamps serialize in fixed-width fractional microseconds:
  // 1500 ns -> "1.500".
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.750"), std::string::npos);
}

TEST(Tracer, JsonIsAPureFunctionOfTheEvents) {
  const auto build = [] {
    Tracer t(true);
    const std::uint32_t pid = t.declare_process("pt0");
    t.complete(pid, 1, "set", "engine", 0, 100);
    t.async_span(pid, 2, "wait", "arpe", 10, 20);
    t.counter(pid, "depth", 30, 1);
    return t.to_json();
  };
  EXPECT_EQ(build(), build());
}

// --- Causal tracing primitives ---------------------------------------------

TEST(TraceContext, InvalidWhenDisabledAndChildKeepsTraceId) {
  Tracer off;
  EXPECT_EQ(off.new_trace_id(), 0u);
  EXPECT_FALSE(TraceContext{}.valid());

  Tracer on(true);
  const TraceContext root{on.new_trace_id(), /*span_id=*/17, 0};
  ASSERT_TRUE(root.valid());
  const TraceContext child = root.child(99);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.span_id, 99u);
  EXPECT_EQ(child.parent_span_id, root.span_id);
}

TEST(Tracer, TraceIdsAreDenseAndWatermarkSnapshotsThem) {
  Tracer t(true);
  const std::uint64_t wm = t.trace_watermark();
  const std::uint64_t a = t.new_trace_id();
  const std::uint64_t b = t.new_trace_id();
  EXPECT_EQ(a, wm);
  EXPECT_EQ(b, wm + 1);
  EXPECT_EQ(t.trace_watermark(), wm + 2);
}

TEST(LanePool, ReusesLowestFreedLaneFirst) {
  LanePool pool;
  EXPECT_EQ(pool.acquire(), 0u);
  EXPECT_EQ(pool.acquire(), 1u);
  EXPECT_EQ(pool.acquire(), 2u);
  pool.release(2);
  pool.release(0);
  EXPECT_EQ(pool.acquire(), 0u);  // lowest first, not LIFO
  EXPECT_EQ(pool.acquire(), 2u);
  EXPECT_EQ(pool.acquire(), 3u);  // pool empty again -> fresh lane
}

TEST(Tracer, TaggedSpansIncludeCompleteAndAsyncButNotFlows) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  const std::uint32_t other = t.declare_process("pt1");
  t.complete(pid, 1, "get", "engine", 0, 100, /*trace_id=*/5);
  t.async_span(pid, 7, "fabric/txq", "fabric", 10, 20, /*trace_id=*/5);
  t.complete(pid, 2, "set", "engine", 0, 50);  // untagged: skipped
  t.flow('s', pid, 1, 5, /*flow_id=*/1, /*trace_id=*/5);
  t.instant(pid, 1, "fabric/drop", "fabric", 6, /*trace_id=*/5);
  t.complete(other, 1, "get", "engine", 0, 9, /*trace_id=*/6);  // other pid

  const std::vector<TraceSpan> spans = t.tagged_spans(pid);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "get");
  EXPECT_EQ(spans[0].trace_id, 5u);
  EXPECT_EQ(spans[0].dur_ns, 100);
  // The async 'b' event carries the duration, so no 'e' pairing is needed.
  EXPECT_EQ(spans[1].name, "fabric/txq");
  EXPECT_EQ(spans[1].tid, 7u);
  EXPECT_EQ(spans[1].dur_ns, 20);
}

TEST(Tracer, RetainTracesDropsOnlyUnkeptTaggedEvents) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  t.complete(pid, 1, "get", "engine", 0, 100, /*trace_id=*/1);
  t.complete(pid, 2, "get", "engine", 0, 900, /*trace_id=*/2);
  t.complete(pid, 3, "fabric/send", "fabric", 0, 10);  // untagged
  t.counter(pid, "depth", 5, 1);
  const std::size_t before = t.event_count();

  t.retain_traces({2});
  EXPECT_EQ(t.event_count(), before - 1);  // only trace 1's span dropped
  const std::vector<TraceSpan> spans = t.tagged_spans(pid);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 2u);
  // Totals were accumulated at record time and survive pruning.
  EXPECT_EQ(t.total_ns(pid, "get"), 1000);
  EXPECT_EQ(t.span_count(pid, "get"), 2u);
}

TEST(Tracer, FlowEventsSerializeAsArrowTriple) {
  Tracer t(true);
  const std::uint32_t pid = t.declare_process("pt0");
  const std::uint64_t msg = t.new_flow_id();
  t.flow('s', pid, 3, 100, msg, /*trace_id=*/9);
  t.flow('t', pid, Tracer::kNicTidBase + 0, 150, msg, 9);
  t.flow('f', pid, Tracer::kNicTidBase + 1, 300, msg, 9);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Binding-point "enclosing slice" so the arrow lands on the receiving
  // span rather than the next one on the track.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"trace\":9}"), std::string::npos);
}

// Regression (hostile names): every control character, quote, and backslash
// must be escaped so downstream `python3 -m json.tool` validation passes.
TEST(Tracer, JsonEscapesHostileNames) {
  Tracer t(true);
  std::string hostile = "evil\"name\\with\nnewline\ttab\b\f";
  hostile.push_back('\x01');
  hostile.push_back('\x1f');
  const std::uint32_t pid = t.declare_process(hostile);
  t.complete(pid, 1, hostile, hostile, 0, 10);
  const std::string json = t.to_json();
  for (const char* needle : {"evil\\\"name\\\\with\\nnewline\\ttab\\b\\f",
                             "\\u0001", "\\u001f"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // No raw control byte may survive into the serialized document (the
  // inter-event '\n' separators are structural whitespace, which is legal).
  for (const char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
  }
}

// --- Sampler ---------------------------------------------------------------

struct SamplerRig {
  sim::Simulator sim;
  Tracer tracer{true};
  std::uint32_t pid = tracer.declare_process("rig");
  std::int64_t depth = 0;
};

sim::Task<void> workload(SamplerRig* rig, Sampler* sampler) {
  for (int i = 1; i <= 5; ++i) {
    co_await rig->sim.delay(1'000);
    rig->depth = i;
  }
  sampler->request_stop();
}

TEST(Sampler, SamplesGaugesOnSimClockUntilStopped) {
  SamplerRig rig;
  Sampler sampler(rig.sim, rig.tracer, rig.pid, /*interval_ns=*/500);
  sampler.add_gauge("queue_depth", [&rig] { return rig.depth; });
  rig.sim.spawn(workload(&rig, &sampler));
  sampler.start();
  rig.sim.run();
  // Workload runs 5 ms of sim time; the 0.5 ms sampler must have ticked
  // roughly ten times (one immediate sample + one per interval) and then
  // stopped — the run() above returned, proving the queue drained.
  EXPECT_GE(sampler.samples(), 10u);
  EXPECT_LE(sampler.samples(), 12u);
  EXPECT_EQ(sampler.num_gauges(), 1u);
  EXPECT_EQ(sampler.series_stats(0).min(), 0.0);
  // Whether the final tick lands before or after the stop request is a
  // same-timestamp ordering detail; the sampler saw depth reach at least 4.
  EXPECT_GE(sampler.series_stats(0).max(), 4.0);
  EXPECT_LE(sampler.series_stats(0).max(), 5.0);
  // Every tick emitted one counter event.
  const std::string json = rig.tracer.to_json();
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

sim::Task<void> flush_workload(SamplerRig* rig, Sampler* sampler) {
  // Change the gauge mid-interval, then stop immediately: no periodic tick
  // lands between the change and the stop.
  co_await rig->sim.delay(1'250);
  rig->depth = 42;
  sampler->request_stop();
}

// Regression (terminal flush): a gauge change in the last partial interval
// must still be observed — request_stop() takes one final sample instead of
// waiting for a tick that will never come.
TEST(Sampler, RequestStopFlushesFinalSample) {
  SamplerRig rig;
  Sampler sampler(rig.sim, rig.tracer, rig.pid, /*interval_ns=*/1'000);
  sampler.add_gauge("queue_depth", [&rig] { return rig.depth; });
  rig.sim.spawn(flush_workload(&rig, &sampler));
  sampler.start();
  rig.sim.run();
  // Ticks at t=0 and t=1000 saw depth 0; only the flush can see 42.
  EXPECT_EQ(sampler.series_stats(0).max(), 42.0);
  // And the flush happens exactly once even if stop is requested again.
  const std::uint64_t n = sampler.samples();
  sampler.request_stop();
  EXPECT_EQ(sampler.samples(), n);
}

TEST(Sampler, DisabledTracerMakesStartANoOp) {
  sim::Simulator sim;
  Tracer tracer;  // disabled
  Sampler sampler(sim, tracer, 0, 500);
  std::int64_t v = 0;
  sampler.add_gauge("g", [&v] { return v; });
  sampler.start();
  sim.run();  // no sampler process was spawned; returns immediately
  EXPECT_EQ(sampler.samples(), 0u);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Sampler, NoGaugesMakesStartANoOp) {
  sim::Simulator sim;
  Tracer tracer(true);
  Sampler sampler(sim, tracer, 0, 500);
  sampler.start();
  sim.run();
  EXPECT_EQ(sampler.samples(), 0u);
}

}  // namespace
}  // namespace hpres::obs
