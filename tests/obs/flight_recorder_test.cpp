// Flight recorder: ring-wrap keeps the freshest window, memory is a pure
// function of (nodes, ring_size) and provably invariant under load, and
// dumps are well-formed and deterministic.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace hpres::obs {
namespace {

TEST(FlightRecorder, RecordsAreCompact) {
  // The hot-path contract: one 24-byte store per event.
  EXPECT_EQ(sizeof(FlightRecord), 24u);
}

TEST(FlightRecorder, RingWrapKeepsFreshestWindow) {
  FlightRecorder fr(/*ring_size=*/8);
  fr.ensure_nodes(1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    fr.record(static_cast<SimTime>(i), 0, FlightEventType::kOpStart, i);
  }
  EXPECT_EQ(fr.written(0), 20u);
  const std::vector<FlightRecord> ev = fr.events(0);
  ASSERT_EQ(ev.size(), 8u);  // only the ring's worth retained
  // Oldest-first chronological order, and it is the *last* 8 events.
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].t_ns, static_cast<SimTime>(12 + i));
    EXPECT_EQ(ev[i].a, 12 + i);
  }
}

TEST(FlightRecorder, MemoryIsInvariantUnderLoad) {
  FlightRecorder fr(/*ring_size=*/64);
  fr.ensure_nodes(4);
  const std::size_t budget = fr.memory_bytes();
  EXPECT_EQ(budget, 4u * 64u * sizeof(FlightRecord));
  // Hammer the rings far past capacity: the budget must not move a byte.
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    fr.record(static_cast<SimTime>(i), i % 4, FlightEventType::kRpcTimeout,
              i, 7, 1);
  }
  EXPECT_EQ(fr.memory_bytes(), budget);
  EXPECT_EQ(fr.written(0), 25'000u);
  EXPECT_EQ(fr.events(0).size(), 64u);
}

TEST(FlightRecorder, UnknownNodesCountAsDroppedNeverCrash) {
  FlightRecorder fr(8);
  fr.ensure_nodes(2);
  fr.record(1, 5, FlightEventType::kNetDrop);  // node never wired
  fr.record(2, 1, FlightEventType::kNetDrop);
  EXPECT_EQ(fr.dropped_records(), 1u);
  EXPECT_EQ(fr.written(1), 1u);
}

TEST(FlightRecorder, DisabledRecorderWritesNothing) {
  FlightRecorder fr(8);
  fr.ensure_nodes(1);
  fr.set_enabled(false);
  fr.record(1, 0, FlightEventType::kOpStart);
  EXPECT_EQ(fr.written(0), 0u);
  fr.set_enabled(true);
  fr.record(2, 0, FlightEventType::kOpStart);
  EXPECT_EQ(fr.written(0), 1u);
}

TEST(FlightRecorder, EnsureNodesGrowthKeepsContents) {
  FlightRecorder fr(8);
  fr.set_node_label(0, "server0");
  fr.record(9, 0, FlightEventType::kOpEnd, 123);
  fr.ensure_nodes(5);  // grow after recording
  EXPECT_EQ(fr.num_nodes(), 5u);
  ASSERT_EQ(fr.events(0).size(), 1u);
  EXPECT_EQ(fr.events(0)[0].a, 123u);
}

TEST(FlightRecorder, DumpCarriesLabelsReasonAndEvents) {
  FlightRecorder fr(8);
  fr.set_node_label(0, "server0");
  fr.set_node_label(1, "client0");
  fr.record(100, 0, FlightEventType::kRpcTimeout, 2'000'000, 6);
  fr.record(200, 1, FlightEventType::kOpEnd, 555, 1);
  const std::string json = fr.dump("unit-test", 12345);
  EXPECT_NE(json.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"dumped_at_ns\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"server0\""), std::string::npos);
  EXPECT_NE(json.find("\"e\":\"rpc_timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"e\":\"op_end\""), std::string::npos);
  // Deterministic: same state, same bytes.
  EXPECT_EQ(json, fr.dump("unit-test", 12345));
}

TEST(FlightRecorder, DumpToFileNeedsAPathAndCountsDumps) {
  FlightRecorder fr(8);
  fr.ensure_nodes(1);
  EXPECT_FALSE(fr.dump_to_file("no-path", 0));  // no default path set
  EXPECT_EQ(fr.dumps_written(), 0u);

  const std::string path = ::testing::TempDir() + "flight_dump_test.json";
  fr.set_dump_path(path);
  fr.record(1, 0, FlightEventType::kDump, 0);
  EXPECT_TRUE(fr.dump_to_file("crash", 99));
  EXPECT_EQ(fr.dumps_written(), 1u);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"reason\":\"crash\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EventNamesAreStable) {
  // health_report matches on these strings; renaming one is a breaking
  // change to the dump format.
  EXPECT_STREQ(flight_event_name(FlightEventType::kRpcTimeout),
               "rpc_timeout");
  EXPECT_STREQ(flight_event_name(FlightEventType::kNetDrop), "net_drop");
  EXPECT_STREQ(flight_event_name(FlightEventType::kHealthState),
               "health_state");
  EXPECT_STREQ(flight_event_name(FlightEventType::kQueueDepth),
               "queue_depth");
}

}  // namespace
}  // namespace hpres::obs
