// MetricsRegistry: owned vs bound metrics, capture semantics, lookup, and
// the deterministic stably-ordered JSON snapshot the benchmarks emit.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

namespace hpres::obs {
namespace {

MetricLabels labels(std::string component, std::string node = "",
                    std::string op = "") {
  return MetricLabels{std::move(component), std::move(node), std::move(op)};
}

TEST(MetricsRegistry, OwnedCounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine.sets", labels("engine", "client0"));
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(reg.value_of("engine.sets", labels("engine", "client0")), 10);
}

TEST(MetricsRegistry, ReRegisteringReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", labels("c"));
  Counter& b = reg.counter("x", labels("c"));
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Different labels are distinct metrics.
  Counter& other = reg.counter("x", labels("c", "n1"));
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeHoldsPointInTimeValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth", labels("queue"));
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(reg.value_of("depth", labels("queue")), 3);
}

TEST(MetricsRegistry, BoundCountersReadSourceAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  std::uint32_t u32 = 0;
  reg.bind_counter("a", labels("c"), &u64);
  reg.bind_counter("b", labels("c"), &i64);
  reg.bind_counter("c", labels("c"), &u32);
  u64 = 11;
  i64 = 22;
  u32 = 33;
  EXPECT_EQ(reg.value_of("a", labels("c")), 11);
  EXPECT_EQ(reg.value_of("b", labels("c")), 22);
  EXPECT_EQ(reg.value_of("c", labels("c")), 33);
  u64 = 100;  // live binding follows the source
  EXPECT_EQ(reg.value_of("a", labels("c")), 100);
}

TEST(MetricsRegistry, BoundGaugeUsesReader) {
  MetricsRegistry reg;
  int calls = 0;
  reg.bind_gauge("r", labels("c"), [&calls]() -> std::int64_t {
    return ++calls;
  });
  EXPECT_EQ(reg.value_of("r", labels("c")), 1);
  EXPECT_EQ(reg.value_of("r", labels("c")), 2);
}

TEST(MetricsRegistry, CaptureFreezesBoundSourcesSoTheyMayDie) {
  MetricsRegistry reg;
  auto src = std::make_unique<std::uint64_t>(7);
  auto hist = std::make_unique<LatencyHistogram>();
  hist->record(1000);
  hist->record(3000);
  reg.bind_counter("frozen", labels("c"), src.get());
  reg.bind_histogram("lat", labels("c"), hist.get());
  reg.capture();
  src.reset();
  hist.reset();
  EXPECT_EQ(reg.value_of("frozen", labels("c")), 7);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(MetricsRegistry, CaptureIsIdempotentAndKeepsOwnedLive) {
  MetricsRegistry reg;
  Counter& c = reg.counter("owned", labels("c"));
  c.inc(5);
  reg.capture();
  reg.capture();
  c.inc(5);  // owned metrics stay live after capture
  EXPECT_EQ(reg.value_of("owned", labels("c")), 10);
}

TEST(MetricsRegistry, ValueOfAbsentOrHistogramIsNullopt) {
  MetricsRegistry reg;
  reg.histogram("h", labels("c"));
  EXPECT_EQ(reg.value_of("h", labels("c")), std::nullopt);
  EXPECT_EQ(reg.value_of("missing", labels("c")), std::nullopt);
}

TEST(MetricsRegistry, JsonIsIndependentOfRegistrationOrder) {
  MetricsRegistry forward;
  MetricsRegistry backward;
  forward.counter("a", labels("x")).inc(1);
  forward.counter("b", labels("x")).inc(2);
  forward.gauge("g", labels("y", "n0")).set(-3);
  backward.gauge("g", labels("y", "n0")).set(-3);
  backward.counter("b", labels("x")).inc(2);
  backward.counter("a", labels("x")).inc(1);
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsRegistry, JsonCarriesLabelsAndKinds) {
  MetricsRegistry reg;
  reg.counter("ops", labels("engine", "client0", "set")).inc(4);
  reg.gauge("temp", labels("env")).set(-17);
  LatencyHistogram& h = reg.histogram("lat", labels("engine"));
  h.record(500);
  const std::string json = reg.to_json();
  for (const char* needle :
       {"\"ops\"", "\"engine\"", "\"client0\"", "\"set\"",
        "\"type\":\"counter\"", "\"value\":4", "\"type\":\"gauge\"",
        "\"value\":-17", "\"type\":\"histogram\"", "\"p50\":",
        "\"schema\":\"hpres-metrics-v1\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsRegistry, WriteJsonRoundTrips) {
  MetricsRegistry reg;
  reg.counter("k", labels("c")).inc(42);
  const std::string path = "metrics_test_out.json";
  ASSERT_TRUE(reg.write_json(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpres::obs
