// Critical-path coverage sweep: exact partition of the root interval,
// priority resolution between overlapping spans, fan-out vs net NIC
// distinction, hybrid root nesting, decode exposure vs ARPE-style overlap,
// and the tail selector.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/trace.h"

namespace hpres::obs {
namespace {

TraceSpan span(std::uint64_t trace, std::uint64_t tid, SimTime begin,
               SimDur dur, std::string name, std::string cat) {
  return TraceSpan{trace, tid, begin, dur, std::move(name), std::move(cat)};
}

// Root on node 0 (tid < kLanesPerNode): the op's own NIC is kNicTidBase + 0.
constexpr std::uint64_t kRootTid = 3;
constexpr std::uint64_t kOwnNic = Tracer::kNicTidBase + 0;
constexpr std::uint64_t kRemoteNic = Tracer::kNicTidBase + 2;

TEST(CriticalPath, PhaseSumEqualsTotalExactly) {
  // Root [0, 1000); children deliberately leave gaps, overlap each other,
  // and stick out past the root end (must be clipped).
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 1000, "get", "engine"),
      span(1, kRootTid, 0, 100, "get/request", "engine"),
      span(1, kRootTid, 100, 600, "get/fetch", "engine"),
      span(1, kOwnNic, 120, 80, "fabric/send", "fabric"),
      span(1, kRemoteNic, 250, 150, "fabric/recv", "fabric"),
      span(1, 42, 400, 100, "server/handle", "server"),
      span(1, kRootTid, 700, 400, "get/decode", "engine"),  // clipped at 1000
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 1u);
  const OpAttribution& op = cp.ops[0];
  EXPECT_EQ(op.op, "get");
  EXPECT_EQ(op.total_ns, 1000);
  EXPECT_EQ(op.phase_sum(), op.total_ns);  // the acceptance invariant
  EXPECT_EQ(op.phase(Phase::kSerialize), 100);
  EXPECT_EQ(op.phase(Phase::kFanout), 80);    // own NIC send
  EXPECT_EQ(op.phase(Phase::kNet), 150);      // remote NIC recv
  EXPECT_EQ(op.phase(Phase::kServer), 100);
  // get/fetch [100,700) minus the covered 80+150+100 leaves 270 wait-for-k.
  EXPECT_EQ(op.phase(Phase::kWaitK), 270);
  EXPECT_EQ(op.phase(Phase::kDecode), 300);   // clipped to the root end
  // Uncovered root time: [0,1000) minus everything above.
  EXPECT_EQ(op.phase(Phase::kOther), 0);
}

TEST(CriticalPath, HigherPriorityWinsOverlap) {
  // Encode inside a fan-out window inside the root: every instant of the
  // encode attributes to compute, not to the window.
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 400, "set", "engine"),
      span(1, kRootTid, 0, 400, "set/fanout", "engine"),
      span(1, kRootTid, 100, 200, "set/encode", "engine"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 1u);
  EXPECT_EQ(cp.ops[0].phase(Phase::kEncode), 200);
  EXPECT_EQ(cp.ops[0].phase(Phase::kWaitK), 200);
  EXPECT_EQ(cp.ops[0].phase_sum(), 400);
}

TEST(CriticalPath, ServerSideComputeClassifies) {
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 300, "get", "engine"),
      span(1, 50, 50, 200, "server/handle", "server"),
      span(1, 50, 100, 100, "server/decode", "server"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 1u);
  EXPECT_EQ(cp.ops[0].phase(Phase::kDecode), 100);
  EXPECT_EQ(cp.ops[0].phase(Phase::kServer), 100);
  EXPECT_EQ(cp.ops[0].phase(Phase::kOther), 100);
}

TEST(CriticalPath, InnerEngineRootIsTransparent) {
  // Hybrid ops nest the sub-engine's own root span inside the outer one;
  // the sweep must use the outermost root and ignore the inner.
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 1000, "set", "engine"),
      span(1, kRootTid + 1, 100, 800, "set", "engine"),  // inner root
      span(1, kRootTid + 1, 100, 300, "set/encode", "engine"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 1u);
  EXPECT_EQ(cp.ops[0].total_ns, 1000);
  EXPECT_EQ(cp.ops[0].phase(Phase::kEncode), 300);
  EXPECT_EQ(cp.ops[0].phase(Phase::kOther), 700);
}

TEST(CriticalPath, RootlessTracesAreCountedNotAttributed) {
  // Repair traces have tagged spans but no engine set/get/del root.
  std::vector<TraceSpan> spans{
      span(7, kRootTid, 0, 500, "repair/fetch", "repair"),
      span(1, kRootTid, 0, 100, "get", "engine"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  EXPECT_EQ(cp.ops.size(), 1u);
  EXPECT_EQ(cp.traces_without_root, 1u);
  EXPECT_EQ(cp.spans_seen, 2u);
}

TEST(CriticalPath, DecodeExposedWhenNoConcurrentTraffic) {
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 500, "get", "engine"),
      span(1, kRootTid, 100, 200, "get/decode", "engine"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 1u);
  EXPECT_EQ(cp.ops[0].decode_ns, 200);
  EXPECT_EQ(cp.ops[0].decode_exposed_ns, 200);  // nothing else in flight
}

TEST(CriticalPath, DecodeHiddenBehindOtherOpsTraffic) {
  // ARPE overlap: while trace 1 decodes [100, 300), trace 2's fragment
  // fetch occupies the wire [150, 280) — that stretch of the decode is
  // hidden behind communication, only the rest is exposed stall.
  std::vector<TraceSpan> spans{
      span(1, kRootTid, 0, 500, "get", "engine"),
      span(1, kRootTid, 100, 200, "get/decode", "engine"),
      span(2, kRootTid + 1, 120, 400, "get", "engine"),
      span(2, kRemoteNic, 150, 130, "fabric/send", "fabric"),
  };
  const CriticalPathAnalysis cp = analyze_critical_path(spans);
  ASSERT_EQ(cp.ops.size(), 2u);
  const OpAttribution& decoding = cp.ops[0];
  EXPECT_EQ(decoding.trace_id, 1u);
  EXPECT_EQ(decoding.decode_ns, 200);
  EXPECT_EQ(decoding.decode_exposed_ns, 200 - 130);
  // The op's OWN traffic never hides its own decode.
  std::vector<TraceSpan> own{
      span(1, kRootTid, 0, 500, "get", "engine"),
      span(1, kRootTid, 100, 200, "get/decode", "engine"),
      span(1, kRemoteNic, 150, 130, "fabric/send", "fabric"),
  };
  const CriticalPathAnalysis cp_own = analyze_critical_path(own);
  EXPECT_EQ(cp_own.ops[0].decode_exposed_ns, 200);
}

TEST(CriticalPath, SlowestFractionIsDeterministicAndBounded) {
  std::vector<OpAttribution> ops(10);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].trace_id = i + 1;
    ops[i].total_ns = static_cast<SimDur>((i % 5) * 100);  // ties
  }
  const auto tail = slowest_fraction(ops, 0.2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0]->total_ns, 400);
  EXPECT_EQ(tail[1]->total_ns, 400);
  EXPECT_LT(tail[0]->trace_id, tail[1]->trace_id);  // tie-break on id
  EXPECT_EQ(slowest_fraction(ops, 0.0).size(), 1u);  // never empty
  EXPECT_TRUE(slowest_fraction({}, 0.5).empty());
}

TEST(PhaseAggregate, AccumulatesPerPhase) {
  OpAttribution a;
  a.total_ns = 100;
  a.phase_ns[static_cast<std::size_t>(Phase::kNet)] = 100;
  OpAttribution b;
  b.total_ns = 50;
  b.phase_ns[static_cast<std::size_t>(Phase::kNet)] = 30;
  b.phase_ns[static_cast<std::size_t>(Phase::kQueue)] = 20;
  PhaseAggregate agg;
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.count, 2u);
  EXPECT_EQ(agg.total_ns, 150);
  EXPECT_EQ(agg.phase(Phase::kNet), 130);
  EXPECT_EQ(agg.phase(Phase::kQueue), 20);
}

}  // namespace
}  // namespace hpres::obs
