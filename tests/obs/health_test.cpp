// Online gray-failure detector edge cases: the relative-outlier rule under
// uniform slowness, hysteresis under flapping, hold-on-abstain for empty
// windows, loss and burn-rate evidence, and the ground-truth join
// (analyze_detection) including the symptom-propagation grace window.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <vector>

namespace hpres::obs {
namespace {

constexpr std::size_t kNodes = 5;

HealthParams tight_params() {
  HealthParams p;
  p.min_samples = 4;
  p.flag_after = 2;
  p.clear_after = 3;
  return p;
}

/// A window of `responses` replies averaging `rtt_us` microseconds each.
HealthSample ok_window(std::uint64_t responses = 20, double rtt_us = 10.0) {
  HealthSample s;
  s.window.responses = responses;
  s.window.rtt_sum_ns =
      static_cast<SimDur>(rtt_us * 1000.0 * static_cast<double>(responses));
  return s;
}

HealthSample lossy_window(std::uint64_t responses, std::uint64_t timeouts,
                          std::uint64_t drops) {
  HealthSample s = ok_window(responses);
  s.window.timeouts = timeouts;
  s.window.drops = drops;
  return s;
}

std::vector<HealthSample> uniform(double rtt_us) {
  return std::vector<HealthSample>(kNodes, ok_window(20, rtt_us));
}

TEST(HealthDetector, AllNodesSlowIsNotAnOutlier) {
  // Every node's RTT degrades 30x together (say a cluster-wide GC pause or
  // a saturated fabric). The cluster median rises with them, so nobody is
  // an *outlier* and nobody gets flagged — gray-failure detection is
  // relative by design.
  HealthDetector det(kNodes, tight_params());
  SimTime t = 0;
  for (int tick = 0; tick < 10; ++tick) {
    det.tick(t += 1000, uniform(300.0));  // 30x the healthy 10 us
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(det.state(i), NodeHealthState::kHealthy) << "node " << i;
  }
  EXPECT_TRUE(det.transitions().empty());
}

TEST(HealthDetector, SingleSlowOutlierIsFlagged) {
  HealthDetector det(kNodes, tight_params());
  SimTime t = 0;
  for (int tick = 0; tick < 5; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[2] = ok_window(20, 400.0);  // 40x its peers
    det.tick(t += 1000, samples);
  }
  EXPECT_EQ(det.state(2), NodeHealthState::kGraySlow);
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i != 2) {
      EXPECT_EQ(det.state(i), NodeHealthState::kHealthy);
    }
  }
  // flag_after=2: suspect on the first evidence tick, flagged on the 2nd.
  ASSERT_GE(det.transitions().size(), 2u);
  EXPECT_EQ(det.transitions()[0].to, NodeHealthState::kSuspect);
  EXPECT_EQ(det.transitions()[1].to, NodeHealthState::kGraySlow);
  EXPECT_EQ(det.transitions()[1].node, 2u);
}

TEST(HealthDetector, FlappingNodeNeverClearsHysteresis) {
  // One bad window, one clean window, repeated: the evidence streak resets
  // every other tick, so flag_after=2 is never reached — the node bounces
  // between suspect and healthy but is never flagged.
  HealthDetector det(kNodes, tight_params());
  SimTime t = 0;
  for (int tick = 0; tick < 20; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    if (tick % 2 == 0) samples[1] = ok_window(20, 400.0);
    det.tick(t += 1000, samples);
  }
  for (const HealthTransition& tr : det.transitions()) {
    EXPECT_NE(tr.to, NodeHealthState::kGraySlow)
        << "flapping node got flagged at t=" << tr.t_ns;
    EXPECT_NE(tr.to, NodeHealthState::kGrayLossy);
  }
  EXPECT_NE(det.state(1), NodeHealthState::kGraySlow);
}

TEST(HealthDetector, LossyNodeIsFlaggedLossy) {
  HealthDetector det(kNodes, tight_params());
  SimTime t = 0;
  for (int tick = 0; tick < 4; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[3] = lossy_window(10, 3, 2);  // 5 failures / 15 trials = 33%
    det.tick(t += 1000, samples);
  }
  EXPECT_EQ(det.state(3), NodeHealthState::kGrayLossy);
}

TEST(HealthDetector, EmptyWindowsHoldStateAndStreaks) {
  // Hold-on-abstain: a badly lossy node parks every closed-loop caller on
  // its RPC deadline, so the windows between drop bursts are silent.
  // Silence is not health evidence — it must neither clear an existing
  // flag nor reset the clean-streak bookkeeping.
  HealthDetector det(kNodes, tight_params());
  SimTime t = 0;
  // Drive node 3 to gray-lossy.
  for (int tick = 0; tick < 3; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[3] = lossy_window(10, 3, 2);
    det.tick(t += 1000, samples);
  }
  ASSERT_EQ(det.state(3), NodeHealthState::kGrayLossy);

  // Many completely empty windows (no trials, no queue): state frozen.
  for (int tick = 0; tick < 10; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[3] = HealthSample{};  // trials == 0, queue_depth == 0
    det.tick(t += 1000, samples);
  }
  EXPECT_EQ(det.state(3), NodeHealthState::kGrayLossy)
      << "empty windows must not clear a flagged node";

  // Real clean windows do clear it — after clear_after of them.
  for (int tick = 0; tick < 2; ++tick) {
    det.tick(t += 1000, uniform(10.0));
    EXPECT_EQ(det.state(3), NodeHealthState::kGrayLossy);
  }
  det.tick(t += 1000, uniform(10.0));  // 3rd clean tick == clear_after
  EXPECT_EQ(det.state(3), NodeHealthState::kHealthy);
}

TEST(HealthDetector, BurnRateNeedsBothWindows) {
  // The burn-rate rule is multi-window: a single 100%-over-SLO hiccup
  // moves the fast EWMA but not the slow one — no evidence. Sustained
  // burn moves both and flags the node even when its RTT is not an
  // outlier (e.g. bimodal latency with a healthy-looking mean).
  HealthParams p = tight_params();
  HealthDetector det(kNodes, p);
  SimTime t = 0;

  // One hiccup tick, then clean: never flagged.
  {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[0].window.over_slo = samples[0].window.responses;
    det.tick(t += 1000, samples);
  }
  for (int tick = 0; tick < 4; ++tick) det.tick(t += 1000, uniform(10.0));
  EXPECT_NE(det.state(0), NodeHealthState::kGraySlow);

  // Sustained burn on node 4: flagged after the slow EWMA catches up.
  for (int tick = 0; tick < 6; ++tick) {
    std::vector<HealthSample> samples = uniform(10.0);
    samples[4].window.over_slo = samples[4].window.responses;
    det.tick(t += 1000, samples);
  }
  EXPECT_EQ(det.state(4), NodeHealthState::kGraySlow);
}

TEST(HealthDetector, MembershipDownIsImmediate) {
  HealthDetector det(kNodes, tight_params());
  std::vector<HealthSample> samples = uniform(10.0);
  samples[1].up = false;
  det.tick(1000, samples);
  EXPECT_EQ(det.state(1), NodeHealthState::kDown);  // no hysteresis wait
  ASSERT_EQ(det.transitions().size(), 1u);
  EXPECT_EQ(det.transitions()[0].to, NodeHealthState::kDown);
}

// --- analyze_detection: the ground-truth join ------------------------------

HealthTransition flag_at(SimTime t, std::size_t node,
                         NodeHealthState to = NodeHealthState::kGrayLossy) {
  return HealthTransition{t, node, NodeHealthState::kSuspect, to, 0.0, 0.0};
}

TEST(AnalyzeDetection, DetectedWithinWindowMeasuresLatency) {
  FaultLog log;
  log.stamp(1000, 2, FaultKind::kLoss);
  log.stamp(9000, 2, FaultKind::kLossClear);
  const std::vector<HealthTransition> tr = {flag_at(3500, 2)};
  const DetectionReport r = analyze_detection(log, tr, 20'000);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.detected, 1u);
  EXPECT_EQ(r.missed, 0u);
  EXPECT_TRUE(r.faults[0].detected);
  EXPECT_EQ(r.faults[0].latency_ns, 2500);
  EXPECT_EQ(r.faults[0].flagged_as, NodeHealthState::kGrayLossy);
  EXPECT_EQ(r.false_positives, 0u);
}

TEST(AnalyzeDetection, NoTransitionMeansMissed) {
  FaultLog log;
  log.stamp(1000, 2, FaultKind::kSlowdown);
  const DetectionReport r = analyze_detection(log, {}, 20'000);
  EXPECT_EQ(r.detected, 0u);
  EXPECT_EQ(r.missed, 1u);
}

TEST(AnalyzeDetection, FlagOnHealthyNodeIsAFalsePositive) {
  FaultLog log;
  log.stamp(1000, 2, FaultKind::kLoss);
  // Node 4 has no fault; flagging it is a false positive. A later
  // flagged->flagged refresh (kind change) is not a *new* positive.
  const std::vector<HealthTransition> tr = {
      flag_at(3000, 2),
      flag_at(5000, 4),
      HealthTransition{6000, 4, NodeHealthState::kGrayLossy,
                       NodeHealthState::kGraySlow, 0.0, 0.0},
  };
  const DetectionReport r = analyze_detection(log, tr, 20'000);
  EXPECT_EQ(r.detected, 1u);
  EXPECT_EQ(r.false_positives, 1u);
}

TEST(AnalyzeDetection, GraceWindowCreditsLateSymptoms) {
  // The fault clears at t=9000 but the flag lands at t=11000 — symptoms
  // propagate on an RPC-deadline delay. Without grace this is a miss AND
  // a false positive; with grace it is a detection.
  FaultLog log;
  log.stamp(1000, 2, FaultKind::kLoss);
  log.stamp(9000, 2, FaultKind::kLossClear);
  const std::vector<HealthTransition> tr = {flag_at(11'000, 2)};

  const DetectionReport strict = analyze_detection(log, tr, 20'000, 0);
  EXPECT_EQ(strict.missed, 1u);
  EXPECT_EQ(strict.false_positives, 1u);

  const DetectionReport lenient = analyze_detection(log, tr, 20'000, 5000);
  EXPECT_EQ(lenient.detected, 1u);
  EXPECT_EQ(lenient.missed, 0u);
  EXPECT_EQ(lenient.false_positives, 0u);
  EXPECT_EQ(lenient.faults[0].latency_ns, 10'000);
}

TEST(AnalyzeDetection, UnclearedFaultWindowExtendsToEnd) {
  FaultLog log;
  log.stamp(1000, 0, FaultKind::kCrash);  // never restarted
  const std::vector<HealthTransition> tr = {
      flag_at(15'000, 0, NodeHealthState::kDown)};
  const DetectionReport r = analyze_detection(log, tr, 20'000);
  EXPECT_EQ(r.detected, 1u);
  EXPECT_EQ(r.false_positives, 0u);
}

// --- HealthSignals: windowed deltas ----------------------------------------

TEST(HealthSignals, TakeWindowReturnsDeltasAndAdvances) {
  HealthSignals sig(2, /*slo_ns=*/1'000'000);
  sig.on_response(0, 500'000);    // under SLO
  sig.on_response(0, 2'000'000);  // over SLO
  sig.on_timeout(0);
  sig.on_retry(0);
  sig.on_drop(1);

  HealthWindow w0 = sig.take_window(0);
  EXPECT_EQ(w0.responses, 2u);
  EXPECT_EQ(w0.timeouts, 1u);
  EXPECT_EQ(w0.retries, 1u);
  EXPECT_EQ(w0.over_slo, 1u);
  EXPECT_EQ(w0.rtt_sum_ns, 2'500'000);
  EXPECT_EQ(sig.take_window(1).drops, 1u);

  // Second take with no new activity: all-zero window, not cumulative.
  w0 = sig.take_window(0);
  EXPECT_EQ(w0.responses, 0u);
  EXPECT_EQ(w0.rtt_sum_ns, 0);

  // Out-of-range nodes are ignored, never a crash.
  sig.on_timeout(99);
  EXPECT_EQ(sig.take_window(99).timeouts, 0u);
}

}  // namespace
}  // namespace hpres::obs
