// End-to-end causal tracing pipeline: trace contexts propagate from the
// engine through the fabric into server handlers and back, the critical-path
// sweep attributes every traced op exactly, degraded reads surface their
// decode on the critical path, concurrent traffic hides decode behind
// communication (the ARPE overlap claim, op by op), and turning tracing on
// changes no simulated result.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ec/rs_vandermonde.h"
#include "obs/critical_path.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "resilience/factory.h"
#include "testing/fixtures.h"

namespace hpres {
namespace {

constexpr std::size_t kKeys = 20;
constexpr std::size_t kValueSize = 32 * 1024;

struct PipelineOutcome {
  SimTime makespan = 0;
  std::uint64_t events = 0;
  std::int64_t latency_sum = 0;  // recorder-side sum over every get row
  std::uint64_t degraded_gets = 0;
  obs::CriticalPathAnalysis cp;
  std::vector<obs::LatencyRow> rows;
};

sim::Task<void> load_keys(resilience::Engine* engine) {
  for (std::size_t i = 0; i < kKeys; ++i) {
    const auto st =
        co_await engine->set("key" + std::to_string(i), zero_bytes(kValueSize));
    EXPECT_TRUE(st.ok());
  }
}

sim::Task<void> get_keys(resilience::Engine* engine, std::size_t stride) {
  for (std::size_t i = 0; i < kKeys; i += stride) {
    const auto r = co_await engine->get("key" + std::to_string(i));
    EXPECT_TRUE(r.ok());
  }
}

/// Loads kKeys with client 0, optionally fails server 0, then runs one
/// concurrent get pass per client. `traced` wires the span tracer; the
/// latency recorder is always on (as in the benches).
PipelineOutcome run_pipeline(bool traced, bool fail_server,
                             std::size_t clients, std::size_t servers = 5) {
  obs::Tracer tracer(traced);
  obs::LatencyRecorder recorder;
  const std::uint32_t pid = tracer.declare_process("pipeline-pt");

  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::Cluster cl(cluster::ClusterConfig{
      .num_servers = servers, .num_clients = clients});
  cl.enable_server_ec(codec, cost, false);
  cl.set_tracer(&tracer, pid);
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < clients; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    ctx.tracer = &tracer;
    ctx.trace_pid = pid;
    ctx.recorder = &recorder;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();

  cl.sim().spawn(load_keys(engines[0].get()));
  cl.sim().run();
  recorder.clear();  // measure the get pass only, like the benches

  if (fail_server) cl.fail_server(0);
  const std::uint64_t watermark = tracer.trace_watermark();
  for (std::size_t c = 0; c < clients; ++c) {
    cl.sim().spawn(get_keys(engines[c].get(), /*stride=*/1));
  }
  const SimTime t0 = cl.sim().now();

  PipelineOutcome out;
  out.makespan = cl.run() - t0;
  out.events = cl.sim().events_executed();
  for (const auto& e : engines) out.degraded_gets += e->stats().degraded_gets;
  out.rows = recorder.rows();
  for (const obs::LatencyRow& row : out.rows) {
    out.latency_sum +=
        static_cast<std::int64_t>(row.mean_ns * static_cast<double>(row.count));
  }
  out.cp = obs::analyze_critical_path(tracer.tagged_spans(pid));
  // Keep only measured-pass ops (the preload allocated earlier ids).
  std::erase_if(out.cp.ops, [watermark](const obs::OpAttribution& op) {
    return op.trace_id < watermark;
  });
  return out;
}

TEST(TracePipeline, PhaseSumsAreExactForEveryTracedOp) {
  const PipelineOutcome out =
      run_pipeline(/*traced=*/true, /*fail_server=*/false, /*clients=*/2);
  ASSERT_EQ(out.cp.ops.size(), 2 * kKeys);
  for (const obs::OpAttribution& op : out.cp.ops) {
    EXPECT_EQ(op.op, "get");
    EXPECT_GT(op.total_ns, 0);
    EXPECT_EQ(op.phase_sum(), op.total_ns) << "trace " << op.trace_id;
    // Healthy CE-CD gets fetch k data fragments and never decode.
    EXPECT_EQ(op.decode_ns, 0);
    // Every get talked to servers: net time must be on the path.
    EXPECT_GT(op.phase(obs::Phase::kNet), 0);
  }
}

TEST(TracePipeline, DegradedGetPutsDecodeOnCriticalPath) {
  // One sequential client, one failed server: the reconstruct decode has
  // nothing to hide behind, so it is critical-path time, fully exposed.
  const PipelineOutcome out =
      run_pipeline(/*traced=*/true, /*fail_server=*/true, /*clients=*/1);
  ASSERT_GT(out.degraded_gets, 0u);
  std::size_t decoded_ops = 0;
  for (const obs::OpAttribution& op : out.cp.ops) {
    EXPECT_EQ(op.phase_sum(), op.total_ns);
    if (op.decode_ns == 0) continue;
    ++decoded_ops;
    EXPECT_GT(op.phase(obs::Phase::kDecode), 0);
    EXPECT_EQ(op.decode_exposed_ns, op.decode_ns);  // nothing concurrent
  }
  // Every decode came from a degraded read, but not every degraded read
  // decodes: when the dead server held a parity fragment, the k data
  // fragments still arrive and reconstruct-free assembly suffices.
  EXPECT_GT(decoded_ops, 0u);
  EXPECT_LE(decoded_ops, out.degraded_gets);
}

TEST(TracePipeline, ConcurrentTrafficHidesPartOfTheDecode) {
  // Four clients fetch the same key set concurrently against the failed
  // server: other ops' fragment fetches overlap each decode window, so in
  // aggregate the exposed decode must be strictly less than total decode —
  // the op-level version of the ARPE overlap claim.
  const PipelineOutcome out =
      run_pipeline(/*traced=*/true, /*fail_server=*/true, /*clients=*/4);
  ASSERT_GT(out.degraded_gets, 0u);
  SimDur decode = 0;
  SimDur exposed = 0;
  for (const obs::OpAttribution& op : out.cp.ops) {
    decode += op.decode_ns;
    exposed += op.decode_exposed_ns;
  }
  ASSERT_GT(decode, 0);
  EXPECT_LT(exposed, decode);
}

TEST(TracePipeline, TracingChangesNoSimulatedResult) {
  const PipelineOutcome on =
      run_pipeline(/*traced=*/true, /*fail_server=*/true, /*clients=*/2);
  const PipelineOutcome off =
      run_pipeline(/*traced=*/false, /*fail_server=*/true, /*clients=*/2);
  EXPECT_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.degraded_gets, off.degraded_gets);
  EXPECT_EQ(on.latency_sum, off.latency_sum);
  // The recorder (always on) saw identical populations...
  ASSERT_EQ(on.rows.size(), off.rows.size());
  for (std::size_t i = 0; i < on.rows.size(); ++i) {
    EXPECT_EQ(on.rows[i].key, off.rows[i].key);
    EXPECT_EQ(on.rows[i].count, off.rows[i].count);
    EXPECT_EQ(on.rows[i].p50_ns, off.rows[i].p50_ns);
    EXPECT_EQ(on.rows[i].p999_ns, off.rows[i].p999_ns);
    EXPECT_EQ(on.rows[i].max_ns, off.rows[i].max_ns);
  }
  // ...while only the traced run produced spans.
  EXPECT_FALSE(on.cp.ops.empty());
  EXPECT_TRUE(off.cp.ops.empty());
}

TEST(TracePipeline, RecorderSplitsDegradedFromHealthyGets) {
  // 8 servers so RS(3,2)'s five slots miss the failed node for some keys:
  // both a healthy and a degraded get population must exist.
  const PipelineOutcome out = run_pipeline(
      /*traced=*/true, /*fail_server=*/true, /*clients=*/2, /*servers=*/8);
  const obs::LatencyRow* healthy = nullptr;
  const obs::LatencyRow* degraded = nullptr;
  for (const obs::LatencyRow& row : out.rows) {
    if (row.key.op != "get") continue;
    (row.key.degraded ? degraded : healthy) = &row;
  }
  ASSERT_NE(healthy, nullptr);
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->count, out.degraded_gets);
  EXPECT_EQ(healthy->count + degraded->count, 2 * kKeys);
  // Reconstruction costs real time: the degraded population is slower.
  EXPECT_GT(degraded->p50_ns, healthy->p50_ns);
}

}  // namespace
}  // namespace hpres
