// Whole-experiment determinism and testbed sanity: identical runs must
// produce bit-identical simulated timings (the property every benchmark's
// reproducibility rests on), and the named testbeds must be ordered the
// way the paper's clusters are.
#include <gtest/gtest.h>

#include "cluster/testbeds.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/fixtures.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

struct RunOutcome {
  SimTime makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::int64_t read_latency_sum = 0;
};

RunOutcome run_small_ycsb(std::uint64_t seed) {
  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = 5, .num_clients = 4});
  cl.enable_server_ec(codec, cost, false);
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < 4; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();

  workload::YcsbConfig cfg;
  cfg.record_count = 200;
  cfg.ops_per_client = 100;
  cfg.value_size = 8192;
  cfg.seed = seed;

  std::vector<workload::YcsbResult> results(4);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r, bool load) {
      if (load) co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      co_await workload::ycsb_client(sim, e, c, s, r);
    }
  };
  for (std::size_t c = 0; c < 4; ++c) {
    cl.sim().spawn(Proc::run(&cl.sim(), engines[c].get(), cfg,
                             seed + 13 * c, &results[c], c == 0));
  }
  const SimTime makespan = cl.run();

  RunOutcome out;
  out.makespan = makespan;
  out.events = cl.sim().events_executed();
  for (const auto& r : results) {
    out.reads += r.reads;
    out.read_latency_sum += r.read_latency.sum();
  }
  return out;
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  const RunOutcome a = run_small_ycsb(111);
  const RunOutcome b = run_small_ycsb(111);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.read_latency_sum, b.read_latency_sum);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const RunOutcome a = run_small_ycsb(111);
  const RunOutcome b = run_small_ycsb(222);
  EXPECT_NE(a.read_latency_sum, b.read_latency_sum);
}

// --- Observability export determinism --------------------------------------

struct ObsOutcome {
  std::string trace_json;
  std::string metrics_json;
  SimTime makespan = 0;
};

/// Same small YCSB run as above, but fully instrumented: span tracer wired
/// through the engine and the fabric, every stats struct registered, and
/// both exports serialized. The artifacts themselves must be bit-identical
/// across same-seed runs — that is what makes the trace/metrics files a
/// trustworthy record of an experiment.
ObsOutcome run_instrumented_ycsb(std::uint64_t seed) {
  obs::Tracer tracer(true);
  obs::MetricsRegistry registry;
  const std::uint32_t pid = tracer.declare_process("determinism-pt");

  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = 5, .num_clients = 2});
  cl.enable_server_ec(codec, cost, false);
  cl.set_tracer(&tracer, pid);
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < 2; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    ctx.tracer = &tracer;
    ctx.trace_pid = pid;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();
  cl.register_metrics(registry, "ycsb");
  for (std::size_t c = 0; c < 2; ++c) {
    engines[c]->stats().register_with(registry, "client" + std::to_string(c),
                                      "ycsb");
  }

  workload::YcsbConfig cfg;
  cfg.record_count = 100;
  cfg.ops_per_client = 60;
  cfg.value_size = 8192;
  cfg.seed = seed;
  std::vector<workload::YcsbResult> results(2);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r, bool load) {
      if (load) co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      co_await workload::ycsb_client(sim, e, c, s, r);
    }
  };
  for (std::size_t c = 0; c < 2; ++c) {
    cl.sim().spawn(Proc::run(&cl.sim(), engines[c].get(), cfg, seed + 13 * c,
                             &results[c], c == 0));
  }
  ObsOutcome out;
  out.makespan = cl.run();
  registry.capture();
  out.trace_json = tracer.to_json();
  out.metrics_json = registry.to_json();
  return out;
}

TEST(Determinism, ObservabilityExportsAreByteIdentical) {
  const ObsOutcome a = run_instrumented_ycsb(77);
  const ObsOutcome b = run_instrumented_ycsb(77);
  EXPECT_EQ(a.makespan, b.makespan);
  // Byte-for-byte: same spans, same order, same counter samples, same
  // histogram percentiles.
  ASSERT_EQ(a.trace_json, b.trace_json);
  ASSERT_EQ(a.metrics_json, b.metrics_json);
  // And the artifacts are non-trivial (spans + metrics actually recorded).
  EXPECT_NE(a.trace_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"fabric/send\""), std::string::npos);
  EXPECT_NE(a.metrics_json.find("\"engine.sets\""), std::string::npos);
}

TEST(Determinism, TracingDoesNotPerturbTheSimulation) {
  // The instrumented run and the plain run share seeds; tracing must not
  // change a single simulated timestamp.
  const ObsOutcome traced = run_instrumented_ycsb(111);
  EXPECT_GT(traced.makespan, 0);
  const ObsOutcome again = run_instrumented_ycsb(111);
  EXPECT_EQ(traced.makespan, again.makespan);
}

TEST(Testbeds, GenerationsAreOrdered) {
  const auto qdr = cluster::ri_qdr();
  const auto comet = cluster::sdsc_comet();
  const auto edr = cluster::ri2_edr();
  EXPECT_LT(qdr.fabric.bandwidth_gbps, comet.fabric.bandwidth_gbps);
  EXPECT_LT(comet.fabric.bandwidth_gbps, edr.fabric.bandwidth_gbps);
  EXPECT_LE(qdr.cpu_factor, comet.cpu_factor);
  EXPECT_LE(comet.cpu_factor, edr.cpu_factor);
  EXPECT_EQ(qdr.server.workers, 8u);  // the paper's 8-worker servers
}

TEST(Testbeds, IpoibVariantKeepsServersChangesFabric) {
  const auto rdma = cluster::ri_qdr();
  const auto ipoib = cluster::ri_qdr_ipoib();
  EXPECT_GT(ipoib.fabric.latency_ns, rdma.fabric.latency_ns);
  EXPECT_LT(ipoib.fabric.bandwidth_gbps, rdma.fabric.bandwidth_gbps);
  EXPECT_EQ(ipoib.server.workers, rdma.server.workers);
}

TEST(Testbeds, MakeConfigWiresCounts) {
  const auto cfg = cluster::make_config(cluster::ri_qdr(), 7, 3);
  EXPECT_EQ(cfg.num_servers, 7u);
  EXPECT_EQ(cfg.num_clients, 3u);
  EXPECT_EQ(cfg.fabric.name, "rdma-qdr");
}

TEST(ZeroBytes, CacheAliasesPerSize) {
  const SharedBytes a = zero_bytes(4096);
  const SharedBytes b = zero_bytes(4096);
  const SharedBytes c = zero_bytes(8192);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->size(), 4096u);
  for (const auto byte : *a) EXPECT_EQ(byte, std::byte{0});
}

}  // namespace
}  // namespace hpres
