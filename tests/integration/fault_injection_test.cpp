// Mid-workload fault injection end-to-end: a YCSB run with a server
// crashing and restarting while requests are in flight must run to
// completion (every op resolves — no silent-drop hangs), and the whole
// faulted experiment must stay bit-identical across same-seed runs.
#include <gtest/gtest.h>

#include "cluster/fault_schedule.h"
#include "obs/metrics.h"
#include "testing/fixtures.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

constexpr std::size_t kServers = 5;
constexpr std::size_t kClients = 3;

kv::RpcPolicy test_policy() {
  kv::RpcPolicy policy;
  policy.timeout_ns = 500'000;  // 500 us per attempt
  policy.max_retries = 1;
  policy.backoff_ns = 50'000;
  return policy;
}

struct FaultedOutcome {
  SimTime makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t fired = 0;
  std::string metrics_json;
};

/// Small YCSB-A run with a crash at 2 ms and a restart at 6 ms of
/// simulated time, the crashed store wiped (replacement node semantics).
FaultedOutcome run_faulted_ycsb(std::uint64_t seed) {
  obs::MetricsRegistry registry;
  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::Cluster cl(cluster::ClusterConfig{.num_servers = kServers,
                                             .num_clients = kClients});
  cl.enable_server_ec(codec, cost, false);
  cl.set_rpc_policy(test_policy());
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < kClients; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();
  cl.register_metrics(registry, "faulted");

  cluster::FaultSchedule faults(cl, /*detection_lag_ns=*/200'000);
  faults.add_crash(2 * units::kMillisecond, 1, /*wipe_store=*/true);
  faults.add_restart(6 * units::kMillisecond, 1);
  faults.arm();

  workload::YcsbConfig cfg;
  cfg.record_count = 150;
  cfg.ops_per_client = 120;
  cfg.value_size = 8192;
  cfg.seed = seed;
  std::vector<workload::YcsbResult> results(kClients);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r, bool load,
                               bool* done) {
      if (load) co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      co_await workload::ycsb_client(sim, e, c, s, r);
      *done = true;
    }
  };
  bool flags[kClients] = {};
  for (std::size_t c = 0; c < kClients; ++c) {
    cl.sim().spawn(Proc::run(&cl.sim(), engines[c].get(), cfg, seed + 7 * c,
                             &results[c], c == 0, &flags[c]));
  }
  FaultedOutcome out;
  out.makespan = cl.run();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(flags[c]) << "client " << c
                          << " hung: an op never resolved under the fault";
  }
  out.events = cl.sim().events_executed();
  out.fired = faults.fired();
  for (std::size_t c = 0; c < kClients; ++c) {
    out.ops += results[c].reads + results[c].writes;
    out.failures += results[c].failures;
    out.rpc_timeouts += cl.client(c).rpc_stats().timeouts;
  }
  registry.capture();
  out.metrics_json = registry.to_json();
  return out;
}

TEST(FaultInjection, MidWorkloadCrashResolvesEveryOp) {
  const FaultedOutcome out = run_faulted_ycsb(31);
  // All ops issued and resolved (OK or a clean failure code) — the run
  // reached quiescence with every client finished.
  EXPECT_EQ(out.ops, kClients * 120u);
  EXPECT_EQ(out.fired, 2u);  // crash and restart both applied
  // The crash landed mid-stream: something observed it.
  EXPECT_GT(out.failures + out.rpc_timeouts, 0u);
  // But the cluster stayed mostly available (k-of-n reads, retries).
  EXPECT_LT(out.failures, out.ops / 2);
}

TEST(FaultInjection, SameSeedSameScheduleIsByteIdentical) {
  const FaultedOutcome a = run_faulted_ycsb(52);
  const FaultedOutcome b = run_faulted_ycsb(52);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.rpc_timeouts, b.rpc_timeouts);
  // The full metrics export — every counter on every node — byte-for-byte.
  ASSERT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_NE(a.metrics_json.find("\"rpc.timeouts\""), std::string::npos);
}

TEST(FaultInjection, DetectionLagDelaysMembershipNotFabric) {
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = kServers, .num_clients = 1});
  cl.start();
  cluster::FaultSchedule faults(cl, /*detection_lag_ns=*/1'000'000);
  faults.add_crash(1'000, 2);
  faults.arm();
  struct Probe {
    static sim::Task<void> run(cluster::Cluster* cl) {
      co_await cl->sim().delay(2'000);  // crash applied, lag still running
      EXPECT_FALSE(cl->fabric().node_up(cl->server_nodes()[2]));
      EXPECT_TRUE(cl->membership().up(2));  // oracle hasn't noticed yet
      co_await cl->sim().delay(1'000'000);  // past the detection lag
      EXPECT_FALSE(cl->membership().up(2));
    }
  };
  bool finished = false;
  struct Runner {
    static sim::Task<void> run(cluster::Cluster* cl, bool* done) {
      co_await Probe::run(cl);
      *done = true;
    }
  };
  cl.sim().spawn(Runner::run(&cl, &finished));
  cl.run();
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace hpres
