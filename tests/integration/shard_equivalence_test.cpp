// Oracle-vs-parallel equivalence gates for the shard runtime: identical op
// counts, fabric conservation at quiescence, bit-identical repeats for a
// fixed shard count, and latency magnitudes within tolerance. These are the
// statistical-equivalence checks the multi-shard mode ships behind.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/testbeds.h"
#include "ec/cost_model.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

struct ShardedOutcome {
  SimTime makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t failures = 0;
  std::int64_t read_latency_sum = 0;
  double read_latency_mean = 0.0;
  net::FabricStats fabric;
  std::uint64_t in_flight_bytes = 0;
  std::uint64_t in_flight_messages = 0;
};

/// One small YCSB-A run at the given shard count: 8 servers, 8 clients,
/// era-ce-cd, engines and workload procs pinned to their client's shard.
ShardedOutcome run_sharded_ycsb(std::size_t shards, std::uint64_t seed) {
  constexpr std::size_t kClients = 8;
  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::ClusterConfig config{.num_servers = 8, .num_clients = kClients};
  config.shards = shards;
  cluster::Cluster cl(config);
  cl.enable_server_ec(codec, cost, false);
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < kClients; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim_for_client(c);
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();

  workload::YcsbConfig cfg;
  cfg.record_count = 400;
  cfg.ops_per_client = 150;
  cfg.value_size = 8192;
  cfg.seed = seed;

  // Preload to quiescence first: a client racing the loader turns missing
  // keys into timing-dependent failures, which would break the exact-count
  // gates below.
  {
    sim::Simulator& lsim = cl.sim_for_client(0);
    struct Loader {
      static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                                 workload::YcsbConfig c) {
        co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      }
    };
    lsim.spawn(Loader::run(&lsim, engines[0].get(), cfg));
    cl.run();
  }

  std::vector<workload::YcsbResult> results(kClients);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r) {
      co_await workload::ycsb_client(sim, e, c, s, r);
    }
  };
  const SimTime start = cl.sim().now();
  for (std::size_t c = 0; c < kClients; ++c) {
    sim::Simulator& csim = cl.sim_for_client(c);
    csim.spawn(Proc::run(&csim, engines[c].get(), cfg, seed + 13 * c,
                         &results[c]));
  }
  ShardedOutcome out;
  out.makespan = cl.run() - start;
  out.events = cl.runtime().events_executed();
  for (const auto& r : results) {
    out.reads += r.reads;
    out.writes += r.writes;
    out.failures += r.failures;
    out.read_latency_sum += r.read_latency.sum();
  }
  out.read_latency_mean =
      out.reads > 0
          ? static_cast<double>(out.read_latency_sum) /
                static_cast<double>(out.reads)
          : 0.0;
  out.fabric = cl.fabric().stats();
  out.in_flight_bytes = cl.fabric().in_flight_bytes();
  out.in_flight_messages = cl.fabric().in_flight_messages();
  return out;
}

TEST(ShardEquivalence, OpCountsAndByteTotalsMatchOracle) {
  const ShardedOutcome oracle = run_sharded_ycsb(1, 42);
  for (const std::size_t shards : {2u, 4u}) {
    const ShardedOutcome p = run_sharded_ycsb(shards, 42);
    // The op mix is derived from seed-fixed RNG streams: any count drift is
    // a lost or duplicated message, not noise.
    EXPECT_EQ(p.reads, oracle.reads) << "shards=" << shards;
    EXPECT_EQ(p.writes, oracle.writes) << "shards=" << shards;
    EXPECT_EQ(p.failures, oracle.failures) << "shards=" << shards;
    // No faults and no hedging: the message set is timing-independent.
    EXPECT_EQ(p.fabric.bytes_sent, oracle.fabric.bytes_sent)
        << "shards=" << shards;
    EXPECT_EQ(p.fabric.bytes_delivered, oracle.fabric.bytes_delivered)
        << "shards=" << shards;
    EXPECT_EQ(p.fabric.messages_sent, oracle.fabric.messages_sent)
        << "shards=" << shards;
  }
}

TEST(ShardEquivalence, FabricConservationAtQuiescence) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const ShardedOutcome o = run_sharded_ycsb(shards, 7);
    EXPECT_EQ(o.fabric.messages_sent,
              o.fabric.messages_delivered + o.fabric.messages_dropped)
        << "shards=" << shards;
    EXPECT_EQ(o.fabric.bytes_sent,
              o.fabric.bytes_delivered + o.fabric.bytes_dropped)
        << "shards=" << shards;
    EXPECT_EQ(o.in_flight_bytes, 0u) << "shards=" << shards;
    EXPECT_EQ(o.in_flight_messages, 0u) << "shards=" << shards;
  }
}

TEST(ShardEquivalence, FixedShardCountIsBitReproducible) {
  const ShardedOutcome a = run_sharded_ycsb(4, 99);
  const ShardedOutcome b = run_sharded_ycsb(4, 99);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.read_latency_sum, b.read_latency_sum);
}

TEST(ShardEquivalence, LatencyMagnitudesWithinTolerance) {
  const ShardedOutcome oracle = run_sharded_ycsb(1, 5);
  for (const std::size_t shards : {2u, 4u}) {
    const ShardedOutcome p = run_sharded_ycsb(shards, 5);
    // Cross-shard rx-NIC contention resolves in arrival order rather than
    // send order, so individual latencies shift; the distribution must not.
    ASSERT_GT(oracle.read_latency_mean, 0.0);
    const double rel = p.read_latency_mean / oracle.read_latency_mean;
    EXPECT_GT(rel, 0.7) << "shards=" << shards;
    EXPECT_LT(rel, 1.3) << "shards=" << shards;
    const double mksp = static_cast<double>(p.makespan) /
                        static_cast<double>(oracle.makespan);
    EXPECT_GT(mksp, 0.85) << "shards=" << shards;
    EXPECT_LT(mksp, 1.15) << "shards=" << shards;
  }
}

TEST(ShardEquivalence, OracleMatchesLegacySingleLoop) {
  // shards=0 and shards=1 are the same oracle: one inline event loop.
  const ShardedOutcome zero = run_sharded_ycsb(0, 3);
  const ShardedOutcome one = run_sharded_ycsb(1, 3);
  EXPECT_EQ(zero.makespan, one.makespan);
  EXPECT_EQ(zero.events, one.events);
  EXPECT_EQ(zero.read_latency_sum, one.read_latency_sum);
}

}  // namespace
}  // namespace hpres
