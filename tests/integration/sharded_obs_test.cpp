// Sharded observability: per-shard single-writer domains must change no
// simulated result at any shard count, merge into bit-reproducible exports
// for a fixed (seed, shard count), survive ring wrap under the parallel
// runtime (this suite runs under TSan in CI), and feed the offline
// critical-path analysis exactly despite the shard-strided (interleaved)
// trace/lane id spaces of a merged multi-shard export.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "ec/cost_model.h"
#include "ec/rs_vandermonde.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "resilience/factory.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::size_t kClients = 8;

struct ObsOutcome {
  SimTime makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t failures = 0;
  net::FabricStats fabric;
  // Filled only when the run was observed.
  std::string trace_json;
  std::string flight_dump;
  std::vector<obs::TraceSpan> tagged;
  std::uint64_t flight_written_total = 0;
  std::uint64_t flight_kept_total = 0;
  bool any_ring_wrapped = false;
  std::uint64_t health_responses = 0;
  std::uint64_t health_timeouts = 0;
};

struct ObsKnobs {
  bool observe = false;           ///< attach tracer + flight + health
  std::size_t flight_ring = 256;  ///< per-node ring capacity
};

/// One small YCSB-A run at the given shard count, optionally under the full
/// observability stack (per-shard domains when shards > 1). The workload is
/// identical either way; only the instruments differ.
ObsOutcome run_observed_ycsb(std::size_t shards, std::uint64_t seed,
                             const ObsKnobs& knobs) {
  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::ClusterConfig config{.num_servers = kServers,
                                .num_clients = kClients};
  config.shards = shards;
  cluster::Cluster cl(config);
  cl.enable_server_ec(codec, cost, false);

  obs::Tracer tracer(knobs.observe);
  const std::uint32_t pid = tracer.declare_process("sharded-obs-pt");
  obs::FlightRecorder flight(knobs.flight_ring);
  obs::HealthSignals signals(kServers + kClients, /*slo_ns=*/2'000'000);
  if (knobs.observe) {
    cl.set_tracer(&tracer, pid);
    cl.set_flight_recorder(&flight);
    cl.set_health_signals(&signals);
  }

  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < kClients; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim_for_client(c);
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    if (knobs.observe) {
      // Engines write into their own shard's domain — the single-writer
      // discipline every other instrument follows.
      ctx.tracer = cl.tracer_for_client(c);
      ctx.trace_pid = pid;
      ctx.flight = cl.flight_domain_of(
          static_cast<net::NodeId>(kServers + c));
    }
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();

  workload::YcsbConfig cfg;
  cfg.record_count = 300;
  cfg.ops_per_client = 120;
  cfg.value_size = 8192;
  cfg.seed = seed;

  {
    sim::Simulator& lsim = cl.sim_for_client(0);
    struct Loader {
      static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                                 workload::YcsbConfig c) {
        co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      }
    };
    lsim.spawn(Loader::run(&lsim, engines[0].get(), cfg));
    cl.run();
  }

  std::vector<workload::YcsbResult> results(kClients);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r) {
      co_await workload::ycsb_client(sim, e, c, s, r);
    }
  };
  const SimTime start = cl.now_quiesced();
  for (std::size_t c = 0; c < kClients; ++c) {
    sim::Simulator& csim = cl.sim_for_client(c);
    csim.spawn(Proc::run(&csim, engines[c].get(), cfg, seed + 13 * c,
                         &results[c]));
  }
  ObsOutcome out;
  out.makespan = cl.run() - start;
  out.events = cl.runtime().events_executed();
  for (const auto& r : results) {
    out.reads += r.reads;
    out.writes += r.writes;
    out.failures += r.failures;
  }
  out.fabric = cl.fabric().stats();

  if (knobs.observe) {
    for (obs::HealthSignals* domain : cl.health_domains()) {
      for (std::size_t n = 0; n < domain->num_nodes(); ++n) {
        const obs::HealthWindow w = domain->take_window(n);
        out.health_responses += w.responses;
        out.health_timeouts += w.timeouts;
      }
    }
    cl.merge_obs_domains();
    out.trace_json = tracer.to_json();
    out.flight_dump = flight.dump("test", cl.now_quiesced());
    out.tagged = tracer.tagged_spans(pid);
    for (std::size_t n = 0; n < flight.num_nodes(); ++n) {
      out.flight_written_total += flight.written(n);
      out.flight_kept_total += flight.events(n).size();
      if (flight.written(n) > knobs.flight_ring) out.any_ring_wrapped = true;
    }
  }
  return out;
}

// Attaching the full observability stack (per-shard tracer, flight and
// health domains) must not perturb the simulation: op counts and fabric
// byte totals — and, stronger, makespan and event count — are identical
// with instruments on and off, at every shard count.
TEST(ShardedObs, ObservabilityChangesNothing) {
  for (const std::size_t shards : {2u, 4u}) {
    const ObsOutcome plain =
        run_observed_ycsb(shards, 42, ObsKnobs{.observe = false});
    const ObsOutcome observed =
        run_observed_ycsb(shards, 42, ObsKnobs{.observe = true});
    EXPECT_EQ(observed.reads, plain.reads) << "shards=" << shards;
    EXPECT_EQ(observed.writes, plain.writes) << "shards=" << shards;
    EXPECT_EQ(observed.failures, plain.failures) << "shards=" << shards;
    EXPECT_EQ(observed.fabric.bytes_sent, plain.fabric.bytes_sent)
        << "shards=" << shards;
    EXPECT_EQ(observed.fabric.bytes_delivered, plain.fabric.bytes_delivered)
        << "shards=" << shards;
    EXPECT_EQ(observed.makespan, plain.makespan) << "shards=" << shards;
    EXPECT_EQ(observed.events, plain.events) << "shards=" << shards;
  }
}

// The deterministic merge (ascending shard, then per-ring timestamp order)
// makes the exported artifacts bit-reproducible for a fixed (seed, shards).
TEST(ShardedObs, MergedExportsAreBitReproducible) {
  const ObsOutcome a = run_observed_ycsb(4, 99, ObsKnobs{.observe = true});
  const ObsOutcome b = run_observed_ycsb(4, 99, ObsKnobs{.observe = true});
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.flight_dump, b.flight_dump);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
}

// Regression for the offline tooling contract: a merged 4-shard trace is
// shard-major concatenated and its trace ids are strided across shards
// (interleaved id spaces), yet the critical-path sweep must still pair and
// attribute every op exactly — the same invariant trace_report enforces on
// the exported JSON.
TEST(ShardedObs, MergedTraceFeedsCriticalPathExactly) {
  const ObsOutcome out = run_observed_ycsb(4, 7, ObsKnobs{.observe = true});
  const obs::CriticalPathAnalysis cp = obs::analyze_critical_path(out.tagged);
  ASSERT_GT(cp.ops.size(), 0u);
  std::set<std::uint64_t> residues;
  for (const obs::OpAttribution& op : cp.ops) {
    EXPECT_EQ(op.phase_sum(), op.total_ns) << "trace " << op.trace_id;
    EXPECT_GT(op.total_ns, 0);
    residues.insert(op.trace_id % 4);
  }
  // Clients are dealt round-robin over the shards, so ops must carry ids
  // from more than one shard's stride class — the merged export really is
  // interleaved, not accidentally single-domain.
  EXPECT_GE(residues.size(), 2u);
}

// Ring wrap under the parallel runtime: a tiny ring forces every client
// ring to wrap while four shard threads record concurrently into their own
// domains. Run under TSan in CI; also checks the merge keeps the lifetime
// written counters and at most ring_size records per node.
TEST(ShardedObs, FlightRingWrapMergesCleanly) {
  const ObsKnobs knobs{.observe = true, .flight_ring = 32};
  const ObsOutcome out = run_observed_ycsb(4, 11, knobs);
  EXPECT_TRUE(out.any_ring_wrapped);
  EXPECT_GT(out.flight_written_total, out.flight_kept_total);
  EXPECT_LE(out.flight_kept_total, (kServers + kClients) * knobs.flight_ring);
  // Dump parses as one JSON object per node with monotone ring order —
  // spot-check the envelope; the offline tools test the full schema.
  EXPECT_NE(out.flight_dump.find("\"flight\""), std::string::npos);
  EXPECT_NE(out.flight_dump.find("client7"), std::string::npos);
}

// The per-shard health domains, summed, see exactly the message population
// the oracle's single domain sees: responses and timeouts are count-exact
// (RTT sums are timing-dependent and deliberately not compared).
TEST(ShardedObs, HealthWindowSumsMatchOracle) {
  const ObsOutcome oracle =
      run_observed_ycsb(1, 21, ObsKnobs{.observe = true});
  const ObsOutcome sharded =
      run_observed_ycsb(4, 21, ObsKnobs{.observe = true});
  ASSERT_GT(oracle.health_responses, 0u);
  EXPECT_EQ(sharded.health_responses, oracle.health_responses);
  EXPECT_EQ(sharded.health_timeouts, oracle.health_timeouts);
}

}  // namespace
}  // namespace hpres
