// Elastic resharding end-to-end: a join and a graceful leave through the
// versioned placement plane must migrate every fragment and packed-stripe
// locator to the new owners, keep every preloaded value byte-exact, and
// absorb writes issued while the migration is in flight. Also covers the
// sharded runtime (cutover via quiesce hook) and same-seed determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/fault_schedule.h"
#include "cluster/placement.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

constexpr std::size_t kProvisioned = 6;
constexpr std::size_t kInitialActive = 4;
constexpr std::size_t kClients = 3;  // last client is the coordinator
constexpr std::size_t kKeys = 60;
constexpr std::size_t kValueSize = 600;  // > k fragments, odd remainder

std::string key_of(std::size_t i) { return "user" + std::to_string(i); }

Bytes value_of(std::size_t i) {
  return make_pattern(kValueSize, 0xBEEF + i);
}

struct Harness {
  explicit Harness(std::size_t shards = 1)
      : codec(2, 2),
        cost(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 2, 2)),
        cl(cluster::ClusterConfig{.num_servers = kProvisioned,
                                  .num_clients = kClients,
                                  .initial_active_servers = kInitialActive,
                                  .shards = shards}) {
    cl.enable_server_ec(codec, cost, /*materialize=*/true);
    manager = std::make_unique<cluster::PlacementManager>(
        cl, codec, cost, context(kClients - 1, &cl.ring()),
        cluster::PlacementParams{.migrate_batch = 16,
                                 .batch_pause_ns = 5'000});
    cl.set_placement_view(manager->view());
    for (std::size_t c = 0; c + 1 < kClients; ++c) {
      engines.push_back(resilience::make_engine(
          resilience::Design::kEraCeCd, context(c, &cl.ring()), 3, &codec,
          cost));
      // prev engines resolve against the pre-cutover snapshot: while a
      // transition is in flight, Get misses retry through them.
      prev_engines.push_back(resilience::make_engine(
          resilience::Design::kEraCeCd, context(c, &manager->prev_ring()),
          3, &codec, cost));
      engines[c]->attach_placement(manager->view());
      engines[c]->set_prev_engine(prev_engines[c].get());
    }
    cl.start();
  }

  resilience::EngineContext context(std::size_t client,
                                    const kv::HashRing* ring) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim_for_client(client);
    ctx.client = &cl.client(client);
    ctx.ring = ring;
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = true;
    return ctx;
  }

  ec::RsVandermondeCodec codec;
  ec::CostModel cost;
  cluster::Cluster cl;
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  std::vector<std::unique_ptr<resilience::Engine>> prev_engines;
  std::unique_ptr<cluster::PlacementManager> manager;
};

sim::Task<void> load_range(resilience::Engine* engine, std::size_t first,
                           std::size_t last, std::size_t* failures) {
  for (std::size_t i = first; i < last; ++i) {
    const Status s = co_await engine->set(
        key_of(i), make_shared_bytes(value_of(i)));
    if (!s.ok()) ++*failures;
  }
}

sim::Task<void> verify_range(resilience::Engine* engine, std::size_t first,
                             std::size_t last, std::size_t* mismatches) {
  for (std::size_t i = first; i < last; ++i) {
    Result<Bytes> got = co_await engine->get(key_of(i));
    if (!got.ok() || *got != value_of(i)) ++*mismatches;
  }
}

sim::Task<void> run_join(cluster::PlacementManager* manager,
                         std::size_t server) {
  co_await manager->join(server);
}

sim::Task<void> run_leave(cluster::PlacementManager* manager,
                          std::size_t server) {
  co_await manager->leave(server);
}

TEST(Placement, JoinThenLeaveKeepsEveryValueByteExact) {
  Harness h;
  std::size_t load_failures = 0;
  h.cl.sim().spawn(
      load_range(h.engines[0].get(), 0, kKeys, &load_failures));
  h.cl.run();
  ASSERT_EQ(load_failures, 0u);
  ASSERT_EQ(h.cl.ring().epoch(), 1u);

  // Scale out: server 4 joins the 4-server ring.
  h.manager->coordinator_sim().spawn(run_join(h.manager.get(), 4));
  h.cl.run();
  EXPECT_EQ(h.cl.ring().epoch(), 2u);
  EXPECT_EQ(h.cl.ring().num_active(), kInitialActive + 1);
  EXPECT_FALSE(h.manager->in_transition());
  const cluster::PlacementStats& after_join = h.manager->stats();
  EXPECT_EQ(after_join.changes, 1u);
  EXPECT_EQ(after_join.epoch_acks, kProvisioned);  // all six are up
  EXPECT_GT(after_join.fragments_moved, 0u);
  EXPECT_GT(after_join.moved_bytes, 0u);
  EXPECT_GT(after_join.cleanup_deletes, 0u);

  std::size_t mismatches = 0;
  h.cl.sim().spawn(
      verify_range(h.engines[0].get(), 0, kKeys, &mismatches));
  h.cl.run();
  EXPECT_EQ(mismatches, 0u);

  // The joiner actually owns data now: some fragments live on server 4.
  EXPECT_GT(h.cl.server(4).store().keys().size(), 0u);

  // Scale in: server 1 gracefully leaves (it stays up through migration).
  h.manager->coordinator_sim().spawn(run_leave(h.manager.get(), 1));
  h.cl.run();
  EXPECT_EQ(h.cl.ring().epoch(), 3u);
  EXPECT_EQ(h.cl.ring().num_active(), kInitialActive);
  EXPECT_FALSE(h.cl.ring().is_active(1));

  mismatches = 0;
  h.cl.sim().spawn(
      verify_range(h.engines[0].get(), 0, kKeys, &mismatches));
  h.cl.run();
  EXPECT_EQ(mismatches, 0u);
  // Cleanup drained the leaver: nothing under the final placement maps to
  // it, and its stale copies were deleted after the epoch acks.
  EXPECT_EQ(h.cl.server(1).store().keys().size(), 0u);
}

TEST(Placement, WritesDuringMigrationAllSurvive) {
  Harness h;
  std::size_t load_failures = 0;
  h.cl.sim().spawn(
      load_range(h.engines[0].get(), 0, kKeys, &load_failures));
  h.cl.run();
  ASSERT_EQ(load_failures, 0u);

  // Join and a concurrent write stream race: the writes start at the same
  // instant the cutover/migration protocol does.
  std::size_t write_failures = 0;
  h.manager->coordinator_sim().spawn(run_join(h.manager.get(), 4));
  h.cl.sim().spawn(load_range(h.engines[1].get(), kKeys, 2 * kKeys,
                              &write_failures));
  h.cl.run();
  EXPECT_EQ(write_failures, 0u);
  EXPECT_EQ(h.cl.ring().epoch(), 2u);

  std::size_t mismatches = 0;
  h.cl.sim().spawn(
      verify_range(h.engines[0].get(), 0, 2 * kKeys, &mismatches));
  h.cl.run();
  EXPECT_EQ(mismatches, 0u);
}

TEST(Placement, FaultScheduleDrivesJoinAndLeaveDeterministically) {
  auto run_once = [] {
    Harness h;
    std::size_t load_failures = 0;
    h.cl.sim().spawn(
        load_range(h.engines[0].get(), 0, kKeys, &load_failures));
    h.cl.run();
    EXPECT_EQ(load_failures, 0u);

    cluster::FaultSchedule schedule(h.cl);
    schedule.set_placement_manager(h.manager.get());
    schedule.add_join(200 * units::kMicrosecond, 4);
    schedule.add_leave(2 * units::kMillisecond, 0);
    schedule.arm();
    std::size_t write_failures = 0;
    h.cl.sim().spawn(load_range(h.engines[1].get(), kKeys, 2 * kKeys,
                                &write_failures));
    const SimTime makespan = h.cl.run();
    EXPECT_EQ(write_failures, 0u);
    EXPECT_EQ(h.cl.ring().epoch(), 3u);
    EXPECT_EQ(h.manager->stats().changes, 2u);

    std::size_t mismatches = 0;
    h.cl.sim().spawn(
        verify_range(h.engines[0].get(), 0, 2 * kKeys, &mismatches));
    h.cl.run();
    EXPECT_EQ(mismatches, 0u);
    return std::pair<SimTime, std::uint64_t>{
        makespan, h.cl.runtime().events_executed()};
  };
  const auto a = run_once();
  const auto b = run_once();
  // Oracle mode: the whole elastic run replays byte-identically.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Placement, ShardedRuntimeMigratesThroughQuiesceHook) {
  Harness h(/*shards=*/3);
  std::size_t load_failures = 0;
  h.cl.sim_for_client(0).spawn(
      load_range(h.engines[0].get(), 0, kKeys, &load_failures));
  h.cl.run();
  ASSERT_EQ(load_failures, 0u);

  h.manager->coordinator_sim().spawn(run_join(h.manager.get(), 4));
  h.cl.run();
  EXPECT_EQ(h.cl.ring().epoch(), 2u);
  EXPECT_FALSE(h.manager->in_transition());
  EXPECT_GT(h.manager->stats().fragments_moved, 0u);

  std::size_t mismatches = 0;
  h.cl.sim_for_client(0).spawn(
      verify_range(h.engines[0].get(), 0, kKeys, &mismatches));
  h.cl.run();
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace hpres
