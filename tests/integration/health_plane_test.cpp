// Health plane end-to-end: the closed detection loop over a real YCSB run
// (injected fault -> detector flag -> ground-truth join), zero false
// positives on a healthy run, and the observation-only invariant — a run
// with the monitor and flight recorder attached is byte-identical to one
// without them.
#include <gtest/gtest.h>

#include "cluster/fault_schedule.h"
#include "cluster/health_monitor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/sync.h"
#include "testing/fixtures.h"
#include "workload/ycsb.h"

namespace hpres {
namespace {

constexpr std::size_t kServers = 5;
constexpr std::size_t kClients = 3;

kv::RpcPolicy test_policy() {
  kv::RpcPolicy policy;
  policy.timeout_ns = 500'000;  // 500 us per attempt
  policy.max_retries = 1;
  policy.backoff_ns = 50'000;
  return policy;
}

cluster::HealthMonitorParams test_monitor_params() {
  cluster::HealthMonitorParams p;
  p.interval_ns = 200 * units::kMicrosecond;
  p.slo_ns = 1 * units::kMillisecond;
  p.detector.min_samples = 4;
  return p;
}

/// Symptom-propagation grace: the 500 us x2 deadline ladder plus a couple
/// of 200 us detector windows.
constexpr SimDur kGraceNs = 2 * units::kMillisecond;

struct PlaneOutcome {
  SimTime makespan = 0;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t rpc_timeouts = 0;
  std::int64_t read_latency_sum = 0;
  std::uint64_t detector_ticks = 0;
  obs::DetectionReport report;
  std::string metrics_json;
};

enum class Fault { kNone, kCrash };

/// Small YCSB-A run, optionally crashing server 1 mid-stream, with the
/// health plane armed (unless `with_plane` is false, for the perturbation
/// check).
PlaneOutcome run_plane_ycsb(std::uint64_t seed, Fault fault,
                            bool with_plane) {
  obs::MetricsRegistry registry;
  ec::RsVandermondeCodec codec(3, 2);
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cluster::Cluster cl(cluster::ClusterConfig{.num_servers = kServers,
                                             .num_clients = kClients});
  cl.enable_server_ec(codec, cost, false);
  cl.set_rpc_policy(test_policy());

  obs::FlightRecorder flight(64);
  if (with_plane) cl.set_flight_recorder(&flight);

  std::vector<std::unique_ptr<resilience::Engine>> engines;
  for (std::size_t c = 0; c < kClients; ++c) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim();
    ctx.client = &cl.client(c);
    ctx.ring = &cl.ring();
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    if (with_plane) ctx.flight = &flight;
    engines.push_back(resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost));
  }
  cl.start();
  cl.register_metrics(registry, "plane");

  cluster::FaultSchedule faults(cl, /*detection_lag_ns=*/200'000);
  obs::FaultLog fault_log;
  faults.set_fault_log(&fault_log);
  if (fault == Fault::kCrash) {
    faults.add_crash(2 * units::kMillisecond, 1);
    faults.add_restart(6 * units::kMillisecond, 1);
    faults.arm();
  }

  cluster::HealthMonitor monitor(cl, test_monitor_params());
  if (with_plane) monitor.arm();

  workload::YcsbConfig cfg;
  cfg.record_count = 150;
  cfg.ops_per_client = 120;
  cfg.value_size = 8192;
  cfg.seed = seed;
  std::vector<workload::YcsbResult> results(kClients);
  sim::Latch done(cl.sim(), kClients);
  struct Proc {
    static sim::Task<void> run(sim::Simulator* sim, resilience::Engine* e,
                               workload::YcsbConfig c, std::uint64_t s,
                               workload::YcsbResult* r, bool load,
                               sim::Latch* done) {
      if (load) co_await workload::ycsb_load(sim, e, c, 0, c.record_count);
      co_await workload::ycsb_client(sim, e, c, s, r);
      done->count_down();
    }
  };
  struct Supervisor {
    static sim::Task<void> run(sim::Latch* done, SimTime* end,
                               sim::Simulator* sim,
                               cluster::HealthMonitor* monitor,
                               bool stop_monitor) {
      co_await done->wait();
      *end = sim->now();
      if (stop_monitor) monitor->request_stop();
    }
  };
  for (std::size_t c = 0; c < kClients; ++c) {
    cl.sim().spawn(Proc::run(&cl.sim(), engines[c].get(), cfg, seed + 7 * c,
                             &results[c], c == 0, &done));
  }
  SimTime end = 0;
  cl.sim().spawn(
      Supervisor::run(&done, &end, &cl.sim(), &monitor, with_plane));

  PlaneOutcome out;
  out.makespan = cl.run();
  for (std::size_t c = 0; c < kClients; ++c) {
    out.ops += results[c].reads + results[c].writes;
    out.failures += results[c].failures;
    out.rpc_timeouts += cl.client(c).rpc_stats().timeouts;
    out.read_latency_sum += results[c].read_latency.sum();
  }
  out.detector_ticks = monitor.ticks();
  out.report = obs::analyze_detection(
      fault_log, monitor.detector().transitions(), end, kGraceNs);
  registry.capture();
  out.metrics_json = registry.to_json();
  return out;
}

TEST(HealthPlane, ClosedLoopDetectsInjectedCrash) {
  const PlaneOutcome out = run_plane_ycsb(41, Fault::kCrash, true);
  EXPECT_EQ(out.ops, kClients * 120u);
  ASSERT_EQ(out.report.faults.size(), 1u);  // one onset stamp (the crash)
  EXPECT_TRUE(out.report.faults[0].detected)
      << "injected crash never flagged by the detector";
  EXPECT_EQ(out.report.faults[0].flagged_as, obs::NodeHealthState::kDown);
  // Detection latency: membership lag (200 us) + at most one detector
  // window (200 us) + scheduling slop; far under a second either way.
  EXPECT_GT(out.report.faults[0].latency_ns, 0);
  EXPECT_LT(out.report.faults[0].latency_ns, 2 * units::kMillisecond);
  EXPECT_EQ(out.report.false_positives, 0u);
  EXPECT_GT(out.detector_ticks, 0u);
}

TEST(HealthPlane, HealthyRunRaisesNoFlags) {
  const PlaneOutcome out = run_plane_ycsb(42, Fault::kNone, true);
  EXPECT_EQ(out.ops, kClients * 120u);
  EXPECT_TRUE(out.report.faults.empty());
  EXPECT_EQ(out.report.false_positives, 0u)
      << "detector flagged a node in a fault-free run";
  EXPECT_GT(out.detector_ticks, 0u);
}

TEST(HealthPlane, MonitoringIsObservationOnly) {
  // The whole plane — signals, detector ticker, flight recorder — must not
  // perturb the workload: same seed with and without the plane attached
  // produces byte-identical results, down to the full metrics export.
  // This is the "detector-disabled runs are byte-identical" determinism
  // guarantee the observability docs promise.
  const PlaneOutcome with_plane = run_plane_ycsb(43, Fault::kCrash, true);
  const PlaneOutcome without = run_plane_ycsb(43, Fault::kCrash, false);
  EXPECT_EQ(with_plane.makespan, without.makespan);
  EXPECT_EQ(with_plane.ops, without.ops);
  EXPECT_EQ(with_plane.failures, without.failures);
  EXPECT_EQ(with_plane.rpc_timeouts, without.rpc_timeouts);
  EXPECT_EQ(with_plane.read_latency_sum, without.read_latency_sum);
  ASSERT_EQ(with_plane.metrics_json, without.metrics_json);
  // And the plane actually ran in the monitored variant.
  EXPECT_GT(with_plane.detector_ticks, 0u);
  EXPECT_EQ(without.detector_ticks, 0u);
}

TEST(HealthPlane, SameSeedSamePlaneIsDeterministic) {
  const PlaneOutcome a = run_plane_ycsb(44, Fault::kCrash, true);
  const PlaneOutcome b = run_plane_ycsb(44, Fault::kCrash, true);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.detector_ticks, b.detector_ticks);
  ASSERT_EQ(a.report.faults.size(), b.report.faults.size());
  for (std::size_t i = 0; i < a.report.faults.size(); ++i) {
    EXPECT_EQ(a.report.faults[i].detected_at_ns,
              b.report.faults[i].detected_at_ns);
  }
  ASSERT_EQ(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace hpres
