// Lustre model, Boldio client streaming, and TestDFSIO map tasks.
#include <gtest/gtest.h>

#include "boldio/dfsio.h"
#include "testing/fixtures.h"

namespace hpres::boldio {
namespace {

using hpres::testing::FiveNodeClusterTest;
using hpres::testing::run_sim;

// --- LustreModel --------------------------------------------------------------

TEST(Lustre, SingleStreamBoundByStreamRate) {
  sim::Simulator sim;
  LustreParams p;
  p.aggregate_write_gbps = 80.0;
  p.per_stream_gbps = 8.0;  // 1 byte/ns
  p.metadata_ns = 0;
  LustreModel lustre(sim, p);
  struct Body {
    static sim::Task<void> run(LustreModel* l) { co_await l->write(1'000'000); }
  };
  sim.spawn(Body::run(&lustre));
  sim.run();
  EXPECT_EQ(sim.now(), 1'000'000);  // stream cap, not the fat aggregate
}

TEST(Lustre, ConcurrentStreamsShareAggregate) {
  sim::Simulator sim;
  LustreParams p;
  p.aggregate_write_gbps = 8.0;  // 1 byte/ns shared
  p.per_stream_gbps = 8.0;
  p.metadata_ns = 0;
  LustreModel lustre(sim, p);
  struct Body {
    static sim::Task<void> run(LustreModel* l) { co_await l->write(500'000); }
  };
  for (int i = 0; i < 4; ++i) sim.spawn(Body::run(&lustre));
  sim.run();
  // 4 x 500KB through a 1 B/ns pipe: 2ms total.
  EXPECT_EQ(sim.now(), 2'000'000);
}

TEST(Lustre, ReadAndWritePipesAreIndependent) {
  sim::Simulator sim;
  LustreParams p;
  p.aggregate_write_gbps = 8.0;
  p.aggregate_read_gbps = 8.0;
  p.per_stream_gbps = 8.0;
  p.metadata_ns = 0;
  LustreModel lustre(sim, p);
  struct Body {
    static sim::Task<void> run(LustreModel* l, bool write) {
      if (write) {
        co_await l->write(1'000'000);
      } else {
        co_await l->read(1'000'000);
      }
    }
  };
  sim.spawn(Body::run(&lustre, true));
  sim.spawn(Body::run(&lustre, false));
  sim.run();
  EXPECT_EQ(sim.now(), 1'000'000);  // full duplex
  EXPECT_EQ(lustre.stats().bytes_written, 1'000'000u);
  EXPECT_EQ(lustre.stats().bytes_read, 1'000'000u);
}

TEST(Lustre, MetadataCostPerOperation) {
  sim::Simulator sim;
  LustreParams p;
  p.per_stream_gbps = 8.0;
  p.aggregate_write_gbps = 8.0;
  p.metadata_ns = 5'000;
  LustreModel lustre(sim, p);
  struct Body {
    static sim::Task<void> run(LustreModel* l) { co_await l->write(1'000); }
  };
  sim.spawn(Body::run(&lustre));
  sim.run();
  EXPECT_EQ(sim.now(), 6'000);
}

// --- BoldioClient ---------------------------------------------------------------

class BoldioTest : public FiveNodeClusterTest {
 protected:
  BoldioTest() : lustre_(cluster_.sim(), LustreParams{}) {}
  LustreModel lustre_;
};

TEST_F(BoldioTest, WriteFileStoresAllChunksResiliently) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  BoldioClientParams params;
  params.chunk_bytes = 64 * 1024;
  BoldioClient client(cluster_.sim(), *engine, &lustre_, params);
  struct Body {
    static sim::Task<void> run(BoldioClient* c, cluster::Cluster* cl) {
      const Status s = co_await c->write_file("job/part-0", 10 * 64 * 1024);
      EXPECT_TRUE(s.ok());
      // 10 chunks x 5 fragments spread across the cluster.
      std::size_t items = 0;
      for (std::size_t i = 0; i < 5; ++i) {
        items += cl->server(i).store().items();
      }
      EXPECT_EQ(items, 50u);
    }
  };
  run_sim(cluster_.sim(), Body::run, &client, &cluster_);
  EXPECT_EQ(client.stats().files_written, 1u);
  EXPECT_EQ(client.stats().bytes_written, 10u * 64 * 1024);
  EXPECT_EQ(client.stats().chunk_failures, 0u);
  // Asynchronous persistence reached Lustre.
  EXPECT_EQ(lustre_.stats().bytes_written, 10u * 64 * 1024);
}

TEST_F(BoldioTest, ReadBackFromBurstBuffer) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  BoldioClientParams params;
  params.chunk_bytes = 64 * 1024;
  BoldioClient client(cluster_.sim(), *engine, &lustre_, params);
  struct Body {
    static sim::Task<void> run(BoldioClient* c) {
      (void)co_await c->write_file("f", 5 * 64 * 1024 + 1000);
      const Status s = co_await c->read_file("f", 5 * 64 * 1024 + 1000);
      EXPECT_TRUE(s.ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, &client);
  EXPECT_EQ(client.stats().files_read, 1u);
  EXPECT_EQ(client.stats().chunk_failures, 0u);
}

TEST_F(BoldioTest, ReadSurvivesTolerableServerFailures) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  BoldioClientParams params;
  params.chunk_bytes = 32 * 1024;
  BoldioClient client(cluster_.sim(), *engine, &lustre_, params);
  struct Body {
    static sim::Task<void> run(BoldioClient* c, cluster::Cluster* cl) {
      (void)co_await c->write_file("resilient", 8 * 32 * 1024);
      cl->fail_server(0);
      cl->fail_server(1);
      const Status s = co_await c->read_file("resilient", 8 * 32 * 1024);
      EXPECT_TRUE(s.ok()) << s;
    }
  };
  run_sim(cluster_.sim(), Body::run, &client, &cluster_);
}

TEST_F(BoldioTest, MissingFileReadFails) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  BoldioClient client(cluster_.sim(), *engine, &lustre_);
  struct Body {
    static sim::Task<void> run(BoldioClient* c) {
      const Status s = co_await c->read_file("never-written", 1024 * 1024);
      EXPECT_FALSE(s.ok());
    }
  };
  run_sim(cluster_.sim(), Body::run, &client);
}

// --- TestDFSIO map tasks ---------------------------------------------------------

TEST_F(BoldioTest, DfsioBoldioMapsCompleteAndCountDown) {
  auto engine = make_engine(resilience::Design::kEraCeCd);
  cluster_.start();
  BoldioClientParams params;
  params.chunk_bytes = 64 * 1024;
  BoldioClient client(cluster_.sim(), *engine, &lustre_, params);
  sim::Latch done(cluster_.sim(), 4);
  std::uint64_t failures = 0;
  for (int m = 0; m < 4; ++m) {
    cluster_.sim().spawn(dfsio_boldio_map(&client,
                                          "dfsio/f" + std::to_string(m),
                                          4 * 64 * 1024, /*write=*/true,
                                          &done, &failures));
  }
  cluster_.run();
  EXPECT_EQ(done.remaining(), 0u);
  EXPECT_EQ(failures, 0u);
}

TEST(DfsioDirect, LustreDirectMapsStreamAllBytes) {
  sim::Simulator sim;
  LustreParams p;
  p.metadata_ns = 1'000;
  LustreModel lustre(sim, p);
  sim::Latch done(sim, 3);
  for (int m = 0; m < 3; ++m) {
    sim.spawn(dfsio_direct_map(&lustre, 4 * 1024 * 1024, 1024 * 1024,
                               /*write=*/true, &done));
  }
  sim.run();
  EXPECT_EQ(done.remaining(), 0u);
  EXPECT_EQ(lustre.stats().bytes_written, 3u * 4 * 1024 * 1024);
  EXPECT_EQ(lustre.stats().write_ops, 12u);
}

TEST(DfsioResult, ThroughputMath) {
  DfsioResult r;
  r.total_bytes = 100 * 1024 * 1024;
  r.makespan_ns = units::kSecond;
  EXPECT_DOUBLE_EQ(r.throughput_mib_s(), 100.0);
  r.makespan_ns = 0;
  EXPECT_EQ(r.throughput_mib_s(), 0.0);
}

}  // namespace
}  // namespace hpres::boldio
