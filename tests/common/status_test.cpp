#include "common/status.h"

#include <gtest/gtest.h>

namespace hpres {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s{StatusCode::kNotFound, "key missing"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key missing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: key missing");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ((Status{StatusCode::kTimeout, "a"}),
            (Status{StatusCode::kTimeout, "b"}));
  EXPECT_FALSE((Status{StatusCode::kTimeout}) ==
               (Status{StatusCode::kUnavailable}));
}

TEST(Status, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kUnavailable,
        StatusCode::kTimeout, StatusCode::kOutOfMemory,
        StatusCode::kTooManyFailures, StatusCode::kInvalidArgument,
        StatusCode::kResourceExhausted, StatusCode::kInternal}) {
    EXPECT_FALSE(to_string(code).empty());
    EXPECT_NE(to_string(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  const Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  const Result<int> r{Status{StatusCode::kUnavailable, "server down"}};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(Result, ImplicitFromStatusCode) {
  const Result<int> r = StatusCode::kNotFound;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string("payload")};
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  const Result<std::string> r{std::string("abc")};
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace hpres
