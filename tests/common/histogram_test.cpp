#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hpres {
namespace {

TEST(LatencyHistogram, EmptyIsZeroEverywhere) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_DOUBLE_EQ(h.mean(), 31.5);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 63);
}

TEST(LatencyHistogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, QuantileRelativeErrorBounded) {
  LatencyHistogram h;
  Xoshiro256 rng(1);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 100'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(50'000'000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.03 * static_cast<double>(exact) + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeCombinesPopulations) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_EQ(a.quantile(0.25), 10);
  // p75 lands in the big bucket (within 1.6% relative error).
  EXPECT_NEAR(static_cast<double>(a.quantile(0.75)), 1'000'000.0, 20'000.0);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0);
}

TEST(LatencyHistogram, HugeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.record(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(h.quantile(0.5), 0);
}

TEST(RunningStats, TracksMoments) {
  RunningStats s;
  s.record(1.0);
  s.record(2.0);
  s.record(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

}  // namespace
}  // namespace hpres
