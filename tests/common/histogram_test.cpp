#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hpres {
namespace {

TEST(LatencyHistogram, EmptyIsZeroEverywhere) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_DOUBLE_EQ(h.mean(), 31.5);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 63);
}

TEST(LatencyHistogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, QuantileRelativeErrorBounded) {
  LatencyHistogram h;
  Xoshiro256 rng(1);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 100'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(50'000'000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.03 * static_cast<double>(exact) + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeCombinesPopulations) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_EQ(a.quantile(0.25), 10);
  // p75 lands in the big bucket (within 1.6% relative error).
  EXPECT_NEAR(static_cast<double>(a.quantile(0.75)), 1'000'000.0, 20'000.0);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0);
}

TEST(LatencyHistogram, HugeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.record(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(h.quantile(0.5), 0);
}

// --- Bucket-introspection properties (metric export correctness) -----------

TEST(LatencyHistogram, BucketMidpointRoundTripsThroughBucketIndex) {
  // Every bucket's representative value must land back in that bucket —
  // across the exact region and all 58 octaves, including the top octave
  // whose midpoints exceed int64 range.
  for (std::size_t i = 0; i < LatencyHistogram::bucket_count(); ++i) {
    const std::uint64_t mid = LatencyHistogram::bucket_midpoint(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(mid), i) << "bucket " << i;
  }
}

TEST(LatencyHistogram, BucketMidpointsStrictlyIncrease) {
  for (std::size_t i = 1; i < LatencyHistogram::bucket_count(); ++i) {
    EXPECT_LT(LatencyHistogram::bucket_midpoint(i - 1),
              LatencyHistogram::bucket_midpoint(i))
        << "bucket " << i;
  }
}

TEST(LatencyHistogram, BucketIndexCoversFullUint64Domain) {
  // Octave boundaries and their neighbours map to valid, ordered buckets.
  std::vector<std::uint64_t> probes;
  for (int exp = 0; exp < 64; ++exp) {
    const std::uint64_t lo = std::uint64_t{1} << exp;
    probes.insert(probes.end(), {lo - 1, lo, lo + 1});
  }
  std::sort(probes.begin(), probes.end());
  std::size_t prev = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::bucket_count()) << "v=" << v;
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = std::max(prev, idx);
  }
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            LatencyHistogram::bucket_count() - 1);
}

TEST(LatencyHistogram, SaturatingMidpointStaysRecordable) {
  constexpr auto kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  for (std::size_t i = 0; i < LatencyHistogram::bucket_count(); ++i) {
    const std::int64_t mid = LatencyHistogram::saturating_midpoint(i);
    EXPECT_GE(mid, 0) << "bucket " << i;
    if (LatencyHistogram::bucket_midpoint(i) <= kMax) {
      // Below the clamp point the saturating midpoint round-trips exactly.
      EXPECT_EQ(
          LatencyHistogram::bucket_index(static_cast<std::uint64_t>(mid)), i)
          << "bucket " << i;
    } else {
      // Past it, everything pins to the largest recordable value.
      EXPECT_EQ(mid, std::numeric_limits<std::int64_t>::max())
          << "bucket " << i;
    }
  }
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  LatencyHistogram h;
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    // Long-tailed population spanning many octaves.
    const int shift = static_cast<int>(rng.next_below(40));
    h.record(static_cast<std::int64_t>(rng.next_below(
        (std::uint64_t{1} << shift) + 1)));
  }
  std::int64_t prev = h.quantile(0.0);
  for (int step = 1; step <= 100; ++step) {
    const std::int64_t q = h.quantile(static_cast<double>(step) / 100.0);
    EXPECT_GE(q, prev) << "step " << step;
    // Every quantile is clamped into the observed range.
    EXPECT_GE(q, h.min()) << "step " << step;
    EXPECT_LE(q, h.max()) << "step " << step;
    prev = q;
  }
}

TEST(LatencyHistogram, MergeEqualsRecordingTheUnion) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram u;
  Xoshiro256 rng(21);
  for (int i = 0; i < 5'000; ++i) {
    const auto v = static_cast<std::int64_t>(
        rng.next_below(std::uint64_t{1} << (1 + rng.next_below(62))));
    if (i % 3 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    u.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), u.count());
  EXPECT_EQ(a.sum(), u.sum());
  EXPECT_EQ(a.min(), u.min());
  EXPECT_EQ(a.max(), u.max());
  for (std::size_t i = 0; i < LatencyHistogram::bucket_count(); ++i) {
    ASSERT_EQ(a.count_at(i), u.count_at(i)) << "bucket " << i;
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), u.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyPreservesEverything) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.record(42);
  b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 1'000'000);
  // Merging an empty histogram is the identity.
  const std::int64_t p50_before = a.p50();
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.p50(), p50_before);
}

TEST(RunningStats, TracksMoments) {
  RunningStats s;
  s.record(1.0);
  s.record(2.0);
  s.record(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

}  // namespace
}  // namespace hpres
