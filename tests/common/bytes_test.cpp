#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace hpres {
namespace {

TEST(Bytes, StringRoundTrip) {
  const Bytes b = to_bytes("hello kv");
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(to_string(b), "hello kv");
}

TEST(Bytes, PatternIsDeterministic) {
  EXPECT_EQ(make_pattern(1000, 5), make_pattern(1000, 5));
  EXPECT_NE(make_pattern(1000, 5), make_pattern(1000, 6));
}

TEST(Bytes, PatternPrefixStable) {
  // Same seed, different lengths: the 8-byte blocks shared by both lengths
  // match, so chunk-level verification of a longer value is possible.
  const Bytes a = make_pattern(64, 9);
  const Bytes b = make_pattern(128, 9);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Bytes, SharedBytesAliasesWithoutCopy) {
  const SharedBytes s = make_shared_bytes(make_pattern(100, 1));
  const SharedBytes alias = s;
  EXPECT_EQ(s->data(), alias->data());
  EXPECT_EQ(s.use_count(), 2);
}

TEST(Units, TransferTimeMatchesLineRate) {
  // 1 KiB at 8 Gbps = 8192 bits / 8 bits-per-ns = 1024 ns.
  EXPECT_EQ(units::transfer_time_ns(1024, 8.0), 1024);
  // Rounds up on fractional ns.
  EXPECT_EQ(units::transfer_time_ns(1, 3.0), 3);  // 8/3 = 2.67 -> 3
  EXPECT_EQ(units::transfer_time_ns(0, 10.0), 0);
  EXPECT_EQ(units::transfer_time_ns(100, 0.0), 0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(units::to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(units::to_s(3'000'000'000), 3.0);
}

}  // namespace
}  // namespace hpres
