#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace hpres {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(9);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 10);
  }
}

TEST(Rng, SplitMixAvalanches) {
  // Flipping one input bit should change the output substantially.
  const std::uint64_t base = splitmix64(12345);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = splitmix64(12345ULL ^ (1ULL << bit));
    const int hamming = std::popcount(base ^ flipped);
    EXPECT_GT(hamming, 10) << "bit " << bit;
  }
}

TEST(Rng, ZeroSeedStillProducesEntropy) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace hpres
