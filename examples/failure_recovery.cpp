// Failure-recovery walkthrough: stores a value with real erasure coding,
// kills the two servers holding its first data fragments, and shows the
// degraded Get reconstructing the exact original bytes from the surviving
// data + parity fragments — the paper's Figure 3(b) path, end to end.
//
//   $ ./examples/failure_recovery
#include <cstdio>

#include "cluster/cluster.h"
#include "common/bytes.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"

using namespace hpres;  // NOLINT(google-build-using-namespace)

namespace {

sim::Task<void> walkthrough(cluster::Cluster* cl,
                            resilience::Engine* engine) {
  const Bytes original = make_pattern(200'000, /*seed=*/99);
  (void)co_await engine->set("dataset/block-17",
                             make_shared_bytes(Bytes(original)));
  std::printf("stored 200000 B as 3 data + 2 parity fragments\n");

  // Which server holds which fragment?
  for (std::size_t slot = 0; slot < 5; ++slot) {
    std::printf("  slot %zu (%s) -> server %zu\n", slot,
                slot < 3 ? "data" : "parity",
                cl->ring().slot_index("dataset/block-17", slot));
  }

  // Healthy read: no decoding needed (systematic code).
  Result<Bytes> healthy = co_await engine->get("dataset/block-17");
  std::printf("\nhealthy get: %s (decode work: %lld ns)\n",
              healthy.ok() && *healthy == original ? "bytes intact"
                                                   : "MISMATCH",
              static_cast<long long>(
                  engine->stats().get_phases.compute_ns));

  // Kill the owners of data fragments 0 and 1 — the worst tolerable case.
  const std::size_t dead0 = cl->ring().slot_index("dataset/block-17", 0);
  const std::size_t dead1 = cl->ring().slot_index("dataset/block-17", 1);
  cl->fail_server(dead0);
  cl->fail_server(dead1);
  std::printf("\nfailed servers %zu and %zu (both hold DATA fragments)\n",
              dead0, dead1);

  Result<Bytes> degraded = co_await engine->get("dataset/block-17");
  std::printf("degraded get: %s — reconstructed from 1 data + 2 parity"
              " fragments (decode work: %lld ns, degraded gets: %llu)\n",
              degraded.ok() && *degraded == original ? "bytes intact"
                                                     : "MISMATCH",
              static_cast<long long>(
                  engine->stats().get_phases.compute_ns),
              static_cast<unsigned long long>(
                  engine->stats().degraded_gets));

  // One more failure exceeds M=2 and must be detected, not mis-served.
  cl->fail_server(cl->ring().slot_index("dataset/block-17", 2));
  Result<Bytes> beyond = co_await engine->get("dataset/block-17");
  std::printf("\nthird failure: get -> %s (only 2 of 3 required fragments"
              " survive)\n",
              beyond.status().to_string().c_str());
}

}  // namespace

int main() {
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = 5, .num_clients = 1});
  ec::RsVandermondeCodec codec(3, 2);
  const ec::CostModel cost =
      ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cl.enable_server_ec(codec, cost, /*materialize=*/true);

  resilience::EngineContext ctx;
  ctx.sim = &cl.sim();
  ctx.client = &cl.client(0);
  ctx.ring = &cl.ring();
  ctx.membership = &cl.membership();
  ctx.server_nodes = &cl.server_nodes();
  ctx.materialize = true;  // real bytes: the reconstruction is genuine
  const auto engine = resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost);

  cl.start();
  cl.sim().spawn(walkthrough(&cl, engine.get()));
  cl.run();
  return 0;
}
