// Online data-processing scenario (the paper's introduction): a Memcached
// tier caching database query results for application servers. Compares
// resilient caching via 3-way asynchronous replication against online
// erasure coding under a skewed (Zipfian) read/write mix, and reports
// latency plus the memory footprint of each scheme.
//
//   $ ./examples/online_cache
#include <cstdio>

#include "cluster/testbeds.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"
#include "workload/ycsb.h"

using namespace hpres;  // NOLINT(google-build-using-namespace)

namespace {

struct Setup {
  cluster::Cluster cluster;
  ec::RsVandermondeCodec codec{3, 2};
  ec::CostModel cost;
  std::unique_ptr<resilience::Engine> engine;

  Setup(resilience::Design design, std::size_t clients)
      : cluster(cluster::make_config(cluster::sdsc_comet(), 5, clients)),
        cost(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2,
                                     /*cpu=*/1.8)) {
    cluster.enable_server_ec(codec, cost, /*materialize=*/false);
    resilience::EngineContext ctx;
    ctx.sim = &cluster.sim();
    ctx.client = &cluster.client(0);
    ctx.ring = &cluster.ring();
    ctx.membership = &cluster.membership();
    ctx.server_nodes = &cluster.server_nodes();
    ctx.materialize = false;
    engine = resilience::make_engine(design, ctx, 3, &codec, cost);
    cluster.start();
  }
};

sim::Task<void> run_mix(sim::Simulator* sim, resilience::Engine* engine,
                        workload::YcsbConfig cfg,
                        workload::YcsbResult* result) {
  co_await workload::ycsb_load(sim, engine, cfg, 0, cfg.record_count);
  co_await workload::ycsb_client(sim, engine, cfg, /*seed=*/7, result);
}

void report(const char* label, resilience::Design design) {
  Setup setup(design, 1);
  workload::YcsbConfig cfg;           // update-heavy online mix (YCSB-A)
  cfg.record_count = 2'000;           // cached query results
  cfg.ops_per_client = 2'000;
  cfg.value_size = 32 * 1024;         // large cached query pages
  workload::YcsbResult result;
  setup.cluster.sim().spawn(
      run_mix(&setup.cluster.sim(), setup.engine.get(), cfg, &result));
  setup.cluster.run();

  std::printf(
      "%-12s reads: avg %6.1f us p99 %6.1f us | writes: avg %6.1f us p99"
      " %6.1f us | cache memory %5.1f MiB\n",
      label,
      units::to_us(static_cast<SimDur>(result.read_latency.mean())),
      units::to_us(result.read_latency.p99()),
      units::to_us(static_cast<SimDur>(result.write_latency.mean())),
      units::to_us(result.write_latency.p99()),
      static_cast<double>(setup.cluster.total_bytes_used()) /
          (1024.0 * 1024.0));
}

}  // namespace

int main() {
  std::printf("Online analytics cache: 2000 x 32 KB query results, 50:50"
              " Zipfian read/write mix, 5-node SDSC-Comet-like cluster\n\n");
  report("async-rep=3", resilience::Design::kAsyncRep);
  report("era-ce-cd", resilience::Design::kEraCeCd);
  report("era-se-cd", resilience::Design::kEraSeCd);
  std::printf("\nBoth erasure designs tolerate the same two node failures"
              " as 3-way replication at ~55%% of its memory cost.\n");
  return 0;
}
