// Quickstart: stand up a simulated 5-node RDMA cluster, store a value with
// online erasure coding (RS(3,2), the paper's headline configuration), read
// it back, and inspect what landed on each server.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "common/bytes.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"

using namespace hpres;  // NOLINT(google-build-using-namespace)

namespace {

sim::Task<void> demo(cluster::Cluster* cl, resilience::Engine* engine) {
  // A 100 KB "database page" cached under one key.
  const Bytes page = make_pattern(100'000, /*seed=*/2017);

  const Status stored =
      co_await engine->set("db:page:42", make_shared_bytes(Bytes(page)));
  std::printf("SET db:page:42 (100000 B)  -> %s  [t=%.1f us]\n",
              stored.to_string().c_str(), units::to_us(cl->sim().now()));

  const Result<Bytes> loaded = co_await engine->get("db:page:42");
  std::printf("GET db:page:42            -> %s, %zu B, %s  [t=%.1f us]\n",
              loaded.status().to_string().c_str(),
              loaded.ok() ? loaded->size() : 0,
              loaded.ok() && *loaded == page ? "bytes intact" : "MISMATCH",
              units::to_us(cl->sim().now()));

  std::printf("\nFragment placement (K=3 data + M=2 parity, one per"
              " server):\n");
  for (std::size_t s = 0; s < cl->num_servers(); ++s) {
    const auto& store = cl->server(s).store();
    std::printf("  server %zu: %zu item(s), %llu B used\n", s, store.items(),
                static_cast<unsigned long long>(store.bytes_used()));
  }
  std::printf("\nStorage overhead: %.2fx (vs 3.00x for 3-way"
              " replication)\n",
              5.0 / 3.0);
}

}  // namespace

int main() {
  // 5 servers + 1 client on the paper's RI-QDR-like fabric.
  cluster::Cluster cl(
      cluster::ClusterConfig{.num_servers = 5, .num_clients = 1});

  // The paper's chosen codec: Reed-Solomon (Vandermonde), K=3, M=2.
  ec::RsVandermondeCodec codec(3, 2);
  const ec::CostModel cost =
      ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cl.enable_server_ec(codec, cost, /*materialize=*/true);

  resilience::EngineContext ctx;
  ctx.sim = &cl.sim();
  ctx.client = &cl.client(0);
  ctx.ring = &cl.ring();
  ctx.membership = &cl.membership();
  ctx.server_nodes = &cl.server_nodes();
  ctx.materialize = true;  // real bytes, real encoding
  const auto engine = resilience::make_engine(
      resilience::Design::kEraCeCd, ctx, 3, &codec, cost);

  cl.start();
  cl.sim().spawn(demo(&cl, engine.get()));
  cl.run();
  return 0;
}
