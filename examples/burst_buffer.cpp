// Offline Big-Data I/O scenario (the paper's Section V): a Boldio-style
// burst buffer in front of Lustre. Map tasks write job output into the
// resilient KV cache at fabric speed; the data drains to the parallel
// filesystem in the background; a later job reads it back from the cache —
// even after two storage servers die.
//
//   $ ./examples/burst_buffer
#include <cstdio>

#include "boldio/boldio_client.h"
#include "cluster/testbeds.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"

using namespace hpres;  // NOLINT(google-build-using-namespace)

namespace {

constexpr std::uint64_t kFileBytes = 64ULL * 1024 * 1024;
constexpr std::size_t kFiles = 4;

sim::Task<void> job(cluster::Cluster* cl, boldio::BoldioClient* client,
                    boldio::LustreModel* lustre) {
  // Phase 1: the "map" job writes its output through the burst buffer.
  SimTime t0 = cl->sim().now();
  for (std::size_t f = 0; f < kFiles; ++f) {
    const Status s = co_await client->write_file(
        "job-7/part-" + std::to_string(f), kFileBytes);
    std::printf("  wrote job-7/part-%zu (%llu MiB): %s\n", f,
                static_cast<unsigned long long>(kFileBytes >> 20),
                s.to_string().c_str());
  }
  const double write_s = units::to_s(cl->sim().now() - t0);
  std::printf("write phase: %.0f MiB in %.3f s (%.0f MiB/s into the burst"
              " buffer)\n\n",
              static_cast<double>(kFiles * kFileBytes) / (1 << 20), write_s,
              static_cast<double>(kFiles * kFileBytes) / (1 << 20) / write_s);

  // Phase 2: disaster strikes — two of five burst-buffer servers die.
  co_await cl->sim().delay(units::kMillisecond);  // quiesce distribution
  cl->fail_server(1);
  cl->fail_server(3);
  std::printf("servers 1 and 3 failed; RS(3,2) tolerates both\n\n");

  // Phase 3: the next job reads its input straight from the cache.
  t0 = cl->sim().now();
  std::size_t ok = 0;
  for (std::size_t f = 0; f < kFiles; ++f) {
    const Status s = co_await client->read_file(
        "job-7/part-" + std::to_string(f), kFileBytes);
    if (s.ok()) ++ok;
  }
  const double read_s = units::to_s(cl->sim().now() - t0);
  std::printf("read phase: %zu/%zu files intact, %.0f MiB in %.3f s"
              " (%.0f MiB/s from the degraded cache)\n",
              ok, kFiles,
              static_cast<double>(kFiles * kFileBytes) / (1 << 20), read_s,
              static_cast<double>(kFiles * kFileBytes) / (1 << 20) / read_s);
  std::printf("background Lustre persistence: %llu MiB drained\n",
              static_cast<unsigned long long>(
                  lustre->stats().bytes_written >> 20));
}

}  // namespace

int main() {
  std::printf("Boldio-style burst buffer over Lustre, resilient via online"
              " erasure coding (Era-CE-CD, RS(3,2))\n\n");
  cluster::Testbed bed = cluster::ri_qdr();
  cluster::Cluster cl(cluster::make_config(bed, 5, 1));
  ec::RsVandermondeCodec codec(3, 2);
  const ec::CostModel cost =
      ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2);
  cl.enable_server_ec(codec, cost, /*materialize=*/false);

  resilience::EngineContext ctx;
  ctx.sim = &cl.sim();
  ctx.client = &cl.client(0);
  ctx.ring = &cl.ring();
  ctx.membership = &cl.membership();
  ctx.server_nodes = &cl.server_nodes();
  ctx.materialize = false;
  const auto engine = resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost);

  boldio::LustreModel lustre(cl.sim(), boldio::LustreParams{});
  boldio::BoldioClient client(cl.sim(), *engine, &lustre);

  cl.start();
  cl.sim().spawn(job(&cl, &client, &lustre));
  cl.run();
  return 0;
}
