// FIG9 — Client-side time-wise breakdown for Set/Get (paper Fig 9).
//
// For value sizes 64 KB - 1 MB, splits each design's client-observed
// latency into Request (issue), Encode/Decode (compute) and Wait-Response
// phases. Set on a healthy cluster (Fig 9a); Get under two node failures
// (Fig 9b), where the wait time dominates due to the skewed survivor load.
//
// The printed phases are sourced from the span tracer (per-point deltas of
// the "set"/"get", "*/request" and "set/encode"/"get/decode" span totals),
// not from the legacy PhaseBreakdown accumulators; the harness cross-checks
// the two against each other per point and exits nonzero if they diverge by
// more than 1%.
//
// On top of the phase tables, the harness runs the causal critical-path
// analyzer over the measured ops of every point and prints (a) the mean
// per-op critical-path attribution and (b) the tail attribution over the
// slowest 1% of ops. Three invariants are enforced (exit nonzero on
// violation): each op's critical-path phases sum EXACTLY to its end-to-end
// latency; the critical-path serialize total matches the span-derived
// request total within 1%; and, for designs whose compute runs client-side,
// the critical-path encode+decode total matches the span-derived compute
// total within 1% and the per-op encode mean matches the Eq. 5 cost model
// (T_encode = cost.encode_ns(size)). SD/SE designs intentionally diverge on
// compute: the critical path surfaces server-side encode/decode that the
// client-side legacy breakdown cannot see (EXPERIMENTS.md).
//
// Expected shape (paper): for Sets, the request phase dominates small
// values and T_encode grows dominant (and overlapped) at large values for
// CE designs; SE designs show only request/wait at the client. For Gets
// under failures, wait dominates; only CD designs show client decode time.
#include <algorithm>

#include "bench_util.h"
#include "obs/critical_path.h"
#include "workload/ohb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kSizes[] = {64 * 1024, 256 * 1024, 1024 * 1024};
constexpr resilience::Design kDesigns[] = {resilience::Design::kAsyncRep,
                                           resilience::Design::kEraCeCd,
                                           resilience::Design::kEraSeSd,
                                           resilience::Design::kEraSeCd,
                                           resilience::Design::kEraCeSd};

/// Phase totals derived from tracer span totals for one (pid, op kind).
struct SpanPhaseTotals {
  SimDur total_ns = 0;
  SimDur request_ns = 0;
  SimDur compute_ns = 0;
};

SpanPhaseTotals snapshot_spans(const obs::Tracer& tracer, std::uint32_t pid,
                               bool get_side) {
  if (get_side) {
    return {tracer.total_ns(pid, "get"), tracer.total_ns(pid, "get/request"),
            tracer.total_ns(pid, "get/decode")};
  }
  return {tracer.total_ns(pid, "set"), tracer.total_ns(pid, "set/request"),
          tracer.total_ns(pid, "set/encode")};
}

/// Measured-pass phase sums derived from the tracer (populate-pass spans
/// subtracted out via a before/after snapshot).
struct TracedPhases {
  SimDur request_ns = 0;
  SimDur compute_ns = 0;
  SimDur wait_ns = 0;

  [[nodiscard]] SimDur total() const noexcept {
    return request_ns + compute_ns + wait_ns;
  }
};

sim::Task<void> run_point(sim::Simulator* sim, resilience::Engine* engine,
                          cluster::Cluster* cluster, workload::OhbConfig cfg,
                          bool get_with_failures, const obs::Tracer* tracer,
                          std::uint32_t pid, workload::OhbResult* result,
                          TracedPhases* traced, std::uint64_t* wm_lo,
                          std::uint64_t* wm_hi) {
  workload::OhbResult ignore;
  co_await workload::ohb_set_workload(sim, engine, cfg, &ignore);
  const SpanPhaseTotals before =
      snapshot_spans(*tracer, pid, get_with_failures);
  *wm_lo = tracer->trace_watermark();  // analyze only the measured pass
  if (!get_with_failures) {
    workload::OhbConfig cfg2 = cfg;
    cfg2.seed = cfg.seed + 1;
    co_await workload::ohb_set_workload(sim, engine, cfg2, result);
  } else {
    cluster->fail_server(0);
    cluster->fail_server(1);
    co_await workload::ohb_get_workload(sim, engine, cfg, result);
  }
  *wm_hi = tracer->trace_watermark();
  const SpanPhaseTotals after =
      snapshot_spans(*tracer, pid, get_with_failures);
  traced->request_ns = after.request_ns - before.request_ns;
  traced->compute_ns = after.compute_ns - before.compute_ns;
  traced->wait_ns = (after.total_ns - before.total_ns) - traced->request_ns -
                    traced->compute_ns;
}

/// Critical-path aggregates for one experiment point.
struct CpRow {
  std::string design;
  std::string value;
  std::uint64_t ops = 0;
  obs::PhaseAggregate all;
  obs::PhaseAggregate tail;  ///< slowest 1% of measured ops
  SimDur model_compute_ns = 0;
};

void print_cp_table(const char* title, const std::vector<CpRow>& rows,
                    bool tail, const char* model_label) {
  print_header(title,
               {"design", "value", "ops", "serial_us", "encode_us",
                "decode_us", "queue_us", "fanout_us", "net_us", "server_us",
                "waitk_us", "other_us", "total_us", model_label});
  for (const CpRow& row : rows) {
    const obs::PhaseAggregate& agg = tail ? row.tail : row.all;
    const auto ops = static_cast<double>(agg.count ? agg.count : 1);
    print_cell(row.design);
    print_cell(row.value);
    print_cell(static_cast<double>(agg.count));
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      print_cell(units::to_us(agg.phase_ns[p]) / ops);
    }
    print_cell(units::to_us(agg.total_ns) / ops);
    print_cell(units::to_us(row.model_compute_ns));
    end_row();
  }
}

bool within_one_percent(SimDur traced, SimDur legacy) {
  const SimDur diff = traced > legacy ? traced - legacy : legacy - traced;
  const SimDur tol = std::max<SimDur>(std::max(traced, legacy) / 100, 1);
  return diff <= tol;
}

int cross_check(const std::string& label, const char* phase, SimDur traced,
                SimDur legacy) {
  if (within_one_percent(traced, legacy)) return 0;
  std::fprintf(stderr,
               "fig09: %s %s diverges: tracer %lld ns vs breakdown %lld ns\n",
               label.c_str(), phase, static_cast<long long>(traced),
               static_cast<long long>(legacy));
  return 1;
}

int run_table(const char* title, bool get_with_failures) {
  int rc = 0;
  std::vector<CpRow> cp_rows;
  print_header(title, {"design", "value", "request_us", "compute_us",
                       "wait_us", "total_us"});
  for (const auto design : kDesigns) {
    for (const std::size_t size : kSizes) {
      const std::string label = std::string(to_string(design)) + "/" +
                                size_label(size) +
                                (get_with_failures ? "/get" : "/set");
      Testbench bench(cluster::ri_qdr(), 5, 1, design, 3, 2, 3, {}, {},
                      label);
      workload::OhbConfig cfg;
      cfg.operations = scaled(500);
      cfg.value_size = size;
      workload::OhbResult result;
      TracedPhases traced;
      std::uint64_t wm_lo = 0;
      std::uint64_t wm_hi = 0;
      ObsSession& obs = ObsSession::instance();
      bench.spawn(run_point(&bench.sim(), &bench.engine(), &bench.cluster(),
                            cfg, get_with_failures, &obs.tracer(),
                            bench.trace_pid(), &result, &traced, &wm_lo,
                            &wm_hi));
      bench.sim().run();

      // The span-derived phases must agree with the legacy PhaseBreakdown
      // accumulators (they are computed from the same charged costs).
      rc |= cross_check(label, "request", traced.request_ns,
                        result.phases.request_ns);
      rc |= cross_check(label, "compute", traced.compute_ns,
                        result.phases.compute_ns);
      rc |= cross_check(label, "wait", traced.wait_ns, result.phases.wait_ns);

      // Causal critical-path attribution over the measured ops.
      const obs::CriticalPathAnalysis cp = obs::analyze_critical_path(
          obs.tracer().tagged_spans(bench.trace_pid()));
      std::vector<obs::OpAttribution> measured;
      for (const obs::OpAttribution& op : cp.ops) {
        if (op.trace_id < wm_lo || op.trace_id >= wm_hi) continue;
        if (op.phase_sum() != op.total_ns) {
          std::fprintf(stderr,
                       "fig09: %s trace %llu: phase sum %lld ns != op total"
                       " %lld ns\n",
                       label.c_str(),
                       static_cast<unsigned long long>(op.trace_id),
                       static_cast<long long>(op.phase_sum()),
                       static_cast<long long>(op.total_ns));
          rc = 1;
        }
        measured.push_back(op);
      }
      CpRow row;
      row.design = std::string(to_string(design));
      row.value = size_label(size);
      row.ops = measured.size();
      for (const obs::OpAttribution& op : measured) row.all.add(op);
      for (const obs::OpAttribution* op :
           obs::slowest_fraction(measured, 0.01)) {
        row.tail.add(*op);
      }

      // Reconcile against the span-derived breakdown: serialization always;
      // encode+decode only where the compute actually runs on the client
      // (the critical path deliberately includes server-side compute that
      // the client-side legacy breakdown cannot see).
      using obs::Phase;
      rc |= cross_check(label, "cp-serialize", row.all.phase(Phase::kSerialize),
                        traced.request_ns);
      const bool client_compute =
          design == resilience::Design::kAsyncRep ||
          design == resilience::Design::kEraCeCd ||
          design == (get_with_failures ? resilience::Design::kEraSeCd
                                       : resilience::Design::kEraCeSd);
      if (client_compute) {
        rc |= cross_check(label, "cp-compute",
                          row.all.phase(Phase::kEncode) +
                              row.all.phase(Phase::kDecode),
                          traced.compute_ns);
      }
      // Eq. 5 cost-model cross-check: client-encode designs must attribute
      // exactly T_encode = encode_ns(size) per op to the encode phase.
      if (!get_with_failures) {
        row.model_compute_ns = bench.cost().encode_ns(size);
        if (client_compute && design != resilience::Design::kAsyncRep &&
            row.ops > 0) {
          rc |= cross_check(
              label, "cp-model-encode", row.all.phase(Phase::kEncode),
              static_cast<SimDur>(row.ops) * row.model_compute_ns);
        }
      } else {
        // Reference point for the decode column: one lost data fragment
        // (per-op loss counts vary with key placement under two failures).
        row.model_compute_ns = bench.cost().decode_ns(size, 1);
      }
      cp_rows.push_back(std::move(row));

      if (obs.metrics_enabled()) {
        // Full-run span totals (populate + measured pass) land in the
        // snapshot next to the bound engine.{set,get}_phase.* counters they
        // must match.
        const SpanPhaseTotals totals =
            snapshot_spans(obs.tracer(), bench.trace_pid(),
                           get_with_failures);
        const char* prefix = get_with_failures ? "get" : "set";
        const obs::MetricLabels labels{"fig09", "trace", label};
        obs.registry()
            .counter(std::string("trace.") + prefix + ".request_ns", labels)
            .set(static_cast<std::uint64_t>(totals.request_ns));
        obs.registry()
            .counter(std::string("trace.") + prefix + ".compute_ns", labels)
            .set(static_cast<std::uint64_t>(totals.compute_ns));
        obs.registry()
            .counter(std::string("trace.") + prefix + ".wait_ns", labels)
            .set(static_cast<std::uint64_t>(totals.total_ns -
                                            totals.request_ns -
                                            totals.compute_ns));
      }

      const auto ops = static_cast<double>(result.operations);
      print_cell(std::string(to_string(design)));
      print_cell(size_label(size));
      print_cell(units::to_us(traced.request_ns) / ops);
      print_cell(units::to_us(traced.compute_ns) / ops);
      print_cell(units::to_us(traced.wait_ns) / ops);
      print_cell(units::to_us(traced.total()) / ops);
      end_row();
    }
  }
  const char* model_label = get_with_failures ? "model_dec1" : "model_enc";
  print_cp_table((std::string(title) + " — critical path, mean per op")
                     .c_str(),
                 cp_rows, /*tail=*/false, model_label);
  print_cp_table((std::string(title) + " — tail attribution, slowest 1%")
                     .c_str(),
                 cp_rows, /*tail=*/true, model_label);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("fig09_breakdown", "its phase-breakdown probes run on shard 0's loop");
  // Phase numbers come from the span tracer, so it is always on here
  // (recording is passive — simulated results are identical either way).
  ObsSession::instance().tracer().set_enabled(true);
  std::printf("FIG9 (paper Fig 9) — client-side phase breakdown per op,"
              " RI-QDR, 5 servers\n");
  int rc = 0;
  rc |= run_table("Fig 9(a): Set phases, healthy cluster", false);
  rc |= run_table("Fig 9(b): Get phases, two node failures", true);
  rc |= obs_finalize();
  return rc;
}
