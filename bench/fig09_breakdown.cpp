// FIG9 — Client-side time-wise breakdown for Set/Get (paper Fig 9).
//
// For value sizes 64 KB - 1 MB, splits each design's client-observed
// latency into Request (issue), Encode/Decode (compute) and Wait-Response
// phases. Set on a healthy cluster (Fig 9a); Get under two node failures
// (Fig 9b), where the wait time dominates due to the skewed survivor load.
//
// Expected shape (paper): for Sets, the request phase dominates small
// values and T_encode grows dominant (and overlapped) at large values for
// CE designs; SE designs show only request/wait at the client. For Gets
// under failures, wait dominates; only CD designs show client decode time.
#include "bench_util.h"
#include "workload/ohb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kSizes[] = {64 * 1024, 256 * 1024, 1024 * 1024};
constexpr resilience::Design kDesigns[] = {resilience::Design::kAsyncRep,
                                           resilience::Design::kEraCeCd,
                                           resilience::Design::kEraSeSd,
                                           resilience::Design::kEraSeCd};

sim::Task<void> run_point(sim::Simulator* sim, resilience::Engine* engine,
                          cluster::Cluster* cluster, workload::OhbConfig cfg,
                          bool get_with_failures, workload::OhbResult* result) {
  workload::OhbResult ignore;
  co_await workload::ohb_set_workload(sim, engine, cfg, &ignore);
  if (!get_with_failures) {
    workload::OhbConfig cfg2 = cfg;
    cfg2.seed = cfg.seed + 1;
    co_await workload::ohb_set_workload(sim, engine, cfg2, result);
  } else {
    cluster->fail_server(0);
    cluster->fail_server(1);
    co_await workload::ohb_get_workload(sim, engine, cfg, result);
  }
}

void run_table(const char* title, bool get_with_failures) {
  print_header(title, {"design", "value", "request_us", "compute_us",
                       "wait_us", "total_us"});
  for (const auto design : kDesigns) {
    for (const std::size_t size : kSizes) {
      Testbench bench(cluster::ri_qdr(), 5, 1, design);
      workload::OhbConfig cfg;
      cfg.operations = scaled(500);
      cfg.value_size = size;
      workload::OhbResult result;
      bench.sim().spawn(run_point(&bench.sim(), &bench.engine(),
                                  &bench.cluster(), cfg, get_with_failures,
                                  &result));
      bench.sim().run();
      const auto ops = static_cast<double>(result.operations);
      print_cell(std::string(to_string(design)));
      print_cell(size_label(size));
      print_cell(units::to_us(result.phases.request_ns) / ops);
      print_cell(units::to_us(result.phases.compute_ns) / ops);
      print_cell(units::to_us(result.phases.wait_ns) / ops);
      print_cell(units::to_us(result.phases.total()) / ops);
      end_row();
    }
  }
}

}  // namespace

int main() {
  std::printf("FIG9 (paper Fig 9) — client-side phase breakdown per op,"
              " RI-QDR, 5 servers\n");
  run_table("Fig 9(a): Set phases, healthy cluster", false);
  run_table("Fig 9(b): Get phases, two node failures", true);
  return 0;
}
