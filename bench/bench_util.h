// Shared scaffolding for the figure-reproduction harnesses: cluster +
// per-client engine assembly on a named testbed, table formatting, and an
// environment scale knob.
//
// Benchmarks run "size-only": payloads alias shared zero buffers and the
// codec cost model charges simulated compute time (DESIGN.md §5). All
// numbers printed are simulated-time figures; shapes and ratios — not
// absolute microseconds — are the reproduction target (EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/testbeds.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"

namespace hpres::bench {

/// HPRES_BENCH_SCALE scales op counts (default 1.0; raise for more
/// statistical weight, lower for smoke runs).
inline double bench_scale() {
  const char* env = std::getenv("HPRES_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline std::uint64_t scaled(std::uint64_t ops) {
  const double v = static_cast<double>(ops) * bench_scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

/// A cluster plus one resilience engine per client, all sharing one codec
/// and cost model. Rebuilt per experiment point for isolation.
class Testbench {
 public:
  Testbench(const cluster::Testbed& bed, std::size_t servers,
            std::size_t clients, resilience::Design design, std::size_t k = 3,
            std::size_t m = 2, std::uint32_t rep_factor = 3,
            resilience::ArpeParams arpe = {})
      : codec_(k, m),
        cost_(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, k, m,
                                      bed.cpu_factor)),
        cluster_(cluster::make_config(bed, servers, clients)) {
    cluster_.enable_server_ec(codec_, cost_, /*materialize=*/false);
    engines_.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      resilience::EngineContext ctx;
      ctx.sim = &cluster_.sim();
      ctx.client = &cluster_.client(i);
      ctx.ring = &cluster_.ring();
      ctx.membership = &cluster_.membership();
      ctx.server_nodes = &cluster_.server_nodes();
      ctx.materialize = false;
      engines_.push_back(resilience::make_engine(design, ctx, rep_factor,
                                                 &codec_, cost_, arpe));
    }
    cluster_.start();
  }

  [[nodiscard]] cluster::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] sim::Simulator& sim() noexcept { return cluster_.sim(); }
  [[nodiscard]] resilience::Engine& engine(std::size_t i = 0) {
    return *engines_.at(i);
  }
  [[nodiscard]] std::size_t num_engines() const noexcept {
    return engines_.size();
  }

 private:
  ec::RsVandermondeCodec codec_;
  ec::CostModel cost_;
  cluster::Cluster cluster_;
  std::vector<std::unique_ptr<resilience::Engine>> engines_;
};

// --- Table printing -----------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "----");
  std::printf("\n");
}

inline void print_cell(const std::string& s) {
  std::printf("%14s", s.c_str());
}
inline void print_cell(double v) { std::printf("%14.1f", v); }
inline void end_row() { std::printf("\n"); }

inline std::string size_label(std::size_t bytes) {
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    return std::to_string(bytes / (1024 * 1024)) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "K";
  }
  return std::to_string(bytes) + "B";
}

}  // namespace hpres::bench
