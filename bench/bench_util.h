// Shared scaffolding for the figure-reproduction harnesses: cluster +
// per-client engine assembly on a named testbed, table formatting, and an
// environment scale knob.
//
// Benchmarks run "size-only": payloads alias shared zero buffers and the
// codec cost model charges simulated compute time (DESIGN.md §5). All
// numbers printed are simulated-time figures; shapes and ratios — not
// absolute microseconds — are the reproduction target (EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/testbeds.h"
#include "ec/rs_vandermonde.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "resilience/factory.h"
#include "sim/shard_runtime.h"

namespace hpres::bench {

/// HPRES_BENCH_SCALE scales op counts (default 1.0; raise for more
/// statistical weight, lower for smoke runs).
inline double bench_scale() {
  const char* env = std::getenv("HPRES_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline std::uint64_t scaled(std::uint64_t ops) {
  const double v = static_cast<double>(ops) * bench_scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

// --- Observability session ----------------------------------------------------
//
// One per process: holds the span tracer, metrics registry and latency
// recorder every Testbench registers into. Enabled by harness flags:
//   --trace-out=FILE          Chrome trace_event JSON (Perfetto-loadable)
//   --metrics-out=FILE        metrics snapshot JSON
//   --prom-out=FILE           metrics in Prometheus text exposition format
//   --sample-interval-us=N    periodic gauge sampling (0 disables; defaults
//                             to 100 us when tracing is on)
//   --trace-tail-us=N         tail sampling: keep full span detail only for
//                             ops slower than N microseconds
//   --trace-tail-keep=N       tail sampling: always keep the slowest N ops
//                             per {op, scheme, degraded} label
//   --flight-out=FILE         flight-recorder dump target; enables the
//                             always-on ring recorder (crash / timeout-burst
//                             dumps overwrite FILE, freshest wins, and each
//                             Testbench teardown writes a "finalize" dump)
//   --flight-ring=N           flight-recorder ring size per node (default
//                             256 records = 6 KiB/node)
//   --shards=N                event-loop shards for harnesses that opt in
//                             (the YCSB runners, micro_shard_scaling, and
//                             the ext failure harnesses); overrides the
//                             HPRES_SHARDS env var. 1 = the deterministic
//                             oracle mode (the default). The whole
//                             observability stack works at any shard
//                             count: parallel runs record into per-shard
//                             domains merged deterministically at
//                             quiescence, so exports are bit-reproducible
//                             for a fixed (seed, shard count) and
//                             byte-identical to oracle output at N <= 1.
//   --shard-profile-out=FILE  per-shard runtime profile JSON (window
//                             counts/lengths, barrier stall vs busy wall
//                             time, cross-shard message rates, lane
//                             occupancy/spills) for every Testbench point
// With no flags everything is off and benchmarks run exactly as before —
// observation never touches simulation state, so results are identical
// either way. The latency recorder itself is always on (O(1) memory per
// label, no simulation effects), so percentile tables print regardless.
class ObsSession {
 public:
  static ObsSession& instance() {
    static ObsSession session;
    return session;
  }

  /// Parses the observability flags; unknown arguments are ignored.
  void init(int argc, char** argv) {
    wall_start_ = std::chrono::steady_clock::now();
    if (const char* env = std::getenv("HPRES_SHARDS")) {
      const std::int64_t v = std::atoll(env);
      shards_ = v < 1 ? 1 : static_cast<std::size_t>(v);
    }
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto int_flag = [&arg](std::string_view prefix,
                                   std::int64_t* out) {
        if (!arg.starts_with(prefix)) return false;
        const std::string value(arg.substr(prefix.size()));
        try {
          *out = std::stoll(value);
        } catch (const std::exception&) {
          std::fprintf(stderr, "error: %.*s expects an integer, got \"%s\"\n",
                       static_cast<int>(prefix.size() - 1), prefix.data(),
                       value.c_str());
          std::exit(2);
        }
        return true;
      };
      std::int64_t v = 0;
      if (arg.starts_with("--metrics-out=")) {
        metrics_out_ = std::string(arg.substr(14));
      } else if (arg.starts_with("--trace-out=")) {
        trace_out_ = std::string(arg.substr(12));
      } else if (arg.starts_with("--prom-out=")) {
        prom_out_ = std::string(arg.substr(11));
      } else if (int_flag("--sample-interval-us=", &v)) {
        sample_interval_ns_ = v * 1'000;
      } else if (int_flag("--trace-tail-us=", &v)) {
        tail_.threshold_ns = v * 1'000;
      } else if (int_flag("--trace-tail-keep=", &v)) {
        tail_.keep_slowest = v < 0 ? 0 : static_cast<std::size_t>(v);
      } else if (arg.starts_with("--flight-out=")) {
        flight_out_ = std::string(arg.substr(13));
      } else if (int_flag("--flight-ring=", &v)) {
        flight_ring_ = v < 1 ? 1 : static_cast<std::size_t>(v);
      } else if (int_flag("--shards=", &v)) {
        shards_ = v < 1 ? 1 : static_cast<std::size_t>(v);
      } else if (arg.starts_with("--shard-profile-out=")) {
        shard_profile_out_ = std::string(arg.substr(20));
      }
    }
    if (!flight_out_.empty()) {
      flight_ = std::make_unique<obs::FlightRecorder>(flight_ring_);
      flight_->set_dump_path(flight_out_);
    }
    tracer_.set_enabled(!trace_out_.empty());
    recorder_.set_tail(tail_);
    if (sample_interval_ns_ < 0) sample_interval_ns_ = 0;
    if (sample_interval_ns_ == 0 && tracer_.enabled()) {
      sample_interval_ns_ = 100'000;  // default 100 us when tracing
    }
  }

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return !metrics_out_.empty() || !prom_out_.empty();
  }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] obs::LatencyRecorder& recorder() noexcept { return recorder_; }
  /// Process-wide flight recorder, or nullptr when --flight-out is absent.
  [[nodiscard]] obs::FlightRecorder* flight() noexcept { return flight_.get(); }
  [[nodiscard]] SimDur sample_interval_ns() const noexcept {
    return sample_interval_ns_;
  }

  [[nodiscard]] std::string next_point_label() {
    return "pt" + std::to_string(point_seq_++);
  }

  /// Requested shard count for harnesses that opt in (--shards /
  /// HPRES_SHARDS). Observability no longer forces oracle mode: tracing,
  /// flight recording and the health monitor all run shard-safe through
  /// per-shard domains.
  [[nodiscard]] std::size_t effective_shards() const noexcept {
    return shards_;
  }
  /// Alias kept for harnesses that report the requested count.
  [[nodiscard]] std::size_t requested_shards() const noexcept {
    return shards_;
  }

  [[nodiscard]] bool shard_profile_enabled() const noexcept {
    return !shard_profile_out_.empty();
  }

  /// Folds one finished Testbench point's runtime profile into the
  /// --shard-profile-out report (no-op when the flag is absent).
  void add_profile_point(const std::string& label,
                         const sim::RuntimeProfile& prof) {
    if (shard_profile_out_.empty()) return;
    profile_points_.push_back(ProfilePoint{label, prof});
  }

  /// Folds a finished cluster's executed-event count into the process
  /// total driving the sim-efficiency summary line.
  void add_sim_events(std::uint64_t events) noexcept { sim_events_ += events; }
  [[nodiscard]] std::uint64_t sim_events() const noexcept {
    return sim_events_;
  }

  /// Writes the requested output files and prints the wall-clock /
  /// sim-efficiency summary (stderr, so stdout stays byte-comparable
  /// across instrumented and plain runs); returns a process exit code.
  [[nodiscard]] int finalize() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start_)
            .count();
    std::fprintf(stderr,
                 "[bench] wall-clock %.3f s | %llu simulated events | "
                 "%.3f M events/s | shards=%zu | hw_threads=%u\n",
                 wall_s,
                 static_cast<unsigned long long>(sim_events_),
                 wall_s > 0.0
                     ? static_cast<double>(sim_events_) / wall_s / 1e6
                     : 0.0,
                 effective_shards(),
                 std::thread::hardware_concurrency());
    int rc = 0;
    if (metrics_enabled()) registry_.capture();
    if (!metrics_out_.empty() && !registry_.write_json(metrics_out_)) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out_.c_str());
      rc = 1;
    }
    if (!prom_out_.empty() &&
        !obs::write_prometheus(registry_, prom_out_)) {
      std::fprintf(stderr, "error: cannot write %s\n", prom_out_.c_str());
      rc = 1;
    }
    if (!trace_out_.empty()) {
      // Tail sampling: drop tagged span detail for every op the recorder
      // did not keep (untagged infrastructure events always survive).
      if (tail_.threshold_ns > 0 || tail_.keep_slowest > 0) {
        tracer_.retain_traces(recorder_.kept_traces());
      }
      if (!tracer_.write_json(trace_out_)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out_.c_str());
        rc = 1;
      }
    }
    if (!shard_profile_out_.empty() &&
        !write_shard_profile(shard_profile_out_)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   shard_profile_out_.c_str());
      rc = 1;
    }
    return rc;
  }

 private:
  ObsSession() = default;

  struct ProfilePoint {
    std::string label;
    sim::RuntimeProfile prof;
  };

  [[nodiscard]] bool write_shard_profile(const std::string& path) const {
    std::string out;
    out += "{\"shard_profile\":{\"version\":1,\"points\":[";
    for (std::size_t p = 0; p < profile_points_.size(); ++p) {
      const ProfilePoint& pt = profile_points_[p];
      if (p != 0) out.push_back(',');
      out += "\n{\"label\":";
      obs::json::append_string(out, pt.label);
      out += ",\"shards\":";
      obs::json::append_u64(out, pt.prof.shards);
      out += ",\"lookahead_ns\":";
      obs::json::append_i64(out, pt.prof.lookahead_ns);
      out += ",\"rounds\":";
      obs::json::append_u64(out, pt.prof.rounds);
      out += ",\"advance_ns\":{\"min\":";
      obs::json::append_i64(out, pt.prof.min_advance_ns);
      out += ",\"max\":";
      obs::json::append_i64(out, pt.prof.max_advance_ns);
      out += ",\"mean\":";
      obs::json::append_fixed(out, pt.prof.mean_advance_ns, 1);
      out += "},\"per_shard\":[";
      for (std::size_t s = 0; s < pt.prof.per_shard.size(); ++s) {
        const sim::ShardProfile& sp = pt.prof.per_shard[s];
        if (s != 0) out.push_back(',');
        out += "\n{\"shard\":";
        obs::json::append_u64(out, s);
        out += ",\"events\":";
        obs::json::append_u64(out, sp.events);
        out += ",\"msgs_out\":";
        obs::json::append_u64(out, sp.msgs_out);
        out += ",\"msgs_in\":";
        obs::json::append_u64(out, sp.msgs_in);
        out += ",\"spills_out\":";
        obs::json::append_u64(out, sp.spills_out);
        out += ",\"lane_occupancy_hw\":";
        obs::json::append_u64(out, sp.lane_occupancy_hw);
        out += ",\"busy_wall_ns\":";
        obs::json::append_u64(out, sp.busy_wall_ns);
        out += ",\"stall_wall_ns\":";
        obs::json::append_u64(out, sp.stall_wall_ns);
        out += ",\"stall_fraction\":";
        obs::json::append_fixed(
            out, sim::RuntimeProfile::stall_fraction(sp), 4);
        out.push_back('}');
      }
      out += "]}";
    }
    out += "\n]}}\n";
    std::ofstream file(path, std::ios::trunc);
    if (!file) return false;
    file << out;
    return file.good();
  }

  obs::Tracer tracer_;
  obs::MetricsRegistry registry_;
  obs::LatencyRecorder recorder_;
  obs::LatencyRecorder::TailParams tail_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<ProfilePoint> profile_points_;
  std::string flight_out_;
  std::string metrics_out_;
  std::string trace_out_;
  std::string prom_out_;
  std::string shard_profile_out_;
  SimDur sample_interval_ns_ = 0;
  std::size_t flight_ring_ = obs::FlightRecorder::kDefaultRingSize;
  std::uint64_t point_seq_ = 0;
  std::size_t shards_ = 1;
  std::uint64_t sim_events_ = 0;
  std::chrono::steady_clock::time_point wall_start_ =
      std::chrono::steady_clock::now();
};

inline void obs_init(int argc, char** argv) {
  ObsSession::instance().init(argc, argv);
}

/// Parses an `--flag=N` integer harness argument; `fallback` when absent.
/// Exits with code 2 on a malformed value (same contract as the
/// observability flags above).
inline std::int64_t arg_int(int argc, char** argv, std::string_view prefix,
                            std::int64_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with(prefix)) continue;
    const std::string value(arg.substr(prefix.size()));
    try {
      return std::stoll(value);
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: %.*s expects an integer, got \"%s\"\n",
                   static_cast<int>(prefix.size() - 1), prefix.data(),
                   value.c_str());
      std::exit(2);
    }
  }
  return fallback;
}
[[nodiscard]] inline int obs_finalize() {
  return ObsSession::instance().finalize();
}

/// Guard for harnesses whose drivers have not been audited for shard
/// safety (they share RNGs or counters across client coroutines, or call
/// cross-shard APIs mid-run). Fails fast with a clear diagnostic instead
/// of racing. Call right after obs_init().
inline void require_oracle_shards(const char* harness, const char* why) {
  const std::size_t n = ObsSession::instance().effective_shards();
  if (n <= 1) return;
  std::fprintf(stderr,
               "error: %s is oracle-only: %s. Requested --shards=%zu; "
               "re-run without --shards / HPRES_SHARDS, or use a sharded "
               "harness (ycsb runners, micro_shard_scaling, "
               "ext_gray_failure, ext_online_failure).\n",
               harness, why, n);
  std::exit(2);
}

/// A cluster plus one resilience engine per client, all sharing one codec
/// and cost model. Rebuilt per experiment point for isolation.
///
/// Every Testbench registers itself with the process ObsSession: it becomes
/// one trace process (pid) named `point_label`, its stats structs bind into
/// the metrics registry under that op label, and — when sampling is on — a
/// periodic gauge sampler starts with the first spawn() and stops when the
/// last spawned workload completes. The destructor freezes bound metrics
/// (registry capture) so snapshots survive per-point teardown.
class Testbench {
 public:
  /// `shards` sentinel: take the process-wide --shards / HPRES_SHARDS
  /// request (harnesses audited for shard safety pass this; everything
  /// else defaults to the single-loop oracle).
  static constexpr std::size_t kAutoShards = static_cast<std::size_t>(-1);

  Testbench(const cluster::Testbed& bed, std::size_t servers,
            std::size_t clients, resilience::Design design, std::size_t k = 3,
            std::size_t m = 2, std::uint32_t rep_factor = 3,
            resilience::ArpeParams arpe = {},
            resilience::HedgeParams hedge = {}, std::string point_label = {},
            resilience::PackParams pack = {}, std::size_t shards = 1)
      : codec_(k, m),
        cost_(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, k, m,
                                      bed.cpu_factor)),
        cluster_(shard_config(bed, servers, clients, shards)) {
    ObsSession& obs = ObsSession::instance();
    label_ = point_label.empty() ? obs.next_point_label()
                                 : std::move(point_label);
    trace_pid_ = obs.tracer().declare_process(label_);
    recorder_.set_tail(obs.recorder().tail());
    cluster_.set_tracer(&obs.tracer(), trace_pid_);
    if (obs.flight() != nullptr) cluster_.set_flight_recorder(obs.flight());
    cluster_.enable_server_ec(codec_, cost_, /*materialize=*/false);
    // Sharded runs record latencies into one recorder per engine (merged
    // on read) so engines on different shard threads never share one;
    // oracle runs keep the single shared recorder, byte-identical to the
    // pre-shard harness.
    if (cluster_.num_shards() > 1) {
      engine_recorders_.reserve(clients);
      for (std::size_t i = 0; i < clients; ++i) {
        engine_recorders_.push_back(
            std::make_unique<obs::LatencyRecorder>());
        engine_recorders_.back()->set_tail(obs.recorder().tail());
      }
    }
    engines_.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      resilience::EngineContext ctx;
      ctx.sim = &cluster_.sim_for_client(i);
      ctx.client = &cluster_.client(i);
      ctx.ring = &cluster_.ring();
      ctx.membership = &cluster_.membership();
      ctx.server_nodes = &cluster_.server_nodes();
      ctx.materialize = false;
      // Each engine records into its own shard's observability domains
      // (the process-wide instruments themselves in oracle mode).
      ctx.tracer = cluster_.tracer_for_client(i);
      ctx.trace_pid = trace_pid_;
      ctx.recorder = engine_recorders_.empty() ? &recorder_
                                               : engine_recorders_[i].get();
      ctx.flight = cluster_.flight_domain_of(
          static_cast<net::NodeId>(servers + i));
      engines_.push_back(resilience::make_engine(
          design, ctx, rep_factor, &codec_, cost_, arpe, hedge, pack));
    }
    cluster_.start();
    if (obs.metrics_enabled()) {
      cluster_.register_metrics(obs.registry(), label_);
      for (std::size_t i = 0; i < engines_.size(); ++i) {
        const std::string node = "client" + std::to_string(i);
        engines_[i]->stats().register_with(obs.registry(), node, label_);
        engines_[i]->arpe().stats().register_with(obs.registry(), node,
                                                  label_);
        engines_[i]->arpe().buffer_stats().register_with(obs.registry(), node,
                                                         label_);
      }
    }
  }

  ~Testbench() {
    ObsSession& obs = ObsSession::instance();
    // Quiesced teardown order: final gauge sample, then fold the per-shard
    // observability domains into the process instruments (canonical shard
    // order), then snapshot/export — so every export sees the merged view.
    if (wsampler_ != nullptr) wsampler_->flush(cluster_.now_quiesced());
    cluster_.merge_obs_domains();
    const sim::RuntimeProfile prof = cluster_.runtime().profile();
    // shard.* runtime gauges only exist for parallel points: an oracle
    // point's metrics output stays byte-identical to the pre-shard bench.
    if (obs.metrics_enabled() && cluster_.num_shards() > 1) {
      register_shard_metrics(obs.registry(), prof);
    }
    obs.add_profile_point(label_, prof);
    if (obs.metrics_enabled()) obs.registry().capture();
    // On-demand dump at point teardown: the freshest ring window as of the
    // last simulated instant. Later points overwrite, so the file always
    // holds the most recent experiment's window (crash/timeout-burst dumps
    // taken mid-run are overwritten too — the ring still covers them).
    if (obs.flight() != nullptr) {
      obs.flight()->dump_to_file("finalize", cluster_.now_quiesced());
    }
    // Fold this point's percentiles (and tail-kept trace ids) into the
    // process-wide recorder that drives tail retention at finalize.
    obs.recorder().merge(recorder_);
    for (const auto& r : engine_recorders_) obs.recorder().merge(*r);
    // Sim-efficiency accounting for the [bench] summary line.
    obs.add_sim_events(cluster_.runtime().events_executed());
  }

  [[nodiscard]] cluster::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] sim::Simulator& sim() noexcept { return cluster_.sim(); }
  [[nodiscard]] resilience::Engine& engine(std::size_t i = 0) {
    return *engines_.at(i);
  }
  [[nodiscard]] std::size_t num_engines() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::uint32_t trace_pid() const noexcept { return trace_pid_; }
  /// This point's always-on latency percentile recorder (the shared oracle
  /// recorder; sharded points split per engine — use latency_rows()).
  [[nodiscard]] obs::LatencyRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const ec::CostModel& cost() const noexcept { return cost_; }

  /// Percentile rows over every recorder this point owns (the shared one
  /// plus per-engine recorders in sharded mode). Histogram merging
  /// commutes, so oracle rows are identical to recorder().rows().
  [[nodiscard]] std::vector<obs::LatencyRow> latency_rows() const {
    if (engine_recorders_.empty()) return recorder_.rows();
    obs::LatencyRecorder merged;
    merged.merge(recorder_);
    for (const auto& r : engine_recorders_) merged.merge(*r);
    return merged.rows();
  }

  /// Drops recorded latencies (harnesses reset between preload and the
  /// measured pass).
  void clear_latency() {
    recorder_.clear();
    for (const auto& r : engine_recorders_) r->clear();
  }

  /// Runs the cluster to quiescence — all shards in parallel when sharded,
  /// the classic single loop otherwise.
  SimTime run() { return cluster_.run(); }

  /// Spawns a workload task, tracking it so the gauge sampler (when
  /// enabled) stops once every spawned task has completed — otherwise the
  /// sampler's periodic ticks would keep sim().run() from draining.
  void spawn(sim::Task<void> task) {
    maybe_start_sampler();
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    sim().spawn(tracked(this, std::move(task)));
  }

  /// Spawns a workload task onto client `i`'s own shard loop. Sharded
  /// harnesses must use this — a task driving engine `i` has to run on the
  /// engine's shard. In oracle mode this is exactly spawn().
  void spawn_client(std::size_t i, sim::Task<void> task) {
    maybe_start_sampler();
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    cluster_.sim_for_client(i).spawn(tracked(this, std::move(task)));
  }

 private:
  static sim::Task<void> tracked(Testbench* self, sim::Task<void> inner) {
    co_await std::move(inner);
    if (self->outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        self->sampler_ != nullptr) {
      self->sampler_->request_stop();
    }
  }

  static cluster::ClusterConfig shard_config(const cluster::Testbed& bed,
                                             std::size_t servers,
                                             std::size_t clients,
                                             std::size_t shards) {
    cluster::ClusterConfig cfg = cluster::make_config(bed, servers, clients);
    cfg.shards = shards == kAutoShards
                     ? ObsSession::instance().effective_shards()
                     : shards;
    return cfg;
  }

  /// Only sim-deterministic profile fields become shard.* gauges: the
  /// metrics/prometheus exports are byte-diffed across repeat runs, so the
  /// wall-clock fields (busy/stall) live only in --shard-profile-out and
  /// the harness stall tables.
  void register_shard_metrics(obs::MetricsRegistry& reg,
                              const sim::RuntimeProfile& prof) {
    const auto i64 = [](std::uint64_t v) {
      return static_cast<std::int64_t>(v);
    };
    const obs::MetricLabels rt{"shard", "runtime", label_};
    reg.gauge("shard.rounds", rt).set(i64(prof.rounds));
    reg.gauge("shard.lookahead_ns", rt).set(prof.lookahead_ns);
    reg.gauge("shard.min_advance_ns", rt).set(prof.min_advance_ns);
    reg.gauge("shard.max_advance_ns", rt).set(prof.max_advance_ns);
    reg.gauge("shard.mean_advance_ns", rt)
        .set(static_cast<std::int64_t>(prof.mean_advance_ns));
    for (std::size_t s = 0; s < prof.per_shard.size(); ++s) {
      const sim::ShardProfile& sp = prof.per_shard[s];
      const obs::MetricLabels labels{"shard", "shard" + std::to_string(s),
                                     label_};
      reg.gauge("shard.events", labels).set(i64(sp.events));
      reg.gauge("shard.msgs_out", labels).set(i64(sp.msgs_out));
      reg.gauge("shard.msgs_in", labels).set(i64(sp.msgs_in));
      reg.gauge("shard.spills_out", labels).set(i64(sp.spills_out));
      reg.gauge("shard.lane_occupancy_hw", labels)
          .set(i64(sp.lane_occupancy_hw));
    }
  }

  void maybe_start_sampler() {
    ObsSession& obs = ObsSession::instance();
    if (sampler_ != nullptr || wsampler_ != nullptr ||
        !obs.tracer().enabled() || obs.sample_interval_ns() <= 0) {
      return;
    }
    if (cluster_.num_shards() > 1) {
      start_window_sampler(obs);
      return;
    }
    sampler_ = std::make_unique<obs::Sampler>(sim(), obs.tracer(), trace_pid_,
                                              obs.sample_interval_ns());
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      resilience::Engine* engine = engines_[i].get();
      const std::string node = "client" + std::to_string(i);
      sampler_->add_gauge(node + "/arpe.in_flight", [engine] {
        return static_cast<std::int64_t>(engine->arpe().in_flight());
      });
      sampler_->add_gauge(node + "/bufpool.in_use", [engine] {
        return static_cast<std::int64_t>(engine->arpe().buffers_in_use());
      });
    }
    // Per-server load scores as seen by client 0's tracker (when the
    // engine has one): what load-aware read-set selection actually ranks
    // on, scaled x1000 so fractional EWMA movement survives the int gauge.
    if (const resilience::NodeLoadTracker* lt = engines_[0]->load_tracker();
        lt != nullptr) {
      for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
        sampler_->add_gauge(
            "server" + std::to_string(s) + "/load_score_x1000", [lt, s] {
              return static_cast<std::int64_t>(lt->score(s) * 1000.0);
            });
      }
    }
    cluster::Cluster* cl = &cluster_;
    sampler_->add_gauge("fabric/in_flight_bytes", [cl] {
      return static_cast<std::int64_t>(cl->fabric().in_flight_bytes());
    });
    for (std::size_t i = 0; i < cluster_.num_servers(); ++i) {
      const net::NodeId node = cluster_.server_nodes()[i];
      sampler_->add_gauge("server" + std::to_string(i) + "/inbox_depth",
                          [cl, node] {
                            return static_cast<std::int64_t>(
                                cl->fabric().inbox(node).size());
                          });
    }
    sampler_->start();
  }

  /// Sharded counterpart of the block above: the same gauges, but sampled
  /// at runtime quiesce points and recorded into each owner's shard
  /// domain. Extra per-shard fabric/in-flight gauges replace the global
  /// one (the merged counter is only refreshed after run()).
  void start_window_sampler(ObsSession& obs) {
    wsampler_ = std::make_unique<obs::WindowSampler>(
        cluster_.runtime(), obs.sample_interval_ns());
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      resilience::Engine* engine = engines_[i].get();
      obs::Tracer* const dom = cluster_.tracer_for_client(i);
      const std::string node = "client" + std::to_string(i);
      wsampler_->add_gauge(dom, trace_pid_, node + "/arpe.in_flight",
                           [engine] {
                             return static_cast<std::int64_t>(
                                 engine->arpe().in_flight());
                           });
      wsampler_->add_gauge(dom, trace_pid_, node + "/bufpool.in_use",
                           [engine] {
                             return static_cast<std::int64_t>(
                                 engine->arpe().buffers_in_use());
                           });
    }
    if (const resilience::NodeLoadTracker* lt = engines_[0]->load_tracker();
        lt != nullptr) {
      obs::Tracer* const dom = cluster_.tracer_for_client(0);
      for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
        wsampler_->add_gauge(
            dom, trace_pid_,
            "server" + std::to_string(s) + "/load_score_x1000", [lt, s] {
              return static_cast<std::int64_t>(lt->score(s) * 1000.0);
            });
      }
    }
    cluster::Cluster* cl = &cluster_;
    for (std::size_t s = 0; s < cluster_.num_shards(); ++s) {
      wsampler_->add_gauge(
          cluster_.tracer_domain(s), trace_pid_,
          "fabric/shard" + std::to_string(s) + "/in_flight_bytes", [cl, s] {
            return static_cast<std::int64_t>(
                cl->fabric().in_flight_bytes_of_shard(s));
          });
    }
    for (std::size_t i = 0; i < cluster_.num_servers(); ++i) {
      const net::NodeId node = cluster_.server_nodes()[i];
      wsampler_->add_gauge(cluster_.tracer_for_node(node), trace_pid_,
                           "server" + std::to_string(i) + "/inbox_depth",
                           [cl, node] {
                             return static_cast<std::int64_t>(
                                 cl->fabric().inbox(node).size());
                           });
    }
    wsampler_->start();
  }

  ec::RsVandermondeCodec codec_;
  ec::CostModel cost_;
  cluster::Cluster cluster_;
  obs::LatencyRecorder recorder_;  // outlives the engines that record into it
  std::vector<std::unique_ptr<obs::LatencyRecorder>> engine_recorders_;
  std::vector<std::unique_ptr<resilience::Engine>> engines_;
  std::string label_;
  std::uint32_t trace_pid_ = 0;
  std::atomic<std::uint64_t> outstanding_{0};
  std::unique_ptr<obs::Sampler> sampler_;  // declared last: destroyed first
  std::unique_ptr<obs::WindowSampler> wsampler_;  // sharded runs only
};

// --- Table printing -----------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "----");
  std::printf("\n");
}

inline void print_cell(const std::string& s) {
  std::printf("%14s", s.c_str());
}
inline void print_cell(double v) { std::printf("%14.1f", v); }
inline void end_row() { std::printf("\n"); }

/// Prints one LatencyRecorder percentile table (all values microseconds).
inline void print_latency_rows(const std::string& title,
                               const std::vector<obs::LatencyRow>& rows) {
  print_header(title, {"op", "scheme", "degraded", "count", "p50_us",
                       "p95_us", "p99_us", "p999_us", "max_us"});
  for (const obs::LatencyRow& row : rows) {
    print_cell(row.key.op);
    print_cell(row.key.scheme);
    print_cell(row.key.degraded ? "yes" : "no");
    print_cell(static_cast<double>(row.count));
    print_cell(units::to_us(row.p50_ns));
    print_cell(units::to_us(row.p95_ns));
    print_cell(units::to_us(row.p99_ns));
    print_cell(units::to_us(row.p999_ns));
    print_cell(units::to_us(row.max_ns));
    end_row();
  }
}

inline std::string size_label(std::size_t bytes) {
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    return std::to_string(bytes / (1024 * 1024)) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "K";
  }
  return std::to_string(bytes) + "B";
}

}  // namespace hpres::bench
