// Shared YCSB multi-client runner for the FIG11/FIG12 harnesses: builds a
// testbed cluster with one engine per client, preloads the record set, runs
// every client's op stream concurrently, and merges the results.
//
// Scale note: the paper preloads 250K records and runs 2.5K ops on each of
// 150 clients. The simulated runs keep the 150-client concurrency (that is
// what stresses the servers) but scale record/op counts down by default;
// set HPRES_BENCH_SCALE to grow them.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "bench_util.h"
#include "cluster/fault_schedule.h"
#include "workload/ycsb.h"

namespace hpres::bench {

struct YcsbRun {
  workload::YcsbResult merged;  ///< all clients
  SimDur makespan_ns = 0;       ///< first op to last completion
  /// Measured-pass percentile rows ({op, scheme, degraded}, p50..p99.9)
  /// from the always-on LatencyRecorder; preload ops are excluded.
  std::vector<obs::LatencyRow> latency;
  /// Hedging / failure-handling counters summed over all client engines
  /// (measured pass; the preload runs before a fault or hedge can fire).
  std::uint64_t hedged_gets = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_suppressed = 0;
  std::uint64_t hedge_wasted_bytes = 0;
  std::uint64_t failover_fetches = 0;
  std::uint64_t degraded_gets = 0;
  /// Fabric counters at quiescence, merged over all shards (conservation
  /// identities: sent == delivered + dropped, in bytes and messages).
  net::FabricStats fabric;
  /// Simulator events executed over the whole run (all shards).
  std::uint64_t sim_events = 0;
  /// Runtime execution profile (per-shard events / barrier stall / lane
  /// traffic, window advance stats). One shard, no rounds in oracle mode.
  sim::RuntimeProfile profile;

  [[nodiscard]] double throughput_ops_s() const {
    return merged.throughput_ops_per_s(makespan_ns);
  }
  [[nodiscard]] double avg_read_us() const {
    return units::to_us(
        static_cast<SimDur>(merged.read_latency.mean()));
  }
  [[nodiscard]] double avg_write_us() const {
    return units::to_us(
        static_cast<SimDur>(merged.write_latency.mean()));
  }
};

/// Epoch-invalidated memo of HashRing::primary_index. Primary resolution
/// walks the ring's point map (log |ring| per lookup); workload tooling
/// that classifies many keys against the same ring — e.g. the scale-out
/// bench's moved-key audit — hits the same keys repeatedly. The cache
/// keys validity on the ring's placement epoch, so a join/leave cutover
/// invalidates every memoized owner at once. Host-side only: simulated
/// costs never route through it.
class PrimaryCache {
 public:
  explicit PrimaryCache(const kv::HashRing* ring) : ring_(ring) {}

  [[nodiscard]] std::size_t primary_index(const std::string& key) {
    ++lookups_;
    if (epoch_ != ring_->epoch()) {
      cache_.clear();
      epoch_ = ring_->epoch();
    }
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    const std::size_t owner = ring_->primary_index(key);
    cache_.emplace(key, owner);
    return owner;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  const kv::HashRing* ring_;
  std::uint64_t epoch_ = 0;  ///< epoch the cache entries resolved under
  std::unordered_map<std::string, std::size_t> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
};

namespace detail {

// Completion is tracked by the harness running every shard loop to
// quiescence (Testbench::run); the per-proc latch the runner once counted
// down was never awaited, and a shared latch would not be shard-safe.

inline sim::Task<void> client_proc(sim::Simulator* sim,
                                   resilience::Engine* engine,
                                   workload::YcsbConfig cfg,
                                   std::uint64_t seed,
                                   workload::YcsbResult* result) {
  co_await workload::ycsb_client(sim, engine, cfg, seed, result);
}

inline sim::Task<void> loader_proc(sim::Simulator* sim,
                                   resilience::Engine* engine,
                                   workload::YcsbConfig cfg,
                                   std::uint64_t first, std::uint64_t last) {
  co_await workload::ycsb_load(sim, engine, cfg, first, last);
}

}  // namespace detail

/// Knobs for run_ycsb beyond the testbed/design/workload triple.
struct YcsbRunOpts {
  std::size_t servers = 5;
  std::size_t clients = 150;
  std::uint32_t rep_factor = 3;
  resilience::ArpeParams arpe = {};
  resilience::HedgeParams hedge = {};
  /// RPC deadline policy armed on every node when set (required for runs
  /// that crash servers mid-op; harmless otherwise).
  std::optional<kv::RpcPolicy> policy;
  /// > 1.0: gray-slow `slow_server` by this compute factor from the start
  /// of the measured pass (the preload runs at full speed).
  double slow_factor = 1.0;
  std::size_t slow_server = 0;
  std::string point_label = {};
  /// Shard count for the parallel runtime. Defaults to the harness-wide
  /// resolution (--shards / HPRES_SHARDS, oracle when unset). Fault
  /// injection works at any count: FaultSchedule applies events from
  /// runtime quiesce points when sharded.
  std::size_t shards = Testbench::kAutoShards;
};

inline YcsbRun run_ycsb(const cluster::Testbed& bed,
                        resilience::Design design, workload::YcsbConfig cfg,
                        const YcsbRunOpts& opts) {
  const std::size_t clients = opts.clients;
  Testbench bench(bed, opts.servers, clients, design, 3, 2, opts.rep_factor,
                  opts.arpe, opts.hedge, opts.point_label, {}, opts.shards);
  if (opts.policy) bench.cluster().set_rpc_policy(*opts.policy);
  cluster::FaultSchedule faults(bench.cluster());

  // Preload, partitioned over a handful of loader clients. Each loader runs
  // on its own client's shard; run() drives every shard loop to quiescence.
  const std::size_t loaders = std::min<std::size_t>(8, clients);
  {
    const std::uint64_t stride =
        (cfg.record_count + loaders - 1) / loaders;
    for (std::size_t l = 0; l < loaders; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last = std::min<std::uint64_t>(
          first + stride, cfg.record_count);
      if (first >= last) continue;
      bench.spawn_client(
          l, detail::loader_proc(&bench.cluster().sim_for_client(l),
                                 &bench.engine(l), cfg, first, last));
    }
    bench.run();
  }
  // Percentiles cover the measured pass only (preload ops dropped; their
  // span detail is also not tail-kept, which is the point of the preload).
  bench.clear_latency();

  // Measured phase: every client runs its stream concurrently.
  YcsbRun run;
  std::vector<workload::YcsbResult> results(clients);
  const SimTime start = bench.cluster().now_quiesced();
  if (opts.slow_factor > 1.0) {
    faults.add_slowdown(start, opts.slow_server, opts.slow_factor);
    faults.arm();
  }
  for (std::size_t c = 0; c < clients; ++c) {
    bench.spawn_client(
        c, detail::client_proc(&bench.cluster().sim_for_client(c),
                               &bench.engine(c), cfg, cfg.seed + 1000 + c,
                               &results[c]));
  }
  bench.run();
  run.makespan_ns = bench.cluster().now_quiesced() - start;
  for (const auto& r : results) run.merged.merge(r);
  run.latency = bench.latency_rows();
  run.fabric = bench.cluster().fabric().stats();
  run.sim_events = bench.cluster().runtime().events_executed();
  run.profile = bench.cluster().runtime().profile();
  for (std::size_t c = 0; c < clients; ++c) {
    const resilience::EngineStats& eng = bench.engine(c).stats();
    run.hedged_gets += eng.hedged_gets;
    run.hedges_fired += eng.hedges_fired;
    run.hedge_wins += eng.hedge_wins;
    run.hedges_suppressed += eng.hedges_suppressed;
    run.hedge_wasted_bytes += eng.hedge_wasted_bytes;
    run.failover_fetches += eng.failover_fetches;
    run.degraded_gets += eng.degraded_gets;
  }
  return run;
}

/// Back-compat shim for the original positional signature.
inline YcsbRun run_ycsb(const cluster::Testbed& bed,
                        resilience::Design design,
                        workload::YcsbConfig cfg, std::size_t servers = 5,
                        std::size_t clients = 150,
                        std::uint32_t rep_factor = 3) {
  YcsbRunOpts opts;
  opts.servers = servers;
  opts.clients = clients;
  opts.rep_factor = rep_factor;
  return run_ycsb(bed, design, cfg, opts);
}

/// Testbed variant that swaps the fabric for IPoIB (the Memc-IPoIB
/// baseline: kernel TCP over the same wires).
inline cluster::Testbed with_ipoib(cluster::Testbed bed) {
  bed.fabric = net::FabricParams::ipoib_qdr();
  return bed;
}

}  // namespace hpres::bench
