// Shared YCSB multi-client runner for the FIG11/FIG12 harnesses: builds a
// testbed cluster with one engine per client, preloads the record set, runs
// every client's op stream concurrently, and merges the results.
//
// Scale note: the paper preloads 250K records and runs 2.5K ops on each of
// 150 clients. The simulated runs keep the 150-client concurrency (that is
// what stresses the servers) but scale record/op counts down by default;
// set HPRES_BENCH_SCALE to grow them.
#pragma once

#include "bench_util.h"
#include "workload/ycsb.h"

namespace hpres::bench {

struct YcsbRun {
  workload::YcsbResult merged;  ///< all clients
  SimDur makespan_ns = 0;       ///< first op to last completion
  /// Measured-pass percentile rows ({op, scheme, degraded}, p50..p99.9)
  /// from the always-on LatencyRecorder; preload ops are excluded.
  std::vector<obs::LatencyRow> latency;

  [[nodiscard]] double throughput_ops_s() const {
    return merged.throughput_ops_per_s(makespan_ns);
  }
  [[nodiscard]] double avg_read_us() const {
    return units::to_us(
        static_cast<SimDur>(merged.read_latency.mean()));
  }
  [[nodiscard]] double avg_write_us() const {
    return units::to_us(
        static_cast<SimDur>(merged.write_latency.mean()));
  }
};

namespace detail {

inline sim::Task<void> client_proc(sim::Simulator* sim,
                                   resilience::Engine* engine,
                                   workload::YcsbConfig cfg,
                                   std::uint64_t seed,
                                   workload::YcsbResult* result,
                                   sim::Latch* done) {
  co_await workload::ycsb_client(sim, engine, cfg, seed, result);
  done->count_down();
}

inline sim::Task<void> loader_proc(sim::Simulator* sim,
                                   resilience::Engine* engine,
                                   workload::YcsbConfig cfg,
                                   std::uint64_t first, std::uint64_t last,
                                   sim::Latch* done) {
  co_await workload::ycsb_load(sim, engine, cfg, first, last);
  done->count_down();
}

}  // namespace detail

inline YcsbRun run_ycsb(const cluster::Testbed& bed,
                        resilience::Design design,
                        workload::YcsbConfig cfg, std::size_t servers = 5,
                        std::size_t clients = 150,
                        std::uint32_t rep_factor = 3) {
  Testbench bench(bed, servers, clients, design, 3, 2, rep_factor);

  // Preload, partitioned over a handful of loader clients.
  const std::size_t loaders = std::min<std::size_t>(8, clients);
  {
    sim::Latch done(bench.sim(), static_cast<std::uint32_t>(loaders));
    const std::uint64_t stride =
        (cfg.record_count + loaders - 1) / loaders;
    for (std::size_t l = 0; l < loaders; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last = std::min<std::uint64_t>(
          first + stride, cfg.record_count);
      if (first >= last) {
        done.count_down();
        continue;
      }
      bench.spawn(detail::loader_proc(&bench.sim(), &bench.engine(l),
                                      cfg, first, last, &done));
    }
    bench.sim().run();
  }
  // Percentiles cover the measured pass only (preload ops dropped; their
  // span detail is also not tail-kept, which is the point of the preload).
  bench.recorder().clear();

  // Measured phase: every client runs its stream concurrently.
  YcsbRun run;
  std::vector<workload::YcsbResult> results(clients);
  const SimTime start = bench.sim().now();
  {
    sim::Latch done(bench.sim(), static_cast<std::uint32_t>(clients));
    for (std::size_t c = 0; c < clients; ++c) {
      bench.spawn(detail::client_proc(&bench.sim(), &bench.engine(c),
                                      cfg, cfg.seed + 1000 + c,
                                      &results[c], &done));
    }
    bench.sim().run();
  }
  run.makespan_ns = bench.sim().now() - start;
  for (const auto& r : results) run.merged.merge(r);
  run.latency = bench.recorder().rows();
  return run;
}

/// Testbed variant that swaps the fabric for IPoIB (the Memc-IPoIB
/// baseline: kernel TCP over the same wires).
inline cluster::Testbed with_ipoib(cluster::Testbed bed) {
  bed.fabric = net::FabricParams::ipoib_qdr();
  return bed;
}

}  // namespace hpres::bench
