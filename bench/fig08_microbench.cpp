// FIG8 — RDMA-Memcached micro-benchmark latency on RI-QDR (paper Fig 8).
//
//   (a) Set latency, (b) Get latency (no failures), (c) Get latency with
//   two node failures: 5-server cluster, single client, 1K blocking ops per
//   point, value sizes 512 B - 1 MB, key 16 B. Designs: Sync-Rep=3,
//   Async-Rep=3, Era-CE-CD, Era-SE-SD, Era-SE-CD with RS(3,2).
//
// Expected shape (paper): Era-CE-CD improves Set by 1.6-2.8x over Sync-Rep
// and tracks Async-Rep at large values; Era-SE-* wins Sets at >64 KB on the
// idle cluster (single client request). Healthy Gets are comparable across
// designs; under 2 failures the Era designs degrade ~27% vs Async-Rep and
// Era-SE-SD degrades ~2.2x.
#include "bench_util.h"
#include "workload/ohb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kSizes[] = {512,       4 * 1024,   16 * 1024,
                                  64 * 1024, 256 * 1024, 1024 * 1024};
constexpr resilience::Design kDesigns[] = {
    resilience::Design::kSyncRep, resilience::Design::kAsyncRep,
    resilience::Design::kEraCeCd, resilience::Design::kEraSeSd,
    resilience::Design::kEraSeCd};

enum class Exp { kSet, kGet, kGetTwoFailures };

sim::Task<void> run_point(sim::Simulator* sim, resilience::Engine* engine,
                          cluster::Cluster* cluster, workload::OhbConfig cfg,
                          Exp exp, workload::OhbResult* result) {
  // Populate (needed for every experiment; Gets read these keys back).
  workload::OhbResult ignore;
  co_await workload::ohb_set_workload(sim, engine, cfg, &ignore);
  switch (exp) {
    case Exp::kSet: {
      // Re-run the measured Set pass on fresh keys.
      workload::OhbConfig cfg2 = cfg;
      cfg2.seed = cfg.seed + 1;
      co_await workload::ohb_set_workload(sim, engine, cfg2, result);
      break;
    }
    case Exp::kGet:
      co_await workload::ohb_get_workload(sim, engine, cfg, result);
      break;
    case Exp::kGetTwoFailures:
      cluster->fail_server(0);
      cluster->fail_server(1);
      co_await workload::ohb_get_workload(sim, engine, cfg, result);
      break;
  }
}

void run_table(const char* title, Exp exp) {
  std::vector<std::string> cols{"value"};
  for (const auto d : kDesigns) cols.emplace_back(to_string(d));
  print_header(title, cols);
  for (const std::size_t size : kSizes) {
    print_cell(size_label(size));
    for (const auto design : kDesigns) {
      Testbench bench(cluster::ri_qdr(), /*servers=*/5, /*clients=*/1,
                      design);
      workload::OhbConfig cfg;
      cfg.operations = scaled(1'000);
      cfg.value_size = size;
      workload::OhbResult result;
      bench.spawn(run_point(&bench.sim(), &bench.engine(), &bench.cluster(),
                            cfg, exp, &result));
      bench.sim().run();
      print_cell(result.avg_latency_us());
    }
    end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("fig08_microbench", "its point drivers all run on shard 0's loop");
  std::printf("FIG8 (paper Fig 8) — OHB Set/Get latency, RI-QDR, 5 servers,"
              " RS(3,2) / Rep=3, avg us per op\n");
  run_table("Fig 8(a): Set latency (us)", Exp::kSet);
  run_table("Fig 8(b): Get latency, no failures (us)", Exp::kGet);
  run_table("Fig 8(c): Get latency, two node failures (us)",
            Exp::kGetTwoFailures);
  return obs_finalize();
}
