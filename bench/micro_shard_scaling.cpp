// MICRO — shard-runtime scaling: one YCSB-A point (32 servers, 64 clients,
// era-ce-cd) run at shard counts {1, 2, 4, 8}, timing the wall clock of each
// run and gating statistical equivalence against the shards=1 oracle.
//
// Also prints a per-shard imbalance table (events, barrier-stall %, lane
// traffic) for the largest point and embeds each point's runtime profile
// in the JSON under "profile".
//
// Writes BENCH_shard_scaling.json (override with --out=FILE). Flags:
//   --out=FILE        JSON path (default BENCH_shard_scaling.json)
//   --max-shards=N    largest shard count swept (default 8)
// HPRES_BENCH_SCALE scales record/op counts (default 1.0).
//
// Equivalence gates (exit 1 on violation):
//   * op counts (reads/writes/failures) identical to the oracle run — the
//     client RNG streams are seed-derived, so any divergence is a runtime
//     bug, not noise;
//   * fabric conservation per run: messages/bytes sent == delivered +
//     dropped at quiescence (cross-shard handoff lost nothing);
//   * fabric bytes_sent/bytes_delivered identical to the oracle (no faults,
//     no hedging => the message set is timing-independent);
//   * makespan within 15% and read p99 within 30% of the oracle (rx-NIC
//     claim order differs across shard counts; magnitudes must not).
//
// Speedup is reported, never gated here: a 1-hw-thread container serializes
// the shard threads and honestly reports hw_threads=1. CI runs the sweep on
// multi-core runners where the parallel win is visible.

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "ycsb_runner.h"

namespace {

using namespace hpres;
using namespace hpres::bench;

struct Point {
  std::size_t shards = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double speedup = 0.0;
  YcsbRun run;
};

[[nodiscard]] std::int64_t read_p99_ns(const YcsbRun& run) {
  std::int64_t p99 = 0;
  for (const obs::LatencyRow& row : run.latency) {
    if (row.key.op == "get" && !row.key.degraded) p99 = row.p99_ns;
  }
  return p99;
}

[[nodiscard]] bool conserved(const net::FabricStats& f) {
  return f.messages_sent == f.messages_delivered + f.messages_dropped &&
         f.bytes_sent == f.bytes_delivered + f.bytes_dropped;
}

[[nodiscard]] bool within(double v, double ref, double tol) {
  if (ref == 0.0) return v == 0.0;
  const double rel = v / ref;
  return rel >= 1.0 - tol && rel <= 1.0 + tol;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::string out_path = "BENCH_shard_scaling.json";
  std::size_t max_shards = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--out=")) out_path = std::string(arg.substr(6));
  }
  max_shards = static_cast<std::size_t>(
      arg_int(argc, argv, "--max-shards=", static_cast<long>(max_shards)));

  constexpr std::size_t kServers = 32;
  constexpr std::size_t kClients = 64;
  workload::YcsbConfig cfg = workload::YcsbConfig::workload_a();
  cfg.record_count = scaled(8'000);
  cfg.ops_per_client = scaled(400);
  cfg.value_size = 4 * 1024;

  YcsbRunOpts opts;
  opts.servers = kServers;
  opts.clients = kClients;
  const cluster::Testbed bed = cluster::ri2_edr();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("MICRO — shard scaling, %zu servers, %zu clients, YCSB-A, "
              "era-ce-cd, %llu records, %llu ops/client, hw_threads=%u\n",
              kServers, kClients,
              static_cast<unsigned long long>(cfg.record_count),
              static_cast<unsigned long long>(cfg.ops_per_client), hw);
  print_header("Wall-clock scaling over shard counts",
               {"shards", "wall_ms", "Mevents/s", "speedup", "ops",
                "mksp_ms", "p99_us"});

  std::vector<Point> points;
  for (std::size_t s = 1; s <= max_shards; s *= 2) {
    Point p;
    p.shards = s;
    opts.shards = s;
    opts.point_label = "shards" + std::to_string(s);
    const auto t0 = std::chrono::steady_clock::now();
    p.run = run_ycsb(bed, resilience::Design::kEraCeCd, cfg, opts);
    const auto t1 = std::chrono::steady_clock::now();
    p.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.events = p.run.sim_events;
    p.events_per_sec =
        p.wall_ms > 0.0 ? static_cast<double>(p.events) / (p.wall_ms / 1e3)
                        : 0.0;
    p.speedup = points.empty() ? 1.0 : points.front().wall_ms / p.wall_ms;
    points.push_back(std::move(p));
    const Point& r = points.back();
    print_cell(std::to_string(r.shards));
    print_cell(r.wall_ms);
    print_cell(r.events_per_sec / 1e6);
    print_cell(r.speedup);
    print_cell(std::to_string(r.run.merged.reads + r.run.merged.writes));
    print_cell(units::to_ms(r.run.makespan_ns));
    print_cell(units::to_us(read_p99_ns(r.run)));
    end_row();
  }

  // Per-shard runtime profile for the largest sweep point: where wall time
  // went (busy vs barrier stall) and how balanced the partition is.
  {
    const Point& last = points.back();
    const sim::RuntimeProfile& prof = last.run.profile;
    print_header("Per-shard profile at shards=" +
                     std::to_string(last.shards) +
                     " (rounds=" + std::to_string(prof.rounds) + ")",
                 {"shard", "events", "stall_pct", "msgs_out", "msgs_in",
                  "spills", "lane_hw"});
    for (std::size_t s = 0; s < prof.per_shard.size(); ++s) {
      const sim::ShardProfile& sp = prof.per_shard[s];
      print_cell(std::to_string(s));
      print_cell(std::to_string(sp.events));
      print_cell(sim::RuntimeProfile::stall_fraction(sp) * 100.0);
      print_cell(std::to_string(sp.msgs_out));
      print_cell(std::to_string(sp.msgs_in));
      print_cell(std::to_string(sp.spills_out));
      print_cell(std::to_string(sp.lane_occupancy_hw));
      end_row();
    }
  }

  // Equivalence gates against the oracle point.
  const Point& oracle = points.front();
  bool equivalent = true;
  auto fail = [&equivalent](const char* what, std::size_t shards) {
    std::fprintf(stderr, "EQUIVALENCE FAIL: %s at shards=%zu\n", what,
                 shards);
    equivalent = false;
  };
  for (const Point& p : points) {
    if (!conserved(p.run.fabric)) fail("fabric conservation", p.shards);
    if (p.shards == oracle.shards) continue;
    if (p.run.merged.reads != oracle.run.merged.reads ||
        p.run.merged.writes != oracle.run.merged.writes ||
        p.run.merged.failures != oracle.run.merged.failures) {
      fail("op counts", p.shards);
    }
    if (p.run.fabric.bytes_sent != oracle.run.fabric.bytes_sent ||
        p.run.fabric.bytes_delivered != oracle.run.fabric.bytes_delivered) {
      fail("fabric byte totals", p.shards);
    }
    if (!within(static_cast<double>(p.run.makespan_ns),
                static_cast<double>(oracle.run.makespan_ns), 0.15)) {
      fail("makespan tolerance (15%)", p.shards);
    }
    if (!within(static_cast<double>(read_p99_ns(p.run)),
                static_cast<double>(read_p99_ns(oracle.run)), 0.30)) {
      fail("read p99 tolerance (30%)", p.shards);
    }
  }
  std::printf("\nequivalence vs oracle: %s\n",
              equivalent ? "PASS" : "FAIL");

  std::string json;
  json += "{\n  \"bench\": \"micro_shard_scaling\",\n  \"servers\": ";
  obs::json::append_u64(json, kServers);
  json += ", \"clients\": ";
  obs::json::append_u64(json, kClients);
  json += ", \"records\": ";
  obs::json::append_u64(json, cfg.record_count);
  json += ", \"ops_per_client\": ";
  obs::json::append_u64(json, cfg.ops_per_client);
  json += ", \"hw_threads\": ";
  obs::json::append_u64(json, hw);
  json += ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json += "    {\"shards\": ";
    obs::json::append_u64(json, p.shards);
    json += ", \"wall_ms\": ";
    obs::json::append_fixed(json, p.wall_ms, 3);
    json += ", \"events\": ";
    obs::json::append_u64(json, p.events);
    json += ", \"events_per_sec\": ";
    obs::json::append_fixed(json, p.events_per_sec, 1);
    json += ", \"speedup_vs_1\": ";
    obs::json::append_fixed(json, p.speedup, 3);
    json += ", \"ops\": ";
    obs::json::append_u64(json, p.run.merged.reads + p.run.merged.writes);
    json += ", \"failures\": ";
    obs::json::append_u64(json, p.run.merged.failures);
    json += ", \"makespan_ns\": ";
    obs::json::append_i64(json, p.run.makespan_ns);
    json += ", \"read_p99_ns\": ";
    obs::json::append_i64(json, read_p99_ns(p.run));
    json += ", \"bytes_sent\": ";
    obs::json::append_u64(json, p.run.fabric.bytes_sent);
    json += ", \"bytes_delivered\": ";
    obs::json::append_u64(json, p.run.fabric.bytes_delivered);
    json += ", \"conserved\": ";
    json += conserved(p.run.fabric) ? "true" : "false";
    const sim::RuntimeProfile& prof = p.run.profile;
    json += ",\n     \"profile\": {\"rounds\": ";
    obs::json::append_u64(json, prof.rounds);
    json += ", \"mean_advance_ns\": ";
    obs::json::append_fixed(json, prof.mean_advance_ns, 1);
    json += ", \"per_shard\": [";
    for (std::size_t s = 0; s < prof.per_shard.size(); ++s) {
      const sim::ShardProfile& sp = prof.per_shard[s];
      if (s != 0) json += ", ";
      json += "{\"events\": ";
      obs::json::append_u64(json, sp.events);
      json += ", \"stall_fraction\": ";
      obs::json::append_fixed(json, sim::RuntimeProfile::stall_fraction(sp),
                              4);
      json += ", \"msgs_out\": ";
      obs::json::append_u64(json, sp.msgs_out);
      json += ", \"msgs_in\": ";
      obs::json::append_u64(json, sp.msgs_in);
      json += ", \"spills_out\": ";
      obs::json::append_u64(json, sp.spills_out);
      json += ", \"lane_occupancy_hw\": ";
      obs::json::append_u64(json, sp.lane_occupancy_hw);
      json += "}";
    }
    json += "]}";
    json += i + 1 < points.size() ? "},\n" : "}\n";
  }
  json += "  ],\n  \"acceptance\": {\"equivalent\": ";
  json += equivalent ? "true" : "false";
  json += ", \"speedup_at_max\": ";
  obs::json::append_fixed(json, points.back().speedup, 3);
  json += ", \"max_shards\": ";
  obs::json::append_u64(json, points.back().shards);
  json += "}\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  const int rc = obs_finalize();
  return equivalent ? rc : 1;
}
