// EXT1 — Recovery overhead analysis (the paper's declared future work,
// Section VI-D: "recovery overhead is of importance. Hence, we plan to
// undertake detailed recovery overhead analysis").
//
// A node that held one fragment of every key dies and rejoins empty. The
// repair coordinator rebuilds its fragments from the survivors. Reported
// per value size: repair throughput, per-key repair latency, and the
// degraded-read penalty the repair removes (degraded vs healthy Get).
#include "bench_util.h"
#include "resilience/repair.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

struct Point {
  double repair_ms = 0.0;          // total repair_all time
  double repair_mib_s = 0.0;       // rebuilt bytes / time
  double healthy_get_us = 0.0;
  double degraded_get_us = 0.0;
};

sim::Task<void> scenario(sim::Simulator* sim, resilience::Engine* engine,
                         resilience::RepairCoordinator* repair,
                         cluster::Cluster* cluster, std::uint64_t keys,
                         std::size_t value_size, Point* out) {
  const SharedBytes value = zero_bytes(value_size);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)engine->iset("obj" + std::to_string(i), value);
    if ((i + 1) % 32 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();

  // Healthy read latency.
  SimTime t0 = sim->now();
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)co_await engine->get("obj" + std::to_string(i));
  }
  out->healthy_get_us =
      units::to_us(sim->now() - t0) / static_cast<double>(keys);

  // Server 0 dies with total state loss, rejoins empty.
  cluster->fail_server(0);
  while (!cluster->server(0).store().keys().empty()) {
    cluster->server(0).store().erase(cluster->server(0).store().keys().front());
  }
  // Degraded read latency (keys whose fragment lived on server 0 decode).
  t0 = sim->now();
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)co_await engine->get("obj" + std::to_string(i));
  }
  out->degraded_get_us =
      units::to_us(sim->now() - t0) / static_cast<double>(keys);

  cluster->recover_server(0);
  t0 = sim->now();
  (void)co_await repair->repair_all();
  const SimDur repair_ns = sim->now() - t0;
  out->repair_ms = units::to_ms(repair_ns);
  out->repair_mib_s =
      static_cast<double>(repair->stats().bytes_rebuilt) / (1024.0 * 1024.0) /
      units::to_s(repair_ns);
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("ext_recovery", "its repair coordinator drives cross-node reads from one loop");
  const std::uint64_t keys = scaled(200);
  std::printf("EXT1 — recovery overhead: node rejoins empty, RS(3,2),"
              " RI-QDR, %llu keys per point\n",
              static_cast<unsigned long long>(keys));
  print_header("Repair cost vs value size",
               {"value", "repair_ms", "repair_MiB/s", "healthy_get",
                "degraded_get", "penalty"});
  for (const std::size_t size :
       {std::size_t{16} * 1024, std::size_t{64} * 1024,
        std::size_t{256} * 1024, std::size_t{1024} * 1024}) {
    Testbench bench(cluster::ri_qdr(), 5, 1, resilience::Design::kEraCeCd);
    resilience::EngineContext ctx;
    ctx.sim = &bench.sim();
    ctx.client = &bench.cluster().client(0);
    ctx.ring = &bench.cluster().ring();
    ctx.membership = &bench.cluster().membership();
    ctx.server_nodes = &bench.cluster().server_nodes();
    ctx.materialize = false;
    ctx.tracer = &ObsSession::instance().tracer();
    ctx.trace_pid = bench.trace_pid();
    ec::RsVandermondeCodec codec(3, 2);
    resilience::RepairCoordinator repair(
        ctx, codec,
        ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2));
    Point point;
    bench.spawn(scenario(&bench.sim(), &bench.engine(), &repair,
                         &bench.cluster(), keys, size, &point));
    bench.sim().run();
    print_cell(size_label(size));
    print_cell(point.repair_ms);
    print_cell(point.repair_mib_s);
    print_cell(point.healthy_get_us);
    print_cell(point.degraded_get_us);
    print_cell(point.degraded_get_us / point.healthy_get_us);
    end_row();
  }
  return obs_finalize();
}
