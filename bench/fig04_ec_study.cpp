// FIG4 — Jerasure library study (paper Figure 4a/4b), measured for real.
//
// Encode and decode (1 and 2 node failures) timings of this repository's
// RS-Vandermonde, Cauchy-RS and RAID-6 codecs at K=3, M=2 for key-value
// pair sizes 1 KB - 1 MB, on the host CPU via google-benchmark.
//
// Expected shape (paper): RS_Van fastest across the KV range for both
// encode and decode; decode with 2 failures costs more than 1 failure.
// Absolute numbers depend on this host; the simulation benches use the
// fitted CostModel instead (see EXPERIMENTS.md).
//
// Throughput is reported by google-benchmark as bytes_per_second (value
// bytes, not fragment bytes). Every series runs on the dispatched GF kernel
// variant — printed up front and recorded in the benchmark context/labels,
// because scalar vs SSSE3 vs AVX2 shifts these curves by roughly an order
// of magnitude (bench/micro_gf_kernels.cpp isolates the kernels).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "ec/chunker.h"
#include "ec/codec.h"
#include "ec/gf_kernels.h"

namespace {

using namespace hpres;      // NOLINT(google-build-using-namespace)
using namespace hpres::ec;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kK = 3;
constexpr std::size_t kM = 2;

Scheme scheme_of(std::int64_t index) {
  switch (index) {
    case 0: return Scheme::kRsVandermonde;
    case 1: return Scheme::kCauchyRs;
    default: return Scheme::kRaid6;
  }
}

struct Workbench {
  std::unique_ptr<Codec> codec;
  ChunkLayout layout;
  std::vector<Bytes> fragments;  // k data + m parity

  Workbench(Scheme scheme, std::size_t value_size)
      : codec(make_codec(scheme, kK, kM)) {
    layout = make_layout(value_size, kK, codec->alignment());
    const Bytes value = make_pattern(value_size, /*seed=*/404);
    fragments = split_value(value, layout);
    for (std::size_t p = 0; p < kM; ++p) {
      fragments.emplace_back(layout.fragment_size);
    }
    std::vector<ConstByteSpan> data(fragments.begin(), fragments.begin() + kK);
    std::vector<ByteSpan> parity(fragments.begin() + kK, fragments.end());
    codec->encode(data, parity);
  }
};

void BM_Encode(benchmark::State& state) {
  const Workbench wb(scheme_of(state.range(0)),
                     static_cast<std::size_t>(state.range(1)));
  std::vector<ConstByteSpan> data(wb.fragments.begin(),
                                  wb.fragments.begin() + kK);
  std::vector<Bytes> out(kM, Bytes(wb.layout.fragment_size));
  std::vector<ByteSpan> parity(out.begin(), out.end());
  for (auto _ : state) {
    wb.codec->encode(data, parity);
    benchmark::DoNotOptimize(out[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(std::string(wb.codec->name()) + "/" +
                 std::string(to_string(active_variant())));
}

void BM_Decode(benchmark::State& state) {
  const Workbench wb(scheme_of(state.range(0)),
                     static_cast<std::size_t>(state.range(1)));
  const auto failures = static_cast<std::size_t>(state.range(2));
  std::vector<Bytes> working = wb.fragments;
  std::vector<bool> present(kK + kM, true);
  for (std::size_t i = 0; i < failures; ++i) present[i] = false;
  std::vector<ByteSpan> spans(working.begin(), working.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wb.codec->reconstruct_data(spans, present).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(std::string(wb.codec->name()) + "/fail" +
                 std::to_string(failures) + "/" +
                 std::string(to_string(active_variant())));
}

void SizeSweep(benchmark::internal::Benchmark* b, bool with_failures) {
  for (std::int64_t scheme = 0; scheme < 3; ++scheme) {
    for (std::int64_t size = 1024; size <= 1024 * 1024; size *= 4) {
      if (with_failures) {
        b->Args({scheme, size, 1});
        b->Args({scheme, size, 2});
      } else {
        b->Args({scheme, size});
      }
    }
  }
}

}  // namespace

BENCHMARK(BM_Encode)
    ->Apply([](benchmark::internal::Benchmark* b) { SizeSweep(b, false); })
    ->MinTime(0.02);
BENCHMARK(BM_Decode)
    ->Apply([](benchmark::internal::Benchmark* b) { SizeSweep(b, true); })
    ->MinTime(0.02);

int main(int argc, char** argv) {
  const std::string kernel{to_string(active_variant())};
  std::printf("fig04: GF region kernels dispatched to '%s'\n", kernel.c_str());
  benchmark::AddCustomContext("gf_kernel", kernel);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
