// FIG11 — YCSB average read/write latencies (paper Fig 11).
//
//   (a) SDSC-Comet (FDR): YCSB-A (50:50) and YCSB-B (95:5), 150 clients,
//       value sizes 1 KB - 32 KB.
//   (b) RI2-EDR (EDR): same at the large-value end.
//
// Designs: Async-Rep=3 vs Era-CE-CD vs Era-SE-CD (the two finalists of the
// micro-benchmarks) with RS(3,2).
//
// Expected shape (paper): Era-CE-CD up to 2.3x (Comet) / 2.6x (EDR) better
// average latency than Async-Rep for >16 KB values; similar below.
#include "ycsb_runner.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr resilience::Design kDesigns[] = {resilience::Design::kAsyncRep,
                                           resilience::Design::kEraCeCd,
                                           resilience::Design::kEraSeCd};

void run_cluster(const cluster::Testbed& bed,
                 std::initializer_list<std::size_t> sizes) {
  for (const double read_fraction : {0.5, 0.95}) {
    std::string title = std::string(bed.name) + " — YCSB-" +
                        (read_fraction == 0.5 ? "A (50:50)" : "B (95:5)") +
                        " avg latency (us)";
    std::vector<std::string> cols{"value"};
    for (const auto d : kDesigns) {
      cols.push_back(std::string(to_string(d)) + ":rd");
      cols.push_back(std::string(to_string(d)) + ":wr");
    }
    print_header(title, cols);
    std::vector<std::pair<std::string, std::vector<obs::LatencyRow>>> pct;
    for (const std::size_t size : sizes) {
      print_cell(size_label(size));
      for (const auto design : kDesigns) {
        workload::YcsbConfig cfg;
        cfg.read_fraction = read_fraction;
        cfg.record_count = scaled(4'000);
        cfg.ops_per_client = scaled(60);
        cfg.value_size = size;
        YcsbRun run = run_ycsb(bed, design, cfg);
        print_cell(run.avg_read_us());
        print_cell(run.avg_write_us());
        pct.emplace_back(std::string(to_string(design)) + "/" +
                             size_label(size),
                         std::move(run.latency));
      }
      end_row();
    }
    // Per-op percentile rows from the always-on LatencyRecorder (identical
    // with or without tracing; the recorder never touches the simulation).
    for (const auto& [point, rows] : pct) {
      print_latency_rows(title + " — percentiles, " + point, rows);
    }
  }
}

// Hedged-read extension: YCSB-B on Era-CE-CD with one gray-slow server
// (compute x8 via FaultSchedule, fabric and membership untouched). With
// RS(3,2) on 5 servers, 3 of every 5 key read-sets include the straggler,
// so its latency lands squarely in the unhedged tail. Hedging (k+Δ
// late-binding fetches plus load-aware read-set selection) should pull p99
// back toward healthy while costing at most a few percent at p50 — the
// wasted-fetch bytes quantify the price.
void run_hedged_section(int argc, char** argv) {
  const auto delta = static_cast<std::uint32_t>(
      arg_int(argc, argv, "--hedge-delta=", 1));
  const SimDur delay_ns = arg_int(argc, argv, "--hedge-delay-us=", 0) * 1'000;
  constexpr double kSlowFactor = 8.0;
  constexpr std::size_t kSlowServer = 1;

  workload::YcsbConfig cfg;
  cfg.read_fraction = 0.95;
  cfg.record_count = scaled(4'000);
  cfg.ops_per_client = scaled(60);
  cfg.value_size = 16 * 1024;

  YcsbRunOpts opts;
  opts.slow_factor = kSlowFactor;
  opts.slow_server = kSlowServer;

  const std::string bed_name(cluster::sdsc_comet().name);
  std::printf("\nhedged-read extension: YCSB-B 16K, Era-CE-CD, %s, server %zu"
              " gray-slow x%.0f,\nhedge delta=%u delay=%.0f us"
              " (--hedge-delta=N / --hedge-delay-us=N)\n",
              bed_name.c_str(), kSlowServer, kSlowFactor, delta,
              units::to_us(delay_ns));

  opts.point_label = "fig11-unhedged";
  const YcsbRun plain =
      run_ycsb(cluster::sdsc_comet(), resilience::Design::kEraCeCd, cfg, opts);

  opts.hedge.delta = delta;
  opts.hedge.delay_ns = delay_ns;
  opts.hedge.load_aware = true;
  opts.point_label = "fig11-hedged";
  const YcsbRun hedged =
      run_ycsb(cluster::sdsc_comet(), resilience::Design::kEraCeCd, cfg, opts);

  print_header("read latency under one gray-slow server (us)",
               {"run", "p50_us", "p95_us", "p99_us", "p999_us", "hedged",
                "fired", "wins", "wasted_KB"});
  const auto row = [](const char* label, const YcsbRun& run) {
    print_cell(label);
    print_cell(units::to_us(run.merged.read_latency.quantile(0.50)));
    print_cell(units::to_us(run.merged.read_latency.p95()));
    print_cell(units::to_us(run.merged.read_latency.p99()));
    print_cell(units::to_us(run.merged.read_latency.quantile(0.999)));
    print_cell(static_cast<double>(run.hedged_gets));
    print_cell(static_cast<double>(run.hedges_fired));
    print_cell(static_cast<double>(run.hedge_wins));
    print_cell(static_cast<double>(run.hedge_wasted_bytes) / 1024.0);
    end_row();
  };
  row("unhedged", plain);
  row("hedged", hedged);

  const double p99_plain = units::to_us(plain.merged.read_latency.p99());
  const double p99_hedged = units::to_us(hedged.merged.read_latency.p99());
  const double p50_plain =
      units::to_us(plain.merged.read_latency.quantile(0.50));
  const double p50_hedged =
      units::to_us(hedged.merged.read_latency.quantile(0.50));
  if (p99_plain > 0.0 && p50_plain > 0.0) {
    std::printf("\nhedging: p99 %+.1f%%, p50 %+.1f%% vs unhedged"
                " (negative = faster); suppressed=%llu failover=%llu\n",
                100.0 * (p99_hedged - p99_plain) / p99_plain,
                100.0 * (p50_hedged - p50_plain) / p50_plain,
                static_cast<unsigned long long>(hedged.hedges_suppressed),
                static_cast<unsigned long long>(hedged.failover_fetches));
  }
  print_latency_rows("percentiles, unhedged + slow server", plain.latency);
  print_latency_rows("percentiles, hedged + slow server", hedged.latency);
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::printf("FIG11 (paper Fig 11) — YCSB read/write latency, 150 clients,"
              " 5 servers, RS(3,2) / Rep=3\n");
  run_cluster(cluster::sdsc_comet(), {1024, 4096, 16 * 1024, 32 * 1024});
  run_cluster(cluster::ri2_edr(), {16 * 1024, 32 * 1024});
  run_hedged_section(argc, argv);
  return obs_finalize();
}
