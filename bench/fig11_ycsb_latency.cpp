// FIG11 — YCSB average read/write latencies (paper Fig 11).
//
//   (a) SDSC-Comet (FDR): YCSB-A (50:50) and YCSB-B (95:5), 150 clients,
//       value sizes 1 KB - 32 KB.
//   (b) RI2-EDR (EDR): same at the large-value end.
//
// Designs: Async-Rep=3 vs Era-CE-CD vs Era-SE-CD (the two finalists of the
// micro-benchmarks) with RS(3,2).
//
// Expected shape (paper): Era-CE-CD up to 2.3x (Comet) / 2.6x (EDR) better
// average latency than Async-Rep for >16 KB values; similar below.
#include "ycsb_runner.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr resilience::Design kDesigns[] = {resilience::Design::kAsyncRep,
                                           resilience::Design::kEraCeCd,
                                           resilience::Design::kEraSeCd};

void run_cluster(const cluster::Testbed& bed,
                 std::initializer_list<std::size_t> sizes) {
  for (const double read_fraction : {0.5, 0.95}) {
    std::string title = std::string(bed.name) + " — YCSB-" +
                        (read_fraction == 0.5 ? "A (50:50)" : "B (95:5)") +
                        " avg latency (us)";
    std::vector<std::string> cols{"value"};
    for (const auto d : kDesigns) {
      cols.push_back(std::string(to_string(d)) + ":rd");
      cols.push_back(std::string(to_string(d)) + ":wr");
    }
    print_header(title, cols);
    std::vector<std::pair<std::string, std::vector<obs::LatencyRow>>> pct;
    for (const std::size_t size : sizes) {
      print_cell(size_label(size));
      for (const auto design : kDesigns) {
        workload::YcsbConfig cfg;
        cfg.read_fraction = read_fraction;
        cfg.record_count = scaled(4'000);
        cfg.ops_per_client = scaled(60);
        cfg.value_size = size;
        YcsbRun run = run_ycsb(bed, design, cfg);
        print_cell(run.avg_read_us());
        print_cell(run.avg_write_us());
        pct.emplace_back(std::string(to_string(design)) + "/" +
                             size_label(size),
                         std::move(run.latency));
      }
      end_row();
    }
    // Per-op percentile rows from the always-on LatencyRecorder (identical
    // with or without tracing; the recorder never touches the simulation).
    for (const auto& [point, rows] : pct) {
      print_latency_rows(title + " — percentiles, " + point, rows);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::printf("FIG11 (paper Fig 11) — YCSB read/write latency, 150 clients,"
              " 5 servers, RS(3,2) / Rep=3\n");
  run_cluster(cluster::sdsc_comet(), {1024, 4096, 16 * 1024, 32 * 1024});
  run_cluster(cluster::ri2_edr(), {16 * 1024, 32 * 1024});
  return obs_finalize();
}
