// Microbenchmark for the GF(2^8) kernel layer (ec/gf_kernels.h): throughput
// of every runnable ISA variant for each region primitive across region
// sizes, plus the fused single-pass stripe encode against the unfused
// row-by-row sweep it replaced. Prints a MB/s table with speedups vs the
// scalar reference and writes BENCH_gf_kernels.json (override the path with
// --out=FILE). HPRES_BENCH_SCALE scales the per-measurement minimum time
// (default 1.0); HPRES_FORCE_SCALAR_GF affects only the "active" dispatch
// report, since every variant here is pinned explicitly.
//
// Standalone on purpose: links hpres_ec only, no cluster/simulator deps.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "ec/gf_kernels.h"
#include "obs/json.h"

namespace {

using hpres::Bytes;
using hpres::ByteSpan;
using hpres::ConstByteSpan;
using hpres::make_pattern;
using namespace hpres::ec;

// Fold observable output bytes into a volatile sink after every timed loop
// so the optimizer cannot treat the kernel work as dead stores.
volatile std::uint8_t g_sink = 0;

void sink_bytes(const Bytes& b) {
  if (b.empty()) return;
  g_sink = static_cast<std::uint8_t>(
      g_sink ^ static_cast<std::uint8_t>(b.front()) ^
      static_cast<std::uint8_t>(b.back()));
}

double bench_scale() {
  if (const char* env = std::getenv("HPRES_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Runs `fn` repeatedly until the timed region spans at least `min_seconds`,
/// then returns throughput in MB/s (decimal) for `bytes_per_iter`.
template <typename Fn>
double measure_mb_s(Fn&& fn, std::size_t bytes_per_iter, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up: touch pages, build tables, prime caches
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs >= min_seconds) {
      return static_cast<double>(bytes_per_iter) * static_cast<double>(iters) /
             secs / 1e6;
    }
    if (secs <= min_seconds / 16.0) {
      iters *= 16;
    } else {
      iters = iters * 2 + 1;
    }
  }
}

struct Row {
  std::string op;
  GfKernelVariant variant{};
  std::size_t size = 0;
  double mb_s = 0.0;
};

constexpr std::size_t kSizes[] = {1024,      4096,      16384,
                                  65536,     256 * 1024, 1024 * 1024};
constexpr std::size_t kAcceptanceSize = 65536;  // ISSUE acceptance point

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_gf_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: %s [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const double min_secs = 0.02 * bench_scale();
  const std::vector<GfKernelVariant> variants = available_variants();
  std::printf("gf kernel microbench: active=%.*s, min %.0f ms/measurement\n",
              static_cast<int>(to_string(active_variant()).size()),
              to_string(active_variant()).data(), min_secs * 1e3);
  std::printf("%-18s %-8s %10s %12s %10s\n", "op", "variant", "size", "MB/s",
              "vs scalar");

  std::vector<Row> rows;
  auto record = [&rows](std::string op, GfKernelVariant v, std::size_t size,
                        double mb_s) {
    rows.push_back(Row{std::move(op), v, size, mb_s});
  };
  auto scalar_mb_s = [&rows](const std::string& op, std::size_t size) {
    for (const Row& r : rows) {
      if (r.op == op && r.size == size && r.variant == GfKernelVariant::kScalar) {
        return r.mb_s;
      }
    }
    return 0.0;
  };
  auto print_row = [&scalar_mb_s](const Row& r) {
    const double base = scalar_mb_s(r.op, r.size);
    std::printf("%-18s %-8.*s %10zu %12.0f %9.2fx\n", r.op.c_str(),
                static_cast<int>(to_string(r.variant).size()),
                to_string(r.variant).data(), r.size, r.mb_s,
                base > 0.0 ? r.mb_s / base : 1.0);
  };

  // Flat region primitives: one source, one destination region.
  for (const std::size_t size : kSizes) {
    const Bytes src = make_pattern(size, 41);
    Bytes dst = make_pattern(size, 42);
    const auto* s = reinterpret_cast<const std::uint8_t*>(src.data());
    auto* d = reinterpret_cast<std::uint8_t*>(dst.data());
    for (const GfKernelVariant v : variants) {
      const GfKernelOps& ops = *kernels_for(v);
      const double mul =
          measure_mb_s([&] { ops.mul_region(29, s, d, size); }, size, min_secs);
      sink_bytes(dst);
      record("mul_region", v, size, mul);
      const double acc = measure_mb_s(
          [&] { ops.mul_region_acc(29, s, d, size); }, size, min_secs);
      sink_bytes(dst);
      record("mul_region_acc", v, size, acc);
      const double xr =
          measure_mb_s([&] { ops.xor_region(s, d, size); }, size, min_secs);
      sink_bytes(dst);
      record("xor_region", v, size, xr);
    }
  }

  // Stripe encode: RS(6,3)-shaped parity block, fused tile pass vs the
  // unfused m x k full-length sweeps it replaced. Throughput counts source
  // bytes (k * fragment size) so both shapes are directly comparable.
  {
    constexpr std::size_t k = 6, m = 3;
    StripeCoder coder(m, k);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        coder.set(r, c, static_cast<std::uint8_t>(2 + 7 * r + 13 * c));
      }
    }
    for (const std::size_t size : kSizes) {
      std::vector<Bytes> src_bufs;
      std::vector<Bytes> out_bufs;
      for (std::size_t c = 0; c < k; ++c) {
        src_bufs.push_back(make_pattern(size, 50 + c));
      }
      for (std::size_t r = 0; r < m; ++r) out_bufs.emplace_back(size);
      std::vector<ConstByteSpan> src(src_bufs.begin(), src_bufs.end());
      std::vector<ByteSpan> out(out_bufs.begin(), out_bufs.end());
      const std::size_t stripe_bytes = k * size;
      for (const GfKernelVariant v : variants) {
        const GfKernelOps& ops = *kernels_for(v);
        const double fused = measure_mb_s(
            [&] { coder.apply_with(ops, src, out); }, stripe_bytes, min_secs);
        for (const Bytes& b : out_bufs) sink_bytes(b);
        record("stripe_fused", v, size, fused);
        const double unfused = measure_mb_s(
            [&] {
              for (std::size_t r = 0; r < m; ++r) {
                auto* d = reinterpret_cast<std::uint8_t*>(out_bufs[r].data());
                for (std::size_t c = 0; c < k; ++c) {
                  const auto* s = reinterpret_cast<const std::uint8_t*>(
                      src_bufs[c].data());
                  if (c == 0) {
                    gf_mul_region(ops, coder.at(r, c), s, d, size);
                  } else {
                    gf_mul_region_acc(ops, coder.at(r, c), s, d, size);
                  }
                }
              }
            },
            stripe_bytes, min_secs);
        for (const Bytes& b : out_bufs) sink_bytes(b);
        record("stripe_unfused", v, size, unfused);
      }
    }
  }

  for (const Row& r : rows) print_row(r);
  std::printf("(checksum sink: %u)\n", static_cast<unsigned>(g_sink));

  // JSON report. The acceptance block restates the ISSUE's target numbers:
  // mul_region_acc at 64 KiB, SIMD speedup vs the scalar reference.
  std::string json;
  json += "{\n  \"bench\": \"micro_gf_kernels\",\n  \"active_variant\": ";
  hpres::obs::json::append_string(json, to_string(active_variant()));
  json += ",\n  \"tile_bytes\": ";
  hpres::obs::json::append_u64(json, StripeCoder::kTileBytes);
  json += ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"op\": ";
    hpres::obs::json::append_string(json, r.op);
    json += ", \"variant\": ";
    hpres::obs::json::append_string(json, to_string(r.variant));
    json += ", \"size\": ";
    hpres::obs::json::append_u64(json, r.size);
    json += ", \"mb_s\": ";
    hpres::obs::json::append_fixed(json, r.mb_s, 1);
    json += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  json += "  ],\n  \"acceptance\": {\"op\": \"mul_region_acc\", \"size\": ";
  hpres::obs::json::append_u64(json, kAcceptanceSize);
  const double base = scalar_mb_s("mul_region_acc", kAcceptanceSize);
  json += ", \"scalar_mb_s\": ";
  hpres::obs::json::append_fixed(json, base, 1);
  for (const GfKernelVariant v :
       {GfKernelVariant::kSsse3, GfKernelVariant::kAvx2}) {
    for (const Row& r : rows) {
      if (r.op == "mul_region_acc" && r.size == kAcceptanceSize &&
          r.variant == v) {
        json += ", \"";
        json += to_string(v);
        json += "_mb_s\": ";
        hpres::obs::json::append_fixed(json, r.mb_s, 1);
        json += ", \"";
        json += to_string(v);
        json += "_speedup_vs_scalar\": ";
        hpres::obs::json::append_fixed(json, base > 0.0 ? r.mb_s / base : 0.0,
                                       2);
      }
    }
  }
  json += "}\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
