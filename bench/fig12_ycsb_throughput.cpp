// FIG12 — YCSB aggregated throughput (paper Fig 12).
//
//   (a) 50:50 and (b) 95:5 on SDSC-Comet over value sizes 1 KB - 32 KB;
//   (c) both mixes on RI2-EDR at the large-value end.
//
// Baselines: Memc-IPoIB-NoRep (kernel TCP, synchronous, no resilience),
// Memc-RDMA-NoRep (upper bound), Async-Rep=3, Era-CE-CD, Era-SE-CD.
//
// Expected shape (paper): Era-CE-CD reaches 1.9-3x the IPoIB baseline; for
// update-heavy 50:50 at >16 KB it beats Async-Rep by ~1.34x (Comet) /
// ~1.59x (EDR); for read-heavy 95:5 it is on par with Async-Rep; the NoRep
// RDMA configuration bounds everything from above.
#include "ycsb_runner.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

struct DesignRow {
  const char* label;
  resilience::Design design;
  std::uint32_t rep_factor;
  bool ipoib;
};

constexpr DesignRow kRows[] = {
    {"ipoib-norep", resilience::Design::kSyncRep, 1, true},
    {"rdma-norep", resilience::Design::kNoRep, 1, false},
    {"async-rep3", resilience::Design::kAsyncRep, 3, false},
    {"era-ce-cd", resilience::Design::kEraCeCd, 3, false},
    {"era-se-cd", resilience::Design::kEraSeCd, 3, false},
};

void run_cluster(const cluster::Testbed& bed,
                 std::initializer_list<std::size_t> sizes) {
  for (const double read_fraction : {0.5, 0.95}) {
    std::string title = std::string(bed.name) + " — YCSB-" +
                        (read_fraction == 0.5 ? "A (50:50)" : "B (95:5)") +
                        " throughput (ops/s)";
    std::vector<std::string> cols{"value"};
    for (const auto& row : kRows) cols.emplace_back(row.label);
    print_header(title, cols);
    for (const std::size_t size : sizes) {
      print_cell(size_label(size));
      for (const auto& row : kRows) {
        workload::YcsbConfig cfg;
        cfg.read_fraction = read_fraction;
        cfg.record_count = scaled(4'000);
        cfg.ops_per_client = scaled(60);
        cfg.value_size = size;
        const cluster::Testbed actual = row.ipoib ? with_ipoib(bed) : bed;
        const YcsbRun run =
            run_ycsb(actual, row.design, cfg, 5, 150, row.rep_factor);
        print_cell(run.throughput_ops_s());
      }
      end_row();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::printf("FIG12 (paper Fig 12) — YCSB aggregated throughput,"
              " 150 clients, 5 servers, RS(3,2) / Rep=3\n");
  run_cluster(cluster::sdsc_comet(), {1024, 4096, 16 * 1024, 32 * 1024});
  run_cluster(cluster::ri2_edr(), {16 * 1024, 32 * 1024});
  return obs_finalize();
}
