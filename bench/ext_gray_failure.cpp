// EXT4 — Gray failures and the closed detection loop: YCSB-A while one
// server turns gray mid-workload — slow (compute x8, still answering) or
// lossy (fabric silently eats 25% of its traffic) — plus a crash run for
// contrast. Membership stays green for the gray modes: only the online
// health detector (cluster::HealthMonitor + obs::HealthDetector) can tell
// that anything is wrong.
//
// The loop is closed: every injection is stamped into an obs::FaultLog at
// apply time, and analyze_detection() joins the stamps against the
// detector's transition log. The bench reports per-fault detection latency
// and the aggregate "injected faults detected: N/N" line CI gates on,
// plus false positives on a healthy control run of the same seed (must be
// zero). Run with --flight-out=FILE to also exercise the flight-recorder
// dump triggers (crash + timeout burst) for tools/health_report.
//
// Shard-audited: with --shards=N the clients spawn onto their own shard
// loops, fault injection and the health monitor run from runtime quiesce
// hooks, and the workload-end stamp is the quiesced clock. Oracle runs
// (the default) keep the original latch/supervisor driver, byte-identical
// to the pre-shard harness.
#include <optional>

#include "bench_util.h"
#include "cluster/fault_schedule.h"
#include "cluster/health_monitor.h"
#include "workload/ycsb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kServers = 5;
constexpr std::size_t kClients = 8;
constexpr std::size_t kGrayServer = 2;    ///< slowdown / silent-loss target
constexpr std::size_t kCrashedServer = 1;
constexpr SimDur kDetectionLagNs = 500'000;  // membership lag (crash only)
constexpr double kSlowFactor = 50.0;  ///< dying-disk/NIC class straggler
constexpr double kLossProbability = 0.25;
/// Symptom-propagation grace for the ground-truth join: a message dropped
/// just before the fault clears surfaces as a timeout a full RPC deadline
/// ladder later (3 attempts x 2 ms + backoffs), plus detector hysteresis.
constexpr SimDur kDetectionGraceNs = 10 * units::kMillisecond;

kv::RpcPolicy guard_policy() {
  kv::RpcPolicy policy;
  policy.timeout_ns = 2'000'000;  // 2 ms per attempt
  policy.max_retries = 2;
  policy.backoff_ns = 200'000;  // 200 us, doubling
  return policy;
}

/// 1 ms detector windows: wide enough that every server clears
/// min_samples per window at this op rate, so detection lag is dominated
/// by the flag_after hysteresis (2 ticks), not by sample starvation.
cluster::HealthMonitorParams monitor_params() {
  cluster::HealthMonitorParams p;
  p.interval_ns = 1 * units::kMillisecond;
  p.slo_ns = 2 * units::kMillisecond;
  p.detector.min_samples = 6;
  return p;
}

workload::YcsbConfig bench_config() {
  workload::YcsbConfig cfg = workload::YcsbConfig::workload_a();
  cfg.record_count = scaled(400);
  cfg.ops_per_client = scaled(600);
  cfg.value_size = 16 * 1024;
  return cfg;
}

enum class FaultMode { kNone, kSlow, kLossy, kCrash };

struct RunOut {
  workload::YcsbResult merged;
  SimDur makespan_ns = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t detector_ticks = 0;
  std::uint64_t burst_dumps = 0;
  obs::DetectionReport report;

  [[nodiscard]] double availability() const {
    const double ops = static_cast<double>(merged.reads + merged.writes);
    if (ops <= 0.0) return 1.0;
    return 1.0 - static_cast<double>(merged.failures) / ops;
  }
};

// `done` is null in sharded runs: completion is the runtime reaching
// quiescence, and a latch shared across shard loops would not be safe.
sim::Task<void> client_proc(sim::Simulator* sim, resilience::Engine* engine,
                            workload::YcsbConfig cfg, std::uint64_t seed,
                            workload::YcsbResult* result, sim::Latch* done) {
  co_await workload::ycsb_client(sim, engine, cfg, seed, result);
  if (done != nullptr) done->count_down();
}

sim::Task<void> loader_proc(sim::Simulator* sim, resilience::Engine* engine,
                            workload::YcsbConfig cfg, std::uint64_t first,
                            std::uint64_t last, sim::Latch* done) {
  co_await workload::ycsb_load(sim, engine, cfg, first, last);
  if (done != nullptr) done->count_down();
}

/// Stamps the workload end time and stops the health monitor there, so
/// detection metrics cover exactly the measured pass.
sim::Task<void> supervisor(sim::Simulator* sim, sim::Latch* done, SimTime* end,
                           cluster::HealthMonitor* monitor) {
  co_await done->wait();
  *end = sim->now();
  monitor->request_stop();
}

/// One full experiment: preload, then the op streams with `mode`'s fault
/// injected at 35% of the fault-free makespan and cleared at 75% (crash:
/// 50% / restart 75%, matching ext_online_failure). `dry_makespan_ns` <= 0
/// means the fault-free control used to calibrate the schedule.
RunOut run_once(FaultMode mode, SimDur dry_makespan_ns) {
  const workload::YcsbConfig cfg = bench_config();
  Testbench bench(cluster::ri_qdr(), kServers, kClients,
                  resilience::Design::kEraCeCd, 3, 2, 3, {}, {}, {}, {},
                  Testbench::kAutoShards);
  const bool sharded = bench.cluster().num_shards() > 1;
  bench.cluster().set_rpc_policy(guard_policy());
  cluster::FaultSchedule faults(bench.cluster(), kDetectionLagNs);
  obs::FaultLog fault_log;
  faults.set_fault_log(&fault_log);
  cluster::HealthMonitor monitor(bench.cluster(), monitor_params());
  {
    ObsSession& obs = ObsSession::instance();
    if (obs.metrics_enabled()) {
      monitor.register_gauges(obs.registry(), bench.label());
    }
  }

  {  // Preload, partitioned across the clients.
    std::optional<sim::Latch> done;
    if (!sharded) done.emplace(bench.sim(), kClients);
    const std::uint64_t stride = (cfg.record_count + kClients - 1) / kClients;
    for (std::size_t l = 0; l < kClients; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last =
          std::min<std::uint64_t>(first + stride, cfg.record_count);
      if (first >= last) {
        if (done) done->count_down();
        continue;
      }
      if (sharded) {
        bench.spawn_client(
            l, loader_proc(&bench.cluster().sim_for_client(l),
                           &bench.engine(l), cfg, first, last, nullptr));
      } else {
        bench.spawn(loader_proc(&bench.sim(), &bench.engine(l), cfg, first,
                                last, &*done));
      }
    }
    if (sharded) {
      bench.run();
    } else {
      bench.sim().run();
    }
  }
  bench.clear_latency();  // percentiles cover the measured pass only

  const SimTime start = bench.cluster().now_quiesced();
  if (mode != FaultMode::kNone) {
    const SimTime onset = start + dry_makespan_ns * 35 / 100;
    const SimTime clear = start + dry_makespan_ns * 75 / 100;
    switch (mode) {
      case FaultMode::kSlow:
        faults.add_slowdown(onset, kGrayServer, kSlowFactor);
        faults.add_slowdown(clear, kGrayServer, 1.0);
        break;
      case FaultMode::kLossy:
        faults.add_loss(onset, kGrayServer, kLossProbability);
        faults.add_loss(clear, kGrayServer, 0.0);
        break;
      case FaultMode::kCrash:
        faults.add_crash(start + dry_makespan_ns / 2, kCrashedServer);
        faults.add_restart(clear, kCrashedServer);
        break;
      case FaultMode::kNone:
        break;
    }
    faults.arm();
  }
  monitor.arm();

  RunOut out;
  std::vector<workload::YcsbResult> results(kClients);
  SimTime end = start;
  if (sharded) {
    // No latch/supervisor: completion is runtime quiescence, and the
    // monitor's final tick runs from the main thread once all shards park.
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn_client(
          c, client_proc(&bench.cluster().sim_for_client(c),
                         &bench.engine(c), cfg, cfg.seed + 1000 + c,
                         &results[c], nullptr));
    }
    bench.run();
    end = bench.cluster().now_quiesced();
    monitor.request_stop();
  } else {
    sim::Latch done(bench.sim(), kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn(client_proc(&bench.sim(), &bench.engine(c), cfg,
                              cfg.seed + 1000 + c, &results[c], &done));
    }
    bench.spawn(supervisor(&bench.sim(), &done, &end, &monitor));
    bench.sim().run();
  }
  out.makespan_ns = end - start;
  for (const auto& r : results) out.merged.merge(r);
  for (std::size_t c = 0; c < kClients; ++c) {
    const kv::RpcStats& rpc = bench.cluster().client(c).rpc_stats();
    out.rpc_timeouts += rpc.timeouts;
    out.rpc_retries += rpc.retries;
  }
  out.detector_ticks = monitor.ticks();
  out.burst_dumps = monitor.flight_dumps_triggered();
  out.report = obs::analyze_detection(
      fault_log, monitor.detector().transitions(), end, kDetectionGraceNs);
  return out;
}

void print_run(const std::string& label, const RunOut& run) {
  print_cell(label);
  print_cell(run.merged.throughput_ops_per_s(run.makespan_ns));
  print_cell(units::to_us(static_cast<SimDur>(run.merged.read_latency.mean())));
  print_cell(units::to_us(run.merged.read_latency.p99()));
  print_cell(100.0 * run.availability());
  print_cell(static_cast<double>(run.rpc_timeouts));
  print_cell(static_cast<double>(run.rpc_retries));
  end_row();
}

void print_detection(const std::string& label, const RunOut& run) {
  for (const obs::FaultDetection& d : run.report.faults) {
    print_cell(label);
    print_cell(obs::fault_kind_name(d.fault.kind));
    print_cell("server" + std::to_string(d.fault.node));
    print_cell(d.detected ? "yes" : "MISSED");
    print_cell(d.detected ? units::to_ms(d.latency_ns) : 0.0);
    print_cell(d.detected ? obs::node_health_state_name(d.flagged_as) : "-");
    end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::printf(
      "EXT4 — gray failures + closed detection loop: YCSB-A, Era-CE-CD"
      " RS(3,2), RI-QDR, %zu clients\n"
      "gray server %zu: slowdown x%.0f or silent loss %.0f%% from 35%% to"
      " 75%% of the fault-free makespan;\n"
      "crash run: server %zu down at 50%%, back at 75%% (membership lag"
      " %.0f us). RPC deadline 2 ms x3.\n"
      "health monitor: 1 ms windows, detector thresholds per"
      " docs/TUNING.md.\n",
      kClients, kGrayServer, kSlowFactor, 100.0 * kLossProbability,
      kCrashedServer, units::to_us(kDetectionLagNs));

  const RunOut healthy = run_once(FaultMode::kNone, 0);
  const RunOut slow = run_once(FaultMode::kSlow, healthy.makespan_ns);
  const RunOut lossy = run_once(FaultMode::kLossy, healthy.makespan_ns);
  const RunOut crash = run_once(FaultMode::kCrash, healthy.makespan_ns);

  print_header("YCSB under gray failure",
               {"run", "ops/s", "read_us", "read_p99", "avail_%", "rpc_tmo",
                "rpc_retry"});
  print_run("healthy", healthy);
  print_run("gray-slow", slow);
  print_run("gray-lossy", lossy);
  print_run("crash", crash);

  print_header("closed detection loop",
               {"run", "fault", "node", "detected", "latency_ms",
                "flagged_as"});
  print_detection("gray-slow", slow);
  print_detection("gray-lossy", lossy);
  print_detection("crash", crash);

  std::size_t injected = 0;
  std::size_t detected = 0;
  std::size_t run_fps = 0;
  for (const RunOut* run : {&slow, &lossy, &crash}) {
    injected += run->report.faults.size();
    detected += run->report.detected;
    run_fps += run->report.false_positives;
  }
  std::printf("\ninjected faults detected: %zu/%zu\n", detected, injected);
  std::printf("false positives (fault runs): %zu\n", run_fps);
  std::printf("false positives (healthy control): %zu over %llu detector"
              " ticks\n",
              healthy.report.false_positives,
              static_cast<unsigned long long>(healthy.detector_ticks));
  std::printf("timeout-burst flight dumps: %llu (gray-lossy run: %llu)\n",
              static_cast<unsigned long long>(
                  slow.burst_dumps + lossy.burst_dumps + crash.burst_dumps),
              static_cast<unsigned long long>(lossy.burst_dumps));
  return obs_finalize();
}
