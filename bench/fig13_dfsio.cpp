// FIG13 — TestDFSIO over the Boldio burst buffer vs Lustre-Direct
// (paper Fig 13) plus the Section VI-D memory-efficiency comparison.
//
// 8 DataNode hosts x 4 maps (32 maps) write then read 10-40 GB of files
// through a 5-server Boldio cluster (24 GB each, 120 GB aggregate) over
// RI-QDR; Lustre-Direct runs 48 maps (12 hosts x 4) straight against the
// Lustre model. Boldio variants: Async-Rep=3 (the original Boldio),
// Era-CE-CD and Era-SE-CD.
//
// Expected shape (paper): Boldio reaches ~2.6x Lustre-Direct on writes and
// up to ~5.9x on reads; Boldio_Era-CE-CD matches Boldio_Async-Rep on
// writes and stays within ~9% on reads (Era-SE-CD within 3-11%); the Era
// variants use ~1.84x less aggregate memory.
#include "bench_util.h"
#include "boldio/dfsio.h"

namespace {

using namespace hpres;          // NOLINT(google-build-using-namespace)
using namespace hpres::bench;   // NOLINT(google-build-using-namespace)
using namespace hpres::boldio;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kHosts = 8;
constexpr std::size_t kMapsPerHost = 4;
constexpr std::size_t kDirectMaps = 48;  // 12 hosts x 4 maps
constexpr std::size_t kChunk = 1024 * 1024;

cluster::Testbed boldio_testbed() {
  cluster::Testbed bed = cluster::ri_qdr();
  // 24 GB per server (120 GB aggregate) in the paper; scaled in lock-step
  // with the data volume so the rep-at-40GB memory pressure is preserved.
  bed.server.memory_bytes = static_cast<std::uint64_t>(
      24.0 * static_cast<double>(units::kGiB) * bench_scale() / 8.0);
  return bed;
}

struct BoldioOutcome {
  DfsioResult write;
  DfsioResult read;
  double mem_used_gib = 0.0;
};

BoldioOutcome run_boldio(resilience::Design design, std::uint64_t data_bytes) {
  Testbench bench(boldio_testbed(), /*servers=*/5, /*clients=*/kHosts,
                  design);
  LustreModel lustre(bench.sim(), LustreParams{});
  BoldioClientParams cparams;
  cparams.chunk_bytes = kChunk;
  std::vector<std::unique_ptr<BoldioClient>> clients;
  clients.reserve(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    clients.push_back(std::make_unique<BoldioClient>(
        bench.sim(), bench.engine(h), &lustre, cparams));
  }

  const std::size_t maps = kHosts * kMapsPerHost;
  const std::uint64_t file_bytes = data_bytes / maps;
  BoldioOutcome out;

  struct StopWatch {
    static sim::Task<void> run(sim::Simulator* sim, sim::Latch* latch,
                               SimTime* finished_at) {
      co_await latch->wait();
      *finished_at = sim->now();
    }
  };

  for (const bool write : {true, false}) {
    const SimTime start = bench.sim().now();
    sim::Latch done(bench.sim(), static_cast<std::uint32_t>(maps));
    std::uint64_t failures = 0;
    SimTime finished_at = start;
    // The job completes when every map finishes; the asynchronous Lustre
    // flush keeps draining afterwards and must not count against the
    // TestDFSIO makespan.
    bench.spawn(StopWatch::run(&bench.sim(), &done, &finished_at));
    for (std::size_t m = 0; m < maps; ++m) {
      const std::size_t host = m % kHosts;
      bench.spawn(dfsio_boldio_map(
          clients[host].get(), "dfsio/part-" + std::to_string(m), file_bytes,
          write, &done, &failures));
    }
    bench.sim().run();
    DfsioResult& r = write ? out.write : out.read;
    r.total_bytes = file_bytes * maps;
    r.makespan_ns = finished_at - start;
    r.failures = failures;
  }
  out.mem_used_gib = static_cast<double>(bench.cluster().total_bytes_used()) /
                     static_cast<double>(units::kGiB);
  return out;
}

BoldioOutcome run_direct(std::uint64_t data_bytes) {
  sim::Simulator sim;
  LustreModel lustre(sim, LustreParams{});
  const std::uint64_t file_bytes = data_bytes / kDirectMaps;
  BoldioOutcome out;
  for (const bool write : {true, false}) {
    const SimTime start = sim.now();
    sim::Latch done(sim, kDirectMaps);
    for (std::size_t m = 0; m < kDirectMaps; ++m) {
      sim.spawn(dfsio_direct_map(&lustre, file_bytes, kChunk, write, &done));
    }
    sim.run();
    DfsioResult& r = write ? out.write : out.read;
    r.total_bytes = file_bytes * kDirectMaps;
    r.makespan_ns = sim.now() - start;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("fig13_dfsio", "its file streams all run on shard 0's loop");
  std::printf("FIG13 (paper Fig 13) — TestDFSIO throughput, Boldio"
              " (8 hosts x 4 maps, 5 x 24 GB servers) vs Lustre-Direct"
              " (12 hosts x 4 maps)\n");
  print_header(
      "TestDFSIO write/read throughput (MiB/s) + Boldio memory (GiB)",
      {"data", "direct:wr", "direct:rd", "rep:wr", "rep:rd", "rep:mem",
       "era-ce:wr", "era-ce:rd", "era-ce:mem", "era-se:wr", "era-se:rd"});
  // Default scale runs 1/8 of the paper's data volumes (sim op count);
  // HPRES_BENCH_SCALE=8 restores 10-40 GB.
  for (const std::uint64_t gib : {10u, 20u, 30u, 40u}) {
    const std::uint64_t data = scaled(gib * units::kGiB / 8);
    const BoldioOutcome direct = run_direct(data);
    const BoldioOutcome rep =
        run_boldio(resilience::Design::kAsyncRep, data);
    const BoldioOutcome era_ce =
        run_boldio(resilience::Design::kEraCeCd, data);
    const BoldioOutcome era_se =
        run_boldio(resilience::Design::kEraSeCd, data);
    print_cell(std::to_string(gib) + "G*");
    print_cell(direct.write.throughput_mib_s());
    print_cell(direct.read.throughput_mib_s());
    print_cell(rep.write.throughput_mib_s());
    print_cell(rep.read.throughput_mib_s());
    print_cell(rep.mem_used_gib);
    print_cell(era_ce.write.throughput_mib_s());
    print_cell(era_ce.read.throughput_mib_s());
    print_cell(era_ce.mem_used_gib);
    print_cell(era_se.write.throughput_mib_s());
    print_cell(era_se.read.throughput_mib_s());
    end_row();
  }
  std::printf("(*) data column names the paper's job size; the simulated"
              " volume is scaled by HPRES_BENCH_SCALE/8 (see header).\n");
  return obs_finalize();
}
