// ABL2 — Eager/rendezvous threshold sweep (Section VI-C analysis).
//
// The paper attributes part of Era-CE-CD's YCSB win to protocol selection:
// chunking a 16-64 KB value drops each fragment below RDMA-Memcached's
// 16 KB eager threshold, dodging the rendezvous handshake that the full
// value (Async-Rep) must pay. Sweeping the threshold isolates that effect:
// with an enormous threshold (everything eager) or a zero threshold
// (everything rendezvous) the chunking advantage shrinks to the bandwidth
// factor alone.
#include "bench_util.h"
#include "workload/ohb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

sim::Task<void> run_sets(sim::Simulator* sim, resilience::Engine* engine,
                         workload::OhbConfig cfg,
                         workload::OhbResult* result) {
  co_await workload::ohb_set_workload(sim, engine, cfg, result);
}

double set_latency_us(const cluster::Testbed& bed, resilience::Design design,
                      std::size_t value_size) {
  Testbench bench(bed, 5, 1, design);
  workload::OhbConfig cfg;
  cfg.operations = scaled(400);
  cfg.value_size = value_size;
  workload::OhbResult result;
  bench.spawn(run_sets(&bench.sim(), &bench.engine(), cfg, &result));
  bench.sim().run();
  return result.avg_latency_us();
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("abl_eager_threshold", "its sweep drives every client from shard 0's loop");
  std::printf("ABL2 — rendezvous-threshold sweep, RI-QDR, blocking sets\n");
  print_header("Set latency (us): era-ce-cd vs async-rep per threshold",
               {"threshold", "value", "era-ce-cd", "async-rep", "rep/era"});
  for (const std::size_t threshold :
       {std::size_t{0}, std::size_t{4} * 1024, std::size_t{16} * 1024,
        std::size_t{64} * 1024, static_cast<std::size_t>(-1)}) {
    cluster::Testbed bed = cluster::ri_qdr();
    bed.fabric.rendezvous_threshold = threshold;
    for (const std::size_t size :
         {std::size_t{16} * 1024, std::size_t{32} * 1024,
          std::size_t{64} * 1024}) {
      const double era =
          set_latency_us(bed, resilience::Design::kEraCeCd, size);
      const double rep =
          set_latency_us(bed, resilience::Design::kAsyncRep, size);
      print_cell(threshold == 0 ? std::string("rndv-all")
                 : threshold == static_cast<std::size_t>(-1)
                     ? std::string("eager-all")
                     : size_label(threshold));
      print_cell(size_label(size));
      print_cell(era);
      print_cell(rep);
      print_cell(rep / era);
      end_row();
    }
  }
  return obs_finalize();
}
