// EXT3 — Online failure handling: YCSB-A with a server crash and restart
// injected mid-workload (FaultSchedule), RPC deadlines armed on every
// node. Unlike the paper's controlled experiments (nodes failed between
// operations), here requests are in flight when the node dies: without
// deadlines they would hang forever on the silently-dropping fabric.
//
// Reported against a fault-free baseline of the same seed: throughput,
// read latency, availability (ops resolved OK / ops issued), per-code
// failure counts, RPC timeout/retry totals, degraded-path counters, and
// the cost of the post-restart repair pass that restores full redundancy.
//
// Shard-audited: with --shards=N the clients spawn onto their own shard
// loops, crash/restart injection and the health monitor run from runtime
// quiesce hooks, and the workload-end stamp is the quiesced clock. The
// repair pass stays a single coroutine on client 0's loop. Oracle runs
// (the default) keep the original latch/supervisor driver, byte-identical
// to the pre-shard harness.
#include <optional>

#include "bench_util.h"
#include "cluster/fault_schedule.h"
#include "cluster/health_monitor.h"
#include "resilience/repair.h"
#include "workload/ycsb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kServers = 5;
constexpr std::size_t kClients = 8;
constexpr std::size_t kCrashedServer = 1;
constexpr SimDur kDetectionLagNs = 500'000;  // 500 us failure detector

kv::RpcPolicy guard_policy() {
  kv::RpcPolicy policy;
  policy.timeout_ns = 2'000'000;  // 2 ms per attempt
  policy.max_retries = 2;
  policy.backoff_ns = 200'000;  // 200 us, doubling
  return policy;
}

workload::YcsbConfig bench_config() {
  workload::YcsbConfig cfg = workload::YcsbConfig::workload_a();
  cfg.record_count = scaled(400);
  cfg.ops_per_client = scaled(600);
  cfg.value_size = 16 * 1024;
  return cfg;
}

struct RunOut {
  workload::YcsbResult merged;
  SimDur makespan_ns = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_expired = 0;
  std::uint64_t degraded_gets = 0;
  std::uint64_t degraded_sets = 0;
  std::uint64_t failover_fetches = 0;
  std::uint64_t fallback_gets = 0;
  std::uint64_t hedged_gets = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedge_wasted_bytes = 0;
  double repair_ms = 0.0;
  std::uint64_t fragments_rebuilt = 0;
  /// Closed detection loop: injected crash/restart stamps joined against
  /// the health detector's transitions (empty for the fault-free baseline).
  obs::DetectionReport detection;
  /// Measured-pass percentile rows; the {get, degraded=yes} row isolates
  /// the ops that paid failover/degraded-read costs from healthy Gets.
  std::vector<obs::LatencyRow> latency;

  [[nodiscard]] double availability() const {
    const double ops = static_cast<double>(merged.reads + merged.writes);
    if (ops <= 0.0) return 1.0;
    return 1.0 - static_cast<double>(merged.failures) / ops;
  }
};

// `done` is null in sharded runs: completion is the runtime reaching
// quiescence, and a latch shared across shard loops would not be safe.
sim::Task<void> client_proc(sim::Simulator* sim, resilience::Engine* engine,
                            workload::YcsbConfig cfg, std::uint64_t seed,
                            workload::YcsbResult* result, sim::Latch* done) {
  co_await workload::ycsb_client(sim, engine, cfg, seed, result);
  if (done != nullptr) done->count_down();
}

sim::Task<void> loader_proc(sim::Simulator* sim, resilience::Engine* engine,
                            workload::YcsbConfig cfg, std::uint64_t first,
                            std::uint64_t last, sim::Latch* done) {
  co_await workload::ycsb_load(sim, engine, cfg, first, last);
  if (done != nullptr) done->count_down();
}

/// Awaits workload completion and stamps the end time: with deadlines
/// armed, stray timer events outlive the last op, so sim().run()'s return
/// value overstates the makespan.
sim::Task<void> supervisor(sim::Simulator* sim, sim::Latch* done,
                           SimTime* end, cluster::HealthMonitor* monitor) {
  co_await done->wait();
  *end = sim->now();
  monitor->request_stop();
}

sim::Task<void> repair_proc(resilience::RepairCoordinator* repair) {
  (void)co_await repair->repair_all();
}

/// One full experiment: preload, run the op streams (optionally with a
/// mid-run crash + restart of kCrashedServer), then a repair pass when a
/// fault was injected. `dry_makespan_ns` <= 0 means fault-free baseline;
/// otherwise the crash lands at 50% and the restart at 75% of it. `hedge`
/// configures hedged/load-aware reads on every client engine.
RunOut run_once(SimDur dry_makespan_ns, resilience::HedgeParams hedge = {}) {
  const bool inject = dry_makespan_ns > 0;
  const workload::YcsbConfig cfg = bench_config();
  Testbench bench(cluster::ri_qdr(), kServers, kClients,
                  resilience::Design::kEraCeCd, 3, 2, 3, {}, hedge, {}, {},
                  Testbench::kAutoShards);
  const bool sharded = bench.cluster().num_shards() > 1;
  if (inject) bench.cluster().set_rpc_policy(guard_policy());
  cluster::FaultSchedule faults(bench.cluster(), kDetectionLagNs);
  obs::FaultLog fault_log;
  faults.set_fault_log(&fault_log);
  // Health plane armed on every run: the fault-free baseline doubles as
  // the false-positive control, the crash runs measure detection latency.
  cluster::HealthMonitorParams hm;
  hm.interval_ns = 1 * units::kMillisecond;
  hm.detector.min_samples = 6;
  cluster::HealthMonitor monitor(bench.cluster(), hm);

  {  // Preload, partitioned across the clients.
    std::optional<sim::Latch> done;
    if (!sharded) done.emplace(bench.sim(), kClients);
    const std::uint64_t stride = (cfg.record_count + kClients - 1) / kClients;
    for (std::size_t l = 0; l < kClients; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last =
          std::min<std::uint64_t>(first + stride, cfg.record_count);
      if (first >= last) {
        if (done) done->count_down();
        continue;
      }
      if (sharded) {
        bench.spawn_client(
            l, loader_proc(&bench.cluster().sim_for_client(l),
                           &bench.engine(l), cfg, first, last, nullptr));
      } else {
        bench.spawn(loader_proc(&bench.sim(), &bench.engine(l), cfg, first,
                                last, &*done));
      }
    }
    if (sharded) {
      bench.run();
    } else {
      bench.sim().run();
    }
  }
  bench.clear_latency();  // percentiles cover the measured pass only

  const SimTime start = bench.cluster().now_quiesced();
  if (inject) {
    // The crashed node loses its store (replacement semantics): reads
    // fail over to alternate fragments until repair rebuilds it.
    faults.add_crash(start + dry_makespan_ns / 2, kCrashedServer,
                     /*wipe_store=*/true);
    faults.add_restart(start + dry_makespan_ns * 3 / 4, kCrashedServer);
    faults.arm();
  }
  monitor.arm();

  RunOut out;
  std::vector<workload::YcsbResult> results(kClients);
  SimTime end = start;
  if (sharded) {
    // No latch/supervisor: completion is runtime quiescence, and the
    // monitor's final tick runs from the main thread once all shards park.
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn_client(
          c, client_proc(&bench.cluster().sim_for_client(c),
                         &bench.engine(c), cfg, cfg.seed + 1000 + c,
                         &results[c], nullptr));
    }
    bench.run();
    end = bench.cluster().now_quiesced();
    monitor.request_stop();
  } else {
    sim::Latch done(bench.sim(), kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn(client_proc(&bench.sim(), &bench.engine(c), cfg,
                              cfg.seed + 1000 + c, &results[c], &done));
    }
    bench.spawn(supervisor(&bench.sim(), &done, &end, &monitor));
    bench.sim().run();
  }
  out.makespan_ns = end - start;
  // 10 ms symptom-propagation grace: the full RPC deadline ladder plus a
  // couple of detector windows (see obs::analyze_detection).
  out.detection = obs::analyze_detection(
      fault_log, monitor.detector().transitions(), end,
      10 * units::kMillisecond);
  out.latency = bench.latency_rows();
  for (const auto& r : results) out.merged.merge(r);
  for (std::size_t c = 0; c < kClients; ++c) {
    const kv::RpcStats& rpc = bench.cluster().client(c).rpc_stats();
    out.rpc_timeouts += rpc.timeouts;
    out.rpc_retries += rpc.retries;
    out.rpc_expired += rpc.expired_calls;
    const resilience::EngineStats& eng = bench.engine(c).stats();
    out.degraded_gets += eng.degraded_gets;
    out.degraded_sets += eng.degraded_sets;
    out.failover_fetches += eng.failover_fetches;
    out.fallback_gets += eng.fallback_gets;
    out.hedged_gets += eng.hedged_gets;
    out.hedges_fired += eng.hedges_fired;
    out.hedge_wins += eng.hedge_wins;
    out.hedge_wasted_bytes += eng.hedge_wasted_bytes;
  }

  if (inject) {
    // Post-restart repair restores full redundancy on the wiped node.
    resilience::EngineContext ctx;
    ctx.sim = &bench.sim();
    ctx.client = &bench.cluster().client(0);
    ctx.ring = &bench.cluster().ring();
    ctx.membership = &bench.cluster().membership();
    ctx.server_nodes = &bench.cluster().server_nodes();
    ctx.materialize = false;
    ec::RsVandermondeCodec codec(3, 2);
    resilience::RepairCoordinator repair(
        ctx, codec, ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2));
    repair.set_purge_orphans(true);
    const SimTime t0 = bench.cluster().now_quiesced();
    bench.spawn(repair_proc(&repair));
    if (sharded) {
      bench.run();
    } else {
      bench.sim().run();
    }
    out.repair_ms = units::to_ms(bench.cluster().now_quiesced() - t0);
    out.fragments_rebuilt = repair.stats().fragments_rebuilt;
  }
  return out;
}

void print_run(const std::string& label, const RunOut& run) {
  print_cell(label);
  print_cell(run.merged.throughput_ops_per_s(run.makespan_ns));
  print_cell(units::to_us(static_cast<SimDur>(run.merged.read_latency.mean())));
  print_cell(units::to_us(run.merged.read_latency.p99()));
  print_cell(100.0 * run.availability());
  print_cell(static_cast<double>(run.merged.timeouts));
  print_cell(static_cast<double>(run.merged.unavailable));
  end_row();
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  std::printf("EXT3 — online failure handling: YCSB-A, Era-CE-CD RS(3,2),"
              " RI-QDR, %zu clients\n"
              "crash of server %zu (store wiped) at 50%% of the fault-free"
              " makespan, restart at 75%%,\n"
              "detection lag %.0f us, RPC deadline 2 ms x3 attempts\n",
              kClients, kCrashedServer, units::to_us(kDetectionLagNs));

  const RunOut baseline = run_once(0);
  const RunOut faulted = run_once(baseline.makespan_ns);
  // Same crash schedule with hedged + load-aware reads: a Get whose k-set
  // includes the (not-yet-detected) dead server completes on its hedge
  // fetch instead of waiting out the full RPC deadline ladder.
  resilience::HedgeParams hedge;
  hedge.delta = 1;
  hedge.load_aware = true;
  const RunOut hedged = run_once(baseline.makespan_ns, hedge);

  print_header("YCSB under mid-workload crash",
               {"run", "ops/s", "read_us", "read_p99", "avail_%", "timeouts",
                "unavail"});
  print_run("fault-free", baseline);
  print_run("crash+restart", faulted);
  print_run("crash+hedged", hedged);

  const auto detail = [](const char* label, const RunOut& run) {
    print_cell(label);
    print_cell(static_cast<double>(run.rpc_timeouts));
    print_cell(static_cast<double>(run.rpc_retries));
    print_cell(static_cast<double>(run.degraded_gets));
    print_cell(static_cast<double>(run.failover_fetches));
    print_cell(static_cast<double>(run.fallback_gets));
    print_cell(static_cast<double>(run.hedges_fired));
    print_cell(static_cast<double>(run.hedge_wins));
    print_cell(static_cast<double>(run.hedge_wasted_bytes) / 1024.0);
    end_row();
  };
  print_header("failure-handling detail",
               {"run", "rpc_tmo", "rpc_retry", "degr_get", "failover",
                "fallback", "hedges", "h_wins", "h_waste_KB"});
  detail("crash+restart", faulted);
  detail("crash+hedged", hedged);
  std::printf("(crash+restart run: rpc_expired=%llu degr_set=%llu)\n",
              static_cast<unsigned long long>(faulted.rpc_expired),
              static_cast<unsigned long long>(faulted.degraded_sets));

  print_header("post-restart repair", {"repair_ms", "frags_rebuilt"});
  print_cell(faulted.repair_ms);
  print_cell(static_cast<double>(faulted.fragments_rebuilt));
  end_row();

  // Closed detection loop: the crash must surface as a kDown transition
  // once membership learns of it; the fault-free baseline is the
  // false-positive control.
  print_header("crash detection (health plane)",
               {"run", "fault", "node", "detected", "latency_ms"});
  const auto detection_rows = [](const char* label, const RunOut& run) {
    for (const obs::FaultDetection& d : run.detection.faults) {
      print_cell(label);
      print_cell(obs::fault_kind_name(d.fault.kind));
      print_cell("server" + std::to_string(d.fault.node));
      print_cell(d.detected ? "yes" : "MISSED");
      print_cell(d.detected ? units::to_ms(d.latency_ns) : 0.0);
      end_row();
    }
  };
  detection_rows("crash+restart", faulted);
  detection_rows("crash+hedged", hedged);
  std::printf("injected faults detected: %zu/%zu\n",
              faulted.detection.detected + hedged.detection.detected,
              faulted.detection.faults.size() +
                  hedged.detection.faults.size());
  std::printf("false positives (fault-free control): %zu\n",
              baseline.detection.false_positives);

  // Degraded-vs-healthy percentile split: in the crash run, Gets that paid
  // failure handling (failover fetches, T_check) surface as separate
  // degraded=yes rows next to the healthy population of the same run.
  print_latency_rows("latency percentiles (fault-free run)",
                     baseline.latency);
  print_latency_rows("latency percentiles (crash+restart run)",
                     faulted.latency);
  print_latency_rows("latency percentiles (crash+hedged run)",
                     hedged.latency);
  return obs_finalize();
}
