// ABL3 — RS(K,M) parameter sweep (the trade-off space behind Section III's
// model): storage overhead N/K against Set/Get latency and fault tolerance,
// on a 12-server cluster so wider codes still place each fragment on its
// own node. Explores part of the paper's future-work direction (tuning the
// code to the workload).
#include "bench_util.h"
#include "workload/ohb.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

sim::Task<void> run_point(sim::Simulator* sim, resilience::Engine* engine,
                          workload::OhbConfig cfg,
                          workload::OhbResult* set_result,
                          workload::OhbResult* get_result) {
  co_await workload::ohb_set_workload(sim, engine, cfg, set_result);
  co_await workload::ohb_get_workload(sim, engine, cfg, get_result);
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("abl_rs_params", "its sweep drives every client from shard 0's loop");
  constexpr std::size_t kValue = 256 * 1024;
  std::printf("ABL3 — RS(K,M) sweep, Era-CE-CD on 12 servers, 256 KB"
              " values\n");
  print_header("Latency and storage overhead per code",
               {"code", "tolerates", "overhead", "set_us", "get_us"});
  struct Shape {
    std::size_t k;
    std::size_t m;
  };
  for (const Shape shape : {Shape{2, 1}, Shape{3, 2}, Shape{4, 2},
                            Shape{6, 3}, Shape{8, 4}, Shape{10, 2}}) {
    Testbench bench(cluster::ri_qdr(), /*servers=*/12, 1,
                    resilience::Design::kEraCeCd, shape.k, shape.m);
    workload::OhbConfig cfg;
    cfg.operations = scaled(400);
    cfg.value_size = kValue;
    workload::OhbResult set_result;
    workload::OhbResult get_result;
    bench.spawn(run_point(&bench.sim(), &bench.engine(), cfg, &set_result,
                          &get_result));
    bench.sim().run();
    print_cell("RS(" + std::to_string(shape.k) + "," +
               std::to_string(shape.m) + ")");
    print_cell(std::to_string(shape.m));
    print_cell(static_cast<double>(shape.k + shape.m) /
               static_cast<double>(shape.k));
    print_cell(set_result.avg_latency_us());
    print_cell(get_result.avg_latency_us());
    end_row();
  }
  return obs_finalize();
}
