// ABL4 — Hybrid replication/erasure threshold sweep (the paper's
// future-work scheme, Section VIII).
//
// A bimodal value population (the paper's two workload classes: small
// online query results + large offline I/O chunks) runs against pure
// replication, pure erasure coding, and the hybrid engine at several
// size thresholds. Reports average Set/Get latency and aggregate memory.
#include "bench_util.h"
#include "common/rng.h"
#include "resilience/hybrid.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kSmall = 2 * 1024;     // online query result
constexpr std::size_t kLarge = 256 * 1024;   // offline I/O chunk

struct Point {
  double set_us = 0.0;
  double get_us = 0.0;
  double mem_mib = 0.0;
};

sim::Task<void> mixed_workload(sim::Simulator* sim,
                               resilience::Engine* engine,
                               cluster::Cluster* cluster, std::uint64_t ops,
                               Point* out) {
  Xoshiro256 rng(7);
  const SharedBytes small = zero_bytes(kSmall);
  const SharedBytes large = zero_bytes(kLarge);
  SimTime t0 = sim->now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const bool is_small = rng.next_double() < 0.5;
    (void)co_await engine->set("m" + std::to_string(i),
                               is_small ? small : large);
  }
  out->set_us = units::to_us(sim->now() - t0) / static_cast<double>(ops);
  t0 = sim->now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    (void)co_await engine->get("m" + std::to_string(i));
  }
  out->get_us = units::to_us(sim->now() - t0) / static_cast<double>(ops);
  out->mem_mib = static_cast<double>(cluster->total_bytes_used()) /
                 (1024.0 * 1024.0);
}

Point run_engine(resilience::Engine* engine, cluster::Cluster* cluster,
                 sim::Simulator* sim, std::uint64_t ops) {
  Point point;
  sim->spawn(mixed_workload(sim, engine, cluster, ops, &point));
  sim->run();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("abl_hybrid", "its sweep drives every client from shard 0's loop");
  const std::uint64_t ops = scaled(300);
  std::printf("ABL4 — hybrid threshold sweep: 50/50 mix of 2 KB and 256 KB"
              " values, %llu ops, RS(3,2) / Rep=3, RI-QDR\n",
              static_cast<unsigned long long>(ops));
  print_header("Scheme comparison on a bimodal population",
               {"scheme", "set_us", "get_us", "mem_MiB"});

  // Pure baselines.
  for (const resilience::Design design :
       {resilience::Design::kAsyncRep, resilience::Design::kEraCeCd}) {
    Testbench bench(cluster::ri_qdr(), 5, 1, design);
    const Point p =
        run_engine(&bench.engine(), &bench.cluster(), &bench.sim(), ops);
    print_cell(std::string(to_string(design)));
    print_cell(p.set_us);
    print_cell(p.get_us);
    print_cell(p.mem_mib);
    end_row();
  }

  // Hybrid thresholds covering the extremes (1 KB routes everything to
  // erasure coding, 512 KB routes everything to replication) plus the
  // between-the-modes setting that splits the population.
  for (const std::size_t threshold :
       {std::size_t{1} * 1024, std::size_t{16} * 1024,
        std::size_t{512} * 1024}) {
    Testbench bench(cluster::ri_qdr(), 5, 1,
                    resilience::Design::kAsyncRep);  // context donor only
    resilience::EngineContext ctx;
    ctx.sim = &bench.sim();
    ctx.client = &bench.cluster().client(0);
    ctx.ring = &bench.cluster().ring();
    ctx.membership = &bench.cluster().membership();
    ctx.server_nodes = &bench.cluster().server_nodes();
    ctx.materialize = false;
    ec::RsVandermondeCodec codec(3, 2);
    resilience::HybridEngine hybrid(
        ctx, codec, ec::CostModel::defaults(ec::Scheme::kRsVandermonde, 3, 2),
        3, threshold);
    const Point p =
        run_engine(&hybrid, &bench.cluster(), &bench.sim(), ops);
    print_cell("hybrid<" + size_label(threshold));
    print_cell(p.set_us);
    print_cell(p.get_us);
    print_cell(p.mem_mib);
    end_row();
  }
  return obs_finalize();
}
