// ABL1 — ARPE completion-window sweep (design ablation, Section IV-A).
//
// The send/receive window is the ARPE's central tunable: it bounds how many
// non-blocking operations may overlap, and therefore how much of the
// encode/communication pipeline actually overlaps. Window=1 degenerates to
// blocking behaviour; growing it should saturate once the client CPU or a
// NIC becomes the bottleneck.
#include "bench_util.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

sim::Task<void> pipelined_sets(resilience::Engine* engine, std::uint64_t ops,
                               std::size_t value_size) {
  const SharedBytes value = zero_bytes(value_size);
  for (std::uint64_t i = 0; i < ops; ++i) {
    (void)engine->iset("w" + std::to_string(i), value);
  }
  co_await engine->wait_all();
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("abl_window", "its sweep drives every client from shard 0's loop");
  const std::uint64_t ops = scaled(500);
  constexpr std::size_t kValue = 64 * 1024;
  std::printf("ABL1 — ARPE window sweep, Era-CE-CD, RI-QDR, %llu x 64 KB"
              " pipelined sets\n",
              static_cast<unsigned long long>(ops));
  print_header("Aggregate Set throughput vs window",
               {"window", "MiB/s", "avg_us", "window_waits"});
  for (const std::uint32_t window : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    resilience::ArpeParams arpe;
    arpe.window = window;
    arpe.buffers = 256;
    Testbench bench(cluster::ri_qdr(), 5, 1, resilience::Design::kEraCeCd, 3,
                    2, 3, arpe);
    bench.spawn(pipelined_sets(&bench.engine(), ops, kValue));
    const SimTime makespan = bench.sim().run();
    const double mib =
        static_cast<double>(ops * kValue) / (1024.0 * 1024.0);
    print_cell(std::to_string(window));
    print_cell(mib / units::to_s(makespan));
    print_cell(units::to_us(static_cast<SimDur>(
        bench.engine().stats().set_latency.mean())));
    print_cell(std::to_string(bench.engine().arpe().stats().window_waits));
    end_row();
  }
  return obs_finalize();
}
