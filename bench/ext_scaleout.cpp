// EXT7 — elastic scale-out/in under load (beyond the paper): a 4-active
// Era-CE-CD cluster runs YCSB-A while the placement plane adds a fifth
// server mid-run and then gracefully drains another. Measures what elastic
// resharding costs the workload: availability (must stay 100% — stale-epoch
// writes bounce and retry, transition reads fall back to the previous
// placement), throughput/p99 versus a static baseline, and how many bytes
// the migration actually moved (bounded: only fragments whose owner
// changed, roughly delta_active/active of the data set, not a full
// reshuffle).
//
// The elastic pass must finish with zero failed client ops; any failure
// exits nonzero so CI can gate on it. A post-run sweep re-reads every
// record and a host-side audit cross-checks the moved-key set against
// HashRing::moved_ranges on the before/after rings.
//
// Works in oracle mode (byte-identical replays; CI diffs two seeds) and
// sharded mode (cutover rides the runtime's quiesce hooks).
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/fault_schedule.h"
#include "cluster/placement.h"
#include "ec/rs_vandermonde.h"
#include "resilience/factory.h"
#include "ycsb_runner.h"

namespace hpres::bench {
namespace {

constexpr std::size_t kProvisioned = 6;     // racked servers
constexpr std::size_t kInitialActive = 4;   // serving at t=0
constexpr std::size_t kClients = 8;         // workload clients
constexpr std::size_t kJoiner = 4;          // joins mid-run
constexpr std::size_t kLeaver = 1;          // drains after the join
constexpr int kK = 2;
constexpr int kM = 2;

struct RunOut {
  workload::YcsbResult merged;
  SimDur makespan_ns = 0;
  cluster::PlacementStats placement;
  std::uint64_t fragments_rebuilt = 0;  ///< repair-path rebuilds during moves
  std::uint64_t wrong_epoch_retries = 0;
  std::uint64_t fallback_gets = 0;
  std::uint64_t readback_failures = 0;  ///< post-run full sweep
  std::uint64_t epoch = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t sim_events = 0;

  [[nodiscard]] double availability() const {
    const double issued =
        static_cast<double>(merged.reads + merged.writes);
    if (issued <= 0.0) return 1.0;
    return 1.0 - static_cast<double>(merged.failures) / issued;
  }
};

// Self-assembled harness (not Testbench): elastic runs need a partially
// active ring and a second, previous-epoch engine per client for the
// transition read fallback, which the shared bench ctor does not wire.
struct ScaleoutBench {
  ScaleoutBench(const cluster::Testbed& bed, std::size_t shards,
                const char* label)
      : codec(kK, kM),
        cost(ec::CostModel::defaults(ec::Scheme::kRsVandermonde, kK, kM,
                                     bed.cpu_factor)),
        cl([&] {
          cluster::ClusterConfig cfg =
              cluster::make_config(bed, kProvisioned, kClients + 1);
          cfg.initial_active_servers = kInitialActive;
          cfg.shards = shards;
          return cfg;
        }()) {
    ObsSession& obs = ObsSession::instance();
    trace_pid = obs.tracer().declare_process(label);
    cl.set_tracer(&obs.tracer(), trace_pid);
    cl.enable_server_ec(codec, cost, /*materialize=*/false);
    // The last client is the placement coordinator's RPC identity.
    manager = std::make_unique<cluster::PlacementManager>(
        cl, codec, cost, context(kClients, &cl.ring()));
    cl.set_placement_view(manager->view());
    for (std::size_t c = 0; c < kClients; ++c) {
      engines.push_back(resilience::make_engine(
          resilience::Design::kEraCeCd, context(c, &cl.ring()), 3, &codec,
          cost));
      prev_engines.push_back(resilience::make_engine(
          resilience::Design::kEraCeCd, context(c, &manager->prev_ring()),
          3, &codec, cost));
      engines[c]->attach_placement(manager->view());
      engines[c]->set_prev_engine(prev_engines[c].get());
    }
    cl.start();
    if (obs.metrics_enabled()) {
      cl.register_metrics(obs.registry(), label);
      manager->register_metrics(obs.registry(), label);
      for (std::size_t c = 0; c < kClients; ++c) {
        engines[c]->stats().register_with(
            obs.registry(), "client" + std::to_string(c), label);
      }
    }
  }

  resilience::EngineContext context(std::size_t client,
                                    const kv::HashRing* ring) {
    resilience::EngineContext ctx;
    ctx.sim = &cl.sim_for_client(client);
    ctx.client = &cl.client(client);
    ctx.ring = ring;
    ctx.membership = &cl.membership();
    ctx.server_nodes = &cl.server_nodes();
    ctx.materialize = false;
    ctx.tracer = cl.tracer_for_client(client);
    ctx.trace_pid = trace_pid;
    return ctx;
  }

  ec::RsVandermondeCodec codec;
  ec::CostModel cost;
  cluster::Cluster cl;
  std::uint32_t trace_pid = 0;
  std::vector<std::unique_ptr<resilience::Engine>> engines;
  std::vector<std::unique_ptr<resilience::Engine>> prev_engines;
  std::unique_ptr<cluster::PlacementManager> manager;
};

sim::Task<void> sweep_proc(sim::Simulator* sim, resilience::Engine* engine,
                           workload::YcsbConfig cfg, std::uint64_t first,
                           std::uint64_t last, std::uint64_t* failures) {
  (void)sim;
  for (std::uint64_t i = first; i < last; ++i) {
    Result<Bytes> got =
        co_await engine->get(workload::ycsb_key(i, cfg.key_size));
    if (!got.ok()) ++*failures;
  }
}

RunOut run_once(const cluster::Testbed& bed, std::size_t shards,
                workload::YcsbConfig cfg, bool elastic,
                SimDur base_makespan, const char* label) {
  ScaleoutBench b(bed, shards, label);

  // Preload, partitioned across the workload clients' own shards.
  {
    const std::uint64_t stride =
        (cfg.record_count + kClients - 1) / kClients;
    for (std::size_t l = 0; l < kClients; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last =
          std::min<std::uint64_t>(first + stride, cfg.record_count);
      if (first >= last) continue;
      b.cl.sim_for_client(l).spawn(detail::loader_proc(
          &b.cl.sim_for_client(l), b.engines[l].get(), cfg, first, last));
    }
    b.cl.run();
  }

  const SimTime start = b.cl.now_quiesced();
  std::optional<cluster::FaultSchedule> schedule;
  if (elastic) {
    // Join lands ~40% into the (baseline-calibrated) run, the drain ~70%
    // in, so both migrations overlap live traffic.
    schedule.emplace(b.cl);
    schedule->set_placement_manager(b.manager.get());
    schedule->add_join(start + (base_makespan * 2) / 5, kJoiner);
    schedule->add_leave(start + (base_makespan * 7) / 10, kLeaver);
    schedule->arm();
  }
  RunOut out;
  std::vector<workload::YcsbResult> results(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    b.cl.sim_for_client(c).spawn(detail::client_proc(
        &b.cl.sim_for_client(c), b.engines[c].get(), cfg,
        cfg.seed + 1000 + c, &results[c]));
  }
  b.cl.run();
  out.makespan_ns = b.cl.now_quiesced() - start;
  for (const auto& r : results) out.merged.merge(r);
  out.placement = b.manager->stats();
  out.fragments_rebuilt = b.manager->stats().fragments_rebuilt;
  for (std::size_t c = 0; c < kClients; ++c) {
    out.wrong_epoch_retries += b.engines[c]->stats().wrong_epoch_retries;
    out.fallback_gets += b.engines[c]->stats().placement_fallback_gets;
  }
  out.epoch = b.cl.ring().epoch();
  out.events_fired = elastic ? schedule->fired() : 0;

  // Post-run sweep: every record must still resolve under the final
  // placement (migration done, transition closed, leaver drained).
  {
    const std::uint64_t stride =
        (cfg.record_count + kClients - 1) / kClients;
    for (std::size_t l = 0; l < kClients; ++l) {
      const std::uint64_t first = static_cast<std::uint64_t>(l) * stride;
      const std::uint64_t last =
          std::min<std::uint64_t>(first + stride, cfg.record_count);
      if (first >= last) continue;
      b.cl.sim_for_client(l).spawn(
          sweep_proc(&b.cl.sim_for_client(l), b.engines[l].get(), cfg,
                     first, last, &out.readback_failures));
    }
    b.cl.run();
  }
  out.sim_events = b.cl.runtime().events_executed();
  ObsSession::instance().add_sim_events(out.sim_events);
  ObsSession::instance().add_profile_point(label, b.cl.runtime().profile());

  // Host-side audit (elastic pass): the set of records whose primary
  // changed must agree with the HashRing::moved_ranges diff of the
  // before/after rings. PrimaryCache memoizes the final-ring owners.
  if (elastic) {
    const kv::HashRing before(kProvisioned, 128, 0x5eed, kInitialActive);
    const auto ranges =
        kv::HashRing::moved_ranges(before, b.cl.ring());
    PrimaryCache cache(&b.cl.ring());
    std::uint64_t moved = 0;
    std::uint64_t disagree = 0;
    for (std::uint64_t i = 0; i < cfg.record_count; ++i) {
      const std::string key = workload::ycsb_key(i, cfg.key_size);
      const bool primary_moved =
          before.primary_index(key) != cache.primary_index(key);
      // Re-resolve through the cache so the hit counter shows the memo
      // actually engaging on the second pass over the same keys.
      (void)cache.primary_index(key);
      if (primary_moved) ++moved;
      if (primary_moved !=
          kv::HashRing::any_covers(ranges, kv::HashRing::hash_key(key))) {
        ++disagree;
      }
    }
    std::printf(
        "audit: %llu/%llu primaries moved, %llu moved_ranges disagreements"
        " (want 0), ring diff covers %.1f%% of hash space, "
        "primary-cache hits %llu/%llu\n",
        static_cast<unsigned long long>(moved),
        static_cast<unsigned long long>(cfg.record_count),
        static_cast<unsigned long long>(disagree),
        100.0 * kv::HashRing::moved_fraction(ranges),
        static_cast<unsigned long long>(cache.hits()),
        static_cast<unsigned long long>(cache.lookups()));
    if (disagree != 0) out.readback_failures += disagree;
  }
  // Teardown contract (mirrors Testbench's destructor): fold per-shard
  // observability domains into the process instruments, then freeze bound
  // metrics before this run's stats structs are destroyed.
  b.cl.merge_obs_domains();
  if (ObsSession::instance().metrics_enabled()) {
    ObsSession::instance().registry().capture();
  }
  return out;
}

void print_run(const char* label, const RunOut& run) {
  print_cell(label);
  print_cell(run.merged.throughput_ops_per_s(run.makespan_ns));
  print_cell(
      units::to_us(static_cast<SimDur>(run.merged.read_latency.mean())));
  print_cell(units::to_us(run.merged.read_latency.p99()));
  print_cell(units::to_us(run.merged.write_latency.p99()));
  print_cell(100.0 * run.availability());
  print_cell(static_cast<double>(run.merged.failures));
  end_row();
}

int main_impl(int argc, char** argv) {
  obs_init(argc, argv);
  const std::size_t shards = ObsSession::instance().effective_shards();
  const cluster::Testbed bed = cluster::ri_qdr();

  workload::YcsbConfig cfg = workload::YcsbConfig::workload_a();
  cfg.record_count = static_cast<std::uint64_t>(
      arg_int(argc, argv, "--records=",
              static_cast<std::int64_t>(scaled(300))));
  cfg.ops_per_client = static_cast<std::uint64_t>(
      arg_int(argc, argv, "--ops=",
              static_cast<std::int64_t>(scaled(400))));
  cfg.seed = static_cast<std::uint64_t>(
      arg_int(argc, argv, "--seed=", 0xCC5B));

  std::printf(
      "ext_scaleout: %zu clients x %llu ops YCSB-A, %llu records x %s, "
      "RS(%d,%d), %zu->%zu->%zu active of %zu provisioned\n",
      kClients, static_cast<unsigned long long>(cfg.ops_per_client),
      static_cast<unsigned long long>(cfg.record_count),
      size_label(cfg.value_size).c_str(), kK, kM, kInitialActive,
      kInitialActive + 1, kInitialActive, kProvisioned);

  // Baseline calibrates the event times; elastic replays the same workload
  // with a join at 40% and a graceful leave at 70% of that makespan.
  const RunOut baseline =
      run_once(bed, shards, cfg, false, 0, "static");
  const RunOut elastic =
      run_once(bed, shards, cfg, true, baseline.makespan_ns, "elastic");

  print_header("YCSB-A: static vs elastic (join + drain mid-run)",
               {"run", "ops_s", "read_us", "rd_p99_us", "wr_p99_us",
                "avail_pct", "failed_ops"});
  print_run("static", baseline);
  print_run("join+drain", elastic);

  const cluster::PlacementStats& ps = elastic.placement;
  const double moved_mib =
      static_cast<double>(ps.moved_bytes) / (1024.0 * 1024.0);
  const double per_key =
      ps.keys_moved == 0
          ? 0.0
          : static_cast<double>(ps.moved_bytes) /
                static_cast<double>(ps.keys_moved) / 1024.0;
  print_header("migration cost (elastic run)",
               {"epochs", "keys_moved", "frags_moved", "moved_MiB",
                "KiB_per_key", "locators", "cleanups"});
  print_cell(static_cast<double>(ps.changes));
  print_cell(static_cast<double>(ps.keys_moved));
  print_cell(static_cast<double>(ps.fragments_moved));
  print_cell(moved_mib);
  print_cell(per_key);
  print_cell(static_cast<double>(ps.locators_moved));
  print_cell(static_cast<double>(ps.cleanup_deletes));
  end_row();

  print_header("epoch plane (elastic run)",
               {"final_epoch", "epoch_acks", "wrong_epoch", "fallback_gets",
                "rebuilt", "sweep_fail"});
  print_cell(static_cast<double>(elastic.epoch));
  print_cell(static_cast<double>(ps.epoch_acks));
  print_cell(static_cast<double>(elastic.wrong_epoch_retries));
  print_cell(static_cast<double>(elastic.fallback_gets));
  print_cell(static_cast<double>(elastic.fragments_rebuilt));
  print_cell(static_cast<double>(elastic.readback_failures));
  end_row();

  // CI gates: resharding must be invisible to clients (no failed ops, no
  // lost records) and both placement changes must actually have run.
  bool ok = true;
  if (elastic.merged.failures != 0) {
    std::fprintf(stderr, "FAIL: %llu client ops failed during resharding\n",
                 static_cast<unsigned long long>(elastic.merged.failures));
    ok = false;
  }
  if (elastic.readback_failures != 0) {
    std::fprintf(stderr, "FAIL: %llu records unreadable after resharding\n",
                 static_cast<unsigned long long>(elastic.readback_failures));
    ok = false;
  }
  if (elastic.events_fired != 2 || ps.changes != 2) {
    std::fprintf(stderr, "FAIL: expected join+leave to run (fired=%llu "
                         "changes=%llu)\n",
                 static_cast<unsigned long long>(elastic.events_fired),
                 static_cast<unsigned long long>(ps.changes));
    ok = false;
  }
  if (baseline.merged.failures != 0 || baseline.readback_failures != 0) {
    std::fprintf(stderr, "FAIL: static baseline saw failures\n");
    ok = false;
  }
  const int obs_rc = obs_finalize();
  return ok ? obs_rc : 1;
}

}  // namespace
}  // namespace hpres::bench

int main(int argc, char** argv) {
  return hpres::bench::main_impl(argc, argv);
}
