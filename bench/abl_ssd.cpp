// ABL5 — SSD-assisted overflow tier (the hybrid memory/SSD design of the
// RDMA-Memcached the paper builds on; its Boldio servers are explicitly
// "SSD-assisted").
//
// The Fig 10 overload point (40 clients x 1K x 1 MB into 100 GB aggregate,
// Async-Rep=3 needs 120 GB) loses data in the memory-only configuration.
// With the SSD tier the overflow demotes instead; the price appears as
// device latency on reads of demoted items. Erasure coding needs neither.
#include "bench_util.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

struct Point {
  double lost_gib = 0.0;
  double read_us = 0.0;
  double read_failures = 0.0;
};

sim::Task<void> writer(resilience::Engine* engine, std::size_t client_id,
                       std::uint64_t pairs, sim::Latch* done) {
  const SharedBytes value = zero_bytes(1024 * 1024);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    (void)engine->iset(
        "c" + std::to_string(client_id) + "-" + std::to_string(i), value);
    if ((i + 1) % 32 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();
  done->count_down();
}

sim::Task<void> reader(sim::Simulator* sim, resilience::Engine* engine,
                       std::size_t client_id, std::uint64_t pairs,
                       sim::Latch* done, RunningStats* latency,
                       std::uint64_t* failures) {
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const SimTime t0 = sim->now();
    const Result<Bytes> r = co_await engine->get(
        "c" + std::to_string(client_id) + "-" + std::to_string(i));
    latency->record(static_cast<double>(sim->now() - t0));
    if (!r.ok()) ++*failures;
  }
  done->count_down();
}

Point run_point(resilience::Design design, bool with_ssd,
                std::uint64_t pairs) {
  constexpr std::size_t kClients = 40;
  cluster::Testbed bed = cluster::ri_qdr();
  if (with_ssd) bed.server.ssd_bytes = 300ULL * units::kGiB;
  Testbench bench(bed, 5, kClients, design);
  {
    sim::Latch done(bench.sim(), kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn(writer(&bench.engine(c), c, pairs, &done));
    }
    bench.sim().run();
  }
  Point point;
  point.lost_gib =
      static_cast<double>(bench.cluster().total_evicted_bytes()) /
      static_cast<double>(units::kGiB);
  {
    sim::Latch done(bench.sim(), kClients);
    std::vector<RunningStats> lat(kClients);
    std::vector<std::uint64_t> failures(kClients, 0);
    for (std::size_t c = 0; c < kClients; ++c) {
      bench.spawn(reader(&bench.sim(), &bench.engine(c), c, pairs, &done,
                         &lat[c], &failures[c]));
    }
    bench.sim().run();
    RunningStats all;
    std::uint64_t fail = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      if (lat[c].count() > 0) all.record(lat[c].mean());
      fail += failures[c];
    }
    point.read_us = units::to_us(static_cast<SimDur>(all.mean()));
    point.read_failures = static_cast<double>(fail);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("abl_ssd", "its sweep drives every client from shard 0's loop");
  const std::uint64_t pairs = scaled(1'000);
  std::printf("ABL5 — SSD-assisted tier at the Fig 10 overload point"
              " (40 clients x %llu x 1 MB, 5 x 20 GB servers)\n",
              static_cast<unsigned long long>(pairs));
  print_header("Data loss and read-back cost",
               {"config", "lost_GiB", "read_us", "read_fail"});
  struct Row {
    const char* label;
    resilience::Design design;
    bool ssd;
  };
  for (const Row row :
       {Row{"rep3-mem", resilience::Design::kAsyncRep, false},
        Row{"rep3-ssd", resilience::Design::kAsyncRep, true},
        Row{"era-mem", resilience::Design::kEraCeCd, false}}) {
    const Point p = run_point(row.design, row.ssd, pairs);
    print_cell(row.label);
    print_cell(p.lost_gib);
    print_cell(p.read_us);
    print_cell(p.read_failures);
    end_row();
  }
  std::printf("Replication overflows memory: without the SSD it loses data;"
              " with it, reads of demoted items pay device latency. Erasure"
              " coding simply fits.\n");
  return obs_finalize();
}
