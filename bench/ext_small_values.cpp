// EXT — Batched small-object write path: value-size sweep of stored
// bytes/key with and without stripe packing (extension; not a paper
// figure — the paper's 1 MB workloads never hit the small-value regime).
//
// 5 servers, 1 client, RS(4,2). For each value size the harness loads the
// same keyset twice — per-key striping (packing off) vs the packed-stripe
// path (pack-threshold, default 4 KiB) — and reports measured stored
// bytes/key (store charge + locator directory), the ec::predict_footprint
// prediction, and the striped/packed savings ratio. The crossover is the
// smallest swept size where packing stops paying (ratio < 1.05).
//
// Writes BENCH_small_values.json. Flags:
//   --pack-threshold=N   packing threshold in bytes (default 4096; 0 = off,
//                        both configurations must then match exactly)
//   --out=FILE           JSON path (default BENCH_small_values.json)
#include <string>
#include <vector>

#include "bench_util.h"
#include "ec/stripe.h"
#include "obs/json.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kK = 4;
constexpr std::size_t kM = 2;

std::string key_of(std::uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%06llu",
                static_cast<unsigned long long>(i));
  return buf;
}

sim::Task<void> loader(resilience::Engine* engine, std::uint64_t keys,
                       std::size_t value_size, sim::Latch* done) {
  const SharedBytes value = zero_bytes(value_size);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)engine->iset(key_of(i), value);
    if ((i + 1) % 128 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();
  // Exercise the read path (locator lookup + sub-slot fetch when packed).
  for (std::uint64_t i = 0; i < keys; i += 97) {
    (void)co_await engine->get(key_of(i));
  }
  done->count_down();
}

struct Point {
  double bytes_per_key = 0.0;
  std::uint64_t locator_entries = 0;
  std::uint64_t stripes_sealed = 0;
  std::uint64_t fill_x1000 = 0;
};

Point run_point(std::size_t value_size, std::uint64_t keys,
                std::size_t pack_threshold) {
  // Buffers must exceed the window so sealed-stripe group commits always
  // find a spare bounce buffer (see docs/TUNING.md).
  const resilience::ArpeParams arpe{.window = 256, .buffers = 512};
  resilience::PackParams pack;
  pack.pack_threshold = pack_threshold;
  Testbench bench(cluster::ri_qdr(), /*servers=*/5, /*clients=*/1,
                  resilience::Design::kEraCeCd, kK, kM, /*rep_factor=*/3,
                  arpe, {}, {}, pack);
  sim::Latch done(bench.sim(), 1);
  bench.spawn(loader(&bench.engine(0), keys, value_size, &done));
  bench.sim().run();
  Point p;
  std::uint64_t stored = bench.cluster().total_bytes_used();
  for (std::size_t s = 0; s < 5; ++s) {
    stored += bench.cluster().server(s).stripe_index_bytes();
    p.locator_entries += bench.cluster().server(s).stripe_index_entries();
  }
  p.bytes_per_key = static_cast<double>(stored) / static_cast<double>(keys);
  p.stripes_sealed = bench.engine(0).stats().stripes_sealed;
  p.fill_x1000 = bench.engine(0).stats().stripe_fill_x1000;
  return p;
}

struct Row {
  std::size_t value_size = 0;
  Point striped;
  Point packed;
  double ratio = 0.0;
  double predicted_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("ext_small_values", "its loader/client drivers all run on shard 0's loop");
  const std::size_t pack_threshold = static_cast<std::size_t>(
      arg_int(argc, argv, "--pack-threshold=", 4096));
  std::string out_path = "BENCH_small_values.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--out=")) out_path = std::string(arg.substr(6));
  }
  const std::uint64_t keys = scaled(2'000);
  std::printf("EXT — small-object packing, 5 servers, RS(%zu,%zu), %llu keys"
              " per point, pack-threshold %zu B\n",
              kK, kM, static_cast<unsigned long long>(keys), pack_threshold);
  print_header("Stored bytes per key, striped vs packed",
               {"value_B", "striped", "packed", "ratio", "pred_ratio",
                "stripes", "fill%"});

  std::vector<Row> rows;
  for (const std::size_t size : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    Row r;
    r.value_size = size;
    r.striped = run_point(size, keys, /*pack_threshold=*/0);
    r.packed = run_point(size, keys, pack_threshold);
    r.ratio = r.packed.bytes_per_key > 0.0
                  ? r.striped.bytes_per_key / r.packed.bytes_per_key
                  : 0.0;
    ec::FootprintParams p;
    p.key_size = key_of(0).size();
    p.value_size = size;
    p.k = kK;
    p.m = kM;
    p.alignment = 1;
    p.stripe_capacity = resilience::PackParams{}.stripe_capacity;
    p.stripe_key_size = kv::stripe_key(0, 0).size();
    p.item_overhead = kv::StorageEngine::kItemOverhead;
    p.chunk_info_bytes = sizeof(kv::ChunkInfo);
    p.locator_entry_overhead = 12;
    p.locator_copies = kM + 1;
    const ec::StorageFootprint f = ec::predict_footprint(p);
    r.predicted_ratio =
        size < pack_threshold ? f.savings_ratio : 1.0;
    rows.push_back(r);
    print_cell(std::to_string(size));
    print_cell(r.striped.bytes_per_key);
    print_cell(r.packed.bytes_per_key);
    print_cell(r.ratio);
    print_cell(r.predicted_ratio);
    print_cell(std::to_string(r.packed.stripes_sealed));
    print_cell(static_cast<double>(r.packed.fill_x1000) / 10.0);
    end_row();
  }

  // Crossover: the smallest swept size where packing stops paying.
  std::size_t crossover = pack_threshold;
  for (const Row& r : rows) {
    if (r.ratio < 1.05) {
      crossover = r.value_size;
      break;
    }
  }
  double ratio_at_128 = 0.0;
  for (const Row& r : rows) {
    if (r.value_size == 128) ratio_at_128 = r.ratio;
  }
  std::printf("\npacking crossover: %zu B (ratio_at_128 = %.2fx)\n",
              crossover, ratio_at_128);

  std::string json;
  json += "{\n  \"bench\": \"ext_small_values\",\n  \"k\": ";
  obs::json::append_u64(json, kK);
  json += ", \"m\": ";
  obs::json::append_u64(json, kM);
  json += ", \"keys\": ";
  obs::json::append_u64(json, keys);
  json += ", \"pack_threshold\": ";
  obs::json::append_u64(json, pack_threshold);
  json += ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"value_size\": ";
    obs::json::append_u64(json, r.value_size);
    json += ", \"striped_bytes_per_key\": ";
    obs::json::append_fixed(json, r.striped.bytes_per_key, 1);
    json += ", \"packed_bytes_per_key\": ";
    obs::json::append_fixed(json, r.packed.bytes_per_key, 1);
    json += ", \"ratio\": ";
    obs::json::append_fixed(json, r.ratio, 3);
    json += ", \"predicted_ratio\": ";
    obs::json::append_fixed(json, r.predicted_ratio, 3);
    json += ", \"stripes_sealed\": ";
    obs::json::append_u64(json, r.packed.stripes_sealed);
    json += ", \"locator_entries\": ";
    obs::json::append_u64(json, r.packed.locator_entries);
    json += ", \"stripe_fill_x1000\": ";
    obs::json::append_u64(json, r.packed.fill_x1000);
    json += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  json += "  ],\n  \"acceptance\": {\"ratio_at_128\": ";
  obs::json::append_fixed(json, ratio_at_128, 3);
  json += ", \"crossover_size\": ";
  obs::json::append_u64(json, crossover);
  json += "}\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return obs_finalize();
}
