// EXT2 — Repair locality: RS vs LRC (the paper's future-work comparison,
// Section VIII: "optimized erasure codes such as locally repairable
// codes ... with the goal of maximizing overall performance and storage
// efficiency").
//
// A node that held one fragment of every key rejoins empty; the repair
// coordinator rebuilds its fragments. RS(6,3) must read k=6 fragments per
// repair; LRC(6,2,2) reads only its local group (3 + the local parity when
// applicable). Reported: repair time, network bytes read per key, local
// repair ratio, and the storage overhead each code pays.
#include "bench_util.h"
#include "ec/lrc.h"
#include "resilience/repair.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

struct Point {
  double repair_ms = 0.0;
  double read_mib = 0.0;
  double frags_per_key = 0.0;
  double local_ratio = 0.0;
  double overhead = 0.0;
};

sim::Task<void> scenario(sim::Simulator* sim, resilience::Engine* engine,
                         resilience::RepairCoordinator* repair,
                         cluster::Cluster* cluster, std::uint64_t keys,
                         std::size_t value_size, Point* out) {
  const SharedBytes value = zero_bytes(value_size);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)engine->iset("obj" + std::to_string(i), value);
    if ((i + 1) % 32 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();

  cluster->fail_server(0);
  while (!cluster->server(0).store().keys().empty()) {
    cluster->server(0).store().erase(cluster->server(0).store().keys().front());
  }
  cluster->recover_server(0);

  const SimTime t0 = sim->now();
  (void)co_await repair->repair_all();
  const SimDur repair_ns = sim->now() - t0;

  const auto& stats = repair->stats();
  out->repair_ms = units::to_ms(repair_ns);
  out->read_mib = static_cast<double>(stats.bytes_read) / (1024.0 * 1024.0);
  out->frags_per_key =
      stats.keys_repaired == 0
          ? 0.0
          : static_cast<double>(stats.fragments_read) /
                static_cast<double>(stats.keys_repaired);
  out->local_ratio =
      stats.keys_repaired == 0
          ? 0.0
          : static_cast<double>(stats.local_repairs) /
                static_cast<double>(stats.keys_repaired);
}

Point run_code(const ec::Codec& codec, std::uint64_t keys,
               std::size_t value_size) {
  // 12 servers hosts both codes' fragment counts (9 and 10) with room.
  cluster::Cluster cl(cluster::make_config(cluster::ri_qdr(), 12, 1));
  const auto cost = ec::CostModel::defaults(ec::Scheme::kRsVandermonde,
                                            codec.k(), codec.m());
  cl.enable_server_ec(codec, cost, false);
  obs::Tracer& tracer = ObsSession::instance().tracer();
  const std::uint32_t pid = tracer.declare_process(std::string(codec.name()));
  cl.set_tracer(&tracer, pid);
  resilience::EngineContext ctx;
  ctx.sim = &cl.sim();
  ctx.client = &cl.client(0);
  ctx.ring = &cl.ring();
  ctx.membership = &cl.membership();
  ctx.server_nodes = &cl.server_nodes();
  ctx.materialize = false;
  ctx.tracer = &tracer;
  ctx.trace_pid = pid;
  const auto engine = resilience::make_engine(resilience::Design::kEraCeCd,
                                              ctx, 3, &codec, cost);
  resilience::RepairCoordinator repair(ctx, codec, cost);
  cl.start();
  Point point;
  point.overhead = static_cast<double>(codec.n()) /
                   static_cast<double>(codec.k());
  cl.sim().spawn(scenario(&cl.sim(), engine.get(), &repair, &cl, keys,
                          value_size, &point));
  cl.run();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("ext_lrc_repair", "its repair coordinator drives cross-node reads from one loop");
  const std::uint64_t keys = scaled(150);
  constexpr std::size_t kValue = 256 * 1024;
  std::printf("EXT2 — repair locality, node rejoin with %llu x 256 KB keys,"
              " 12 servers, RI-QDR\n",
              static_cast<unsigned long long>(keys));
  print_header("RS(6,3) vs LRC(6,2,2) repair",
               {"code", "overhead", "repair_ms", "read_MiB", "frags/key",
                "local%"});
  const ec::RsVandermondeCodec rs(6, 3);
  const ec::LrcCodec lrc(6, 2, 2);
  struct Row {
    const char* label;
    const ec::Codec* codec;
  };
  for (const Row row : {Row{"RS(6,3)", &rs}, Row{"LRC(6,2,2)", &lrc}}) {
    const Point p = run_code(*row.codec, keys, kValue);
    print_cell(row.label);
    print_cell(p.overhead);
    print_cell(p.repair_ms);
    print_cell(p.read_mib);
    print_cell(p.frags_per_key);
    print_cell(100.0 * p.local_ratio);
    end_row();
  }
  std::printf("LRC buys its repair savings with storage overhead"
              " (10/6 vs 9/6) — the trade the paper's future work"
              " anticipates.\n");
  return obs_finalize();
}
