// FIG10 — Memory efficiency of Era-RS(3,2) vs Async-Rep=3 (paper Fig 10).
//
// 5 servers x 20 GB; 1..40 clients each write 1K key-value pairs of 1 MB.
// Reports the percentage of the aggregate 100 GB used and the data lost to
// eviction pressure.
//
// Expected shape (paper): Era uses ~56% of aggregate memory at 40 clients
// (a ~1.8x saving) while Async-Rep saturates 100% and suffers ~GBs of data
// loss.
#include <cmath>

#include "bench_util.h"
#include "ec/stripe.h"

namespace {

using namespace hpres;         // NOLINT(google-build-using-namespace)
using namespace hpres::bench;  // NOLINT(google-build-using-namespace)

sim::Task<void> writer(resilience::Engine* engine, std::size_t client_id,
                       std::uint64_t pairs, std::size_t value_size,
                       sim::Latch* done) {
  const SharedBytes value = zero_bytes(value_size);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    (void)engine->iset(
        "c" + std::to_string(client_id) + "-" + std::to_string(i), value);
    if ((i + 1) % 32 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();
  done->count_down();
}

struct Point {
  double used_pct = 0.0;
  double lost_gib = 0.0;
};

Point run_point(resilience::Design design, std::size_t clients,
                std::uint64_t pairs_per_client) {
  Testbench bench(cluster::ri_qdr(), /*servers=*/5, clients, design);
  sim::Latch done(bench.sim(), static_cast<std::uint32_t>(clients));
  for (std::size_t c = 0; c < clients; ++c) {
    bench.spawn(writer(&bench.engine(c), c, pairs_per_client,
                       1024 * 1024, &done));
  }
  bench.sim().run();
  Point p;
  p.used_pct = 100.0 *
               static_cast<double>(bench.cluster().total_bytes_used()) /
               static_cast<double>(bench.cluster().total_capacity());
  p.lost_gib = static_cast<double>(bench.cluster().total_evicted_bytes()) /
               static_cast<double>(units::kGiB);
  return p;
}

/// Accounting cross-check at an eviction-free point (1 client): the
/// measured per-key stored bytes of the era design must match the
/// ec::predict_footprint striped prediction to the byte. Guards the
/// padding-overhead model the small-value sweep (ext_small_values) derives
/// its packing crossover from.
void check_footprint_accounting(std::uint64_t pairs) {
  Testbench bench(cluster::ri_qdr(), /*servers=*/5, /*clients=*/1,
                  resilience::Design::kEraCeCd);
  sim::Latch done(bench.sim(), 1);
  bench.spawn(writer(&bench.engine(0), 0, pairs, 1024 * 1024, &done));
  bench.sim().run();
  const double measured =
      static_cast<double>(bench.cluster().total_bytes_used());
  ec::FootprintParams p;
  p.value_size = 1024 * 1024;
  p.k = 3;
  p.m = 2;
  p.alignment = 1;
  p.item_overhead = kv::StorageEngine::kItemOverhead;
  p.chunk_info_bytes = sizeof(kv::ChunkInfo);
  double predicted = 0.0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    p.key_size = ("c0-" + std::to_string(i)).size();
    predicted += ec::predict_footprint(p).striped_per_key;
  }
  if (std::abs(measured - predicted) > 0.5) {
    std::fprintf(stderr,
                 "FOOTPRINT MISMATCH: measured %.0f B != predicted %.0f B\n",
                 measured, predicted);
    std::exit(1);
  }
  std::printf("footprint accounting check: measured == predicted"
              " (%.0f B over %llu keys)\n",
              measured, static_cast<unsigned long long>(pairs));
}

}  // namespace

int main(int argc, char** argv) {
  obs_init(argc, argv);
  require_oracle_shards("fig10_memory", "its loaders all run on shard 0's loop");
  const std::uint64_t pairs = scaled(1'000);
  check_footprint_accounting(pairs);
  std::printf("FIG10 (paper Fig 10) — memory efficiency, 5 servers x 20 GB"
              " (100 GB aggregate), %llu x 1 MB pairs per client\n",
              static_cast<unsigned long long>(pairs));
  print_header("Aggregate memory used (%) and data loss (GiB)",
               {"clients", "rep_used%", "rep_lost", "era_used%", "era_lost"});
  for (const std::size_t clients : {1u, 5u, 10u, 20u, 30u, 40u}) {
    const Point rep =
        run_point(resilience::Design::kAsyncRep, clients, pairs);
    const Point era = run_point(resilience::Design::kEraCeCd, clients, pairs);
    print_cell(std::to_string(clients));
    print_cell(rep.used_pct);
    print_cell(rep.lost_gib);
    print_cell(era.used_pct);
    print_cell(era.lost_gib);
    end_row();
  }
  return obs_finalize();
}
