#include "workload/ohb.h"

namespace hpres::workload {

namespace {

kv::Key ohb_key(std::uint64_t i, std::size_t key_size) {
  std::string out = "ohb-" + std::to_string(i);
  if (out.size() < key_size) out.append(key_size - out.size(), 'x');
  return out;
}

}  // namespace

sim::Task<void> ohb_set_workload(sim::Simulator* sim,
                                 resilience::Engine* engine, OhbConfig config,
                                 OhbResult* result) {
  const SharedBytes value =
      make_shared_bytes(make_pattern(config.value_size, config.seed));
  const resilience::PhaseBreakdown before = engine->stats().set_phases;
  const SimTime t0 = sim->now();
  for (std::uint64_t i = 0; i < config.operations; ++i) {
    const Status s = co_await engine->set(ohb_key(i, config.key_size), value);
    if (!s.ok()) ++result->failures;
  }
  result->total_ns = sim->now() - t0;
  result->operations = config.operations;
  const resilience::PhaseBreakdown after = engine->stats().set_phases;
  result->phases.request_ns = after.request_ns - before.request_ns;
  result->phases.compute_ns = after.compute_ns - before.compute_ns;
  result->phases.wait_ns = after.wait_ns - before.wait_ns;
}

sim::Task<void> ohb_get_workload(sim::Simulator* sim,
                                 resilience::Engine* engine, OhbConfig config,
                                 OhbResult* result) {
  const resilience::PhaseBreakdown before = engine->stats().get_phases;
  const SimTime t0 = sim->now();
  for (std::uint64_t i = 0; i < config.operations; ++i) {
    const Result<Bytes> r =
        co_await engine->get(ohb_key(i, config.key_size));
    if (!r.ok()) ++result->failures;
  }
  result->total_ns = sim->now() - t0;
  result->operations = config.operations;
  const resilience::PhaseBreakdown after = engine->stats().get_phases;
  result->phases.request_ns = after.request_ns - before.request_ns;
  result->phases.compute_ns = after.compute_ns - before.compute_ns;
  result->phases.wait_ns = after.wait_ns - before.wait_ns;
}

}  // namespace hpres::workload
