#include "workload/zipf.h"

#include <cassert>
#include <cmath>

namespace hpres::workload {

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta)
    : items_(items), theta_(theta) {
  assert(items >= 1);
  assert(theta > 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = zeta(items, theta);
  const double zeta2 = zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::next(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

}  // namespace hpres::workload
