#include "workload/ycsb.h"

#include <algorithm>

namespace hpres::workload {

void YcsbResult::merge(const YcsbResult& other) {
  read_latency.merge(other.read_latency);
  write_latency.merge(other.write_latency);
  reads += other.reads;
  writes += other.writes;
  failures += other.failures;
  timeouts += other.timeouts;
  unavailable += other.unavailable;
  duration_ns = std::max(duration_ns, other.duration_ns);
}

double YcsbResult::throughput_ops_per_s(SimDur makespan_ns) const {
  if (makespan_ns <= 0) return 0.0;
  return static_cast<double>(reads + writes) /
         (static_cast<double>(makespan_ns) / 1e9);
}

std::string ycsb_key(std::uint64_t id, std::size_t key_size) {
  std::string digits = std::to_string(id);
  std::string out = "user";
  if (out.size() + digits.size() < key_size) {
    out.append(key_size - out.size() - digits.size(), '0');
  }
  out += digits;
  if (out.size() > key_size) out.resize(key_size);
  return out;
}

sim::Task<void> ycsb_load(sim::Simulator* sim, resilience::Engine* engine,
                          YcsbConfig config, std::uint64_t first,
                          std::uint64_t last) {
  (void)sim;
  // One shared buffer: preload content is irrelevant, and sharing keeps the
  // load phase's host memory flat even for millions of records.
  const SharedBytes value = zero_bytes(config.value_size);
  for (std::uint64_t id = first; id < last; ++id) {
    (void)engine->iset(ycsb_key(id, config.key_size), value);
    // Bound the pipeline depth during load.
    if ((id - first + 1) % 64 == 0) co_await engine->wait_all();
  }
  co_await engine->wait_all();
}

sim::Task<void> ycsb_client(sim::Simulator* sim, resilience::Engine* engine,
                            YcsbConfig config, std::uint64_t client_seed,
                            YcsbResult* result) {
  Xoshiro256 rng(client_seed);
  const ScrambledZipfianGenerator keygen(config.record_count,
                                         config.zipf_theta);
  const SharedBytes write_value =
      make_shared_bytes(make_pattern(config.value_size, client_seed));

  const SimTime begin = sim->now();
  for (std::uint64_t op = 0; op < config.ops_per_client; ++op) {
    const std::uint64_t id = keygen.next(rng);
    const std::string key = ycsb_key(id, config.key_size);
    const bool is_read = rng.next_double() < config.read_fraction;
    const SimTime op_start = sim->now();
    StatusCode code = StatusCode::kOk;
    if (is_read) {
      const Result<Bytes> r = co_await engine->get(key);
      ++result->reads;
      result->read_latency.record(sim->now() - op_start);
      code = r.status().code();
    } else {
      const Status s = co_await engine->set(key, write_value);
      ++result->writes;
      result->write_latency.record(sim->now() - op_start);
      code = s.code();
    }
    if (code != StatusCode::kOk) {
      ++result->failures;
      if (code == StatusCode::kTimeout) ++result->timeouts;
      if (code == StatusCode::kUnavailable) ++result->unavailable;
    }
  }
  result->duration_ns = sim->now() - begin;
}

}  // namespace hpres::workload
