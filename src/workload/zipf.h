// Key-popularity generators: uniform, Zipfian (Gray et al.'s method, as in
// YCSB), and scrambled Zipfian (YCSB's default request distribution, which
// spreads the hot items across the keyspace).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace hpres::workload {

class UniformGenerator {
 public:
  explicit UniformGenerator(std::uint64_t items) : items_(items) {}

  [[nodiscard]] std::uint64_t next(Xoshiro256& rng) const {
    return rng.next_below(items_);
  }

 private:
  std::uint64_t items_;
};

/// Zipfian-distributed ranks in [0, items): rank r is drawn with
/// probability proportional to 1 / (r+1)^theta. Implementation follows
/// Gray et al., "Quickly Generating Billion-Record Synthetic Databases"
/// (the algorithm YCSB uses).
class ZipfianGenerator {
 public:
  static constexpr double kYcsbTheta = 0.99;

  explicit ZipfianGenerator(std::uint64_t items, double theta = kYcsbTheta);

  [[nodiscard]] std::uint64_t items() const noexcept { return items_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

  [[nodiscard]] std::uint64_t next(Xoshiro256& rng) const;

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Zipfian ranks scrambled by a stateless hash so the popular items are not
/// clustered at the low end of the keyspace (YCSB ScrambledZipfian).
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(std::uint64_t items,
                                     double theta = ZipfianGenerator::kYcsbTheta)
      : zipf_(items, theta), items_(items) {}

  [[nodiscard]] std::uint64_t next(Xoshiro256& rng) const {
    // Lemire multiply-shift, not `% items_`: the modulo folds the hash's
    // 2^64 range unevenly onto [0, items), systematically favouring low
    // keys (and, worse, colliding distinct hot ranks more often there).
    __extension__ using Uint128 = unsigned __int128;
    const Uint128 product =
        static_cast<Uint128>(splitmix64(zipf_.next(rng))) * items_;
    return static_cast<std::uint64_t>(product >> 64);
  }

 private:
  ZipfianGenerator zipf_;
  std::uint64_t items_;
};

}  // namespace hpres::workload
