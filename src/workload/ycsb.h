// YCSB-style workload driver (Cooper et al., SoCC'10), covering the paper's
// Section VI-C experiments: workload A (update heavy, 50:50 read:write) and
// workload B (read heavy, 95:5) over a scrambled-Zipfian request
// distribution, with a preload phase and per-client op streams.
#pragma once

#include <string>

#include "common/histogram.h"
#include "resilience/engine.h"
#include "workload/zipf.h"

namespace hpres::workload {

struct YcsbConfig {
  double read_fraction = 0.5;        ///< 0.5 = YCSB-A, 0.95 = YCSB-B
  std::uint64_t record_count = 250'000;
  std::uint64_t ops_per_client = 2'500;
  std::size_t value_size = 16 * 1024;
  std::size_t key_size = 16;         ///< paper fixes keys at 16 B
  double zipf_theta = ZipfianGenerator::kYcsbTheta;
  std::uint64_t seed = 0xCC5B;

  /// Canonical presets.
  static YcsbConfig workload_a() { return YcsbConfig{}; }
  static YcsbConfig workload_b() {
    YcsbConfig cfg;
    cfg.read_fraction = 0.95;
    return cfg;
  }
};

/// Per-client (mergeable) result set.
struct YcsbResult {
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t failures = 0;
  std::uint64_t timeouts = 0;     ///< failures that resolved kTimeout
  std::uint64_t unavailable = 0;  ///< failures that resolved kUnavailable
  SimDur duration_ns = 0;  ///< this client's first-op to last-completion

  void merge(const YcsbResult& other);

  /// Aggregate throughput given the overall makespan.
  [[nodiscard]] double throughput_ops_per_s(SimDur makespan_ns) const;
};

/// Zero-padded YCSB-style key ("user00000001234") of exactly key_size.
[[nodiscard]] std::string ycsb_key(std::uint64_t id, std::size_t key_size);

/// Loads records [first, last) through an engine (the preload phase).
/// Values are size-only unless the engine materializes.
sim::Task<void> ycsb_load(sim::Simulator* sim, resilience::Engine* engine,
                          YcsbConfig config, std::uint64_t first,
                          std::uint64_t last);

/// Runs one client's op stream: ops_per_client operations, read/write mix
/// per config, keys from a scrambled-Zipfian distribution. Op latencies and
/// counts land in *result.
sim::Task<void> ycsb_client(sim::Simulator* sim, resilience::Engine* engine,
                            YcsbConfig config, std::uint64_t client_seed,
                            YcsbResult* result);

}  // namespace hpres::workload
