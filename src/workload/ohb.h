// OHB-style Memcached micro-benchmark driver (Section VI-B): one client
// issues a fixed count of Set or Get operations of one value size against
// the cluster, measuring total time, per-op latency and the client-side
// phase breakdown. Mirrors the OSU HiBD OHB benchmark used by the paper.
#pragma once

#include "resilience/engine.h"

namespace hpres::workload {

struct OhbConfig {
  std::uint64_t operations = 1'000;  ///< paper: 1K ops per point
  std::size_t value_size = 4096;
  std::size_t key_size = 16;
  std::uint64_t seed = 0x0B5;
};

struct OhbResult {
  SimDur total_ns = 0;
  std::uint64_t operations = 0;
  std::uint64_t failures = 0;
  resilience::PhaseBreakdown phases;  ///< summed over ops

  [[nodiscard]] double avg_latency_us() const {
    return operations == 0 ? 0.0
                           : units::to_us(total_ns) /
                                 static_cast<double>(operations);
  }
};

/// Issues `operations` blocking Sets ("ohb-<i>" keys) and fills *result.
sim::Task<void> ohb_set_workload(sim::Simulator* sim,
                                 resilience::Engine* engine, OhbConfig config,
                                 OhbResult* result);

/// Issues `operations` blocking Gets over keys written by ohb_set_workload.
sim::Task<void> ohb_get_workload(sim::Simulator* sim,
                                 resilience::Engine* engine, OhbConfig config,
                                 OhbResult* result);

}  // namespace hpres::workload
