#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hpres::obs {
namespace {

// Higher wins the coverage sweep. kOther (the root itself) must be lowest so
// any tagged child refines it; compute phases are highest so overlap with
// their enclosing windows attributes to the concrete work.
constexpr std::array<int, kPhaseCount> kPriority = {
    /*kSerialize=*/7, /*kEncode=*/9, /*kDecode=*/8,
    /*kQueue=*/6,     /*kFanout=*/5, /*kNet=*/4,
    /*kServer=*/3,    /*kWaitK=*/2,  /*kOther=*/0,
};

[[nodiscard]] int priority(Phase p) noexcept {
  return kPriority[static_cast<std::size_t>(p)];
}

[[nodiscard]] bool is_engine_root(const TraceSpan& s) noexcept {
  return s.cat == "engine" &&
         (s.name == "set" || s.name == "get" || s.name == "del");
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// `client_nic_tid` distinguishes the op's own outbound NIC slot (fan-out)
/// from every other NIC's activity (net transfer).
[[nodiscard]] Phase classify(const TraceSpan& s,
                             std::uint64_t client_nic_tid) noexcept {
  const std::string_view name = s.name;
  if (name == "set/encode" || name == "server/encode") return Phase::kEncode;
  if (name == "get/decode" || name == "server/decode") return Phase::kDecode;
  if (ends_with(name, "/request")) return Phase::kSerialize;
  if (name == "fabric/txq" || name == "fabric/rxq" || name == "server/queue") {
    return Phase::kQueue;
  }
  if (name == "fabric/send") {
    return s.tid == client_nic_tid ? Phase::kFanout : Phase::kNet;
  }
  if (name == "fabric/recv" || name == "fabric/wire") return Phase::kNet;
  if (name == "server/handle") return Phase::kServer;
  if (name == "set/fanout" || name == "get/fetch" || name == "rpc/timeout") {
    return Phase::kWaitK;
  }
  return Phase::kOther;
}

struct Interval {
  SimTime begin;
  SimTime end;
  std::uint64_t trace;
};

/// Comm coverage of [a, b) by intervals of other traces; `comm` is sorted by
/// begin and `prefix_max_end[i]` = max end over comm[0..i].
[[nodiscard]] SimDur covered_by_others(const std::vector<Interval>& comm,
                                       const std::vector<SimTime>& prefix_max,
                                       SimTime a, SimTime b,
                                       std::uint64_t own_trace) {
  if (comm.empty() || a >= b) return 0;
  // Candidates: begin < b (binary search) and end > a (prefix-max prune on
  // the backward scan).
  const auto lo = std::partition_point(
      comm.begin(), comm.end(), [&](const Interval& iv) { return iv.begin < b; });
  std::vector<std::pair<SimTime, SimTime>> segs;
  for (auto idx = static_cast<std::ptrdiff_t>(lo - comm.begin()) - 1; idx >= 0;
       --idx) {
    if (prefix_max[static_cast<std::size_t>(idx)] <= a) break;
    const Interval& iv = comm[static_cast<std::size_t>(idx)];
    if (iv.end <= a || iv.trace == own_trace) continue;
    segs.emplace_back(std::max(iv.begin, a), std::min(iv.end, b));
  }
  if (segs.empty()) return 0;
  std::sort(segs.begin(), segs.end());
  SimDur covered = 0;
  SimTime cur = segs.front().first;
  SimTime cur_end = segs.front().second;
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].first > cur_end) {
      covered += cur_end - cur;
      cur = segs[i].first;
      cur_end = segs[i].second;
    } else {
      cur_end = std::max(cur_end, segs[i].second);
    }
  }
  covered += cur_end - cur;
  return covered;
}

}  // namespace

std::string_view to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kSerialize: return "serialize";
    case Phase::kEncode: return "encode";
    case Phase::kDecode: return "decode";
    case Phase::kQueue: return "queue";
    case Phase::kFanout: return "fanout";
    case Phase::kNet: return "net";
    case Phase::kServer: return "server";
    case Phase::kWaitK: return "wait_k";
    case Phase::kOther: return "other";
  }
  return "?";
}

CriticalPathAnalysis analyze_critical_path(
    const std::vector<TraceSpan>& spans) {
  CriticalPathAnalysis out;
  out.spans_seen = spans.size();

  std::map<std::uint64_t, std::vector<const TraceSpan*>> by_trace;
  for (const TraceSpan& s : spans) by_trace[s.trace_id].push_back(&s);

  // Global communication intervals (fabric activity of every trace), for the
  // decode-exposure overlap query.
  std::vector<Interval> comm;
  for (const TraceSpan& s : spans) {
    if (s.name == "fabric/send" || s.name == "fabric/recv" ||
        s.name == "fabric/wire") {
      comm.push_back(Interval{s.begin_ns, s.begin_ns + s.dur_ns, s.trace_id});
    }
  }
  std::sort(comm.begin(), comm.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<SimTime> prefix_max(comm.size());
  SimTime running = 0;
  for (std::size_t i = 0; i < comm.size(); ++i) {
    running = std::max(running, comm[i].end);
    prefix_max[i] = running;
  }

  for (const auto& [trace_id, trace_spans] : by_trace) {
    // Outermost engine root: earliest begin, longest on ties. Hybrid ops
    // nest a second engine-root slice inside the outer one; inner roots are
    // transparent to the sweep.
    const TraceSpan* root = nullptr;
    for (const TraceSpan* s : trace_spans) {
      if (!is_engine_root(*s)) continue;
      if (root == nullptr || s->begin_ns < root->begin_ns ||
          (s->begin_ns == root->begin_ns && s->dur_ns > root->dur_ns)) {
        root = s;
      }
    }
    if (root == nullptr) {
      ++out.traces_without_root;
      continue;
    }
    const SimTime t0 = root->begin_ns;
    const SimTime t1 = root->begin_ns + root->dur_ns;
    const std::uint64_t client_nic =
        Tracer::kNicTidBase + root->tid / Tracer::kLanesPerNode;

    // Clip the trace's spans to the op interval and classify.
    struct Active {
      SimTime begin;
      SimTime end;
      Phase phase;
    };
    std::vector<Active> active;
    std::vector<SimTime> bounds{t0, t1};
    for (const TraceSpan* s : trace_spans) {
      if (s == root) continue;
      if (is_engine_root(*s)) continue;  // transparent inner root
      const SimTime b = std::max(s->begin_ns, t0);
      const SimTime e = std::min(s->begin_ns + s->dur_ns, t1);
      if (b >= e) continue;
      active.push_back(Active{b, e, classify(*s, client_nic)});
      bounds.push_back(b);
      bounds.push_back(e);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    OpAttribution op;
    op.trace_id = trace_id;
    op.op = root->name;
    op.begin_ns = t0;
    op.total_ns = root->dur_ns;

    std::vector<std::pair<SimTime, SimTime>> decode_intervals;
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const SimTime a = bounds[i];
      const SimTime b = bounds[i + 1];
      Phase best = Phase::kOther;  // the root always covers the segment
      for (const Active& sp : active) {
        if (sp.begin <= a && sp.end >= b &&
            priority(sp.phase) > priority(best)) {
          best = sp.phase;
        }
      }
      op.phase_ns[static_cast<std::size_t>(best)] += b - a;
      if (best == Phase::kDecode) {
        if (!decode_intervals.empty() && decode_intervals.back().second == a) {
          decode_intervals.back().second = b;  // coalesce adjacent segments
        } else {
          decode_intervals.emplace_back(a, b);
        }
      }
    }

    for (const auto& [a, b] : decode_intervals) {
      op.decode_ns += b - a;
      const SimDur hidden = covered_by_others(comm, prefix_max, a, b, trace_id);
      op.decode_exposed_ns += (b - a) - hidden;
    }
    out.ops.push_back(std::move(op));
  }
  return out;
}

std::vector<const OpAttribution*> slowest_fraction(
    const std::vector<OpAttribution>& ops, double frac) {
  if (ops.empty()) return {};
  std::vector<const OpAttribution*> ptrs;
  ptrs.reserve(ops.size());
  for (const OpAttribution& op : ops) ptrs.push_back(&op);
  std::sort(ptrs.begin(), ptrs.end(),
            [](const OpAttribution* a, const OpAttribution* b) {
              if (a->total_ns != b->total_ns) return a->total_ns > b->total_ns;
              return a->trace_id < b->trace_id;
            });
  const auto want = static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(ops.size())));
  ptrs.resize(std::max<std::size_t>(1, std::min(want, ptrs.size())));
  return ptrs;
}

}  // namespace hpres::obs
