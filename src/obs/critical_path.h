// Critical-path analyzer for causal request traces.
//
// Input: the tagged spans of one experiment point (Tracer::tagged_spans or a
// parsed trace JSON). Each client op is one trace id whose root span is the
// engine-level "set"/"get"/"del" slice; child spans (request serialization,
// encode/decode compute, fabric NIC activity, queue waits, server handlers,
// fan-out windows) are tagged with the same id across RPC hops.
//
// The analyzer attributes every nanosecond of the root interval to exactly
// one phase by a coverage sweep: at each instant the highest-priority tagged
// span covering it wins. Priority encodes "most specific cause": compute
// (encode/decode) > serialization > queueing > outbound fan-out > network
// transfer > server processing > wait-for-k (a fan-out/fetch window with
// nothing concrete in flight) > uncovered root time. Because the sweep
// partitions the closed interval with integer-ns arithmetic, the per-phase
// sums add up to the op's end-to-end latency EXACTLY — no lost gaps, no
// double counting (an acceptance invariant, asserted by tests and fig09).
//
// On top of the per-op attribution the analyzer reports, for ops that
// decode, how much of the decode time was *exposed* (no fabric activity of
// any other op in flight meanwhile) versus hidden behind concurrent
// communication — the op-by-op version of the paper's ARPE overlap claim:
// under windowed pipelining a client-side decode should overlap other ops'
// fragment fetches instead of stalling the pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/trace.h"

namespace hpres::obs {

/// Latency phases, in table order.
enum class Phase : std::uint8_t {
  kSerialize,  ///< request serialization / issue CPU ("*/request")
  kEncode,     ///< erasure encode compute (client or server side)
  kDecode,     ///< erasure decode compute (client or server side)
  kQueue,      ///< NIC tx/rx queueing, server worker-pool queueing
  kFanout,     ///< outbound sends on the op's own client NIC
  kNet,        ///< wire propagation + remote NIC serialization
  kServer,     ///< server handler time with nothing finer active
  kWaitK,      ///< inside a fan-out/fetch window, waiting on responses
  kOther,      ///< root-covered time with no tagged child span
};
inline constexpr std::size_t kPhaseCount = 9;

[[nodiscard]] std::string_view to_string(Phase p) noexcept;

/// Per-op result: full attribution of the root interval.
struct OpAttribution {
  std::uint64_t trace_id = 0;
  std::string op;       ///< root span name ("set", "get", "del")
  SimTime begin_ns = 0;
  SimDur total_ns = 0;  ///< root span duration == sum of phase_ns
  std::array<SimDur, kPhaseCount> phase_ns{};
  SimDur decode_ns = 0;          ///< decode-phase time inside the op
  SimDur decode_exposed_ns = 0;  ///< decode time with no concurrent
                                 ///< fabric activity from other ops

  [[nodiscard]] SimDur phase(Phase p) const noexcept {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] SimDur phase_sum() const noexcept {
    SimDur s = 0;
    for (const SimDur v : phase_ns) s += v;
    return s;
  }
};

struct CriticalPathAnalysis {
  std::vector<OpAttribution> ops;  ///< sorted by trace id
  std::size_t spans_seen = 0;
  /// Traces with tagged spans but no engine root (e.g. repair traces).
  std::size_t traces_without_root = 0;
};

/// Runs the coverage sweep over every trace id present in `spans`.
[[nodiscard]] CriticalPathAnalysis analyze_critical_path(
    const std::vector<TraceSpan>& spans);

/// Accumulator for attribution tables.
struct PhaseAggregate {
  std::uint64_t count = 0;
  SimDur total_ns = 0;
  std::array<SimDur, kPhaseCount> phase_ns{};
  SimDur decode_ns = 0;
  SimDur decode_exposed_ns = 0;

  void add(const OpAttribution& op) {
    ++count;
    total_ns += op.total_ns;
    for (std::size_t i = 0; i < kPhaseCount; ++i) phase_ns[i] += op.phase_ns[i];
    decode_ns += op.decode_ns;
    decode_exposed_ns += op.decode_exposed_ns;
  }
  [[nodiscard]] SimDur phase(Phase p) const noexcept {
    return phase_ns[static_cast<std::size_t>(p)];
  }
};

/// The slowest max(1, ceil(frac * ops.size())) ops by total latency,
/// slowest first (deterministic: ties break on trace id). Empty input gives
/// an empty result.
[[nodiscard]] std::vector<const OpAttribution*> slowest_fraction(
    const std::vector<OpAttribution>& ops, double frac);

}  // namespace hpres::obs
