// Always-on flight recorder: a fixed-memory, per-node ring buffer of
// compact structured events written on the hot path.
//
// Each node (server or client) owns a ring of kRecordBytes-sized records;
// recording is one bounds check, one index increment and one 24-byte store
// — no allocation, no locks (the simulation is single-threaded by
// construction, and the layout would be a per-node SPSC ring on a real
// multi-threaded build), no simulation side effects. Memory is
// O(nodes x ring_size) for the life of the recorder: rings are allocated
// once up front and never grow, so attaching a recorder can never change a
// benchmark result or its memory high-water mark beyond the fixed budget
// (memory_bytes() reports it; a test asserts it is invariant under load).
//
// When the ring wraps, the oldest events are overwritten: a dump is always
// the *most recent* window of each node's history — exactly what a
// post-mortem wants. Dumps are deterministic JSON (obs/json.h) and are
// triggered three ways: on demand (dump()/dump_to_file()), automatically on
// crash injection (FaultSchedule), and on RPC-deadline expiry bursts
// (cluster::HealthMonitor). tools/health_report consumes the dump offline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace hpres::obs {

/// Compact event vocabulary. Keep this list append-only: dumps carry the
/// symbolic name, but `code` fields in records reference these values.
enum class FlightEventType : std::uint8_t {
  kOpStart = 0,     ///< client op admitted (code: 0 = set, 1 = get)
  kOpEnd = 1,       ///< client op done (a = latency_ns, b = degraded flag)
  kRpcTimeout = 2,  ///< guarded call attempt hit its deadline (a = timeout_ns,
                    ///< b = calling node)
  kRpcRetry = 3,    ///< guarded call re-sent after a timeout (b = caller)
  kDegraded = 4,    ///< op needed failure handling (b = client node)
  kFailover = 5,    ///< alternate-fragment fetch after a failed slot
  kFallback = 6,    ///< CD get retried via the server path
  kHedgeFired = 7,  ///< hedge fetch issued against this node (b = client)
  kHedgeWon = 8,    ///< hedge fetch made the decode set (b = client)
  kRepairPhase = 9, ///< repair phase done (code: 0 probe, 1 fetch, 2 decode,
                    ///< 3 replace; a = phase duration ns)
  kQueueDepth = 10, ///< periodic snapshot (a = handler queue, b = inbox)
  kNetDrop = 11,    ///< fabric dropped a message involving this node
                    ///< (a = payload bytes, code: 0 down, 1 injected loss)
  kHealthState = 12,///< detector transition (a = new state, b = old state)
  kDump = 13,       ///< a dump was taken (a = trigger ordinal)
};

/// Symbolic name used in dumps ("op_start", "rpc_timeout", ...).
[[nodiscard]] const char* flight_event_name(FlightEventType type) noexcept;

/// One recorded event. 24 bytes; `a`/`b`/`code` meanings per event type
/// (see FlightEventType comments).
struct FlightRecord {
  SimTime t_ns = 0;
  std::uint64_t a = 0;
  std::uint32_t b = 0;
  FlightEventType type = FlightEventType::kOpStart;
  std::uint8_t code = 0;
  std::uint16_t pad = 0;
};

class FlightRecorder {
 public:
  /// `ring_size` events retained per node (rounded up to 1 minimum).
  explicit FlightRecorder(std::size_t ring_size = kDefaultRingSize)
      : ring_size_(ring_size == 0 ? 1 : ring_size) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr std::size_t kDefaultRingSize = 256;

  /// Pre-allocates rings for nodes [0, n). Called once at wiring time
  /// (cluster setup), never on the record path. Growing keeps existing
  /// ring contents.
  void ensure_nodes(std::size_t n);

  /// Human label for a node in dumps ("server0", "client3"); defaults to
  /// "nodeN". Implies ensure_nodes(node + 1).
  void set_node_label(std::size_t node, std::string label);

  /// Hot path: appends one event to `node`'s ring. O(1), allocation-free;
  /// events for unknown nodes are counted in dropped_records() and
  /// otherwise ignored (never a crash on the hot path).
  void record(SimTime t_ns, std::size_t node, FlightEventType type,
              std::uint64_t a = 0, std::uint32_t b = 0,
              std::uint8_t code = 0) noexcept {
    if (!enabled_) return;
    if (node >= rings_.size()) {
      ++dropped_records_;
      return;
    }
    Ring& ring = rings_[node];
    ring.buf[ring.written % ring_size_] =
        FlightRecord{t_ns, a, b, type, code, 0};
    ++ring.written;
  }

  void set_enabled(bool e) noexcept { enabled_ = e; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] std::size_t ring_size() const noexcept { return ring_size_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return rings_.size();
  }
  /// Events ever recorded for `node` (>= ring_size means the ring wrapped).
  [[nodiscard]] std::uint64_t written(std::size_t node) const noexcept {
    return node < rings_.size() ? rings_[node].written : 0;
  }
  /// Events aimed at nodes the recorder was never sized for.
  [[nodiscard]] std::uint64_t dropped_records() const noexcept {
    return dropped_records_;
  }

  /// Fixed memory bound: ring payload bytes currently reserved. Pure
  /// function of (nodes, ring_size) — recording any number of events never
  /// changes it (asserted by tests).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return rings_.size() * ring_size_ * sizeof(FlightRecord);
  }

  /// Chronological (oldest-first) snapshot of `node`'s retained events.
  [[nodiscard]] std::vector<FlightRecord> events(std::size_t node) const;

  /// Deterministic shard merge: folds `child`'s retained records into this
  /// recorder's rings and drains the child. Per node, the two retained
  /// histories are merge-sorted by timestamp — this recorder's records
  /// (shards already absorbed, in ascending shard order) win ties, giving
  /// the canonical shard-then-timestamp order — and only the newest
  /// ring_size records survive, preserving freshest-window semantics.
  /// `written` totals and dropped_records accumulate so wrap accounting
  /// stays truthful. Safe to call repeatedly (mid-run crash dumps, then
  /// again at teardown): a drained child contributes nothing.
  void absorb(FlightRecorder& child);

  /// Deterministic JSON dump of every node's retained events, oldest first,
  /// under a top-level "flight" object. `reason` names the trigger
  /// ("crash", "timeout-burst", "finalize", ...). `now_ns` stamps the dump.
  [[nodiscard]] std::string dump(std::string_view reason,
                                 SimTime now_ns) const;

  /// Default file target for automatic dump triggers; empty disables them.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& dump_path() const noexcept {
    return dump_path_;
  }

  /// Writes dump() to `dump_path()` (or an explicit override); false when
  /// no path is set or on I/O failure. Later triggers overwrite earlier
  /// dumps — the freshest window wins, matching post-mortem semantics.
  bool dump_to_file(std::string_view reason, SimTime now_ns,
                    const std::string& path_override = {});

  /// Number of dumps successfully written so far.
  [[nodiscard]] std::uint64_t dumps_written() const noexcept {
    return dumps_written_;
  }

 private:
  struct Ring {
    std::vector<FlightRecord> buf;  ///< fixed capacity == ring_size_
    std::uint64_t written = 0;
    std::string label;
  };

  std::size_t ring_size_;
  std::vector<Ring> rings_;
  std::string dump_path_;
  std::uint64_t dropped_records_ = 0;
  std::uint64_t dumps_written_ = 0;
  bool enabled_ = true;
};

}  // namespace hpres::obs
