// Prometheus text-exposition exporter for MetricsRegistry.
//
// Renders every registered metric in the Prometheus 0.0.4 text format:
// counters and gauges become scalar samples with {component,node,op} labels,
// latency histograms become summaries (quantile="0.5/0.95/0.99/0.999"
// series plus _sum and _count, all in nanoseconds). Metric names are
// sanitized to the Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*, dots and
// slashes to underscores) and prefixed "hpres_"; label values are escaped
// per the exposition spec (backslash, double quote, newline).
//
// Output order matches MetricsRegistry::to_json() (lexicographic map
// order), so same-seed runs export byte-identical files.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace hpres::obs {

/// Sanitized Prometheus metric name: "hpres_" + name with every character
/// outside [a-zA-Z0-9_:] replaced by '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Writes reg.to_prometheus() to `path`; false on I/O failure.
bool write_prometheus(const MetricsRegistry& reg, const std::string& path);

}  // namespace hpres::obs
