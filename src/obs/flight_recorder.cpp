#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>

#include "obs/json.h"

namespace hpres::obs {

const char* flight_event_name(FlightEventType type) noexcept {
  switch (type) {
    case FlightEventType::kOpStart: return "op_start";
    case FlightEventType::kOpEnd: return "op_end";
    case FlightEventType::kRpcTimeout: return "rpc_timeout";
    case FlightEventType::kRpcRetry: return "rpc_retry";
    case FlightEventType::kDegraded: return "degraded";
    case FlightEventType::kFailover: return "failover";
    case FlightEventType::kFallback: return "fallback";
    case FlightEventType::kHedgeFired: return "hedge_fired";
    case FlightEventType::kHedgeWon: return "hedge_won";
    case FlightEventType::kRepairPhase: return "repair_phase";
    case FlightEventType::kQueueDepth: return "queue_depth";
    case FlightEventType::kNetDrop: return "net_drop";
    case FlightEventType::kHealthState: return "health_state";
    case FlightEventType::kDump: return "dump";
  }
  return "unknown";
}

void FlightRecorder::ensure_nodes(std::size_t n) {
  if (n <= rings_.size()) return;
  const std::size_t old = rings_.size();
  rings_.resize(n);
  for (std::size_t i = old; i < n; ++i) {
    rings_[i].buf.resize(ring_size_);
    rings_[i].label = "node" + std::to_string(i);
  }
}

void FlightRecorder::set_node_label(std::size_t node, std::string label) {
  ensure_nodes(node + 1);
  rings_[node].label = std::move(label);
}

std::vector<FlightRecord> FlightRecorder::events(std::size_t node) const {
  std::vector<FlightRecord> out;
  if (node >= rings_.size()) return out;
  const Ring& ring = rings_[node];
  const std::uint64_t kept =
      ring.written < ring_size_ ? ring.written : ring_size_;
  out.reserve(kept);
  // Oldest retained record sits at written % ring_size_ once wrapped.
  const std::uint64_t start = ring.written - kept;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring.buf[(start + i) % ring_size_]);
  }
  return out;
}

void FlightRecorder::absorb(FlightRecorder& child) {
  if (&child == this) return;
  ensure_nodes(child.rings_.size());
  for (std::size_t node = 0; node < child.rings_.size(); ++node) {
    Ring& mine = rings_[node];
    Ring& theirs = child.rings_[node];
    if (theirs.written > 0) {
      const std::vector<FlightRecord> a = events(node);
      const std::vector<FlightRecord> b = child.events(node);
      std::vector<FlightRecord> merged;
      merged.reserve(a.size() + b.size());
      // std::merge is stable and prefers the first range on ties: records
      // already absorbed (lower-rank shards) precede the child's at equal
      // timestamps — the canonical shard-then-timestamp order.
      std::merge(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged),
                 [](const FlightRecord& x, const FlightRecord& y) {
                   return x.t_ns < y.t_ns;
                 });
      // Keep the newest ring_size_ records and rebuild the ring so that
      // events() reconstructs exactly this retained window.
      const std::uint64_t total = mine.written + theirs.written;
      const std::size_t kept = std::min(merged.size(),
                                        static_cast<std::size_t>(ring_size_));
      const std::size_t drop = merged.size() - kept;
      const std::uint64_t start = total >= kept ? total - kept : 0;
      for (std::size_t i = 0; i < kept; ++i) {
        mine.buf[(start + i) % ring_size_] = merged[drop + i];
      }
      mine.written = total;
      theirs.written = 0;
    }
  }
  dropped_records_ += child.dropped_records_;
  child.dropped_records_ = 0;
}

std::string FlightRecorder::dump(std::string_view reason,
                                 SimTime now_ns) const {
  std::string out;
  out.reserve(256 + rings_.size() * ring_size_ * 64);
  out += "{\"flight\":{\"version\":1,\"reason\":";
  json::append_string(out, reason);
  out += ",\"dumped_at_ns\":";
  json::append_i64(out, now_ns);
  out += ",\"ring_size\":";
  json::append_u64(out, ring_size_);
  out += ",\"dropped_records\":";
  json::append_u64(out, dropped_records_);
  out += ",\"nodes\":[";
  for (std::size_t node = 0; node < rings_.size(); ++node) {
    if (node != 0) out.push_back(',');
    const Ring& ring = rings_[node];
    out += "\n{\"node\":";
    json::append_u64(out, node);
    out += ",\"label\":";
    json::append_string(out, ring.label);
    out += ",\"written\":";
    json::append_u64(out, ring.written);
    out += ",\"events\":[";
    bool first = true;
    for (const FlightRecord& rec : events(node)) {
      if (!first) out.push_back(',');
      first = false;
      out += "\n{\"t\":";
      json::append_i64(out, rec.t_ns);
      out += ",\"e\":";
      json::append_string(out, flight_event_name(rec.type));
      out += ",\"a\":";
      json::append_u64(out, rec.a);
      out += ",\"b\":";
      json::append_u64(out, rec.b);
      out += ",\"c\":";
      json::append_u64(out, rec.code);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "\n]}}\n";
  return out;
}

bool FlightRecorder::dump_to_file(std::string_view reason, SimTime now_ns,
                                  const std::string& path_override) {
  const std::string& path = path_override.empty() ? dump_path_ : path_override;
  if (path.empty()) return false;
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << dump(reason, now_ns);
  if (!file.good()) return false;
  ++dumps_written_;
  return true;
}

}  // namespace hpres::obs
