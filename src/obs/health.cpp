#include "obs/health.h"

#include <algorithm>

namespace hpres::obs {
namespace {

[[nodiscard]] bool is_flagged(NodeHealthState s) noexcept {
  return s == NodeHealthState::kGraySlow || s == NodeHealthState::kGrayLossy ||
         s == NodeHealthState::kDown;
}

/// Clear kind that ends a given onset kind's active interval.
[[nodiscard]] bool clears(FaultKind onset, FaultKind clear) noexcept {
  switch (onset) {
    case FaultKind::kCrash: return clear == FaultKind::kRestart;
    case FaultKind::kSlowdown: return clear == FaultKind::kSlowdownClear;
    case FaultKind::kLoss: return clear == FaultKind::kLossClear;
    default: return false;
  }
}

[[nodiscard]] bool is_onset(FaultKind k) noexcept {
  return k == FaultKind::kCrash || k == FaultKind::kSlowdown ||
         k == FaultKind::kLoss;
}

}  // namespace

const char* node_health_state_name(NodeHealthState s) noexcept {
  switch (s) {
    case NodeHealthState::kHealthy: return "healthy";
    case NodeHealthState::kSuspect: return "suspect";
    case NodeHealthState::kGraySlow: return "gray_slow";
    case NodeHealthState::kGrayLossy: return "gray_lossy";
    case NodeHealthState::kDown: return "down";
  }
  return "unknown";
}

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kSlowdownClear: return "slowdown_clear";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kLossClear: return "loss_clear";
  }
  return "unknown";
}

HealthWindow HealthSignals::take_window(std::size_t node) {
  HealthWindow out;
  if (node >= cum_.size()) return out;
  const HealthWindow& c = cum_[node];
  HealthWindow& l = last_[node];
  out.responses = c.responses - l.responses;
  out.timeouts = c.timeouts - l.timeouts;
  out.retries = c.retries - l.retries;
  out.drops = c.drops - l.drops;
  out.over_slo = c.over_slo - l.over_slo;
  out.rtt_sum_ns = c.rtt_sum_ns - l.rtt_sum_ns;
  l = c;
  return out;
}

void HealthDetector::transition(SimTime now_ns, std::size_t node,
                                NodeHealthState to) {
  NodeState& st = nodes_[node];
  if (st.state == to) return;
  transitions_.push_back(
      HealthTransition{now_ns, node, st.state, to, st.score, median_});
  st.state = to;
}

std::size_t HealthDetector::tick(SimTime now_ns,
                                 std::span<const HealthSample> samples) {
  ++ticks_;
  const std::size_t n = std::min(samples.size(), nodes_.size());
  const std::size_t before = transitions_.size();

  // Pass 1: window scores, then the cluster median over up nodes. The
  // median is the detector's notion of "normal right now": a node is only
  // gray-slow *relative* to it, so a uniformly slow cluster (every score
  // rises together) keeps every node within slow_ratio of the median and
  // nobody gets flagged.
  std::vector<double> up_scores;
  up_scores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const HealthSample& s = samples[i];
    const double rtt_us =
        s.window.responses > 0
            ? units::to_us(s.window.rtt_sum_ns) /
                  static_cast<double>(s.window.responses)
            : 0.0;
    nodes_[i].score =
        (1.0 + static_cast<double>(s.queue_depth)) * (1.0 + rtt_us);
    if (s.up) up_scores.push_back(nodes_[i].score);
  }
  if (!up_scores.empty()) {
    std::nth_element(up_scores.begin(),
                     up_scores.begin() + up_scores.size() / 2,
                     up_scores.end());
    median_ = up_scores[up_scores.size() / 2];
  }

  // Pass 2: per-node evidence + hysteresis state machine.
  for (std::size_t i = 0; i < n; ++i) {
    const HealthSample& s = samples[i];
    NodeState& st = nodes_[i];

    if (!s.up) {
      // Membership already applied its own detection lag; mirror it
      // immediately rather than re-debouncing a definitive signal.
      st.evidence_streak = 0;
      st.clean_streak = 0;
      transition(now_ns, i, NodeHealthState::kDown);
      continue;
    }

    // Loss evidence: failed deliveries out of everything attempted against
    // this node. Drops and the timeouts they cause both count — the rate
    // overshoots a little, which only helps detection.
    const std::uint64_t trials =
        s.window.responses + s.window.timeouts + s.window.drops;
    const std::uint64_t failures = s.window.timeouts + s.window.drops;

    // No data at all this window: abstain and *hold* the current state and
    // streaks. An empty window is not evidence of health — a badly lossy
    // node parks every closed-loop caller on its RPC deadline, so the
    // windows between drop bursts are silent. Treating silence as "clean"
    // would reset the evidence streak and the flag_after hysteresis could
    // never accumulate.
    if (trials == 0 && s.queue_depth == 0) continue;
    const bool lossy =
        trials >= params_.min_samples &&
        static_cast<double>(failures) >
            params_.lossy_rate * static_cast<double>(trials);

    // Slow evidence: relative outlier with an absolute floor.
    const bool enough_rtt = s.window.responses >= params_.min_samples;
    const bool slow = enough_rtt &&
                      st.score > params_.slow_ratio * median_ &&
                      st.score > params_.slow_floor;

    // SLO burn-rate: both the fast and slow EWMA of the over-SLO fraction
    // must burn the budget at burn_threshold x to count (multi-window rule
    // — a single hiccup moves the fast EWMA but not the slow one).
    if (s.window.responses > 0) {
      const double ratio = static_cast<double>(s.window.over_slo) /
                           static_cast<double>(s.window.responses);
      st.burn_fast = (1.0 - params_.burn_fast_alpha) * st.burn_fast +
                     params_.burn_fast_alpha * ratio;
      st.burn_slow = (1.0 - params_.burn_slow_alpha) * st.burn_slow +
                     params_.burn_slow_alpha * ratio;
    }
    const double burn_limit = params_.burn_threshold * params_.slo_budget;
    const bool burning = enough_rtt && st.burn_fast > burn_limit &&
                         st.burn_slow > burn_limit;

    const bool evidence = lossy || slow || burning;
    const NodeHealthState flag = lossy ? NodeHealthState::kGrayLossy
                                       : NodeHealthState::kGraySlow;

    if (evidence) {
      ++st.evidence_streak;
      st.clean_streak = 0;
      st.pending = flag;
      if (is_flagged(st.state)) {
        // Already flagged: refresh the kind if the dominant evidence
        // changed (e.g. a lossy node that is now merely slow).
        transition(now_ns, i, flag);
      } else if (st.evidence_streak >= params_.flag_after) {
        transition(now_ns, i, flag);
      } else {
        transition(now_ns, i, NodeHealthState::kSuspect);
      }
    } else {
      ++st.clean_streak;
      st.evidence_streak = 0;
      if (st.state == NodeHealthState::kSuspect) {
        transition(now_ns, i, NodeHealthState::kHealthy);
      } else if (is_flagged(st.state) &&
                 st.clean_streak >= params_.clear_after) {
        transition(now_ns, i, NodeHealthState::kHealthy);
      }
    }
  }
  return transitions_.size() - before;
}

DetectionReport analyze_detection(
    const FaultLog& faults, std::span<const HealthTransition> transitions,
    SimTime end_ns, SimDur grace_ns) {
  DetectionReport report;
  const auto& stamps = faults.stamps();

  for (std::size_t i = 0; i < stamps.size(); ++i) {
    const FaultStamp& onset = stamps[i];
    if (!is_onset(onset.kind)) continue;
    SimTime clear_at = end_ns;
    for (std::size_t j = i + 1; j < stamps.size(); ++j) {
      if (stamps[j].node == onset.node && clears(onset.kind, stamps[j].kind)) {
        clear_at = stamps[j].t_ns + grace_ns;
        break;
      }
    }
    FaultDetection det;
    det.fault = onset;
    for (const HealthTransition& tr : transitions) {
      if (tr.node != onset.node || !is_flagged(tr.to)) continue;
      if (tr.t_ns < onset.t_ns || tr.t_ns > clear_at) continue;
      det.detected = true;
      det.detected_at_ns = tr.t_ns;
      det.latency_ns = tr.t_ns - onset.t_ns;
      det.flagged_as = tr.to;
      break;
    }
    det.detected ? ++report.detected : ++report.missed;
    report.faults.push_back(det);
  }

  // False positives: a healthy/suspect -> flagged transition on a node with
  // no active fault covering that instant.
  for (const HealthTransition& tr : transitions) {
    if (!is_flagged(tr.to) || is_flagged(tr.from)) continue;
    bool active = false;
    for (std::size_t i = 0; i < stamps.size() && !active; ++i) {
      const FaultStamp& onset = stamps[i];
      if (!is_onset(onset.kind) || onset.node != tr.node) continue;
      if (tr.t_ns < onset.t_ns) continue;
      SimTime clear_at = end_ns;
      for (std::size_t j = i + 1; j < stamps.size(); ++j) {
        if (stamps[j].node == onset.node &&
            clears(onset.kind, stamps[j].kind)) {
          clear_at = stamps[j].t_ns + grace_ns;
          break;
        }
      }
      active = tr.t_ns <= clear_at;
    }
    if (!active) ++report.false_positives;
  }
  return report;
}

}  // namespace hpres::obs
