// Always-on per-op latency percentile engine with tail sampling.
//
// One LatencyHistogram (log-bucketed, HDR-style: exact counts, ≤1/64
// relative value error) per {op, scheme, degraded} label set gives exact
// count-preserving p50/p95/p99/p99.9/max at O(1) memory per label — safe to
// leave enabled for every op of every run, independent of whether span
// tracing is on.
//
// Tail sampling: when span tracing IS on, keeping full span detail for
// every op is wasteful — the interesting ops are the slow ones. The
// recorder remembers the trace ids of (a) every op slower than a fixed
// threshold (bounded by kMaxThresholdKept per label) and (b) the slowest-N
// reservoir per label (a min-heap). At run end the harness intersects the
// tracer's tagged events with kept_traces() (Tracer::retain_traces), so the
// exported JSON carries full causal detail only for tail ops while
// histograms still cover 100% of ops. Memory stays O(1) per label set by
// construction; a test asserts it.
//
// Determinism: recording performs no simulation work and no RNG; the
// reservoir is a pure function of the recorded (latency, trace_id) stream.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"

namespace hpres::obs {

/// Label set of one percentile series.
struct LatencyKey {
  std::string op;      ///< "set", "get", "del"
  std::string scheme;  ///< engine name ("era-ce-cd", "rep-async", ...)
  bool degraded = false;

  auto operator<=>(const LatencyKey&) const = default;
};

/// One rendered table row (value-type snapshot, safe to keep after the
/// recorder is gone).
struct LatencyRow {
  LatencyKey key;
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t max_ns = 0;
};

class LatencyRecorder {
 public:
  /// Hard cap on threshold-kept trace ids per label, so a mis-set low
  /// threshold cannot grow memory without bound.
  static constexpr std::size_t kMaxThresholdKept = 4096;

  struct TailParams {
    SimDur threshold_ns = 0;      ///< keep traces slower than this (0 = off)
    std::size_t keep_slowest = 0;  ///< slowest-N reservoir size (0 = off)
  };

  void set_tail(TailParams p) noexcept { tail_ = p; }
  [[nodiscard]] const TailParams& tail() const noexcept { return tail_; }

  /// Records one op latency. `trace_id` 0 (tracing off) records into the
  /// histogram but never into the tail sets.
  void record(std::string_view op, std::string_view scheme, bool degraded,
              SimDur latency_ns, std::uint64_t trace_id = 0);

  /// Histogram for a label set; nullptr if nothing recorded under it.
  [[nodiscard]] const LatencyHistogram* histogram(const LatencyKey& key) const;

  /// Snapshot of every label set, sorted by key (deterministic).
  [[nodiscard]] std::vector<LatencyRow> rows() const;

  /// Union of tail-kept trace ids across all labels (threshold hits plus
  /// every slowest-N reservoir).
  [[nodiscard]] std::unordered_set<std::uint64_t> kept_traces() const;

  [[nodiscard]] std::size_t label_count() const noexcept {
    return series_.size();
  }
  /// Tail-kept ids under one label (tests assert the O(1) memory bound).
  [[nodiscard]] std::size_t kept_count(const LatencyKey& key) const;

  /// Merges counts and tail sets of `other` into this recorder.
  void merge(const LatencyRecorder& other);

  /// Drops every series (harnesses reset between preload and measurement).
  void clear() noexcept { series_.clear(); }

 private:
  struct Series {
    LatencyHistogram hist;
    /// Min-heap on latency: root = fastest kept op, evicted first.
    std::vector<std::pair<SimDur, std::uint64_t>> slowest;
    std::vector<std::uint64_t> over_threshold;
  };

  void keep_tail(Series& s, SimDur latency_ns, std::uint64_t trace_id);

  std::map<LatencyKey, Series> series_;
  TailParams tail_;
};

}  // namespace hpres::obs
