// Unified metrics registry: named counters, gauges and latency histograms
// with {component, node, op} labels, snapshotting to deterministic,
// stably-ordered JSON.
//
// Two registration styles:
//   * owned   — registry.counter(...)/gauge(...)/histogram(...) return a
//               stable reference the caller increments directly;
//   * bound   — bind_*(...) points the registry at a live source (a field
//               of an existing stats struct, or a closure). Sources are read
//               lazily at snapshot time; capture() freezes the current
//               readings into owned values and drops the bindings, so a
//               source may be destroyed after capture() (benchmarks tear
//               down one Testbench per experiment point).
//
// Snapshot order is the lexicographic (name, component, node, op) order of
// a std::map, independent of registration order — byte-identical JSON
// across same-seed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace hpres::obs {

struct MetricLabels {
  std::string component;
  std::string node;
  std::string op;

  friend auto operator<=>(const MetricLabels&, const MetricLabels&) = default;
};

/// Monotonically increasing owned metric.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time owned metric.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t d) noexcept { value_ += d; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

class MetricsRegistry {
 public:
  using Reader = std::function<std::int64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned metrics; references are stable for the registry's lifetime.
  /// Re-registering an existing (name, labels) returns the same object.
  Counter& counter(std::string name, MetricLabels labels);
  Gauge& gauge(std::string name, MetricLabels labels);
  LatencyHistogram& histogram(std::string name, MetricLabels labels);

  /// Bound metrics: read `*src` / `fn()` at snapshot/capture time. The
  /// source must stay alive until capture() or the final snapshot.
  void bind_counter(std::string name, MetricLabels labels,
                    const std::uint64_t* src);
  void bind_counter(std::string name, MetricLabels labels,
                    const std::int64_t* src);
  void bind_counter(std::string name, MetricLabels labels,
                    const std::uint32_t* src);
  void bind_gauge(std::string name, MetricLabels labels, Reader fn);
  /// Pointer forms for watermark/level fields living in stats structs —
  /// gauge semantics (a point-in-time level, not a monotone count).
  void bind_gauge(std::string name, MetricLabels labels,
                  const std::uint64_t* src);
  void bind_gauge(std::string name, MetricLabels labels,
                  const std::int64_t* src);
  void bind_gauge(std::string name, MetricLabels labels,
                  const std::uint32_t* src);
  void bind_histogram(std::string name, MetricLabels labels,
                      const LatencyHistogram* src);

  /// Freezes every bound metric at its current reading and drops the
  /// binding (the source may then be destroyed). Owned metrics unaffected.
  void capture();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Current scalar reading of a counter/gauge, nullopt if absent or a
  /// histogram. For tests and harness cross-checks.
  [[nodiscard]] std::optional<std::int64_t> value_of(
      std::string_view name, const MetricLabels& labels) const;

  /// Deterministic, stably-ordered JSON snapshot of every metric.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text-exposition snapshot: counters and gauges as scalar
  /// samples, histograms as summaries (quantile series + _sum + _count).
  /// Defined in obs/prometheus.cpp; same deterministic ordering as
  /// to_json().
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Key {
    std::string name;
    MetricLabels labels;

    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct Entry {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    LatencyHistogram hist;
    Reader reader;                              // bound scalar source
    const LatencyHistogram* hist_src = nullptr; // bound histogram source
  };

  Entry& upsert(std::string name, MetricLabels labels, Kind kind);
  [[nodiscard]] static std::int64_t scalar_reading(const Entry& e);

  std::map<Key, Entry> entries_;
};

}  // namespace hpres::obs
