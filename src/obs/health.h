// Online gray-failure detection: per-node health signals, an anomaly
// detector with hysteresis and SLO burn-rate rules, and ground-truth
// bookkeeping that turns fault injection into measurable detection
// latency / false-positive metrics.
//
// Split of responsibilities:
//   HealthSignals  — passive cumulative counters fed from the hot paths
//                    (rpc timeouts/retries/responses with RTT, fabric
//                    drops); windowed deltas are taken per detector tick.
//   HealthDetector — pure decision function: tick(now, samples) folds the
//                    window into per-node scores, compares each node
//                    against the *cluster median* (a node is gray-slow
//                    only relative to its peers — an all-slow cluster has
//                    no outlier and raises no flag), applies loss-rate and
//                    SLO burn-rate rules, and runs flag_after/clear_after
//                    hysteresis so one bad window can't flap the state.
//   FaultLog       — ground-truth stamps written by FaultSchedule at
//                    injection time; analyze_detection() joins it against
//                    the detector's transition log to produce per-fault
//                    detection latency, missed faults and false positives.
//
// Everything here is observation-only: no simulated time is consumed and
// no RNG is drawn, so a run with the detector attached is byte-identical
// to one without (asserted by the determinism suite).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace hpres::obs {

// ---------------------------------------------------------------------------
// Signals

/// One node's windowed activity between two detector ticks (deltas of the
/// cumulative HealthSignals counters).
struct HealthWindow {
  std::uint64_t responses = 0;   ///< guarded replies that arrived
  std::uint64_t timeouts = 0;    ///< guarded attempts that hit the deadline
  std::uint64_t retries = 0;     ///< re-sent attempts after a timeout
  std::uint64_t drops = 0;       ///< fabric messages lost to/from this node
  std::uint64_t over_slo = 0;    ///< responses slower than the SLO
  SimDur rtt_sum_ns = 0;         ///< sum of observed response RTTs
};

/// Cumulative per-node counters updated from the rpc/net hot paths.
/// Indices are *server indices* (server NodeId == index by convention).
class HealthSignals {
 public:
  /// `slo_ns` classifies each observed RTT for the burn-rate rule.
  explicit HealthSignals(std::size_t nodes, SimDur slo_ns)
      : cum_(nodes), last_(nodes), slo_ns_(slo_ns) {}

  void on_timeout(std::size_t node) noexcept {
    if (node < cum_.size()) ++cum_[node].timeouts;
  }
  void on_retry(std::size_t node) noexcept {
    if (node < cum_.size()) ++cum_[node].retries;
  }
  void on_response(std::size_t node, SimDur rtt_ns) noexcept {
    if (node >= cum_.size()) return;
    HealthWindow& c = cum_[node];
    ++c.responses;
    c.rtt_sum_ns += rtt_ns;
    if (rtt_ns > slo_ns_) ++c.over_slo;
  }
  void on_drop(std::size_t node) noexcept {
    if (node < cum_.size()) ++cum_[node].drops;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return cum_.size(); }
  [[nodiscard]] SimDur slo_ns() const noexcept { return slo_ns_; }
  [[nodiscard]] const HealthWindow& cumulative(std::size_t node) const {
    return cum_.at(node);
  }

  /// Delta since the previous take_window() call for `node`, then advances
  /// the window mark. Called once per node per detector tick.
  [[nodiscard]] HealthWindow take_window(std::size_t node);

 private:
  std::vector<HealthWindow> cum_;
  std::vector<HealthWindow> last_;
  SimDur slo_ns_;
};

// ---------------------------------------------------------------------------
// Detector

enum class NodeHealthState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,    ///< evidence seen, hysteresis streak not yet reached
  kGraySlow = 2,   ///< relative-outlier latency / SLO burn confirmed
  kGrayLossy = 3,  ///< timeout+drop rate over threshold confirmed
  kDown = 4,       ///< membership says the node is out
};

[[nodiscard]] const char* node_health_state_name(NodeHealthState s) noexcept;

struct HealthParams {
  /// Evidence thresholds.
  double slow_ratio = 3.0;     ///< score > ratio x cluster median → slow
  double slow_floor = 4.0;     ///< and score must also clear this absolute
                               ///< floor, so near-idle jitter never flags
  double lossy_rate = 0.10;    ///< (timeouts+drops)/attempts above this → lossy
  std::uint64_t min_samples = 8;  ///< windows with fewer attempts abstain

  /// SLO burn-rate rule (multi-window): the fraction of over-SLO responses
  /// is tracked by a fast and a slow EWMA; both must burn the error budget
  /// faster than `burn_threshold` x `slo_budget` to count as evidence.
  double slo_budget = 0.01;      ///< tolerated over-SLO response fraction
  double burn_threshold = 10.0;  ///< alert at 10x budget burn
  double burn_fast_alpha = 0.5;  ///< fast window EWMA smoothing
  double burn_slow_alpha = 0.1;  ///< slow window EWMA smoothing

  /// Hysteresis (in detector ticks).
  std::uint32_t flag_after = 2;   ///< consecutive evidence ticks to flag
  std::uint32_t clear_after = 4;  ///< consecutive clean ticks to unflag
};

/// Per-node per-tick input assembled by the monitor.
struct HealthSample {
  HealthWindow window;
  std::uint32_t queue_depth = 0;  ///< instantaneous handler queue depth
  bool up = true;                 ///< membership's detected-alive bit
};

struct HealthTransition {
  SimTime t_ns = 0;
  std::size_t node = 0;
  NodeHealthState from = NodeHealthState::kHealthy;
  NodeHealthState to = NodeHealthState::kHealthy;
  double score = 0.0;        ///< node's score at the transition tick
  double median = 0.0;       ///< cluster median score that tick
};

class HealthDetector {
 public:
  HealthDetector(std::size_t nodes, HealthParams params = {})
      : params_(params), nodes_(nodes) {}

  /// Folds one window of samples (one entry per node) into the per-node
  /// state machines. Returns the number of state transitions this tick.
  std::size_t tick(SimTime now_ns, std::span<const HealthSample> samples);

  [[nodiscard]] NodeHealthState state(std::size_t node) const {
    return nodes_.at(node).state;
  }
  /// Latest composite badness score ((1+queue)(1+rtt_us) over the window).
  [[nodiscard]] double score(std::size_t node) const {
    return nodes_.at(node).score;
  }
  [[nodiscard]] double cluster_median() const noexcept { return median_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] const std::vector<HealthTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  [[nodiscard]] const HealthParams& params() const noexcept { return params_; }

 private:
  struct NodeState {
    NodeHealthState state = NodeHealthState::kHealthy;
    double score = 1.0;
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    std::uint32_t evidence_streak = 0;
    std::uint32_t clean_streak = 0;
    NodeHealthState pending = NodeHealthState::kHealthy;  ///< flag to apply
  };

  void transition(SimTime now_ns, std::size_t node, NodeHealthState to);

  HealthParams params_;
  std::vector<NodeState> nodes_;
  std::vector<HealthTransition> transitions_;
  double median_ = 1.0;
  std::uint64_t ticks_ = 0;
};

// ---------------------------------------------------------------------------
// Ground truth and the closed loop

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kRestart = 1,
  kSlowdown = 2,
  kSlowdownClear = 3,
  kLoss = 4,
  kLossClear = 5,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k) noexcept;

struct FaultStamp {
  SimTime t_ns = 0;
  std::size_t node = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// Append-only ground-truth log; FaultSchedule stamps every injection here.
/// Deliberately *not* wired into the flight recorder: the post-mortem tools
/// must reconstruct the faulty node from symptoms alone.
class FaultLog {
 public:
  void stamp(SimTime t_ns, std::size_t node, FaultKind kind) {
    stamps_.push_back(FaultStamp{t_ns, node, kind});
  }
  [[nodiscard]] const std::vector<FaultStamp>& stamps() const noexcept {
    return stamps_;
  }
  [[nodiscard]] bool empty() const noexcept { return stamps_.empty(); }

 private:
  std::vector<FaultStamp> stamps_;
};

/// One injected fault joined against the detector's transition log.
struct FaultDetection {
  FaultStamp fault;
  bool detected = false;
  SimTime detected_at_ns = 0;
  SimDur latency_ns = 0;                 ///< detected_at - injected_at
  NodeHealthState flagged_as = NodeHealthState::kHealthy;
};

struct DetectionReport {
  std::vector<FaultDetection> faults;  ///< one per onset stamp
  std::size_t detected = 0;
  std::size_t missed = 0;
  /// Flag transitions for nodes with no active fault at that instant.
  std::size_t false_positives = 0;
};

/// Joins ground truth with detector transitions over [0, end_ns]. A fault
/// counts as detected when the node transitions into a flagged state
/// (kGraySlow/kGrayLossy/kDown — kSuspect is internal) at or after the
/// injection and before the fault clears (or `end_ns` when it never does).
/// `grace_ns` extends each fault's attribution window past its clear
/// stamp: symptoms propagate on a delay (a message dropped just before the
/// clear only surfaces as a timeout one RPC deadline later), so a flag
/// raised inside the grace window still belongs to the fault — both for
/// detection credit and for not counting it as a false positive. Size it
/// as the full RPC deadline ladder plus a couple of detector windows.
[[nodiscard]] DetectionReport analyze_detection(
    const FaultLog& faults, std::span<const HealthTransition> transitions,
    SimTime end_ns, SimDur grace_ns = 0);

}  // namespace hpres::obs
