#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>
#include <fstream>

namespace hpres::obs {
namespace {

void append_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c); break;
    }
  }
}

/// {component="...",node="...",op="..."} with empty labels omitted; extra
/// appends e.g. quantile="0.99".
void append_labels(std::string& out, const MetricLabels& labels,
                   std::string_view extra_key = {},
                   std::string_view extra_value = {}) {
  std::string body;
  const auto add = [&body](std::string_view k, std::string_view v) {
    if (v.empty()) return;
    if (!body.empty()) body += ",";
    body += k;
    body += "=\"";
    append_label_value(body, v);
    body += "\"";
  };
  add("component", labels.component);
  add("node", labels.node);
  add("op", labels.op);
  if (!extra_key.empty()) add(extra_key, extra_value);
  if (body.empty()) return;
  out += "{";
  out += body;
  out += "}";
}

void append_i64_line(std::string& out, const std::string& name,
                     const MetricLabels& labels, std::int64_t v,
                     std::string_view extra_key = {},
                     std::string_view extra_value = {},
                     std::string_view suffix = {}) {
  out += name;
  out += suffix;
  append_labels(out, labels, extra_key, extra_value);
  out += " ";
  out += std::to_string(v);
  out += "\n";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "hpres_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  out.reserve(entries_.size() * 160 + 64);
  std::string last_typed;  // one # TYPE line per metric name (map order
                           // groups equal names together)
  for (const auto& [key, e] : entries_) {
    const std::string name = prometheus_name(key.name);
    const char* type = e.kind == Kind::kCounter   ? "counter"
                       : e.kind == Kind::kGauge   ? "gauge"
                                                  : "summary";
    if (name != last_typed) {
      out += "# TYPE ";
      out += name;
      out += " ";
      out += type;
      out += "\n";
      last_typed = name;
    }
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        append_i64_line(out, name, key.labels, scalar_reading(e));
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h =
            e.hist_src != nullptr ? *e.hist_src : e.hist;
        append_i64_line(out, name, key.labels, h.p50(), "quantile", "0.5");
        append_i64_line(out, name, key.labels, h.p95(), "quantile", "0.95");
        append_i64_line(out, name, key.labels, h.p99(), "quantile", "0.99");
        append_i64_line(out, name, key.labels, h.quantile(0.999), "quantile",
                        "0.999");
        append_i64_line(out, name, key.labels, h.sum(), {}, {}, "_sum");
        append_i64_line(out, name, key.labels,
                        static_cast<std::int64_t>(h.count()), {}, {},
                        "_count");
        break;
      }
    }
  }
  return out;
}

bool write_prometheus(const MetricsRegistry& reg, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string body = reg.to_prometheus();
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

}  // namespace hpres::obs
