// Minimal deterministic JSON emission helpers for the observability layer.
//
// Everything here appends to a caller-owned std::string; output depends only
// on the argument values (no locales, no pointer formatting, fixed decimal
// widths), which is what lets metrics snapshots and trace files be compared
// byte-for-byte across same-seed runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/units.h"

namespace hpres::obs::json {

/// Appends `s` as a quoted, escaped JSON string.
inline void append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

inline void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

inline void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

/// Appends a double with a fixed number of decimals (deterministic within
/// one binary; never scientific notation).
inline void append_fixed(std::string& out, double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  out += buf;
}

/// Appends a nanosecond timestamp as fractional microseconds ("12.345"),
/// the unit Chrome trace_event JSON expects for ts/dur fields.
inline void append_time_us(std::string& out, SimTime ns) {
  if (ns < 0) {
    out.push_back('-');
    ns = -ns;
  }
  out += std::to_string(ns / 1000);
  const auto frac = static_cast<unsigned>(ns % 1000);
  char buf[8];
  std::snprintf(buf, sizeof buf, ".%03u", frac);
  out += buf;
}

}  // namespace hpres::obs::json
