#include "obs/sampler.h"

namespace hpres::obs {

void Sampler::start() {
  if (started_ || !tracer_->enabled() || series_.empty() || interval_ <= 0) {
    return;
  }
  started_ = true;
  sim_->spawn(run(this));
}

void Sampler::sample_once() {
  const SimTime now = sim_->now();
  for (Series& s : series_) {
    const std::int64_t v = s.read();
    s.stats.record(static_cast<double>(v));
    tracer_->counter(pid_, s.name, now, v);
  }
  ++samples_;
}

void Sampler::request_stop() {
  if (!stop_ && started_) sample_once();  // terminal flush at run end
  stop_ = true;
}

sim::Task<void> Sampler::run(Sampler* self) {
  self->sample_once();
  for (;;) {
    co_await self->sim_->delay(self->interval_);
    if (self->stop_) co_return;
    self->sample_once();
  }
}

}  // namespace hpres::obs
