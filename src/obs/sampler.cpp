#include "obs/sampler.h"

#include <algorithm>

namespace hpres::obs {

void Sampler::start() {
  if (started_ || !tracer_->enabled() || series_.empty() || interval_ <= 0) {
    return;
  }
  started_ = true;
  sim_->spawn(run(this));
}

void Sampler::sample_once() {
  const SimTime now = sim_->now();
  for (Series& s : series_) {
    const std::int64_t v = s.read();
    s.stats.record(static_cast<double>(v));
    tracer_->counter(pid_, s.name, now, v);
  }
  ++samples_;
}

void Sampler::request_stop() {
  if (!stop_ && started_) sample_once();  // terminal flush at run end
  stop_ = true;
}

sim::Task<void> Sampler::run(Sampler* self) {
  self->sample_once();
  for (;;) {
    co_await self->sim_->delay(self->interval_);
    if (self->stop_) co_return;
    self->sample_once();
  }
}

WindowSampler::~WindowSampler() {
  if (hook_armed_) runtime_->remove_quiesce_hook(hook_id_);
}

void WindowSampler::start() {
  if (hook_armed_ || series_.empty() || interval_ <= 0) return;
  // First boundary = the current quiesced instant (start() runs from the
  // main thread between runs), mirroring Sampler's immediate first sample.
  next_ = 0;
  for (std::size_t s = 0; s < runtime_->num_shards(); ++s) {
    next_ = std::max(next_, runtime_->shard(s).now());
  }
  hook_id_ = runtime_->add_quiesce_hook(
      [this](SimTime min_next) { return on_quiesce(min_next); });
  hook_armed_ = true;
}

void WindowSampler::sample_at(SimTime now) {
  for (Series& s : series_) {
    const std::int64_t v = s.read();
    s.stats.record(static_cast<double>(v));
    if (s.domain != nullptr && s.domain->enabled()) {
      s.domain->counter(s.pid, s.name, now, v);
    }
  }
  ++samples_;
}

SimTime WindowSampler::on_quiesce(SimTime min_next) {
  constexpr SimTime kNever = sim::Simulator::kNever;
  if (stopped_) return kNever;
  while (min_next != kNever && next_ <= min_next) {
    sample_at(next_);
    next_ += interval_;
  }
  // At full quiescence nothing is pending; flush() covers the final
  // partial interval.
  return min_next == kNever ? kNever : next_;
}

void WindowSampler::flush(SimTime now) {
  if (!hook_armed_ || stopped_) return;
  sample_at(now);
  stopped_ = true;
}

}  // namespace hpres::obs
