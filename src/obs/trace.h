// Span tracer on the simulator clock.
//
// Records begin/end spans, async spans, instants, flow events and counter
// samples against simulated time and serializes them as Chrome trace_event
// JSON (loadable in Perfetto / chrome://tracing). Alongside the raw events
// the tracer keeps per-(process, span-name) duration totals so harnesses can
// derive phase breakdowns (paper Figure 9) directly from the spans.
//
// Zero overhead when disabled: every recording call starts with a single
// branch on `enabled_` and returns immediately, and recording never touches
// the simulation (no delays, no RNG) — enabling tracing cannot change any
// simulated result. Trace-id allocation follows the same rule: when the
// tracer is disabled new_trace_id() returns 0 (the invalid id), so no
// TraceContext ever propagates and every downstream branch stays cold.
//
// Track conventions (Perfetto renders one lane per (pid, tid)):
//   pid — one experiment point (a Testbench); declare_process names it.
//   tid — a lane inside the point: engine op lanes (node * kLanesPerNode +
//         slot) or NIC lanes (kNicTidBase + node). Complete spans on one tid
//         must nest; concurrent activities use distinct lanes or async spans.
//
// Causal tracing: ops allocate a trace id (new_trace_id) and tag every span
// they emit with it; the id rides RPC headers (kv::Request/Response carry a
// TraceContext) through the fabric to server handlers and back. Flow events
// ("s"/"t"/"f", one triple per traced message) bind the sender's enclosing
// slice to the NIC tx slice and the receiver NIC rx slice so Perfetto draws
// client → fabric → server arrows. Tagged events can be pruned after the
// run (retain_traces) for tail sampling; per-name totals are accumulated at
// record time and are never affected by pruning.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hpres::obs {

/// Causal trace identity carried across RPC boundaries. `trace_id` names the
/// client op (0 = tracing disabled / untraced); `span_id` is the tid of the
/// emitting span (the lane whose slice encloses the send instant, so flow
/// events bind to it); `parent_span_id` is the tid of the causal parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
  /// Context for a span causally under this one, emitted on lane `tid`.
  [[nodiscard]] TraceContext child(std::uint64_t tid) const noexcept {
    return TraceContext{trace_id, tid, span_id};
  }
};

/// One completed span tagged with a trace id, as exported for critical-path
/// analysis (see obs/critical_path.h).
struct TraceSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t tid = 0;
  SimTime begin_ns = 0;
  SimDur dur_ns = 0;
  std::string name;
  std::string cat;
};

/// Aggregate of every completed span with one name within one process.
struct SpanTotal {
  std::uint64_t count = 0;
  SimDur total_ns = 0;
};

/// Min-heap allocator of dense lane indices: concurrent in-flight spans on
/// one node get distinct lanes, and freed lanes are reused lowest-first so
/// the Perfetto track list stays compact. Shared by engines (op lanes) and
/// servers (handler lanes).
class LanePool {
 public:
  [[nodiscard]] std::uint32_t acquire() {
    if (free_.empty()) return next_++;
    std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
    const std::uint32_t lane = free_.back();
    free_.pop_back();
    return lane;
  }
  void release(std::uint32_t lane) {
    free_.push_back(lane);
    std::push_heap(free_.begin(), free_.end(), std::greater<>{});
  }

 private:
  std::vector<std::uint32_t> free_;
  std::uint32_t next_ = 0;
};

class Tracer {
 public:
  /// Lanes reserved per node for concurrent in-flight operations.
  static constexpr std::uint64_t kLanesPerNode = 1024;
  /// Base tid for per-node NIC tracks (fabric send/recv serialization).
  static constexpr std::uint64_t kNicTidBase = 1'000'000;

  Tracer() = default;
  explicit Tracer(bool enabled) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Allocates a process id (one per experiment point) and, when enabled,
  /// emits the process_name metadata event Perfetto uses as the group label.
  std::uint32_t declare_process(std::string name);

  /// Fresh trace id for one client op; 0 when disabled (the invalid id, so
  /// disabled runs propagate no context). Ids are dense and allocation order
  /// is deterministic.
  [[nodiscard]] std::uint64_t new_trace_id() noexcept {
    if (!enabled_) return 0;
    const std::uint64_t id = next_trace_;
    next_trace_ += id_stride_;
    return id;
  }
  /// The next trace id that new_trace_id() would return. Benches snapshot
  /// this before a measured pass to analyze only the ops inside it.
  [[nodiscard]] std::uint64_t trace_watermark() const noexcept {
    return next_trace_;
  }
  /// Fresh flow-event id (one per traced fabric message).
  [[nodiscard]] std::uint64_t new_flow_id() noexcept {
    const std::uint64_t id = next_flow_;
    next_flow_ += id_stride_;
    return id;
  }
  /// Fresh async-span id (callers that lack a natural unique id).
  [[nodiscard]] std::uint64_t new_async_id() noexcept {
    const std::uint64_t id = next_async_;
    next_async_ += id_stride_;
    return id;
  }

  /// Partitions this tracer's id allocators into residue class `offset`
  /// modulo `stride`: trace/flow/async ids start at 1 + offset and advance
  /// by stride. Per-shard domain tracers use (shard, num_shards) so ids
  /// stay globally unique across shards without coordination; the default
  /// (0, 1) is the classic dense single-writer numbering. Call before any
  /// id is handed out.
  void set_id_space(std::uint64_t offset, std::uint64_t stride) noexcept {
    next_trace_ = 1 + offset;
    next_flow_ = 1 + offset;
    next_async_ = 1 + offset;
    id_stride_ = stride == 0 ? 1 : stride;
  }

  /// Complete span ("X") with an explicit interval. `begin_ns` may lie in
  /// the simulated future (e.g. a NIC slot reserved ahead of time).
  /// `trace_id` != 0 tags the span for causal analysis and JSON args.
  void complete(std::uint32_t pid, std::uint64_t tid, std::string_view name,
                std::string_view cat, SimTime begin_ns, SimDur dur_ns,
                std::uint64_t trace_id = 0);

  /// Async span ("b"/"e" pair keyed by `id`): overlap-safe, used for spans
  /// that interleave freely on one logical track (e.g. ARPE window waits,
  /// fabric queue waits).
  void async_span(std::uint32_t pid, std::uint64_t id, std::string_view name,
                  std::string_view cat, SimTime begin_ns, SimDur dur_ns,
                  std::uint64_t trace_id = 0);

  /// Instant event ("i").
  void instant(std::uint32_t pid, std::uint64_t tid, std::string_view name,
               std::string_view cat, SimTime ts_ns,
               std::uint64_t trace_id = 0);

  /// Flow event: `ph` is 's' (start), 't' (step) or 'f' (finish). Perfetto
  /// binds each to the slice enclosing (pid, tid, ts) and draws arrows along
  /// equal `flow_id`s. One s/t/f triple per traced message: sender lane →
  /// src NIC → dst NIC.
  void flow(char ph, std::uint32_t pid, std::uint64_t tid, SimTime ts_ns,
            std::uint64_t flow_id, std::uint64_t trace_id = 0);

  /// Counter sample ("C"): one named time-series value per process.
  void counter(std::uint32_t pid, std::string_view name, SimTime ts_ns,
               std::int64_t value);

  /// Total recorded duration / span count for (pid, name); 0 if none.
  /// Accumulated at record time: retain_traces() never changes totals.
  [[nodiscard]] SimDur total_ns(std::uint32_t pid,
                                std::string_view name) const;
  [[nodiscard]] std::uint64_t span_count(std::uint32_t pid,
                                         std::string_view name) const;

  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

  /// Every tagged span recorded under `pid`, for critical-path analysis:
  /// complete spans plus async spans (whose 'b' event remembers the
  /// duration). Flow events and instants are not spans and are skipped.
  [[nodiscard]] std::vector<TraceSpan> tagged_spans(std::uint32_t pid) const;

  /// Tail sampling: drops every trace-tagged event whose trace id is not in
  /// `keep`. Untagged events (NIC spans of untraced runs, counters, process
  /// metadata) and the per-name totals are retained, so span-total derived
  /// breakdowns still cover all ops after pruning.
  void retain_traces(const std::unordered_set<std::uint64_t>& keep);

  /// Deterministic shard merge: appends every event recorded by `child`
  /// after this tracer's own, sums the per-name totals, and leaves `child`
  /// empty. Called per shard in ascending shard order at quiescence, this
  /// yields the canonical shard-then-record order — each domain's events
  /// are already in its own deterministic record order, so the merged
  /// stream is a pure function of (seed, shard count). Timestamps are
  /// explicit on every event, so viewers and tools are order-insensitive;
  /// byte determinism of to_json() is what the canonical order buys.
  void absorb(Tracer& child);

  /// Serializes every recorded event as Chrome trace_event JSON. Output is
  /// a pure function of the recorded events (byte-identical across
  /// same-seed runs).
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  struct Event {
    char ph;            // 'X', 'b', 'e', 'i', 'C', 'M', 's', 't', 'f'
    std::uint32_t pid;
    std::uint64_t tid;    // lane; async id for 'b'/'e'; lane for flows
    SimTime ts;
    SimDur dur;           // 'X' only (also kept on 'b' for tagged_spans)
    std::int64_t value;   // 'C' value; flow id for 's'/'t'/'f'
    std::uint64_t trace;  // causal trace id; 0 = untagged
    std::string name;
    std::string cat;
  };

  void add_total(std::uint32_t pid, std::string_view name, SimDur dur_ns);

  std::vector<Event> events_;
  std::map<std::pair<std::uint32_t, std::string>, SpanTotal> totals_;
  std::uint32_t next_pid_ = 0;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_flow_ = 1;
  std::uint64_t next_async_ = 1;
  std::uint64_t id_stride_ = 1;
  bool enabled_ = false;
};

}  // namespace hpres::obs
