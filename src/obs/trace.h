// Span tracer on the simulator clock.
//
// Records begin/end spans, async spans, instants and counter samples against
// simulated time and serializes them as Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing). Alongside the raw events the tracer keeps
// per-(process, span-name) duration totals so harnesses can derive phase
// breakdowns (paper Figure 9) directly from the spans.
//
// Zero overhead when disabled: every recording call starts with a single
// branch on `enabled_` and returns immediately, and recording never touches
// the simulation (no delays, no RNG) — enabling tracing cannot change any
// simulated result.
//
// Track conventions (Perfetto renders one lane per (pid, tid)):
//   pid — one experiment point (a Testbench); declare_process names it.
//   tid — a lane inside the point: engine op lanes (node * kLanesPerNode +
//         slot) or NIC lanes (kNicTidBase + node). Complete spans on one tid
//         must nest; concurrent activities use distinct lanes or async spans.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hpres::obs {

/// Aggregate of every completed span with one name within one process.
struct SpanTotal {
  std::uint64_t count = 0;
  SimDur total_ns = 0;
};

class Tracer {
 public:
  /// Lanes reserved per node for concurrent in-flight operations.
  static constexpr std::uint64_t kLanesPerNode = 1024;
  /// Base tid for per-node NIC tracks (fabric send/recv serialization).
  static constexpr std::uint64_t kNicTidBase = 1'000'000;

  Tracer() = default;
  explicit Tracer(bool enabled) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Allocates a process id (one per experiment point) and, when enabled,
  /// emits the process_name metadata event Perfetto uses as the group label.
  std::uint32_t declare_process(std::string name);

  /// Complete span ("X") with an explicit interval. `begin_ns` may lie in
  /// the simulated future (e.g. a NIC slot reserved ahead of time).
  void complete(std::uint32_t pid, std::uint64_t tid, std::string_view name,
                std::string_view cat, SimTime begin_ns, SimDur dur_ns);

  /// Async span ("b"/"e" pair keyed by `id`): overlap-safe, used for spans
  /// that interleave freely on one logical track (e.g. ARPE window waits).
  void async_span(std::uint32_t pid, std::uint64_t id, std::string_view name,
                  std::string_view cat, SimTime begin_ns, SimDur dur_ns);

  /// Instant event ("i").
  void instant(std::uint32_t pid, std::uint64_t tid, std::string_view name,
               std::string_view cat, SimTime ts_ns);

  /// Counter sample ("C"): one named time-series value per process.
  void counter(std::uint32_t pid, std::string_view name, SimTime ts_ns,
               std::int64_t value);

  /// Total recorded duration / span count for (pid, name); 0 if none.
  [[nodiscard]] SimDur total_ns(std::uint32_t pid,
                                std::string_view name) const;
  [[nodiscard]] std::uint64_t span_count(std::uint32_t pid,
                                         std::string_view name) const;

  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

  /// Serializes every recorded event as Chrome trace_event JSON. Output is
  /// a pure function of the recorded events (byte-identical across
  /// same-seed runs).
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  struct Event {
    char ph;            // 'X', 'b', 'e', 'i', 'C', 'M'
    std::uint32_t pid;
    std::uint64_t tid;  // lane, or async id for 'b'/'e'
    SimTime ts;
    SimDur dur;           // 'X' only
    std::int64_t value;   // 'C' only
    std::string name;
    std::string cat;
  };

  void add_total(std::uint32_t pid, std::string_view name, SimDur dur_ns);

  std::vector<Event> events_;
  std::map<std::pair<std::uint32_t, std::string>, SpanTotal> totals_;
  std::uint32_t next_pid_ = 0;
  bool enabled_ = false;
};

}  // namespace hpres::obs
