#include "obs/latency.h"

#include <algorithm>

namespace hpres::obs {
namespace {

// Min-heap comparator on (latency, trace_id): the fastest kept op sits at
// the root and is evicted first. Including the id makes eviction order a
// pure function of the recorded stream even with equal latencies.
constexpr auto kHeapGreater = [](const std::pair<SimDur, std::uint64_t>& a,
                                 const std::pair<SimDur, std::uint64_t>& b) {
  return a > b;
};

}  // namespace

void LatencyRecorder::record(std::string_view op, std::string_view scheme,
                             bool degraded, SimDur latency_ns,
                             std::uint64_t trace_id) {
  LatencyKey key{std::string(op), std::string(scheme), degraded};
  Series& s = series_[std::move(key)];
  s.hist.record(latency_ns);
  if (trace_id != 0) keep_tail(s, latency_ns, trace_id);
}

void LatencyRecorder::keep_tail(Series& s, SimDur latency_ns,
                                std::uint64_t trace_id) {
  if (tail_.threshold_ns > 0 && latency_ns >= tail_.threshold_ns &&
      s.over_threshold.size() < kMaxThresholdKept) {
    s.over_threshold.push_back(trace_id);
  }
  if (tail_.keep_slowest == 0) return;
  if (s.slowest.size() < tail_.keep_slowest) {
    s.slowest.emplace_back(latency_ns, trace_id);
    std::push_heap(s.slowest.begin(), s.slowest.end(), kHeapGreater);
    return;
  }
  if (std::pair{latency_ns, trace_id} <= s.slowest.front()) return;
  std::pop_heap(s.slowest.begin(), s.slowest.end(), kHeapGreater);
  s.slowest.back() = {latency_ns, trace_id};
  std::push_heap(s.slowest.begin(), s.slowest.end(), kHeapGreater);
}

const LatencyHistogram* LatencyRecorder::histogram(
    const LatencyKey& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second.hist;
}

std::vector<LatencyRow> LatencyRecorder::rows() const {
  std::vector<LatencyRow> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    LatencyRow row;
    row.key = key;
    row.count = s.hist.count();
    row.mean_ns = s.hist.mean();
    row.p50_ns = s.hist.p50();
    row.p95_ns = s.hist.p95();
    row.p99_ns = s.hist.p99();
    row.p999_ns = s.hist.quantile(0.999);
    row.max_ns = s.hist.max();
    out.push_back(std::move(row));
  }
  return out;
}

std::unordered_set<std::uint64_t> LatencyRecorder::kept_traces() const {
  std::unordered_set<std::uint64_t> out;
  for (const auto& [key, s] : series_) {
    for (const auto& [lat, id] : s.slowest) out.insert(id);
    out.insert(s.over_threshold.begin(), s.over_threshold.end());
  }
  return out;
}

std::size_t LatencyRecorder::kept_count(const LatencyKey& key) const {
  const auto it = series_.find(key);
  if (it == series_.end()) return 0;
  return it->second.slowest.size() + it->second.over_threshold.size();
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  for (const auto& [key, src] : other.series_) {
    Series& dst = series_[key];
    dst.hist.merge(src.hist);
    for (const auto& [lat, id] : src.slowest) keep_tail(dst, lat, id);
    for (const std::uint64_t id : src.over_threshold) {
      if (dst.over_threshold.size() < kMaxThresholdKept) {
        dst.over_threshold.push_back(id);
      }
    }
  }
}

}  // namespace hpres::obs
