#include "obs/trace.h"

#include <fstream>

#include "obs/json.h"

namespace hpres::obs {

std::uint32_t Tracer::declare_process(std::string name) {
  const std::uint32_t pid = next_pid_++;
  if (enabled_) {
    events_.push_back(Event{'M', pid, 0, 0, 0, 0, 0, std::move(name), {}});
  }
  return pid;
}

void Tracer::complete(std::uint32_t pid, std::uint64_t tid,
                      std::string_view name, std::string_view cat,
                      SimTime begin_ns, SimDur dur_ns,
                      std::uint64_t trace_id) {
  if (!enabled_) return;
  events_.push_back(Event{'X', pid, tid, begin_ns, dur_ns, 0, trace_id,
                          std::string(name), std::string(cat)});
  add_total(pid, name, dur_ns);
}

void Tracer::async_span(std::uint32_t pid, std::uint64_t id,
                        std::string_view name, std::string_view cat,
                        SimTime begin_ns, SimDur dur_ns,
                        std::uint64_t trace_id) {
  if (!enabled_) return;
  // The 'b' event keeps the duration (not serialized for 'b') so
  // tagged_spans() can reconstruct the interval without pairing 'e'.
  events_.push_back(Event{'b', pid, id, begin_ns, dur_ns, 0, trace_id,
                          std::string(name), std::string(cat)});
  events_.push_back(Event{'e', pid, id, begin_ns + dur_ns, 0, 0, trace_id,
                          std::string(name), std::string(cat)});
  add_total(pid, name, dur_ns);
}

void Tracer::instant(std::uint32_t pid, std::uint64_t tid,
                     std::string_view name, std::string_view cat,
                     SimTime ts_ns, std::uint64_t trace_id) {
  if (!enabled_) return;
  events_.push_back(Event{'i', pid, tid, ts_ns, 0, 0, trace_id,
                          std::string(name), std::string(cat)});
}

void Tracer::flow(char ph, std::uint32_t pid, std::uint64_t tid,
                  SimTime ts_ns, std::uint64_t flow_id,
                  std::uint64_t trace_id) {
  if (!enabled_) return;
  events_.push_back(Event{ph, pid, tid, ts_ns, 0,
                          static_cast<std::int64_t>(flow_id), trace_id,
                          "msg", "flow"});
}

void Tracer::counter(std::uint32_t pid, std::string_view name, SimTime ts_ns,
                     std::int64_t value) {
  if (!enabled_) return;
  events_.push_back(
      Event{'C', pid, 0, ts_ns, 0, value, 0, std::string(name), {}});
}

void Tracer::add_total(std::uint32_t pid, std::string_view name,
                       SimDur dur_ns) {
  auto& total = totals_[{pid, std::string(name)}];
  ++total.count;
  total.total_ns += dur_ns;
}

SimDur Tracer::total_ns(std::uint32_t pid, std::string_view name) const {
  const auto it = totals_.find({pid, std::string(name)});
  return it == totals_.end() ? 0 : it->second.total_ns;
}

std::uint64_t Tracer::span_count(std::uint32_t pid,
                                 std::string_view name) const {
  const auto it = totals_.find({pid, std::string(name)});
  return it == totals_.end() ? 0 : it->second.count;
}

std::vector<TraceSpan> Tracer::tagged_spans(std::uint32_t pid) const {
  std::vector<TraceSpan> out;
  for (const Event& e : events_) {
    if (e.pid != pid || e.trace == 0) continue;
    if (e.ph != 'X' && e.ph != 'b') continue;
    out.push_back(TraceSpan{e.trace, e.tid, e.ts, e.dur, e.name, e.cat});
  }
  return out;
}

void Tracer::absorb(Tracer& child) {
  if (&child == this) return;
  if (events_.empty()) {
    events_ = std::move(child.events_);
  } else {
    events_.reserve(events_.size() + child.events_.size());
    for (Event& e : child.events_) events_.push_back(std::move(e));
  }
  child.events_.clear();
  for (auto& [key, total] : child.totals_) {
    auto& mine = totals_[key];
    mine.count += total.count;
    mine.total_ns += total.total_ns;
  }
  child.totals_.clear();
}

void Tracer::retain_traces(const std::unordered_set<std::uint64_t>& keep) {
  std::erase_if(events_, [&](const Event& e) {
    return e.trace != 0 && keep.find(e.trace) == keep.end();
  });
}

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto append_trace_args = [&out](const Event& e) {
    if (e.trace == 0) return;
    out += ",\"args\":{\"trace\":";
    json::append_u64(out, e.trace);
    out += "}";
  };
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    switch (e.ph) {
      case 'M':
        // Process-name metadata: the event's name field holds the label.
        out += "{\"ph\":\"M\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
        json::append_string(out, e.name);
        out += "}}";
        break;
      case 'X':
        out += "{\"ph\":\"X\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":";
        json::append_u64(out, e.tid);
        out += ",\"ts\":";
        json::append_time_us(out, e.ts);
        out += ",\"dur\":";
        json::append_time_us(out, e.dur);
        out += ",\"name\":";
        json::append_string(out, e.name);
        out += ",\"cat\":";
        json::append_string(out, e.cat);
        append_trace_args(e);
        out += "}";
        break;
      case 'b':
      case 'e':
        out += "{\"ph\":\"";
        out.push_back(e.ph);
        out += "\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":0,\"id\":\"";
        out += std::to_string(e.tid);
        out += "\",\"ts\":";
        json::append_time_us(out, e.ts);
        out += ",\"name\":";
        json::append_string(out, e.name);
        out += ",\"cat\":";
        json::append_string(out, e.cat);
        append_trace_args(e);
        out += "}";
        break;
      case 's':
      case 't':
      case 'f':
        out += "{\"ph\":\"";
        out.push_back(e.ph);
        out += "\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":";
        json::append_u64(out, e.tid);
        out += ",\"ts\":";
        json::append_time_us(out, e.ts);
        out += ",\"id\":\"";
        out += std::to_string(e.value);
        out += "\",\"name\":";
        json::append_string(out, e.name);
        out += ",\"cat\":";
        json::append_string(out, e.cat);
        if (e.ph == 'f') out += ",\"bp\":\"e\"";
        append_trace_args(e);
        out += "}";
        break;
      case 'i':
        out += "{\"ph\":\"i\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":";
        json::append_u64(out, e.tid);
        out += ",\"ts\":";
        json::append_time_us(out, e.ts);
        out += ",\"s\":\"t\",\"name\":";
        json::append_string(out, e.name);
        out += ",\"cat\":";
        json::append_string(out, e.cat);
        append_trace_args(e);
        out += "}";
        break;
      case 'C':
        out += "{\"ph\":\"C\",\"pid\":";
        json::append_u64(out, e.pid);
        out += ",\"tid\":0,\"ts\":";
        json::append_time_us(out, e.ts);
        out += ",\"name\":";
        json::append_string(out, e.name);
        out += ",\"args\":{\"value\":";
        json::append_i64(out, e.value);
        out += "}}";
        break;
      default:
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string body = to_json();
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

}  // namespace hpres::obs
