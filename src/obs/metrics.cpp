#include "obs/metrics.h"

#include <fstream>
#include <limits>

#include "obs/json.h"

namespace hpres::obs {

MetricsRegistry::Entry& MetricsRegistry::upsert(std::string name,
                                                MetricLabels labels,
                                                Kind kind) {
  Entry& e = entries_[Key{std::move(name), std::move(labels)}];
  e.kind = kind;
  return e;
}

Counter& MetricsRegistry::counter(std::string name, MetricLabels labels) {
  return upsert(std::move(name), std::move(labels), Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string name, MetricLabels labels) {
  return upsert(std::move(name), std::move(labels), Kind::kGauge).gauge;
}

LatencyHistogram& MetricsRegistry::histogram(std::string name,
                                             MetricLabels labels) {
  return upsert(std::move(name), std::move(labels), Kind::kHistogram).hist;
}

void MetricsRegistry::bind_counter(std::string name, MetricLabels labels,
                                   const std::uint64_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kCounter).reader =
      [src]() { return static_cast<std::int64_t>(*src); };
}

void MetricsRegistry::bind_counter(std::string name, MetricLabels labels,
                                   const std::int64_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kCounter).reader =
      [src]() { return *src; };
}

void MetricsRegistry::bind_counter(std::string name, MetricLabels labels,
                                   const std::uint32_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kCounter).reader =
      [src]() { return static_cast<std::int64_t>(*src); };
}

void MetricsRegistry::bind_gauge(std::string name, MetricLabels labels,
                                 Reader fn) {
  upsert(std::move(name), std::move(labels), Kind::kGauge).reader =
      std::move(fn);
}

void MetricsRegistry::bind_gauge(std::string name, MetricLabels labels,
                                 const std::uint64_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kGauge).reader =
      [src]() { return static_cast<std::int64_t>(*src); };
}

void MetricsRegistry::bind_gauge(std::string name, MetricLabels labels,
                                 const std::int64_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kGauge).reader =
      [src]() { return *src; };
}

void MetricsRegistry::bind_gauge(std::string name, MetricLabels labels,
                                 const std::uint32_t* src) {
  upsert(std::move(name), std::move(labels), Kind::kGauge).reader =
      [src]() { return static_cast<std::int64_t>(*src); };
}

void MetricsRegistry::bind_histogram(std::string name, MetricLabels labels,
                                     const LatencyHistogram* src) {
  upsert(std::move(name), std::move(labels), Kind::kHistogram).hist_src = src;
}

void MetricsRegistry::capture() {
  for (auto& [key, e] : entries_) {
    if (e.reader) {
      const std::int64_t v = e.reader();
      if (e.kind == Kind::kCounter) {
        e.counter.set(static_cast<std::uint64_t>(v < 0 ? 0 : v));
      } else {
        e.gauge.set(v);
      }
      e.reader = nullptr;
    }
    if (e.hist_src != nullptr) {
      e.hist = *e.hist_src;
      e.hist_src = nullptr;
    }
  }
}

std::int64_t MetricsRegistry::scalar_reading(const Entry& e) {
  if (e.reader) return e.reader();
  return e.kind == Kind::kCounter
             ? static_cast<std::int64_t>(e.counter.value())
             : e.gauge.value();
}

std::optional<std::int64_t> MetricsRegistry::value_of(
    std::string_view name, const MetricLabels& labels) const {
  const auto it = entries_.find(Key{std::string(name), labels});
  if (it == entries_.end() || it->second.kind == Kind::kHistogram) {
    return std::nullopt;
  }
  return scalar_reading(it->second);
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(entries_.size() * 128 + 64);
  out += "{\"schema\":\"hpres-metrics-v1\",\"metrics\":[\n";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    json::append_string(out, key.name);
    out += ",\"component\":";
    json::append_string(out, key.labels.component);
    out += ",\"node\":";
    json::append_string(out, key.labels.node);
    out += ",\"op\":";
    json::append_string(out, key.labels.op);
    switch (e.kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":";
        json::append_i64(out, scalar_reading(e));
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":";
        json::append_i64(out, scalar_reading(e));
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h =
            e.hist_src != nullptr ? *e.hist_src : e.hist;
        out += ",\"type\":\"histogram\",\"count\":";
        json::append_u64(out, h.count());
        out += ",\"sum\":";
        json::append_i64(out, h.sum());
        out += ",\"min\":";
        json::append_i64(out, h.min());
        out += ",\"max\":";
        json::append_i64(out, h.max());
        out += ",\"mean\":";
        json::append_fixed(out, h.mean(), 3);
        out += ",\"p50\":";
        json::append_i64(out, h.p50());
        out += ",\"p95\":";
        json::append_i64(out, h.p95());
        out += ",\"p99\":";
        json::append_i64(out, h.p99());
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string body = to_json();
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

}  // namespace hpres::obs
