// Periodic gauge sampler: a spawned simulator process that reads a set of
// registered gauges (ARPE window occupancy, buffer-pool usage, fabric
// in-flight bytes, server queue depth, ...) at a fixed simulated interval
// and emits them as Chrome trace_event counter samples ("C" events), giving
// a time-series view alongside the spans.
//
// Lifecycle: the harness wraps its workload so that request_stop() runs
// when the workload completes; the sampler then exits at its next tick and
// the event queue drains normally. Sampling is read-only — it adds events
// to the queue but never perturbs workload timing, so enabling it changes
// no benchmark result.
//
// Sampler is the oracle-mode implementation (a spawned coroutine on one
// event loop). WindowSampler below is its shards > 1 counterpart, driven
// by runtime quiesce hooks instead of a coroutine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/trace.h"
#include "sim/shard_runtime.h"
#include "sim/simulator.h"

namespace hpres::obs {

class Sampler {
 public:
  Sampler(sim::Simulator& sim, Tracer& tracer, std::uint32_t pid,
          SimDur interval_ns)
      : sim_(&sim), tracer_(&tracer), pid_(pid), interval_(interval_ns) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers one gauge; `read` must stay valid until the sampler stops.
  void add_gauge(std::string name, std::function<std::int64_t()> read) {
    series_.push_back(Series{std::move(name), std::move(read), {}});
  }

  /// Spawns the sampling process (samples once immediately, then every
  /// interval). No-op when the tracer is disabled or nothing is registered.
  void start();

  /// Takes one final sample at the current instant (so changes in the last
  /// partial interval are never dropped) and makes the sampling process
  /// exit at its next tick. Idempotent; the flush only happens on the first
  /// call of a started sampler.
  void request_stop();

  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t num_gauges() const noexcept {
    return series_.size();
  }
  /// Running min/mean/max of series `i` over all samples taken.
  [[nodiscard]] const RunningStats& series_stats(std::size_t i) const {
    return series_.at(i).stats;
  }

 private:
  struct Series {
    std::string name;
    std::function<std::int64_t()> read;
    RunningStats stats;
  };

  static sim::Task<void> run(Sampler* self);
  void sample_once();

  sim::Simulator* sim_;
  Tracer* tracer_;
  std::uint32_t pid_;
  SimDur interval_;
  std::vector<Series> series_;
  std::uint64_t samples_ = 0;
  bool stop_ = false;
  bool started_ = false;
};

/// Quiesce-hook gauge sampler for parallel runs (shards > 1). Each gauge
/// is registered with the tracer domain it records into — pass the owning
/// shard's domain so every counter series stays single-writer; a gauge
/// that reads cross-shard state is still safe because hooks fire while all
/// shard threads are parked. Samples land on exact interval boundaries
/// (the hook caps windows at the next boundary), so the series is
/// deterministic for a fixed (seed, shard count). The harness calls
/// flush() at quiescence for the final partial interval.
class WindowSampler {
 public:
  WindowSampler(sim::ShardRuntime& runtime, SimDur interval_ns)
      : runtime_(&runtime), interval_(interval_ns) {}
  WindowSampler(const WindowSampler&) = delete;
  WindowSampler& operator=(const WindowSampler&) = delete;
  ~WindowSampler();

  /// Registers one gauge recording into `domain` under process `pid`;
  /// `read` must stay valid until the runtime is done. A null or disabled
  /// domain still accumulates stats but emits no trace counters.
  void add_gauge(Tracer* domain, std::uint32_t pid, std::string name,
                 std::function<std::int64_t()> read) {
    series_.push_back(
        Series{domain, pid, std::move(name), std::move(read), {}});
  }

  /// Registers the quiesce hook (samples at t=0, then every interval).
  /// No-op when nothing is registered or the interval is not positive.
  void start();

  /// Takes one final sample at `now` (the quiesced instant) and stops
  /// sampling. Call from the main thread after run() returns. Idempotent.
  void flush(SimTime now);

  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t num_gauges() const noexcept {
    return series_.size();
  }
  /// Running min/mean/max of series `i` over all samples taken.
  [[nodiscard]] const RunningStats& series_stats(std::size_t i) const {
    return series_.at(i).stats;
  }

 private:
  struct Series {
    Tracer* domain;
    std::uint32_t pid;
    std::string name;
    std::function<std::int64_t()> read;
    RunningStats stats;
  };

  SimTime on_quiesce(SimTime min_next);
  void sample_at(SimTime now);

  sim::ShardRuntime* runtime_;
  SimDur interval_;
  SimTime next_ = 0;  ///< next sample boundary once started
  std::vector<Series> series_;
  std::uint64_t samples_ = 0;
  std::size_t hook_id_ = 0;
  bool hook_armed_ = false;
  bool stopped_ = false;
};

}  // namespace hpres::obs
