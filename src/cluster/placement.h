// Versioned placement plane: epoch-stamped elastic membership for the
// hash ring, in the spirit of QFS's LayoutManager owning chunk placement.
//
// A PlacementManager turns "server joins the ring" / "server leaves the
// ring" into a safe online protocol over the existing data plane:
//
//   1. Cutover — the shared ring swaps to the new active set and bumps its
//      placement epoch. In oracle mode this is a plain in-coroutine
//      mutation; with shards > 1 it is deferred to a runtime quiesce hook
//      so no shard observes a half-built ring.
//   2. Install — the new epoch streams to every live server
//      (kPlacementEpoch). From the moment a server installs it, writes
//      stamped with an older epoch bounce with kWrongEpoch and the engine
//      re-runs them under the refreshed ring.
//   3. Migrate — a scan-driven pass (reusing RepairCoordinator discovery)
//      copies every fragment whose owner changed from its old position to
//      its new one with if_absent semantics, falls back to erasure rebuild
//      when an old owner is gone, and re-homes packed-stripe locator
//      directory entries. Copies are paced so foreground traffic keeps
//      its latency envelope.
//   4. Finish — the transition flag drops and (epoch acks permitting) the
//      stale copies at old positions are deleted.
//
// Between cutover and finish the engines' placement hooks keep every
// acked value readable: Get misses retry under the pre-cutover ring
// (old positions are not cleaned until finish), Deletes dual-issue, and
// bounced Sets retry under the new ring. See DESIGN.md for the invariant
// argument.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cluster/cluster.h"
#include "kv/placement.h"
#include "resilience/repair.h"

namespace hpres::cluster {

struct PlacementParams {
  /// Keys migrated between pacing pauses. Smaller batches spread the
  /// migration traffic thinner under foreground load.
  std::size_t migrate_batch = 8;
  /// Pause inserted after each batch (simulated time).
  SimDur batch_pause_ns = 20'000;
  /// Delete stale fragments/locators at their old positions once the
  /// migration pass completes and every live server acked the epoch.
  /// Off leaves the old copies in place (space cost, zero risk).
  bool cleanup = true;
  /// Sharded mode only: poll interval while waiting for the quiesce hook
  /// to apply a pending cutover/finish.
  SimDur poll_ns = 2'000;
};

struct PlacementStats {
  std::uint64_t changes = 0;           ///< completed join/leave transitions
  std::uint64_t epoch_acks = 0;        ///< kPlacementEpoch acks received
  std::uint64_t keys_scanned = 0;      ///< keys examined by migration passes
  std::uint64_t keys_moved = 0;        ///< keys with >= 1 fragment relocated
  std::uint64_t fragments_moved = 0;   ///< fragments copied old -> new owner
  std::uint64_t fragments_rebuilt = 0; ///< fragments recreated via repair
  std::uint64_t moved_bytes = 0;       ///< fragment payload bytes copied
  std::uint64_t locators_moved = 0;    ///< stripe locator entries re-homed
  std::uint64_t cleanup_deletes = 0;   ///< stale copies removed at finish

  /// Registers every field into `reg` under component "placement".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"placement", std::move(node),
                                   std::move(op)};
    reg.bind_counter("placement.changes", labels, &changes);
    reg.bind_counter("placement.epoch_acks", labels, &epoch_acks);
    reg.bind_counter("placement.keys_scanned", labels, &keys_scanned);
    reg.bind_counter("placement.keys_moved", labels, &keys_moved);
    reg.bind_counter("placement.fragments_moved", labels, &fragments_moved);
    reg.bind_counter("placement.fragments_rebuilt", labels,
                     &fragments_rebuilt);
    reg.bind_counter("placement.moved_bytes", labels, &moved_bytes);
    reg.bind_counter("placement.locators_moved", labels, &locators_moved);
    reg.bind_counter("placement.cleanup_deletes", labels, &cleanup_deletes);
  }
};

class PlacementManager {
 public:
  /// `ctx` is the coordinator's engine context (a cluster client plus the
  /// cluster's live ring/membership) — migration and repair RPCs issue
  /// through it. Every referent, the codec, and the cluster must outlive
  /// the manager. With shards > 1 the constructor installs a runtime
  /// quiesce hook (between run() calls only).
  PlacementManager(Cluster& cluster, const ec::Codec& codec,
                   ec::CostModel cost, resilience::EngineContext ctx,
                   PlacementParams params = {});
  PlacementManager(const PlacementManager&) = delete;
  PlacementManager& operator=(const PlacementManager&) = delete;
  ~PlacementManager();

  /// The versioned view engines and clients attach to
  /// (Cluster::set_placement_view / Engine::attach_placement). Stable
  /// address for the manager's lifetime.
  [[nodiscard]] const kv::PlacementView* view() const noexcept {
    return &view_;
  }

  /// The pre-cutover ring, valid while a transition is in flight (engines
  /// resolve read fallbacks against it). Stable address.
  [[nodiscard]] const kv::HashRing& prev_ring() const noexcept {
    return prev_ring_;
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return view_.epoch; }
  [[nodiscard]] bool in_transition() const noexcept {
    return view_.in_transition;
  }

  /// The event loop the coordinator's coroutines must run on (its client's
  /// shard loop) — spawn join()/leave() here.
  [[nodiscard]] sim::Simulator& coordinator_sim() noexcept {
    return *ctx_.sim;
  }

  /// Projects a provisioned-but-inactive server into the ring and runs the
  /// full cutover/install/migrate/finish protocol. One change at a time.
  sim::Task<void> join(std::size_t server);

  /// Withdraws an active server from the ring (graceful scale-in: the
  /// server keeps serving reads of its stale copies until cleanup).
  sim::Task<void> leave(std::size_t server);

  [[nodiscard]] const PlacementStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const resilience::RepairStats& repair_stats() const noexcept {
    return repair_.stats();
  }

  /// Registers the placement counters, the current epoch gauge, and the
  /// embedded repair coordinator's counters into `reg`.
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& op_label) const;

 private:
  enum class Pending : std::uint8_t { kNone, kCutover, kFinish };

  sim::Task<void> run_change(std::size_t server, bool join);
  /// Swaps the live ring to the new active set, snapshots the old ring,
  /// bumps the view's epoch, and raises in_transition. Called inline in
  /// oracle mode, from the quiesce hook with shards > 1.
  void apply_cutover(std::size_t server, bool join);
  /// Drops in_transition / prev — the transition is over.
  void apply_finish();
  /// Waits for the quiesce hook to consume the pending mutation (sharded
  /// mode only; hooks run at every round barrier, so this resolves within
  /// one lookahead window).
  sim::Task<void> await_applied();
  SimTime on_quiesce(SimTime min_next);

  /// Streams the current epoch to every live provisioned server; returns
  /// the number of acks (cleanup is gated on acks == live servers).
  sim::Task<std::size_t> install_epochs();
  sim::Task<void> migrate_all(bool cleanup_ok);
  sim::Task<void> migrate_key(kv::Key key, bool cleanup_ok);
  sim::Task<void> migrate_locator(kv::Key key, bool cleanup_ok);
  sim::Task<void> pace();

  [[nodiscard]] net::NodeId node_of(std::size_t server) const {
    return (*ctx_.server_nodes)[server];
  }
  [[nodiscard]] const kv::HashRing& ring() const noexcept {
    return *ctx_.ring;
  }

  Cluster* cluster_;
  const ec::Codec* codec_;
  resilience::EngineContext ctx_;
  PlacementParams params_;
  resilience::RepairCoordinator repair_;
  kv::PlacementView view_;
  kv::HashRing prev_ring_;  ///< pre-cutover snapshot (stable address)
  PlacementStats stats_;
  std::size_t paced_ = 0;   ///< keys migrated since the last pacing pause
  bool changing_ = false;

  // Quiesce-hook handshake (sharded mode): the coordinator coroutine
  // publishes a pending mutation, the hook applies it while every shard
  // is parked, and the coroutine polls until it lands.
  Pending pending_ = Pending::kNone;
  std::size_t pending_server_ = 0;
  bool pending_join_ = false;
  std::size_t hook_id_ = 0;
  bool hook_armed_ = false;
};

}  // namespace hpres::cluster
