#include "cluster/placement.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace hpres::cluster {

PlacementManager::PlacementManager(Cluster& cluster, const ec::Codec& codec,
                                   ec::CostModel cost,
                                   resilience::EngineContext ctx,
                                   PlacementParams params)
    : cluster_(&cluster),
      codec_(&codec),
      ctx_(ctx),
      params_(params),
      repair_(ctx, codec, cost),
      prev_ring_(cluster.ring()) {
  assert(ctx_.sim != nullptr && ctx_.client != nullptr &&
         ctx_.ring == &cluster.ring() &&
         "coordinator context must reference the cluster's live ring");
  view_.epoch = cluster.ring().epoch();
  if (cluster.num_shards() > 1) {
    // Ring/view mutations are read lock-free by every shard, so with real
    // threads they apply from a quiesce hook while all shards are parked.
    hook_id_ = cluster.runtime().add_quiesce_hook(
        [this](SimTime min_next) { return on_quiesce(min_next); });
    hook_armed_ = true;
  }
}

PlacementManager::~PlacementManager() {
  if (hook_armed_) cluster_->runtime().remove_quiesce_hook(hook_id_);
}

void PlacementManager::register_metrics(obs::MetricsRegistry& reg,
                                        const std::string& op_label) const {
  stats_.register_with(reg, "coordinator", op_label);
  const obs::MetricLabels labels{"placement", "coordinator", op_label};
  reg.bind_gauge("placement.epoch", labels, &view_.epoch);
  repair_.stats().register_with(reg, "coordinator", op_label);
}

sim::Task<void> PlacementManager::join(std::size_t server) {
  return run_change(server, true);
}

sim::Task<void> PlacementManager::leave(std::size_t server) {
  return run_change(server, false);
}

sim::Task<void> PlacementManager::run_change(std::size_t server, bool join) {
  assert(!changing_ && "one placement change at a time");
  changing_ = true;
  obs::Tracer* const tr =
      (ctx_.tracer != nullptr && ctx_.tracer->enabled()) ? ctx_.tracer
                                                         : nullptr;
  // One reserved lane below the repair coordinator's: placement changes
  // run sequentially, and engine op lanes never reach this high.
  const std::uint64_t tid =
      static_cast<std::uint64_t>(ctx_.client->id()) *
          obs::Tracer::kLanesPerNode +
      (obs::Tracer::kLanesPerNode - 2);
  const std::uint64_t trace_id = tr != nullptr ? tr->new_trace_id() : 0;
  const SimTime t0 = ctx_.sim->now();

  // Phase 1 — cutover: swap the live ring and bump the epoch.
  if (cluster_->num_shards() > 1) {
    pending_server_ = server;
    pending_join_ = join;
    pending_ = Pending::kCutover;
    co_await await_applied();
  } else {
    apply_cutover(server, join);
  }

  // Phase 2 — stream the new epoch to every live server. From each ack on,
  // that server bounces writes still stamped with the old epoch.
  const SimTime install_t0 = ctx_.sim->now();
  const std::size_t acks = co_await install_epochs();
  std::size_t live = 0;
  for (std::size_t s = 0; s < ctx_.membership->size(); ++s) {
    if (ctx_.membership->up(s)) ++live;
  }
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, tid, "placement/install", "placement",
                 install_t0, ctx_.sim->now() - install_t0, trace_id);
  }

  // Phase 3 — migrate. Destructive cleanup only when every live server
  // acked the epoch: until then an old-epoch write could still land at an
  // old position after we deleted it, losing the bounce-and-retry story.
  const SimTime migrate_t0 = ctx_.sim->now();
  co_await migrate_all(params_.cleanup && acks == live);
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, tid, "placement/migrate", "placement",
                 migrate_t0, ctx_.sim->now() - migrate_t0, trace_id);
  }

  // Phase 4 — finish: drop the transition flag (and with it the engines'
  // prev-ring fallback path).
  if (cluster_->num_shards() > 1) {
    pending_ = Pending::kFinish;
    co_await await_applied();
  } else {
    apply_finish();
  }
  ++stats_.changes;
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, tid, join ? "placement/join"
                                           : "placement/leave",
                 "placement", t0, ctx_.sim->now() - t0, trace_id);
  }
  changing_ = false;
}

void PlacementManager::apply_cutover(std::size_t server, bool join) {
  prev_ring_ = cluster_->ring();
  kv::HashRing& live = cluster_->mutable_ring();
  if (join) {
    live.add_server(server);
  } else {
    live.remove_server(server);
  }
  view_.epoch = live.epoch();
  view_.prev = &prev_ring_;
  view_.in_transition = true;
}

void PlacementManager::apply_finish() {
  view_.in_transition = false;
  view_.prev = nullptr;
}

sim::Task<void> PlacementManager::await_applied() {
  while (pending_ != Pending::kNone) {
    co_await ctx_.sim->delay(params_.poll_ns);
  }
}

SimTime PlacementManager::on_quiesce(SimTime /*min_next*/) {
  // Hooks run at every round barrier, so a pending mutation published by
  // the coordinator coroutine lands within one lookahead window. Flag
  // flips and ring rebuilds only — no events are scheduled here.
  switch (pending_) {
    case Pending::kNone:
      break;
    case Pending::kCutover:
      apply_cutover(pending_server_, pending_join_);
      pending_ = Pending::kNone;
      break;
    case Pending::kFinish:
      apply_finish();
      pending_ = Pending::kNone;
      break;
  }
  return sim::Simulator::kNever;
}

sim::Task<std::size_t> PlacementManager::install_epochs() {
  std::vector<sim::Future<kv::Response>> pending;
  pending.reserve(ctx_.membership->size());
  for (std::size_t s = 0; s < ctx_.membership->size(); ++s) {
    if (!ctx_.membership->up(s)) continue;
    kv::Request req;
    req.verb = kv::Verb::kPlacementEpoch;
    req.epoch = view_.epoch;
    pending.push_back(ctx_.client->call_async(node_of(s), std::move(req)));
  }
  std::size_t acks = 0;
  for (const auto& f : pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk && resp.epoch >= view_.epoch) ++acks;
  }
  stats_.epoch_acks += acks;
  co_return acks;
}

sim::Task<void> PlacementManager::migrate_all(bool cleanup_ok) {
  // Discovery rides the repair coordinator's scan (fragment base keys,
  // including packed-stripe bases) plus the locator-directory walk. Both
  // sets are deduped and ordered, so the pass is deterministic.
  std::set<kv::Key> bases;
  std::set<kv::Key> locators;
  for (std::size_t s = 0; s < ctx_.membership->size(); ++s) {
    if (!ctx_.membership->up(s)) continue;
    Result<std::vector<kv::Key>> found = co_await repair_.discover(s);
    if (found.ok()) bases.insert(found->begin(), found->end());
    kv::Request req;
    req.verb = kv::Verb::kScan;
    req.stripe_lookup = true;
    const kv::Response resp =
        co_await ctx_.client->invoke(node_of(s), std::move(req));
    if (resp.code == StatusCode::kOk) {
      locators.insert(resp.keys.begin(), resp.keys.end());
    }
  }
  paced_ = 0;
  for (const kv::Key& key : bases) {
    co_await migrate_key(key, cleanup_ok);
  }
  for (const kv::Key& key : locators) {
    co_await migrate_locator(key, cleanup_ok);
  }
}

sim::Task<void> PlacementManager::migrate_key(kv::Key key, bool cleanup_ok) {
  ++stats_.keys_scanned;
  const std::size_t n = codec_->n();
  bool moved_any = false;
  bool need_repair = false;
  // (slot, old owner) pairs whose copy landed — cleanup targets.
  std::vector<std::pair<std::size_t, std::size_t>> copied;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t old_owner = prev_ring_.slot_index(key, slot);
    const std::size_t new_owner = ring().slot_index(key, slot);
    if (old_owner == new_owner) continue;
    if (!ctx_.membership->up(old_owner)) {
      need_repair = true;  // old copy unreachable: rebuild below
      continue;
    }
    kv::Request fetch;
    fetch.verb = kv::Verb::kGet;
    fetch.key = kv::chunk_key(key, slot);
    kv::Response got =
        co_await ctx_.client->invoke(node_of(old_owner), std::move(fetch));
    if (got.code != StatusCode::kOk || !got.value) {
      need_repair = true;
      continue;
    }
    // if_absent: a concurrent client write under the new epoch already
    // placed fresher bytes here — the stale copy must never clobber it.
    kv::Request put;
    put.verb = kv::Verb::kSet;
    put.key = kv::chunk_key(key, slot);
    put.value = got.value;
    put.chunk = got.chunk;
    put.if_absent = true;
    const kv::Response ack =
        co_await ctx_.client->invoke(node_of(new_owner), std::move(put));
    if (ack.code != StatusCode::kOk) {
      need_repair = true;
      continue;
    }
    ++stats_.fragments_moved;
    stats_.moved_bytes += got.value->size();
    moved_any = true;
    copied.emplace_back(slot, old_owner);
  }
  if (need_repair) {
    // The copies above are durable at their new positions, so the repair
    // probe (which resolves under the live ring) sees them; only the
    // fragments whose old owner is gone get rebuilt from survivors.
    const std::uint64_t before = repair_.stats().fragments_rebuilt;
    co_await repair_.repair_key(key);
    stats_.fragments_rebuilt += repair_.stats().fragments_rebuilt - before;
    moved_any = true;
  }
  if (moved_any) ++stats_.keys_moved;
  if (cleanup_ok) {
    for (const auto& [slot, old_owner] : copied) {
      kv::Request del;
      del.verb = kv::Verb::kDelete;
      del.key = kv::chunk_key(key, slot);
      const kv::Response resp =
          co_await ctx_.client->invoke(node_of(old_owner), std::move(del));
      if (resp.code == StatusCode::kOk) ++stats_.cleanup_deletes;
    }
  }
  co_await pace();
}

sim::Task<void> PlacementManager::migrate_locator(kv::Key key,
                                                  bool cleanup_ok) {
  // Locator directory entries replicate on the first m+1 dir owners; the
  // sets under the two rings usually overlap, so only the difference moves.
  const std::size_t copies = codec_->m() + 1;
  std::vector<std::size_t> old_owners;
  std::vector<std::size_t> new_owners;
  old_owners.reserve(copies);
  new_owners.reserve(copies);
  for (std::size_t j = 0; j < copies; ++j) {
    old_owners.push_back(prev_ring_.slot_index(key, j));
    new_owners.push_back(ring().slot_index(key, j));
  }
  const auto contains = [](const std::vector<std::size_t>& v, std::size_t s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  bool changed = false;
  for (const std::size_t s : new_owners) {
    if (!contains(old_owners, s)) changed = true;
  }
  if (!changed) co_return;
  ++stats_.keys_scanned;
  // Any old dir owner still holding the locator can source it.
  std::optional<kv::StripeLoc> loc;
  for (const std::size_t s : old_owners) {
    if (!ctx_.membership->up(s)) continue;
    kv::Request req;
    req.verb = kv::Verb::kGet;
    req.key = key;
    req.stripe_lookup = true;
    const kv::Response resp =
        co_await ctx_.client->invoke(node_of(s), std::move(req));
    if (resp.code == StatusCode::kOk && resp.stripe) {
      loc = resp.stripe;
      break;
    }
  }
  if (!loc) co_return;  // already cleaned up (or unlinked concurrently)
  bool moved = false;
  for (const std::size_t s : new_owners) {
    if (contains(old_owners, s)) continue;  // already hosts the entry
    kv::Request req;
    req.verb = kv::Verb::kSetStripeIndex;
    req.key = loc->stripe;
    req.chunk = kv::ChunkInfo{loc->stripe_bytes, 0, 0, 0};
    req.stripe_index.push_back(
        kv::StripeIndexEntry{key, loc->offset, loc->len});
    req.if_absent = true;
    const kv::Response resp =
        co_await ctx_.client->invoke(node_of(s), std::move(req));
    if (resp.code == StatusCode::kOk) moved = true;
  }
  if (moved) ++stats_.locators_moved;
  if (cleanup_ok) {
    for (const std::size_t s : old_owners) {
      if (contains(new_owners, s) || !ctx_.membership->up(s)) continue;
      kv::Request del;
      del.verb = kv::Verb::kDelete;
      del.key = key;
      del.stripe_lookup = true;
      const kv::Response resp =
          co_await ctx_.client->invoke(node_of(s), std::move(del));
      if (resp.code == StatusCode::kOk) ++stats_.cleanup_deletes;
    }
  }
  co_await pace();
}

sim::Task<void> PlacementManager::pace() {
  if (++paced_ < params_.migrate_batch) co_return;
  paced_ = 0;
  if (params_.batch_pause_ns > 0) {
    co_await ctx_.sim->delay(params_.batch_pause_ns);
  }
}

}  // namespace hpres::cluster
