// Deterministic mid-workload fault injection.
//
// A FaultSchedule crashes and restarts servers at fixed simulated times
// while a workload is running, reproducing the online failure model the
// controlled fail_server/recover_server pair cannot: a crash flips the
// fabric at the crash instant (in-flight requests to the node are dropped
// and resolve via RPC deadlines; new sends fail fast) but the membership
// oracle only learns of it after a configurable detection lag, during
// which clients still route to the dead server. Everything is driven by
// simulated time, so the same schedule on the same seed replays
// bit-identically.
#pragma once

#include <vector>

#include "cluster/cluster.h"

namespace hpres::cluster {

class FaultSchedule {
 public:
  /// `detection_lag_ns` is the delay between a crash/restart taking
  /// effect in the fabric and the membership oracle observing it.
  explicit FaultSchedule(Cluster& cluster, SimDur detection_lag_ns = 0)
      : cluster_(&cluster), detection_lag_ns_(detection_lag_ns) {}
  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;

  /// Schedules a crash of `server_index` at simulated time `at_ns`.
  /// `wipe_store` additionally discards the server's contents, modelling a
  /// replacement node taking over the id (repair must rebuild everything).
  void add_crash(SimTime at_ns, std::size_t server_index,
                 bool wipe_store = false);

  /// Schedules a restart of `server_index` at simulated time `at_ns`.
  void add_restart(SimTime at_ns, std::size_t server_index);

  /// Schedules a gray failure: from `at_ns` on, `server_index` multiplies
  /// its compute costs by `factor` (1.0 restores full speed). Fabric and
  /// membership are untouched — the node keeps answering, slowly — which is
  /// exactly the straggler pattern hedged reads are built to mask.
  void add_slowdown(SimTime at_ns, std::size_t server_index, double factor);

  /// Schedules a gray-lossy failure: from `at_ns` on, fabric messages to
  /// or from `server_index` are silently dropped with `probability` (0.0
  /// restores a clean link). Membership stays green — peers only see the
  /// timeouts — which is the silent-loss pattern the health detector's
  /// loss-rate rule exists for. Requires a nonzero RpcPolicy timeout or
  /// affected callers park forever.
  void add_loss(SimTime at_ns, std::size_t server_index, double probability);

  /// Attaches the ground-truth log: every applied event is stamped with
  /// its simulated time, node, and fault kind. The closed detection loop
  /// joins these stamps against the detector's transitions. The log is
  /// deliberately kept out of the flight recorder so post-mortem tooling
  /// must infer the faulty node from symptoms.
  void set_fault_log(obs::FaultLog* log) noexcept { fault_log_ = log; }

  /// Spawns the driver coroutine. Call exactly once, before running the
  /// simulation; the schedule must outlive the simulation.
  void arm();

  /// Number of crash/restart events applied so far.
  [[nodiscard]] std::size_t fired() const noexcept { return fired_; }

 private:
  struct FaultEvent {
    SimTime at_ns = 0;
    std::size_t server = 0;
    bool restart = false;
    bool wipe = false;
    double slow = 0.0;   ///< > 0: gray-failure slowdown, not a crash/restart
    double loss = -1.0;  ///< >= 0: per-node silent-loss probability
  };

  static sim::Task<void> driver(FaultSchedule* self);
  static sim::Task<void> detect_coro(FaultSchedule* self, std::size_t server,
                                     bool up);

  void apply(const FaultEvent& ev);

  Cluster* cluster_;
  SimDur detection_lag_ns_;
  std::vector<FaultEvent> events_;
  std::size_t fired_ = 0;
  bool armed_ = false;
  obs::FaultLog* fault_log_ = nullptr;
};

}  // namespace hpres::cluster
