// Deterministic mid-workload fault injection.
//
// A FaultSchedule crashes and restarts servers at fixed simulated times
// while a workload is running, reproducing the online failure model the
// controlled fail_server/recover_server pair cannot: a crash flips the
// fabric at the crash instant (in-flight requests to the node are dropped
// and resolve via RPC deadlines; new sends fail fast) but the membership
// oracle only learns of it after a configurable detection lag, during
// which clients still route to the dead server. Everything is driven by
// simulated time, so the same schedule on the same seed replays
// bit-identically.
//
// Works in both runtime modes. In oracle mode the schedule is a driver
// coroutine, byte-identical to the pre-shard implementation. With
// shards > 1 it is a ShardRuntime quiesce hook: windows are capped at the
// next due event, so each fault applies at its exact scheduled instant
// while every shard thread is parked — the fabric topology flags,
// membership oracle, and server state mutate race-free, and detection-lag
// membership flips queue on the same hook. Crash dumps fold the per-shard
// flight domains into the parent recorder before writing the file.
#pragma once

#include <vector>

#include "cluster/cluster.h"

namespace hpres::cluster {

class PlacementManager;

class FaultSchedule {
 public:
  /// `detection_lag_ns` is the delay between a crash/restart taking
  /// effect in the fabric and the membership oracle observing it.
  explicit FaultSchedule(Cluster& cluster, SimDur detection_lag_ns = 0)
      : cluster_(&cluster), detection_lag_ns_(detection_lag_ns) {}
  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;
  ~FaultSchedule();

  /// Schedules a crash of `server_index` at simulated time `at_ns`.
  /// `wipe_store` additionally discards the server's contents, modelling a
  /// replacement node taking over the id (repair must rebuild everything).
  void add_crash(SimTime at_ns, std::size_t server_index,
                 bool wipe_store = false);

  /// Schedules a restart of `server_index` at simulated time `at_ns`.
  void add_restart(SimTime at_ns, std::size_t server_index);

  /// Schedules a gray failure: from `at_ns` on, `server_index` multiplies
  /// its compute costs by `factor` (1.0 restores full speed). Fabric and
  /// membership are untouched — the node keeps answering, slowly — which is
  /// exactly the straggler pattern hedged reads are built to mask.
  void add_slowdown(SimTime at_ns, std::size_t server_index, double factor);

  /// Schedules a gray-lossy failure: from `at_ns` on, fabric messages to
  /// or from `server_index` are silently dropped with `probability` (0.0
  /// restores a clean link). Membership stays green — peers only see the
  /// timeouts — which is the silent-loss pattern the health detector's
  /// loss-rate rule exists for. Requires a nonzero RpcPolicy timeout or
  /// affected callers park forever.
  void add_loss(SimTime at_ns, std::size_t server_index, double probability);

  /// Schedules a ring join of `server_index` at simulated time `at_ns`,
  /// executed by the attached PlacementManager (set_placement_manager).
  /// Placement changes run on a dedicated sequential driver coroutine in
  /// both runtime modes — the manager already defers its cross-shard
  /// mutations to a quiesce hook, so no hook plumbing is needed here.
  void add_join(SimTime at_ns, std::size_t server_index);

  /// Schedules a graceful ring leave of `server_index` at `at_ns`.
  void add_leave(SimTime at_ns, std::size_t server_index);

  /// Attaches the placement plane that executes add_join/add_leave events.
  /// Must outlive the schedule; required before arm() if any are queued.
  void set_placement_manager(PlacementManager* manager) noexcept {
    placement_ = manager;
  }

  /// Attaches the ground-truth log: every applied event is stamped with
  /// its simulated time, node, and fault kind. The closed detection loop
  /// joins these stamps against the detector's transitions. The log is
  /// deliberately kept out of the flight recorder so post-mortem tooling
  /// must infer the faulty node from symptoms.
  void set_fault_log(obs::FaultLog* log) noexcept { fault_log_ = log; }

  /// Starts the schedule: a driver coroutine in oracle mode, a runtime
  /// quiesce hook with shards > 1. Call exactly once, before running the
  /// simulation; the schedule must outlive the simulation.
  void arm();

  /// Number of crash/restart events applied so far.
  [[nodiscard]] std::size_t fired() const noexcept { return fired_; }

 private:
  struct FaultEvent {
    SimTime at_ns = 0;
    std::size_t server = 0;
    bool restart = false;
    bool wipe = false;
    double slow = 0.0;   ///< > 0: gray-failure slowdown, not a crash/restart
    double loss = -1.0;  ///< >= 0: per-node silent-loss probability
  };

  /// A membership flip (crash/restart observation) still pending its
  /// detection lag — quiesce-hook mode's equivalent of detect_coro.
  struct PendingDetect {
    SimTime at_ns = 0;
    std::size_t server = 0;
    bool up = false;
  };

  struct PlacementEvent {
    SimTime at_ns = 0;
    std::size_t server = 0;
    bool join = false;
  };

  static sim::Task<void> driver(FaultSchedule* self);
  static sim::Task<void> placement_driver(FaultSchedule* self);
  static sim::Task<void> detect_coro(FaultSchedule* self, std::size_t server,
                                     bool up);

  void apply(const FaultEvent& ev, SimTime now);
  /// Quiesce-hook body (shards > 1): applies every event and pending
  /// membership flip due at or before `min_next`, each stamped at its own
  /// due time; returns the earliest remaining due time so the runtime caps
  /// windows at it.
  SimTime on_quiesce(SimTime min_next);

  Cluster* cluster_;
  SimDur detection_lag_ns_;
  PlacementManager* placement_ = nullptr;
  std::vector<FaultEvent> events_;
  std::vector<PlacementEvent> placement_events_;
  std::vector<PendingDetect> detects_;  ///< quiesce-hook mode only
  std::size_t idx_ = 0;                 ///< next unapplied event (hook mode)
  std::size_t fired_ = 0;
  std::size_t hook_id_ = 0;
  bool hook_armed_ = false;
  bool armed_ = false;
  obs::FaultLog* fault_log_ = nullptr;
};

}  // namespace hpres::cluster
