#include "cluster/cluster.h"

#include <cassert>
#include <string>

namespace hpres::cluster {

std::size_t Cluster::effective_shards(const ClusterConfig& config) {
  const std::size_t nodes = config.num_servers + config.num_clients;
  std::size_t shards = config.shards == 0 ? 1 : config.shards;
  if (shards > nodes && nodes > 0) shards = nodes;
  return shards;
}

std::vector<std::uint32_t> Cluster::shard_map(const ClusterConfig& config) {
  const std::size_t shards = effective_shards(config);
  std::vector<std::uint32_t> map;
  map.reserve(config.num_servers + config.num_clients);
  for (std::size_t i = 0; i < config.num_servers; ++i) {
    map.push_back(static_cast<std::uint32_t>(i % shards));
  }
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    map.push_back(static_cast<std::uint32_t>(i % shards));
  }
  return map;
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      // Lookahead = wire latency: a cross-shard message's first bit cannot
      // reach its destination sooner than one latency after the send.
      runtime_(effective_shards(config), config.fabric.latency_ns),
      fabric_(runtime_, config.fabric, shard_map(config)),
      ring_(config.num_servers, config.ring_vnodes, config.ring_seed,
            config.initial_active_servers),
      membership_(config.num_servers, config.membership_check_ns) {
  servers_.reserve(config.num_servers);
  server_nodes_.reserve(config.num_servers);
  for (std::size_t i = 0; i < config.num_servers; ++i) {
    const auto node = static_cast<net::NodeId>(i);
    server_nodes_.push_back(node);
    servers_.push_back(std::make_unique<kv::Server>(
        fabric_.sim_of(node), fabric_, node, config.server));
  }
  clients_.reserve(config.num_clients);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    const auto node = static_cast<net::NodeId>(config.num_servers + i);
    clients_.push_back(std::make_unique<kv::Client>(
        fabric_.sim_of(node), fabric_, node, config.client));
  }
}

Cluster::~Cluster() { merge_obs_domains(); }

void Cluster::set_tracer(obs::Tracer* tracer, std::uint32_t pid) {
  tracer_ = tracer;
  trace_pid_ = pid;
  shard_tracers_.clear();
  if (tracer != nullptr && tracer->enabled() && runtime_.parallel()) {
    const std::size_t n = runtime_.num_shards();
    shard_tracers_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      auto domain = std::make_unique<obs::Tracer>(true);
      // Shard-disjoint id spaces: residue class s mod n, so ids allocated
      // concurrently on different shards can never collide.
      domain->set_id_space(s, n);
      shard_tracers_.push_back(std::move(domain));
    }
  }
  fabric_.set_tracer(tracer, pid);
  for (std::size_t s = 0; s < shard_tracers_.size(); ++s) {
    fabric_.set_shard_tracer(s, shard_tracers_[s].get());
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->set_rpc_tracer(
        tracer_for_node(static_cast<net::NodeId>(i)), pid);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->set_rpc_tracer(tracer_for_client(i), pid);
  }
}

void Cluster::set_health_signals(obs::HealthSignals* signals) {
  health_ = signals;
  shard_signals_.clear();
  if (signals != nullptr && runtime_.parallel()) {
    const std::size_t n = runtime_.num_shards();
    shard_signals_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      shard_signals_.push_back(std::make_unique<obs::HealthSignals>(
          signals->num_nodes(), signals->slo_ns()));
    }
  }
  fabric_.set_health_signals(signals);
  for (std::size_t s = 0; s < shard_signals_.size(); ++s) {
    fabric_.set_shard_health_signals(s, shard_signals_[s].get());
  }
  const auto domain_of = [this](net::NodeId node) -> obs::HealthSignals* {
    return shard_signals_.empty()
               ? health_
               : shard_signals_[fabric_.shard_of(node)].get();
  };
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->set_health_signals(
        domain_of(static_cast<net::NodeId>(i)));
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->set_health_signals(
        domain_of(static_cast<net::NodeId>(servers_.size() + i)));
  }
}

std::vector<obs::HealthSignals*> Cluster::health_domains() {
  std::vector<obs::HealthSignals*> out;
  if (!shard_signals_.empty()) {
    out.reserve(shard_signals_.size());
    for (const auto& d : shard_signals_) out.push_back(d.get());
  } else if (health_ != nullptr) {
    out.push_back(health_);
  }
  return out;
}

void Cluster::merge_obs_domains() {
  if (tracer_ != nullptr) {
    for (const auto& domain : shard_tracers_) tracer_->absorb(*domain);
  }
  if (flight_ != nullptr) {
    for (const auto& domain : shard_flights_) flight_->absorb(*domain);
  }
}

void Cluster::enable_server_ec(const ec::Codec& codec, ec::CostModel cost,
                               bool materialize) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    kv::ServerEcContext ctx;
    ctx.codec = &codec;
    ctx.cost = cost;
    ctx.ring = &ring_;
    ctx.membership = &membership_;
    ctx.server_nodes = &server_nodes_;
    ctx.my_index = i;
    ctx.materialize = materialize;
    servers_[i]->enable_ec(std::move(ctx));
  }
}

void Cluster::register_metrics(obs::MetricsRegistry& reg,
                               const std::string& op_label) const {
  fabric_.stats().register_with(reg, "fabric", op_label);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->store().stats().register_with(
        reg, "server" + std::to_string(i), op_label);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->stats().register_with(reg, "client" + std::to_string(i),
                                       op_label);
    clients_[i]->rpc_stats().register_with(reg, "client" + std::to_string(i),
                                           op_label);
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->rpc_stats().register_with(reg, "server" + std::to_string(i),
                                           op_label);
  }
}

void Cluster::set_flight_recorder(obs::FlightRecorder* flight) {
  flight_ = flight;
  shard_flights_.clear();
  const std::size_t nodes = servers_.size() + clients_.size();
  const auto label_nodes = [&](obs::FlightRecorder& rec) {
    rec.ensure_nodes(nodes);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      rec.set_node_label(i, "server" + std::to_string(i));
    }
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      rec.set_node_label(servers_.size() + i, "client" + std::to_string(i));
    }
  };
  if (flight != nullptr) {
    label_nodes(*flight);
    if (runtime_.parallel()) {
      // One single-writer domain per shard, each with rings for every node
      // and the parent's retention budget; merged into `flight` (newest
      // ring_size records win) at quiescence or on a mid-run dump.
      const std::size_t n = runtime_.num_shards();
      shard_flights_.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        auto domain =
            std::make_unique<obs::FlightRecorder>(flight->ring_size());
        label_nodes(*domain);
        shard_flights_.push_back(std::move(domain));
      }
    }
  }
  fabric_.set_flight_recorder(flight);
  for (std::size_t s = 0; s < shard_flights_.size(); ++s) {
    fabric_.set_shard_flight_recorder(s, shard_flights_[s].get());
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->set_flight_recorder(
        flight_domain_of(static_cast<net::NodeId>(i)));
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->set_flight_recorder(
        flight_domain_of(static_cast<net::NodeId>(servers_.size() + i)));
  }
}

void Cluster::set_placement_view(const kv::PlacementView* view) {
  for (const auto& c : clients_) c->set_placement_view(view);
}

void Cluster::set_rpc_policy(const kv::RpcPolicy& policy) {
  for (const auto& s : servers_) s->set_policy(policy);
  for (const auto& c : clients_) c->set_policy(policy);
}

void Cluster::fail_server(std::size_t index) {
  servers_.at(index)->fail();
  membership_.set_up(index, false);
}

void Cluster::recover_server(std::size_t index) {
  servers_.at(index)->recover();
  membership_.set_up(index, true);
}

void Cluster::start() {
  assert(!started_ && "Cluster::start called twice");
  started_ = true;
  for (const auto& s : servers_) s->start();
  for (const auto& c : clients_) c->start();
}

std::uint64_t Cluster::total_bytes_used() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().bytes_used();
  return total;
}

std::uint64_t Cluster::total_evicted_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().stats().evicted_bytes;
  return total;
}

std::uint64_t Cluster::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().capacity();
  return total;
}

}  // namespace hpres::cluster
