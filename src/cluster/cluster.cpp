#include "cluster/cluster.h"

#include <cassert>
#include <string>

namespace hpres::cluster {

std::size_t Cluster::effective_shards(const ClusterConfig& config) {
  const std::size_t nodes = config.num_servers + config.num_clients;
  std::size_t shards = config.shards == 0 ? 1 : config.shards;
  if (shards > nodes && nodes > 0) shards = nodes;
  return shards;
}

std::vector<std::uint32_t> Cluster::shard_map(const ClusterConfig& config) {
  const std::size_t shards = effective_shards(config);
  std::vector<std::uint32_t> map;
  map.reserve(config.num_servers + config.num_clients);
  for (std::size_t i = 0; i < config.num_servers; ++i) {
    map.push_back(static_cast<std::uint32_t>(i % shards));
  }
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    map.push_back(static_cast<std::uint32_t>(i % shards));
  }
  return map;
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      // Lookahead = wire latency: a cross-shard message's first bit cannot
      // reach its destination sooner than one latency after the send.
      runtime_(effective_shards(config), config.fabric.latency_ns),
      fabric_(runtime_, config.fabric, shard_map(config)),
      ring_(config.num_servers, config.ring_vnodes, config.ring_seed),
      membership_(config.num_servers, config.membership_check_ns) {
  servers_.reserve(config.num_servers);
  server_nodes_.reserve(config.num_servers);
  for (std::size_t i = 0; i < config.num_servers; ++i) {
    const auto node = static_cast<net::NodeId>(i);
    server_nodes_.push_back(node);
    servers_.push_back(std::make_unique<kv::Server>(
        fabric_.sim_of(node), fabric_, node, config.server));
  }
  clients_.reserve(config.num_clients);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    const auto node = static_cast<net::NodeId>(config.num_servers + i);
    clients_.push_back(std::make_unique<kv::Client>(
        fabric_.sim_of(node), fabric_, node, config.client));
  }
}

void Cluster::enable_server_ec(const ec::Codec& codec, ec::CostModel cost,
                               bool materialize) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    kv::ServerEcContext ctx;
    ctx.codec = &codec;
    ctx.cost = cost;
    ctx.ring = &ring_;
    ctx.membership = &membership_;
    ctx.server_nodes = &server_nodes_;
    ctx.my_index = i;
    ctx.materialize = materialize;
    servers_[i]->enable_ec(std::move(ctx));
  }
}

void Cluster::register_metrics(obs::MetricsRegistry& reg,
                               const std::string& op_label) const {
  fabric_.stats().register_with(reg, "fabric", op_label);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->store().stats().register_with(
        reg, "server" + std::to_string(i), op_label);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->stats().register_with(reg, "client" + std::to_string(i),
                                       op_label);
    clients_[i]->rpc_stats().register_with(reg, "client" + std::to_string(i),
                                           op_label);
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->rpc_stats().register_with(reg, "server" + std::to_string(i),
                                           op_label);
  }
}

void Cluster::set_flight_recorder(obs::FlightRecorder* flight) {
  flight_ = flight;
  if (flight != nullptr) {
    flight->ensure_nodes(servers_.size() + clients_.size());
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      flight->set_node_label(i, "server" + std::to_string(i));
    }
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      flight->set_node_label(servers_.size() + i,
                             "client" + std::to_string(i));
    }
  }
  fabric_.set_flight_recorder(flight);
  for (const auto& s : servers_) s->set_flight_recorder(flight);
  for (const auto& c : clients_) c->set_flight_recorder(flight);
}

void Cluster::set_rpc_policy(const kv::RpcPolicy& policy) {
  for (const auto& s : servers_) s->set_policy(policy);
  for (const auto& c : clients_) c->set_policy(policy);
}

void Cluster::fail_server(std::size_t index) {
  servers_.at(index)->fail();
  membership_.set_up(index, false);
}

void Cluster::recover_server(std::size_t index) {
  servers_.at(index)->recover();
  membership_.set_up(index, true);
}

void Cluster::start() {
  assert(!started_ && "Cluster::start called twice");
  started_ = true;
  for (const auto& s : servers_) s->start();
  for (const auto& c : clients_) c->start();
}

std::uint64_t Cluster::total_bytes_used() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().bytes_used();
  return total;
}

std::uint64_t Cluster::total_evicted_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().stats().evicted_bytes;
  return total;
}

std::uint64_t Cluster::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().capacity();
  return total;
}

}  // namespace hpres::cluster
