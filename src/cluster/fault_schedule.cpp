#include "cluster/fault_schedule.h"

#include <algorithm>
#include <cassert>

#include "cluster/placement.h"

namespace hpres::cluster {

void FaultSchedule::add_crash(SimTime at_ns, std::size_t server_index,
                              bool wipe_store) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  events_.push_back(FaultEvent{at_ns, server_index, false, wipe_store});
}

void FaultSchedule::add_restart(SimTime at_ns, std::size_t server_index) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  events_.push_back(FaultEvent{at_ns, server_index, true, false});
}

void FaultSchedule::add_slowdown(SimTime at_ns, std::size_t server_index,
                                 double factor) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  assert(factor >= 1.0);
  events_.push_back(FaultEvent{at_ns, server_index, false, false, factor});
}

void FaultSchedule::add_loss(SimTime at_ns, std::size_t server_index,
                             double probability) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  assert(probability >= 0.0 && probability <= 1.0);
  events_.push_back(
      FaultEvent{at_ns, server_index, false, false, 0.0, probability});
}

void FaultSchedule::add_join(SimTime at_ns, std::size_t server_index) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  placement_events_.push_back(PlacementEvent{at_ns, server_index, true});
}

void FaultSchedule::add_leave(SimTime at_ns, std::size_t server_index) {
  assert(!armed_ && "schedule is frozen once armed");
  assert(server_index < cluster_->num_servers());
  placement_events_.push_back(PlacementEvent{at_ns, server_index, false});
}

FaultSchedule::~FaultSchedule() {
  if (hook_armed_) cluster_->runtime().remove_quiesce_hook(hook_id_);
}

void FaultSchedule::arm() {
  assert(!armed_ && "FaultSchedule::arm called twice");
  armed_ = true;
  // Stable sort: same-instant events apply in insertion order, keeping the
  // schedule deterministic.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
  if (cluster_->num_shards() > 1) {
    // Fault application mutates fabric topology flags, membership, and
    // server state, which every shard reads without locks — so with real
    // threads it runs from a quiesce hook, where all shards are parked and
    // windows are capped so no event at or past a due fault runs first.
    hook_id_ = cluster_->runtime().add_quiesce_hook(
        [this](SimTime min_next) { return on_quiesce(min_next); });
    hook_armed_ = true;
  } else {
    cluster_->sim().spawn(driver(this));
  }
  if (!placement_events_.empty()) {
    assert(placement_ != nullptr &&
           "add_join/add_leave require set_placement_manager");
    std::stable_sort(placement_events_.begin(), placement_events_.end(),
                     [](const PlacementEvent& a, const PlacementEvent& b) {
                       return a.at_ns < b.at_ns;
                     });
    // One sequential driver in both modes: changes execute one at a time
    // on the coordinator's own event loop, and the manager internally
    // routes its cross-shard mutations through a quiesce hook.
    placement_->coordinator_sim().spawn(placement_driver(this));
  }
}

void FaultSchedule::apply(const FaultEvent& ev, SimTime now) {
  kv::Server& server = cluster_->server(ev.server);
  if (ev.slow > 0.0) {
    // Gray failure: the node answers slowly but is never marked down, so
    // neither fabric fail-fast nor membership-driven degraded reads kick
    // in — only latency-side mechanisms (hedging) can mask it.
    server.set_slowdown(ev.slow);
    if (fault_log_ != nullptr) {
      fault_log_->stamp(now, ev.server,
                        ev.slow > 1.0 ? obs::FaultKind::kSlowdown
                                      : obs::FaultKind::kSlowdownClear);
    }
    ++fired_;
    return;
  }
  if (ev.loss >= 0.0) {
    // Gray-lossy failure: the fabric silently eats a fraction of this
    // node's traffic; membership stays green and peers only see timeouts.
    cluster_->fabric().set_node_loss(static_cast<net::NodeId>(ev.server),
                                     ev.loss);
    if (fault_log_ != nullptr) {
      fault_log_->stamp(now, ev.server,
                        ev.loss > 0.0 ? obs::FaultKind::kLoss
                                      : obs::FaultKind::kLossClear);
    }
    ++fired_;
    return;
  }
  if (ev.restart) {
    // The node is reachable again immediately; the membership oracle
    // re-admits it only after the detection lag.
    server.recover();
  } else {
    // Fabric and server die now: queued deliveries to the node are
    // dropped, in-flight callers resolve via their RPC deadlines.
    server.fail();
    if (ev.wipe) server.store().clear();
    // Crash injection is one of the flight recorder's automatic dump
    // triggers: snapshot every ring's window as of the crash instant. The
    // kDump marker goes to the crashed node's own shard domain; the file
    // itself is written by the parent recorder after folding every shard
    // domain in, so the dump sees the whole cluster's freshest window.
    if (obs::FlightRecorder* const flight = cluster_->flight_recorder();
        flight != nullptr) {
      obs::FlightRecorder* const fl =
          cluster_->flight_domain_of(static_cast<net::NodeId>(ev.server));
      fl->record(now, ev.server, obs::FlightEventType::kDump,
                 flight->dumps_written());
      cluster_->merge_obs_domains();
      flight->dump_to_file("crash", now);
    }
  }
  if (fault_log_ != nullptr) {
    fault_log_->stamp(now, ev.server,
                      ev.restart ? obs::FaultKind::kRestart
                                 : obs::FaultKind::kCrash);
  }
  ++fired_;
  if (detection_lag_ns_ <= 0) {
    cluster_->membership().set_up(ev.server, ev.restart);
  } else if (hook_armed_) {
    detects_.push_back(
        PendingDetect{now + detection_lag_ns_, ev.server, ev.restart});
  } else {
    cluster_->sim().spawn(detect_coro(this, ev.server, ev.restart));
  }
}

SimTime FaultSchedule::on_quiesce(SimTime min_next) {
  constexpr SimTime kNever = sim::Simulator::kNever;
  // Events scheduled before the hook could first observe them (e.g. armed
  // mid-run with past due times) apply at the current quiesced instant,
  // mirroring the driver coroutine's "already late, fire now" behaviour.
  const SimTime floor = cluster_->now_quiesced();
  for (;;) {
    // Earliest pending action: the next schedule event or a lagged
    // membership flip. Fault events win ties (a flip queued by a crash in
    // this very call keeps its lag ordering naturally).
    SimTime due = idx_ < events_.size() ? events_[idx_].at_ns : kNever;
    std::size_t flip = detects_.size();
    for (std::size_t i = 0; i < detects_.size(); ++i) {
      if (detects_[i].at_ns < due) {
        due = detects_[i].at_ns;
        flip = i;
      }
    }
    if (due == kNever) return kNever;
    if (min_next != kNever && due > min_next) return due;
    const SimTime stamp = std::max(due, floor);
    if (flip < detects_.size()) {
      cluster_->membership().set_up(detects_[flip].server, detects_[flip].up);
      detects_.erase(detects_.begin() +
                     static_cast<std::ptrdiff_t>(flip));
    } else {
      apply(events_[idx_], stamp);
      ++idx_;
    }
  }
}

sim::Task<void> FaultSchedule::driver(FaultSchedule* self) {
  for (const FaultEvent& ev : self->events_) {
    const SimTime now = self->cluster_->sim().now();
    if (ev.at_ns > now) {
      co_await self->cluster_->sim().delay(ev.at_ns - now);
    }
    self->apply(ev, self->cluster_->sim().now());
  }
}

sim::Task<void> FaultSchedule::placement_driver(FaultSchedule* self) {
  sim::Simulator& sim = self->placement_->coordinator_sim();
  for (const PlacementEvent& ev : self->placement_events_) {
    const SimTime now = sim.now();
    if (ev.at_ns > now) co_await sim.delay(ev.at_ns - now);
    if (ev.join) {
      co_await self->placement_->join(ev.server);
    } else {
      co_await self->placement_->leave(ev.server);
    }
    ++self->fired_;
  }
}

sim::Task<void> FaultSchedule::detect_coro(FaultSchedule* self,
                                           std::size_t server, bool up) {
  co_await self->cluster_->sim().delay(self->detection_lag_ns_);
  self->cluster_->membership().set_up(server, up);
}

}  // namespace hpres::cluster
