// Named testbeds mirroring the paper's three evaluation clusters
// (Section VI-A). Each bundles a fabric preset with a CPU speed factor for
// the erasure cost model (relative to this repo's calibration host,
// standing in for Westmere / Haswell / Broadwell generations).
#pragma once

#include <string_view>

#include "cluster/cluster.h"

namespace hpres::cluster {

struct Testbed {
  std::string_view name;
  net::FabricParams fabric;
  double cpu_factor = 1.0;  ///< encode/decode speed multiplier
  kv::ServerParams server;
};

/// RI-QDR: Intel Westmere, IB QDR (32 Gbps), 8-worker servers, 20 GB each.
[[nodiscard]] Testbed ri_qdr();

/// RI-QDR nodes talking IPoIB instead of verbs (the Memc-IPoIB baseline).
[[nodiscard]] Testbed ri_qdr_ipoib();

/// SDSC-Comet: Intel Haswell, IB FDR (56 Gbps), 64 GB memcached servers.
[[nodiscard]] Testbed sdsc_comet();

/// RI2-EDR: Intel Broadwell, IB EDR (100 Gbps).
[[nodiscard]] Testbed ri2_edr();

/// Builds a ClusterConfig for `servers` + `clients` nodes on a testbed.
[[nodiscard]] ClusterConfig make_config(const Testbed& bed,
                                        std::size_t servers,
                                        std::size_t clients);

}  // namespace hpres::cluster
