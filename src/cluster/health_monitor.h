// Cluster health plane: the active monitor that closes the loop between
// the passive per-node signals (obs::HealthSignals, fed by rpc/fabric hot
// paths) and the online anomaly detector (obs::HealthDetector).
//
// Every `interval_ns` of simulated time the monitor assembles one
// HealthSample per server (windowed signal deltas + instantaneous handler
// queue depth + the membership oracle's view) and runs one detector tick.
// Transitions are mirrored into the flight recorder (kHealthState) and
// into owned Prometheus gauges (health.score_x1000 / health.node_state); a
// cluster-wide burst of RPC deadline expiries in one window triggers an
// automatic flight dump.
//
// In oracle mode the ticker is a spawned coroutine, byte-identical to the
// pre-shard monitor. Under shards > 1 the ticker is a ShardRuntime quiesce
// hook instead: tick times stay the exact interval boundaries (windows are
// capped so no event at or past a boundary runs first), ticks are stamped
// at those boundaries, and each sample sums the per-shard HealthSignals
// domains — all cross-shard reads happen while every shard thread is
// parked, so the detector's inputs are deterministic for a fixed (seed,
// shard count).
//
// Lifecycle mirrors obs::Sampler: the harness calls request_stop() when
// the workload completes (from inside the sim in oracle mode; from the
// main thread at quiescence under sharding), a final tick covers the last
// partial window, and the event queue drains normally. Monitoring is
// observation-only — it never perturbs workload timing, so a monitored run
// reports identical workload results to an unmonitored one (byte-identical
// in oracle mode).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/health.h"

namespace hpres::cluster {

struct HealthMonitorParams {
  /// Detector tick period (simulated). 100µs ≈ a few hundred ops per
  /// window at the simulated service rates — enough samples to clear
  /// HealthParams::min_samples without detection lag suffering.
  SimDur interval_ns = 100 * units::kMicrosecond;
  /// Per-response latency SLO classifying over-SLO responses for the
  /// burn-rate rule.
  SimDur slo_ns = 2 * units::kMillisecond;
  /// Cluster-wide RPC deadline expiries in a single window that trigger an
  /// automatic flight-recorder dump ("timeout-burst"). 0 disables.
  std::uint64_t timeout_burst = 8;
  /// Detector thresholds and hysteresis.
  obs::HealthParams detector;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(Cluster& cluster, HealthMonitorParams params = {});
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;
  ~HealthMonitor();

  /// Wires the signal counters into the cluster's rpc/fabric layers and
  /// starts the ticker: a spawned coroutine in oracle mode, a runtime
  /// quiesce hook with shards > 1. Call once, before running the
  /// simulation; the monitor must outlive it.
  void arm();

  /// Takes one final detector tick at the current (quiesced) instant and
  /// stops the ticker. Idempotent. With shards > 1 this reads cross-shard
  /// state, so call it only at quiescence — from the main thread after
  /// run() returns — never from a coroutine on a shard loop.
  void request_stop();

  /// Registers per-server owned gauges (health.score_x1000 as the
  /// fixed-point composite score, health.node_state as the NodeHealthState
  /// ordinal) under component "health". Owned, not bound: the values
  /// survive registry capture() after the monitor is destroyed.
  void register_gauges(obs::MetricsRegistry& reg, const std::string& op_label);

  [[nodiscard]] const obs::HealthDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] obs::HealthSignals& signals() noexcept { return signals_; }
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return detector_.ticks();
  }
  [[nodiscard]] std::uint64_t flight_dumps_triggered() const noexcept {
    return burst_dumps_;
  }

 private:
  static sim::Task<void> run(HealthMonitor* self);
  /// One detector tick stamped at `now`: sums the per-shard signal windows,
  /// samples queue depth + membership, runs the detector, mirrors
  /// transitions/gauges, and fires the timeout-burst dump.
  void tick_at(SimTime now);
  /// Quiesce-hook body (shards > 1): ticks every interval boundary that is
  /// due at or before `min_next`, returns the next boundary (caps windows
  /// so no event at or past it runs before the tick).
  SimTime on_quiesce(SimTime min_next);

  Cluster* cluster_;
  HealthMonitorParams params_;
  obs::HealthSignals signals_;
  obs::HealthDetector detector_;
  std::vector<obs::HealthSample> samples_;   ///< reused per tick
  std::vector<obs::Gauge*> score_gauges_;    ///< per server, when registered
  std::vector<obs::Gauge*> state_gauges_;
  std::size_t seen_transitions_ = 0;
  std::uint64_t burst_dumps_ = 0;
  SimTime next_tick_ = 0;      ///< next boundary (quiesce-hook mode)
  std::size_t hook_id_ = 0;    ///< runtime hook slot (quiesce-hook mode)
  bool hook_armed_ = false;
  bool stop_ = false;
  bool armed_ = false;
};

}  // namespace hpres::cluster
