#include "cluster/health_monitor.h"

namespace hpres::cluster {

HealthMonitor::HealthMonitor(Cluster& cluster, HealthMonitorParams params)
    : cluster_(&cluster),
      params_(params),
      signals_(cluster.num_servers(), params.slo_ns),
      detector_(cluster.num_servers(), params.detector),
      samples_(cluster.num_servers()) {}

HealthMonitor::~HealthMonitor() {
  if (hook_armed_) cluster_->runtime().remove_quiesce_hook(hook_id_);
}

void HealthMonitor::arm() {
  if (armed_) return;
  armed_ = true;
  cluster_->set_health_signals(&signals_);
  if (cluster_->num_shards() > 1) {
    // Parallel runs tick from a runtime quiesce hook: every shard thread is
    // parked when it fires, so sampling queue depths, membership and the
    // per-shard signal domains is race-free, and capping windows at the
    // next boundary keeps tick times exact and deterministic.
    next_tick_ = cluster_->now_quiesced() + params_.interval_ns;
    hook_id_ = cluster_->runtime().add_quiesce_hook(
        [this](SimTime min_next) { return on_quiesce(min_next); });
    hook_armed_ = true;
  } else {
    cluster_->sim().spawn(run(this));
  }
}

void HealthMonitor::request_stop() {
  if (!armed_ || stop_) return;
  // Final tick so symptoms in the last partial window are never dropped.
  tick_at(cluster_->now_quiesced());
  stop_ = true;
}

void HealthMonitor::register_gauges(obs::MetricsRegistry& reg,
                                    const std::string& op_label) {
  score_gauges_.clear();
  state_gauges_.clear();
  for (std::size_t i = 0; i < cluster_->num_servers(); ++i) {
    const obs::MetricLabels labels{"health", "server" + std::to_string(i),
                                   op_label};
    score_gauges_.push_back(&reg.gauge("health.score_x1000", labels));
    state_gauges_.push_back(&reg.gauge("health.node_state", labels));
    score_gauges_.back()->set(1000);  // neutral score until the first tick
  }
}

void HealthMonitor::tick_at(SimTime now) {
  const std::vector<obs::HealthSignals*> domains = cluster_->health_domains();
  std::uint64_t window_timeouts = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    obs::HealthSample& s = samples_[i];
    // A node's window is the sum over every live signal domain (exactly one
    // in oracle mode; one per shard in parallel runs, where a node's own
    // shard records its rpc symptoms but any sender's shard may record a
    // fabric drop against it).
    s.window = {};
    for (obs::HealthSignals* d : domains) {
      const obs::HealthWindow w = d->take_window(i);
      s.window.responses += w.responses;
      s.window.timeouts += w.timeouts;
      s.window.retries += w.retries;
      s.window.drops += w.drops;
      s.window.over_slo += w.over_slo;
      s.window.rtt_sum_ns += w.rtt_sum_ns;
    }
    s.queue_depth = cluster_->server(i).queue_depth();
    s.up = cluster_->membership().up(i);
    window_timeouts += s.window.timeouts;
    obs::FlightRecorder* const fl =
        cluster_->flight_domain_of(static_cast<net::NodeId>(i));
    if (fl != nullptr) {
      fl->record(now, i, obs::FlightEventType::kQueueDepth, s.queue_depth,
                 static_cast<std::uint32_t>(s.window.responses));
    }
  }
  detector_.tick(now, samples_);

  // Mirror new transitions into the flight recorder and the gauges.
  const auto& transitions = detector_.transitions();
  for (; seen_transitions_ < transitions.size(); ++seen_transitions_) {
    const obs::HealthTransition& tr = transitions[seen_transitions_];
    obs::FlightRecorder* const fl =
        cluster_->flight_domain_of(static_cast<net::NodeId>(tr.node));
    if (fl != nullptr) {
      fl->record(tr.t_ns, tr.node, obs::FlightEventType::kHealthState,
                 static_cast<std::uint64_t>(tr.to),
                 static_cast<std::uint32_t>(tr.from));
    }
  }
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i < score_gauges_.size()) {
      score_gauges_[i]->set(
          static_cast<std::int64_t>(detector_.score(i) * 1000.0));
      state_gauges_[i]->set(static_cast<std::int64_t>(detector_.state(i)));
    }
  }

  // A cluster-wide burst of deadline expiries in one window is the second
  // automatic dump trigger (after crash injection): snapshot the freshest
  // ring window while the symptoms are still in it. The dump always comes
  // from the parent recorder, after folding in the per-shard domains.
  obs::FlightRecorder* const flight = cluster_->flight_recorder();
  if (flight != nullptr && params_.timeout_burst > 0 &&
      window_timeouts >= params_.timeout_burst) {
    cluster_->merge_obs_domains();
    flight->record(now, 0, obs::FlightEventType::kDump,
                   flight->dumps_written());
    if (flight->dump_to_file("timeout-burst", now)) ++burst_dumps_;
  }
}

SimTime HealthMonitor::on_quiesce(SimTime min_next) {
  if (stop_) return sim::Simulator::kNever;
  while (min_next != sim::Simulator::kNever && next_tick_ <= min_next) {
    tick_at(next_tick_);
    next_tick_ += params_.interval_ns;
  }
  // At full quiescence (min_next == kNever) nothing is pending: the final
  // partial window is covered by the request_stop() tick.
  return min_next == sim::Simulator::kNever ? sim::Simulator::kNever
                                            : next_tick_;
}

sim::Task<void> HealthMonitor::run(HealthMonitor* self) {
  for (;;) {
    co_await self->cluster_->sim().delay(self->params_.interval_ns);
    if (self->stop_) break;
    self->tick_at(self->cluster_->sim().now());
  }
}

}  // namespace hpres::cluster
