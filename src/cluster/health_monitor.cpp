#include "cluster/health_monitor.h"

namespace hpres::cluster {

HealthMonitor::HealthMonitor(Cluster& cluster, HealthMonitorParams params)
    : cluster_(&cluster),
      params_(params),
      signals_(cluster.num_servers(), params.slo_ns),
      detector_(cluster.num_servers(), params.detector),
      samples_(cluster.num_servers()) {}

void HealthMonitor::arm() {
  if (armed_) return;
  // The monitor samples every server's rpc/store state from one ticker
  // coroutine — an oracle-mode feature (the detector's inputs are not
  // shard-safe).
  assert(cluster_->num_shards() == 1 &&
         "HealthMonitor requires oracle mode (shards <= 1)");
  armed_ = true;
  cluster_->set_health_signals(&signals_);
  cluster_->sim().spawn(run(this));
}

void HealthMonitor::request_stop() {
  if (!armed_ || stop_) return;
  // Final tick so symptoms in the last partial window are never dropped.
  tick_once();
  stop_ = true;
}

void HealthMonitor::register_gauges(obs::MetricsRegistry& reg,
                                    const std::string& op_label) {
  score_gauges_.clear();
  state_gauges_.clear();
  for (std::size_t i = 0; i < cluster_->num_servers(); ++i) {
    const obs::MetricLabels labels{"health", "server" + std::to_string(i),
                                   op_label};
    score_gauges_.push_back(&reg.gauge("health.score_x1000", labels));
    state_gauges_.push_back(&reg.gauge("health.node_state", labels));
    score_gauges_.back()->set(1000);  // neutral score until the first tick
  }
}

void HealthMonitor::tick_once() {
  const SimTime now = cluster_->sim().now();
  obs::FlightRecorder* const flight = cluster_->flight_recorder();
  std::uint64_t window_timeouts = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    obs::HealthSample& s = samples_[i];
    s.window = signals_.take_window(i);
    s.queue_depth = cluster_->server(i).queue_depth();
    s.up = cluster_->membership().up(i);
    window_timeouts += s.window.timeouts;
    if (flight != nullptr) {
      flight->record(now, i, obs::FlightEventType::kQueueDepth,
                     s.queue_depth,
                     static_cast<std::uint32_t>(s.window.responses));
    }
  }
  detector_.tick(now, samples_);

  // Mirror new transitions into the flight recorder and the gauges.
  const auto& transitions = detector_.transitions();
  for (; seen_transitions_ < transitions.size(); ++seen_transitions_) {
    const obs::HealthTransition& tr = transitions[seen_transitions_];
    if (flight != nullptr) {
      flight->record(tr.t_ns, tr.node, obs::FlightEventType::kHealthState,
                     static_cast<std::uint64_t>(tr.to),
                     static_cast<std::uint32_t>(tr.from));
    }
  }
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i < score_gauges_.size()) {
      score_gauges_[i]->set(
          static_cast<std::int64_t>(detector_.score(i) * 1000.0));
      state_gauges_[i]->set(static_cast<std::int64_t>(detector_.state(i)));
    }
  }

  // A cluster-wide burst of deadline expiries in one window is the second
  // automatic dump trigger (after crash injection): snapshot the freshest
  // ring window while the symptoms are still in it.
  if (flight != nullptr && params_.timeout_burst > 0 &&
      window_timeouts >= params_.timeout_burst) {
    flight->record(now, 0, obs::FlightEventType::kDump,
                   flight->dumps_written());
    if (flight->dump_to_file("timeout-burst", now)) ++burst_dumps_;
  }
}

sim::Task<void> HealthMonitor::run(HealthMonitor* self) {
  for (;;) {
    co_await self->cluster_->sim().delay(self->params_.interval_ns);
    if (self->stop_) break;
    self->tick_once();
  }
}

}  // namespace hpres::cluster
