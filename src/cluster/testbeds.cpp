#include "cluster/testbeds.h"

namespace hpres::cluster {

namespace {

kv::ServerParams server_with(std::uint32_t workers, std::uint64_t memory) {
  kv::ServerParams p;
  p.workers = workers;
  p.memory_bytes = memory;
  return p;
}

}  // namespace

Testbed ri_qdr() {
  // 2.53 GHz Westmere: the calibration reference (factor 1.0). Storage
  // nodes run with 20 GB Memcached and 8 workers (Section VI-B).
  return Testbed{.name = "RI-QDR",
                 .fabric = net::FabricParams::rdma_qdr(),
                 .cpu_factor = 1.0,
                 .server = server_with(8, 20ULL * units::kGiB)};
}

Testbed ri_qdr_ipoib() {
  Testbed bed = ri_qdr();
  bed.name = "RI-QDR-IPoIB";
  bed.fabric = net::FabricParams::ipoib_qdr();
  return bed;
}

Testbed sdsc_comet() {
  // Dual 12-core Haswell, FDR; YCSB experiments use 64 GB per server.
  return Testbed{.name = "SDSC-Comet",
                 .fabric = net::FabricParams::rdma_fdr(),
                 .cpu_factor = 1.8,
                 .server = server_with(12, 64ULL * units::kGiB)};
}

Testbed ri2_edr() {
  // Dual 14-core Broadwell, EDR.
  return Testbed{.name = "RI2-EDR",
                 .fabric = net::FabricParams::rdma_edr(),
                 .cpu_factor = 2.2,
                 .server = server_with(14, 64ULL * units::kGiB)};
}

ClusterConfig make_config(const Testbed& bed, std::size_t servers,
                          std::size_t clients) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = clients;
  cfg.fabric = bed.fabric;
  cfg.server = bed.server;
  return cfg;
}

}  // namespace hpres::cluster
