// Cluster harness: assembles the simulator, fabric, servers, clients, hash
// ring and membership into one object, with controlled failure injection.
// Node ids: servers occupy 0..S-1, clients S..S+C-1.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "ec/codec.h"
#include "ec/cost_model.h"
#include "kv/client.h"
#include "kv/hash_ring.h"
#include "kv/membership.h"
#include "kv/server.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/shard_runtime.h"

namespace hpres::cluster {

struct ClusterConfig {
  std::size_t num_servers = 5;
  std::size_t num_clients = 1;
  net::FabricParams fabric = net::FabricParams::rdma_qdr();
  kv::ServerParams server;
  kv::ClientParams client;
  SimDur membership_check_ns = 1'500;
  std::size_t ring_vnodes = 128;
  std::uint64_t ring_seed = 0x5eed;
  /// Servers initially projected onto the hash ring: the active prefix
  /// [0, initial_active_servers). 0 = all provisioned servers (the classic
  /// fixed-membership cluster). Servers outside the prefix still exist and
  /// serve traffic — they just own no placement until a PlacementManager
  /// join() projects them in.
  std::size_t initial_active_servers = 0;
  /// Event-loop shards for the parallel runtime. 0 or 1 = the
  /// deterministic single-threaded oracle mode; N > 1 partitions servers
  /// and clients round-robin over N event loops run by real threads
  /// (capped to num_servers + num_clients). Fault injection and the whole
  /// observability stack (tracing, flight recorder, health monitor) work
  /// in either mode: parallel runs use per-shard observability domains
  /// merged deterministically at quiescence, and faults apply at runtime
  /// quiesce points.
  std::size_t shards = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  /// Folds any remaining per-shard observability domains into the attached
  /// parent instruments (a no-op when already merged or in oracle mode).
  ~Cluster();

  /// The shard runtime driving every event loop (one loop in oracle mode).
  [[nodiscard]] sim::ShardRuntime& runtime() noexcept { return runtime_; }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return runtime_.num_shards();
  }
  /// Shard 0's event loop — the only loop in oracle mode, where this is
  /// exactly the classic single-simulator API. Harness code driving a
  /// multi-shard cluster must spawn onto each node's own loop instead
  /// (sim_for_node) and run via Cluster::run().
  [[nodiscard]] sim::Simulator& sim() noexcept { return runtime_.shard(0); }
  /// The event loop that drives `node`'s coroutines (its shard's loop).
  [[nodiscard]] sim::Simulator& sim_for_node(net::NodeId node) noexcept {
    return fabric_.sim_of(node);
  }
  /// The event loop for client index `i` (node id num_servers + i).
  [[nodiscard]] sim::Simulator& sim_for_client(std::size_t i) noexcept {
    return sim_for_node(static_cast<net::NodeId>(config_.num_servers + i));
  }
  [[nodiscard]] kv::KvFabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const kv::HashRing& ring() const noexcept { return ring_; }
  /// Mutable ring access for the placement plane (PlacementManager
  /// cutover). Harness code must not mutate the ring while shards run —
  /// with shards > 1 mutations go through a runtime quiesce hook.
  [[nodiscard]] kv::HashRing& mutable_ring() noexcept { return ring_; }
  [[nodiscard]] kv::Membership& membership() noexcept { return membership_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t num_servers() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] std::size_t num_clients() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] kv::Server& server(std::size_t index) {
    return *servers_.at(index);
  }
  [[nodiscard]] kv::Client& client(std::size_t index) {
    return *clients_.at(index);
  }

  /// NodeId of each server, indexed by server-list position.
  [[nodiscard]] const std::vector<net::NodeId>& server_nodes() const noexcept {
    return server_nodes_;
  }

  /// Turns on server-side erasure offloads (kSetEncode/kGetDecode) on every
  /// server. The codec must outlive the cluster.
  void enable_server_ec(const ec::Codec& codec, ec::CostModel cost,
                        bool materialize);

  /// Controlled failure: server stops serving, fabric drops its traffic,
  /// membership broadcasts the death — all atomically. Safe between
  /// operations; for mid-workload crashes with detection lag, use
  /// FaultSchedule instead.
  void fail_server(std::size_t index);
  void recover_server(std::size_t index);

  /// Attaches a versioned placement view to every client: requests are
  /// stamped with the view's epoch at issue, which is what lets servers
  /// bounce writes that resolved owners under a stale ring. Engines attach
  /// the same view through Engine::attach_placement. Pass nullptr to
  /// detach (legacy placement-unaware behavior, byte-identical).
  void set_placement_view(const kv::PlacementView* view);

  /// Arms RPC deadlines/retries on every client and server. With a policy
  /// set, calls to dead or lossy nodes resolve kTimeout instead of
  /// parking forever — required for mid-workload fault injection.
  void set_rpc_policy(const kv::RpcPolicy& policy);

  /// Attaches a span tracer to the fabric (NIC occupancy spans) and to
  /// every node's RPC layer (rpc/timeout spans) under process `pid`.
  /// Engines attach themselves through EngineContext (use tracer_for_client
  /// so each engine records into its shard's domain). In parallel runs with
  /// an enabled tracer this builds one single-writer tracer domain per
  /// shard, with shard-disjoint trace/flow/async id spaces (offset = shard,
  /// stride = num_shards); merge_obs_domains() folds them back into
  /// `tracer` in ascending shard order at quiescence.
  void set_tracer(obs::Tracer* tracer, std::uint32_t pid = 0);

  /// The tracer domain that nodes of shard `s` record into (the attached
  /// tracer itself in oracle mode; nullptr when tracing is off).
  [[nodiscard]] obs::Tracer* tracer_domain(std::size_t s) noexcept {
    return shard_tracers_.empty() ? tracer_ : shard_tracers_[s].get();
  }
  [[nodiscard]] obs::Tracer* tracer_for_node(net::NodeId node) noexcept {
    return tracer_domain(fabric_.shard_of(node));
  }
  [[nodiscard]] obs::Tracer* tracer_for_client(std::size_t i) noexcept {
    return tracer_for_node(static_cast<net::NodeId>(config_.num_servers + i));
  }
  [[nodiscard]] std::uint32_t trace_pid() const noexcept { return trace_pid_; }

  /// Attaches per-node health signal counters to every node's RPC layer
  /// (response RTTs, deadline expiries, retries) and to the fabric (drops).
  /// Observation-only; pass nullptr to detach. Parallel runs record into
  /// one HealthSignals domain per shard (same node capacity); readers sum
  /// windows across health_domains().
  void set_health_signals(obs::HealthSignals* signals);

  /// Every live health-signal domain: the per-shard domains in parallel
  /// runs, the single attached instance in oracle mode, empty when
  /// detached. Sum take_window() across these for a node's full window.
  [[nodiscard]] std::vector<obs::HealthSignals*> health_domains();

  /// Attaches the flight recorder to every node and the fabric: sizes its
  /// rings for all S+C nodes, labels them server0../client0.., and routes
  /// timeout/retry/drop events into it. Observation-only.
  void set_flight_recorder(obs::FlightRecorder* flight);

  /// The attached flight recorder (nullptr when none) — FaultSchedule uses
  /// this for automatic crash dumps.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const noexcept {
    return flight_;
  }

  /// The flight-recorder domain that `node`'s shard records into (the
  /// attached recorder itself in oracle mode; nullptr when none). Each
  /// domain carries rings for every node — only the writer is per-shard.
  [[nodiscard]] obs::FlightRecorder* flight_domain_of(
      net::NodeId node) noexcept {
    return shard_flights_.empty()
               ? flight_
               : shard_flights_[fabric_.shard_of(node)].get();
  }

  /// Deterministic merge of the per-shard observability domains into the
  /// attached parent instruments, in ascending shard order (the canonical
  /// shard-then-timestamp order). Call at quiescence — after run() returns
  /// or from a runtime quiesce hook — before exporting traces or dumping
  /// flight rings. Idempotent: absorbed domains are left empty, so
  /// mid-run merges (crash dumps) and the final merge compose.
  void merge_obs_domains();

  /// Quiesced simulated time: max over shard clocks. Between runs (or from
  /// a quiesce hook) every shard is parked, so this is THE cluster time in
  /// parallel mode; in oracle mode it is sim().now().
  [[nodiscard]] SimTime now_quiesced() noexcept {
    SimTime t = 0;
    for (std::size_t s = 0; s < runtime_.num_shards(); ++s) {
      t = std::max(t, runtime_.shard(s).now());
    }
    return t;
  }

  /// Registers the fabric, every server store, and every client's stats
  /// into `reg`, labelled server0..N / client0..N / "fabric" with the given
  /// op label (the experiment point, e.g. "era-ce-cd/64K").
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& op_label) const;

  /// Starts every node's dispatch loop. Call once, before running.
  void start();

  /// Runs the simulation to quiescence; returns final simulated time. In
  /// oracle mode this is the classic single event loop; with shards > 1 it
  /// runs all shard loops conservatively in parallel and refreshes the
  /// merged fabric counters afterwards.
  SimTime run() {
    const SimTime end = runtime_.run();
    fabric_.merge_stats();
    return end;
  }

  /// Sum of bytes_used across all server stores (memory-efficiency metric).
  [[nodiscard]] std::uint64_t total_bytes_used() const;
  /// Sum of evicted (lost) bytes across all server stores.
  [[nodiscard]] std::uint64_t total_evicted_bytes() const;
  /// Sum of configured capacities.
  [[nodiscard]] std::uint64_t total_capacity() const;

 private:
  /// Shard of node `i` under `config`: servers and clients are each dealt
  /// round-robin so every shard carries a balanced slice of both roles.
  [[nodiscard]] static std::vector<std::uint32_t> shard_map(
      const ClusterConfig& config);
  [[nodiscard]] static std::size_t effective_shards(
      const ClusterConfig& config);

  ClusterConfig config_;
  sim::ShardRuntime runtime_;
  kv::KvFabric fabric_;
  kv::HashRing ring_;
  kv::Membership membership_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<std::unique_ptr<kv::Server>> servers_;
  std::vector<std::unique_ptr<kv::Client>> clients_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  obs::HealthSignals* health_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  // Per-shard single-writer observability domains (parallel runs only;
  // empty in oracle mode). Indexed by shard.
  std::vector<std::unique_ptr<obs::Tracer>> shard_tracers_;
  std::vector<std::unique_ptr<obs::HealthSignals>> shard_signals_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> shard_flights_;
  bool started_ = false;
};

}  // namespace hpres::cluster
