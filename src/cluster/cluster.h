// Cluster harness: assembles the simulator, fabric, servers, clients, hash
// ring and membership into one object, with controlled failure injection.
// Node ids: servers occupy 0..S-1, clients S..S+C-1.
#pragma once

#include <memory>
#include <vector>

#include "ec/codec.h"
#include "ec/cost_model.h"
#include "kv/client.h"
#include "kv/hash_ring.h"
#include "kv/membership.h"
#include "kv/server.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/shard_runtime.h"

namespace hpres::cluster {

struct ClusterConfig {
  std::size_t num_servers = 5;
  std::size_t num_clients = 1;
  net::FabricParams fabric = net::FabricParams::rdma_qdr();
  kv::ServerParams server;
  kv::ClientParams client;
  SimDur membership_check_ns = 1'500;
  std::size_t ring_vnodes = 128;
  std::uint64_t ring_seed = 0x5eed;
  /// Event-loop shards for the parallel runtime. 0 or 1 = the
  /// deterministic single-threaded oracle mode; N > 1 partitions servers
  /// and clients round-robin over N event loops run by real threads
  /// (capped to num_servers + num_clients). Fault injection, tracing, and
  /// the flight recorder require oracle mode.
  std::size_t shards = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The shard runtime driving every event loop (one loop in oracle mode).
  [[nodiscard]] sim::ShardRuntime& runtime() noexcept { return runtime_; }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return runtime_.num_shards();
  }
  /// Shard 0's event loop — the only loop in oracle mode, where this is
  /// exactly the classic single-simulator API. Harness code driving a
  /// multi-shard cluster must spawn onto each node's own loop instead
  /// (sim_for_node) and run via Cluster::run().
  [[nodiscard]] sim::Simulator& sim() noexcept { return runtime_.shard(0); }
  /// The event loop that drives `node`'s coroutines (its shard's loop).
  [[nodiscard]] sim::Simulator& sim_for_node(net::NodeId node) noexcept {
    return fabric_.sim_of(node);
  }
  /// The event loop for client index `i` (node id num_servers + i).
  [[nodiscard]] sim::Simulator& sim_for_client(std::size_t i) noexcept {
    return sim_for_node(static_cast<net::NodeId>(config_.num_servers + i));
  }
  [[nodiscard]] kv::KvFabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const kv::HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] kv::Membership& membership() noexcept { return membership_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t num_servers() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] std::size_t num_clients() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] kv::Server& server(std::size_t index) {
    return *servers_.at(index);
  }
  [[nodiscard]] kv::Client& client(std::size_t index) {
    return *clients_.at(index);
  }

  /// NodeId of each server, indexed by server-list position.
  [[nodiscard]] const std::vector<net::NodeId>& server_nodes() const noexcept {
    return server_nodes_;
  }

  /// Turns on server-side erasure offloads (kSetEncode/kGetDecode) on every
  /// server. The codec must outlive the cluster.
  void enable_server_ec(const ec::Codec& codec, ec::CostModel cost,
                        bool materialize);

  /// Controlled failure: server stops serving, fabric drops its traffic,
  /// membership broadcasts the death — all atomically. Safe between
  /// operations; for mid-workload crashes with detection lag, use
  /// FaultSchedule instead.
  void fail_server(std::size_t index);
  void recover_server(std::size_t index);

  /// Arms RPC deadlines/retries on every client and server. With a policy
  /// set, calls to dead or lossy nodes resolve kTimeout instead of
  /// parking forever — required for mid-workload fault injection.
  void set_rpc_policy(const kv::RpcPolicy& policy);

  /// Attaches a span tracer to the fabric (NIC occupancy spans) and to
  /// every node's RPC layer (rpc/timeout spans) under process `pid`.
  /// Engines attach themselves through EngineContext.
  void set_tracer(obs::Tracer* tracer, std::uint32_t pid = 0) {
    fabric_.set_tracer(tracer, pid);
    for (const auto& s : servers_) s->set_rpc_tracer(tracer, pid);
    for (const auto& c : clients_) c->set_rpc_tracer(tracer, pid);
  }

  /// Attaches per-node health signal counters to every node's RPC layer
  /// (response RTTs, deadline expiries, retries) and to the fabric (drops).
  /// Observation-only; pass nullptr to detach.
  void set_health_signals(obs::HealthSignals* signals) {
    fabric_.set_health_signals(signals);
    for (const auto& s : servers_) s->set_health_signals(signals);
    for (const auto& c : clients_) c->set_health_signals(signals);
  }

  /// Attaches the flight recorder to every node and the fabric: sizes its
  /// rings for all S+C nodes, labels them server0../client0.., and routes
  /// timeout/retry/drop events into it. Observation-only.
  void set_flight_recorder(obs::FlightRecorder* flight);

  /// The attached flight recorder (nullptr when none) — FaultSchedule uses
  /// this for automatic crash dumps.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const noexcept {
    return flight_;
  }

  /// Registers the fabric, every server store, and every client's stats
  /// into `reg`, labelled server0..N / client0..N / "fabric" with the given
  /// op label (the experiment point, e.g. "era-ce-cd/64K").
  void register_metrics(obs::MetricsRegistry& reg,
                        const std::string& op_label) const;

  /// Starts every node's dispatch loop. Call once, before running.
  void start();

  /// Runs the simulation to quiescence; returns final simulated time. In
  /// oracle mode this is the classic single event loop; with shards > 1 it
  /// runs all shard loops conservatively in parallel and refreshes the
  /// merged fabric counters afterwards.
  SimTime run() {
    const SimTime end = runtime_.run();
    fabric_.merge_stats();
    return end;
  }

  /// Sum of bytes_used across all server stores (memory-efficiency metric).
  [[nodiscard]] std::uint64_t total_bytes_used() const;
  /// Sum of evicted (lost) bytes across all server stores.
  [[nodiscard]] std::uint64_t total_evicted_bytes() const;
  /// Sum of configured capacities.
  [[nodiscard]] std::uint64_t total_capacity() const;

 private:
  /// Shard of node `i` under `config`: servers and clients are each dealt
  /// round-robin so every shard carries a balanced slice of both roles.
  [[nodiscard]] static std::vector<std::uint32_t> shard_map(
      const ClusterConfig& config);
  [[nodiscard]] static std::size_t effective_shards(
      const ClusterConfig& config);

  ClusterConfig config_;
  sim::ShardRuntime runtime_;
  kv::KvFabric fabric_;
  kv::HashRing ring_;
  kv::Membership membership_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<std::unique_ptr<kv::Server>> servers_;
  std::vector<std::unique_ptr<kv::Client>> clients_;
  obs::FlightRecorder* flight_ = nullptr;
  bool started_ = false;
};

}  // namespace hpres::cluster
