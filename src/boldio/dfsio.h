// TestDFSIO-style workload (Section VI-D): M concurrent map tasks each
// write (then read) one file of a given size, and the benchmark reports
// aggregate throughput = total bytes / makespan. Two backends: the Boldio
// burst buffer (chunk KV ops through a resilience engine) and Lustre-Direct
// (map tasks stream straight to the parallel filesystem).
#pragma once

#include <vector>

#include "boldio/boldio_client.h"

namespace hpres::boldio {

struct DfsioConfig {
  std::size_t num_maps = 32;
  std::uint64_t file_bytes = 512ULL * 1024 * 1024;
  std::size_t chunk_bytes = 1024 * 1024;
};

struct DfsioResult {
  std::uint64_t total_bytes = 0;
  SimDur makespan_ns = 0;
  std::uint64_t failures = 0;

  [[nodiscard]] double throughput_mib_s() const {
    if (makespan_ns <= 0) return 0.0;
    return static_cast<double>(total_bytes) / (1024.0 * 1024.0) /
           units::to_s(makespan_ns);
  }
};

/// One Boldio map task: writes (mode=write) or reads its file. Decrements
/// the latch on completion; accumulates failures into *failures.
sim::Task<void> dfsio_boldio_map(BoldioClient* client, std::string file,
                                 std::uint64_t bytes, bool write,
                                 sim::Latch* done, std::uint64_t* failures);

/// One Lustre-Direct map task: streams the file to/from Lustre in
/// chunk-sized requests (Hadoop's sequential record writer).
sim::Task<void> dfsio_direct_map(LustreModel* lustre, std::uint64_t bytes,
                                 std::size_t chunk_bytes, bool write,
                                 sim::Latch* done);

}  // namespace hpres::boldio
