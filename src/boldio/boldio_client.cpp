#include "boldio/boldio_client.h"

#include <vector>

namespace hpres::boldio {

sim::Task<Status> BoldioClient::write_file(std::string name,
                                           std::uint64_t bytes) {
  // Hadoop write stream -> chunk Sets, bounded by the pipeline depth. The
  // same chunk payload buffer is shared: content is a size-preserving
  // stand-in for file data (DESIGN.md: benchmarks run size-only).
  const SharedBytes chunk_payload = zero_bytes(params_.chunk_bytes);
  std::uint64_t failures_before = engine_->stats().set_failures;
  std::uint64_t remaining = bytes;
  std::uint64_t index = 0;
  std::size_t in_flight = 0;
  while (remaining > 0) {
    const std::size_t this_chunk = remaining >= params_.chunk_bytes
                                       ? params_.chunk_bytes
                                       : static_cast<std::size_t>(remaining);
    SharedBytes payload =
        this_chunk == params_.chunk_bytes ? chunk_payload
                                          : zero_bytes(this_chunk);
    // Map-task stream processing for this chunk (see BoldioClientParams).
    co_await sim_->delay(static_cast<SimDur>(
        params_.stream_write_ns_per_byte * static_cast<double>(this_chunk)));
    (void)engine_->iset(file_chunk_key(name, index), std::move(payload));
    remaining -= this_chunk;
    ++index;
    if (++in_flight >= params_.pipeline_depth) {
      co_await engine_->wait_all();
      in_flight = 0;
    }
  }
  co_await engine_->wait_all();

  ++stats_.files_written;
  stats_.bytes_written += bytes;
  const std::uint64_t failures =
      engine_->stats().set_failures - failures_before;
  stats_.chunk_failures += failures;

  // Asynchronous persistence: the file drains to Lustre in the background.
  if (lustre_ != nullptr) {
    sim_->spawn(flush_to_lustre(lustre_, bytes));
  }
  co_return failures == 0
      ? Status::Ok()
      : Status{StatusCode::kInternal, "chunk writes failed"};
}

sim::Task<Status> BoldioClient::read_file(std::string name,
                                          std::uint64_t bytes) {
  std::uint64_t failures_before = engine_->stats().get_failures;
  std::uint64_t remaining = bytes;
  std::uint64_t index = 0;
  std::size_t in_flight = 0;
  while (remaining > 0) {
    const std::uint64_t this_chunk =
        remaining >= params_.chunk_bytes ? params_.chunk_bytes : remaining;
    co_await sim_->delay(static_cast<SimDur>(
        params_.stream_read_ns_per_byte * static_cast<double>(this_chunk)));
    (void)engine_->iget(file_chunk_key(name, index));
    remaining -= this_chunk;
    ++index;
    if (++in_flight >= params_.pipeline_depth) {
      co_await engine_->wait_all();
      in_flight = 0;
    }
  }
  co_await engine_->wait_all();

  ++stats_.files_read;
  stats_.bytes_read += bytes;
  const std::uint64_t failures =
      engine_->stats().get_failures - failures_before;
  stats_.chunk_failures += failures;
  co_return failures == 0
      ? Status::Ok()
      : Status{StatusCode::kNotFound, "chunk reads failed"};
}

sim::Task<void> BoldioClient::flush_to_lustre(LustreModel* lustre,
                                              std::uint64_t bytes) {
  co_await lustre->write(bytes);
}

}  // namespace hpres::boldio
