// Boldio burst-buffer client (Section V): maps Hadoop I/O streams onto
// key-value pairs cached in the resilient KV cluster, pipelining chunk
// operations through the engine's non-blocking API, and asynchronously
// persisting written files to Lustre (the flush never blocks the writer —
// the client guarantees redundancy through the resilience engine before the
// application's write completes).
#pragma once

#include <string>

#include "boldio/lustre.h"
#include "resilience/engine.h"

namespace hpres::boldio {

struct BoldioClientParams {
  std::size_t chunk_bytes = 1024 * 1024;  ///< Hadoop stream chunking (1 MB)
  std::size_t pipeline_depth = 16;        ///< chunks in flight per stream
  /// Hadoop map-task stream processing cost, charged per byte on the map's
  /// own stream (serialization, record framing, JVM copies). Writes are far
  /// heavier than reads; these rates (~90 MB/s per writing map, ~420 MB/s
  /// per reading map) reproduce the per-map throughputs implied by the
  /// paper's TestDFSIO numbers — with 32 maps they, not the RDMA fabric,
  /// are the Boldio-side bottleneck, which is why Era and Async-Rep tie.
  double stream_write_ns_per_byte = 11.0;
  double stream_read_ns_per_byte = 2.4;
};

struct BoldioClientStats {
  std::uint64_t files_written = 0;
  std::uint64_t files_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t chunk_failures = 0;
};

class BoldioClient {
 public:
  /// `engine` provides resilient chunk storage; `lustre` receives the
  /// asynchronous persistence stream (may be null to disable flushing).
  BoldioClient(sim::Simulator& sim, resilience::Engine& engine,
               LustreModel* lustre, BoldioClientParams params = {})
      : sim_(&sim), engine_(&engine), lustre_(lustre), params_(params) {}
  BoldioClient(const BoldioClient&) = delete;
  BoldioClient& operator=(const BoldioClient&) = delete;

  [[nodiscard]] const BoldioClientStats& stats() const noexcept {
    return stats_;
  }

  /// Writes a `bytes`-long file as pipelined chunk Sets. Returns once all
  /// chunks are durable in the KV burst buffer (Lustre persistence
  /// continues in the background). Fails if any chunk failed.
  sim::Task<Status> write_file(std::string name, std::uint64_t bytes);

  /// Reads the file back through pipelined chunk Gets.
  sim::Task<Status> read_file(std::string name, std::uint64_t bytes);

  /// Key of chunk `index` of file `name`.
  [[nodiscard]] static kv::Key file_chunk_key(const std::string& name,
                                              std::uint64_t index) {
    return name + "/" + std::to_string(index);
  }

 private:
  static sim::Task<void> flush_to_lustre(LustreModel* lustre,
                                         std::uint64_t bytes);

  sim::Simulator* sim_;
  resilience::Engine* engine_;
  LustreModel* lustre_;
  BoldioClientParams params_;
  BoldioClientStats stats_;
};

}  // namespace hpres::boldio
