#include "boldio/lustre.h"

#include <algorithm>

namespace hpres::boldio {

sim::Task<void> LustreModel::transfer(std::uint64_t bytes,
                                      double aggregate_gbps,
                                      SimTime* pipe_busy_until) {
  const SimTime now = sim_->now();
  // Queue on the shared pipe, then occupy it for the aggregate-rate time.
  const SimDur agg_time = units::transfer_time_ns(bytes, aggregate_gbps);
  const SimTime start = std::max(now, *pipe_busy_until);
  const SimTime agg_done = start + agg_time;
  *pipe_busy_until = agg_done;
  // The caller additionally cannot beat its own stream cap, and pays the
  // metadata round trip.
  const SimTime stream_done =
      now + units::transfer_time_ns(bytes, params_.per_stream_gbps);
  const SimTime done = std::max(agg_done, stream_done) + params_.metadata_ns;
  co_await sim_->delay(done - now);
}

sim::Task<void> LustreModel::write(std::uint64_t bytes) {
  ++stats_.write_ops;
  stats_.bytes_written += bytes;
  co_await transfer(bytes, params_.aggregate_write_gbps, &write_busy_until_);
}

sim::Task<void> LustreModel::read(std::uint64_t bytes) {
  ++stats_.read_ops;
  stats_.bytes_read += bytes;
  co_await transfer(bytes, params_.aggregate_read_gbps, &read_busy_until_);
}

}  // namespace hpres::boldio
