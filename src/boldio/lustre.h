// Lustre parallel-filesystem model: a shared storage backend with separate
// read/write aggregate pipes, a per-stream bandwidth cap, and a metadata
// round trip per operation.
//
// Stands in for the paper's 1 TB Lustre deployment on RI-QDR (DESIGN.md §2).
// The aggregate pipes are deliberately far below the memcached fabric's
// aggregate bandwidth — that gap is exactly what a burst buffer exists to
// bridge, and it is what produces Figure 13's Boldio-vs-Lustre-Direct gap.
// The read pipe is modeled below the write pipe, matching the paper's
// testbed where TestDFSIO read over Lustre-Direct fared far worse (5.9x)
// than write (2.6x).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sim/simulator.h"

namespace hpres::boldio {

struct LustreParams {
  double aggregate_write_gbps = 9.0;   ///< shared OST write bandwidth
  double aggregate_read_gbps = 18.5;   ///< shared OST read bandwidth
  double per_stream_gbps = 2.4;        ///< single-client stream cap
  SimDur metadata_ns = 200'000;        ///< open/lookup/close round trip
};

struct LustreStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t read_ops = 0;
};

class LustreModel {
 public:
  LustreModel(sim::Simulator& sim, LustreParams params)
      : sim_(&sim), params_(params) {}
  LustreModel(const LustreModel&) = delete;
  LustreModel& operator=(const LustreModel&) = delete;

  [[nodiscard]] const LustreParams& params() const noexcept { return params_; }
  [[nodiscard]] const LustreStats& stats() const noexcept { return stats_; }

  /// Writes `bytes`, suspending for the modeled duration: queueing on the
  /// shared write pipe, bounded by the per-stream rate, plus metadata.
  sim::Task<void> write(std::uint64_t bytes);

  /// Reads `bytes` under the same model on the read pipe.
  sim::Task<void> read(std::uint64_t bytes);

 private:
  sim::Task<void> transfer(std::uint64_t bytes, double aggregate_gbps,
                           SimTime* pipe_busy_until);

  sim::Simulator* sim_;
  LustreParams params_;
  SimTime write_busy_until_ = 0;
  SimTime read_busy_until_ = 0;
  LustreStats stats_;
};

}  // namespace hpres::boldio
