#include "boldio/dfsio.h"

namespace hpres::boldio {

sim::Task<void> dfsio_boldio_map(BoldioClient* client, std::string file,
                                 std::uint64_t bytes, bool write,
                                 sim::Latch* done, std::uint64_t* failures) {
  // Branch rather than a conditional expression: co_await inside ?: hits a
  // GCC 12 coroutine lifetime bug (double-destroyed temporary).
  Status s = Status::Ok();
  if (write) {
    s = co_await client->write_file(std::move(file), bytes);
  } else {
    s = co_await client->read_file(std::move(file), bytes);
  }
  if (!s.ok()) ++*failures;
  done->count_down();
}

sim::Task<void> dfsio_direct_map(LustreModel* lustre, std::uint64_t bytes,
                                 std::size_t chunk_bytes, bool write,
                                 sim::Latch* done) {
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t this_chunk =
        remaining >= chunk_bytes ? chunk_bytes : remaining;
    if (write) {
      co_await lustre->write(this_chunk);
    } else {
      co_await lustre->read(this_chunk);
    }
    remaining -= this_chunk;
  }
  done->count_down();
}

}  // namespace hpres::boldio
