#include "ec/chunker.h"

#include <cassert>
#include <cstring>

namespace hpres::ec {

ChunkLayout make_layout(std::size_t value_size, std::size_t k,
                        std::size_t alignment) {
  assert(k >= 1 && alignment >= 1);
  const std::size_t raw = (value_size + k - 1) / k;
  std::size_t frag = (raw + alignment - 1) / alignment * alignment;
  if (frag == 0) frag = alignment;
  return ChunkLayout{value_size, frag, k};
}

std::vector<Bytes> split_value(ConstByteSpan value,
                               const ChunkLayout& layout) {
  assert(value.size() == layout.original_size);
  std::vector<Bytes> out;
  out.reserve(layout.k);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < layout.k; ++i) {
    Bytes frag(layout.fragment_size);  // zero-initialized => tail padding
    const std::size_t take =
        offset < value.size()
            ? std::min(layout.fragment_size, value.size() - offset)
            : 0;
    if (take > 0) {
      std::memcpy(frag.data(), value.data() + offset, take);
    }
    offset += take;
    out.push_back(std::move(frag));
  }
  return out;
}

Result<Bytes> join_fragments(std::span<const ConstByteSpan> data_fragments,
                             const ChunkLayout& layout) {
  if (data_fragments.size() != layout.k) {
    return Status{StatusCode::kInvalidArgument, "fragment count != k"};
  }
  for (const auto& f : data_fragments) {
    if (f.size() != layout.fragment_size) {
      return Status{StatusCode::kInvalidArgument, "fragment size mismatch"};
    }
  }
  if (layout.original_size > layout.k * layout.fragment_size) {
    return Status{StatusCode::kInvalidArgument, "layout overflows fragments"};
  }
  Bytes out(layout.original_size);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < layout.k && offset < out.size(); ++i) {
    const std::size_t take =
        std::min(layout.fragment_size, out.size() - offset);
    std::memcpy(out.data() + offset, data_fragments[i].data(), take);
    offset += take;
  }
  return out;
}

}  // namespace hpres::ec
