// Locally Repairable Codes (Azure-LRC style) — the paper's future-work
// direction for minimizing recovery overheads ("optimized erasure codes
// such as locally repairable codes", Section VIII).
//
// LRC(k, l, g) splits the k data fragments into l equal local groups, adds
// one XOR local parity per group and g Reed-Solomon-style global parities
// (n = k + l + g). A single lost fragment rebuilds from its group — k/l
// reads instead of k — while the global parities keep multi-failure
// tolerance: this construction verifies at build time that every erasure
// pattern of up to g+1 fragments is decodable (the Azure LRC guarantee).
// The price is storage overhead (k+l+g)/k > (k+g')/k for comparable MDS
// tolerance: repair locality is bought with extra parity.
#pragma once

#include "ec/codec.h"

namespace hpres::ec {

class LrcCodec final : public MatrixCodec {
 public:
  /// Requires k % l == 0, l >= 1, g >= 0, k + l + g <= 256.
  /// Construction searches deterministically for global-parity
  /// coefficients satisfying the (g+1)-failure decodability guarantee and
  /// asserts success (small codes only need the first candidate).
  LrcCodec(std::size_t k, std::size_t l, std::size_t g);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "lrc";
  }

  [[nodiscard]] std::size_t local_groups() const noexcept { return l_; }
  [[nodiscard]] std::size_t global_parities() const noexcept { return g_; }
  [[nodiscard]] std::size_t group_size() const noexcept { return k() / l_; }

  /// Local group (0..l-1) of a data or local-parity slot; nullopt for
  /// global parities.
  [[nodiscard]] std::optional<std::size_t> group_of(std::size_t slot) const;

  /// Repair locality: a data fragment rebuilds from its group peers + the
  /// group's local parity (group_size reads); a local parity from its
  /// group's data. Global parities and multi-failure patterns fall back to
  /// the generic any-k path.
  [[nodiscard]] std::optional<std::vector<std::size_t>>
  minimal_repair_sources(std::size_t slot,
                         const std::vector<bool>& present) const override;

  /// Local repair is a pure XOR of the group sources (the local parity is
  /// the XOR of its group).
  [[nodiscard]] Status rebuild_from_sources(
      std::size_t slot, std::span<const ConstByteSpan> sources,
      ByteSpan out) const override;

 private:
  static GfMatrix build_generator(std::size_t k, std::size_t l,
                                  std::size_t g);

  std::size_t l_;
  std::size_t g_;
};

}  // namespace hpres::ec
