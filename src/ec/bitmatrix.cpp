#include "ec/bitmatrix.h"

#include <cassert>
#include <cstring>

namespace hpres::ec {

std::size_t BitMatrix::popcount() const noexcept {
  std::size_t n = 0;
  for (const auto b : bits_) n += b;
  return n;
}

BitMatrix BitMatrix::from_gf_matrix(const GfMatrix& m) {
  constexpr unsigned w = 8;
  BitMatrix out(m.rows() * w, m.cols() * w);
  const GF256& gf = GF256::instance();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const std::uint8_t a = m.at(r, c);
      if (a == 0) continue;
      for (unsigned col = 0; col < w; ++col) {
        const std::uint8_t pattern =
            gf.mul(a, static_cast<std::uint8_t>(1u << col));
        for (unsigned row = 0; row < w; ++row) {
          if (pattern & (1u << row)) {
            out.set(r * w + row, c * w + col, true);
          }
        }
      }
    }
  }
  return out;
}

void bitmatrix_apply(const BitMatrix& bits, unsigned w,
                     std::span<const ConstByteSpan> sources,
                     std::span<ByteSpan> outputs) {
  assert(bits.rows() == outputs.size() * w &&
         bits.cols() == sources.size() * w);
  const std::size_t frag_size = sources.empty() ? 0 : sources[0].size();
  assert(frag_size % w == 0 && "fragment size must be a multiple of w");
  const std::size_t packet = frag_size / w;

  for (std::size_t p = 0; p < outputs.size(); ++p) {
    assert(outputs[p].size() == frag_size);
    for (unsigned r = 0; r < w; ++r) {
      ByteSpan out = outputs[p].subspan(r * packet, packet);
      bool first = true;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        for (unsigned c = 0; c < w; ++c) {
          if (!bits.get(p * w + r, i * w + c)) continue;
          const ConstByteSpan src = sources[i].subspan(c * packet, packet);
          if (first) {
            std::memcpy(out.data(), src.data(), packet);
            first = false;
          } else {
            GF256::xor_region(src, out);
          }
        }
      }
      if (first) std::memset(out.data(), 0, packet);
    }
  }
}

}  // namespace hpres::ec
