#include "ec/gf256.h"

#include <cassert>
#include <cstring>

#include "ec/gf_kernels.h"

namespace hpres::ec {

const GF256& GF256::instance() {
  static const GF256 gf;
  return gf;
}

GF256::GF256() {
  // Build exp/log tables by repeated multiplication by the generator x
  // (i.e. shift-left with conditional reduction by the primitive poly).
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_table_[i] = static_cast<std::uint8_t>(x);
    log_table_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  log_table_[0] = 0;  // sentinel; log(0) is a precondition violation

  for (unsigned a = 0; a < 256; ++a) {
    mul_table_[a << 8] = 0;          // a * 0
    mul_table_[a] = 0;               // 0 * b (row a==0)
  }
  for (unsigned a = 1; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      const unsigned lg =
          static_cast<unsigned>(log_table_[a]) + log_table_[b];
      mul_table_[a << 8 | b] = exp_table_[lg % 255];
    }
  }
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) const noexcept {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  const int lg = static_cast<int>(log_table_[a]) - log_table_[b];
  return exp_table_[static_cast<unsigned>(lg + 255) % 255];
}

std::uint8_t GF256::inv(std::uint8_t a) const noexcept {
  assert(a != 0 && "inverse of zero in GF(256)");
  return exp_table_[(255u - log_table_[a]) % 255];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned e) const noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned lg = (static_cast<unsigned>(log_table_[a]) * e) % 255;
  return exp_table_[lg];
}

void GF256::mul_region(std::uint8_t c, ConstByteSpan src,
                       ByteSpan dst) const noexcept {
  assert(src.size() == dst.size());
  gf_mul_region(active_kernels(), c,
                reinterpret_cast<const std::uint8_t*>(src.data()),
                reinterpret_cast<std::uint8_t*>(dst.data()), src.size());
}

void GF256::mul_region_acc(std::uint8_t c, ConstByteSpan src,
                           ByteSpan dst) const noexcept {
  assert(src.size() == dst.size());
  gf_mul_region_acc(active_kernels(), c,
                    reinterpret_cast<const std::uint8_t*>(src.data()),
                    reinterpret_cast<std::uint8_t*>(dst.data()), src.size());
}

void GF256::xor_region(ConstByteSpan src, ByteSpan dst) noexcept {
  assert(src.size() == dst.size());
  active_kernels().xor_region(
      reinterpret_cast<const std::uint8_t*>(src.data()),
      reinterpret_cast<std::uint8_t*>(dst.data()), src.size());
}

}  // namespace hpres::ec
