// Dense matrices over GF(2^8): the construction and inversion machinery
// behind Reed-Solomon generator matrices and erasure decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ec/gf256.h"

namespace hpres::ec {

/// Row-major dense matrix over GF(2^8).
class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  std::uint8_t& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (row-major contiguous).
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const noexcept {
    return &data_[r * cols_];
  }

  [[nodiscard]] bool operator==(const GfMatrix&) const = default;

  /// n x n identity.
  static GfMatrix identity(std::size_t n);

  /// rows x cols Vandermonde: at(r, c) = (r+1)^c... see .cpp for the exact
  /// element choice (rows indexed by distinct field elements).
  static GfMatrix vandermonde(std::size_t rows, std::size_t cols);

  /// rows x cols Cauchy: at(r, c) = 1 / (x_r ^ y_c) with
  /// x_r = r, y_c = rows + c (all distinct, x_r ^ y_c != 0).
  static GfMatrix cauchy(std::size_t rows, std::size_t cols);

  /// Matrix product (this * other). Dimension mismatch is a precondition
  /// violation (assert).
  [[nodiscard]] GfMatrix multiply(const GfMatrix& other) const;

  /// Gauss-Jordan inverse. Returns kInvalidArgument for non-square input
  /// and kInternal for a singular matrix.
  [[nodiscard]] Result<GfMatrix> inverted() const;

  /// Returns the submatrix formed by the given row indices (in order).
  [[nodiscard]] GfMatrix select_rows(const std::vector<std::size_t>& idx) const;

  /// In-place elementary column operations used to systematize a
  /// Vandermonde matrix (see systematic_rs_generator).
  void swap_cols(std::size_t a, std::size_t b);
  void scale_col(std::size_t c, std::uint8_t factor);
  /// col[dst] ^= factor * col[src]
  void add_scaled_col(std::size_t dst, std::size_t src, std::uint8_t factor);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Builds the systematic (k+m) x k Reed-Solomon generator matrix from a
/// Vandermonde matrix: elementary column operations transform the top k x k
/// block into the identity while preserving the MDS property (this is the
/// classic Jerasure/ISA-L construction). Row i < k emits data chunk i
/// verbatim; rows k..k+m-1 emit parity.
GfMatrix systematic_rs_generator(std::size_t k, std::size_t m);

/// Builds the systematic Cauchy generator: identity stacked on an m x k
/// Cauchy block. Any k rows are linearly independent because every square
/// submatrix of a Cauchy matrix is nonsingular.
GfMatrix systematic_cauchy_generator(std::size_t k, std::size_t m);

/// Builds the classic RAID-6 generator for m <= 2: parity row P of all ones
/// and row Q of generator powers (1, g, g^2, ...).
GfMatrix raid6_generator(std::size_t k, std::size_t m);

}  // namespace hpres::ec
