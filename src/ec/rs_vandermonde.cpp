#include "ec/rs_vandermonde.h"

#include <cassert>

namespace hpres::ec {

RsVandermondeCodec::RsVandermondeCodec(std::size_t k, std::size_t m)
    : MatrixCodec(k, m, systematic_rs_generator(k, m)) {
  assert(k >= 1 && k + m <= GF256::kFieldSize);
}

}  // namespace hpres::ec
