#include "ec/cost_model.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"
#include "ec/chunker.h"

namespace hpres::ec {

CostModel CostModel::scaled_by_cpu(double factor) const noexcept {
  if (factor <= 0.0) factor = 1.0;
  CostModel out = *this;
  out.encode_.fixed_ns /= factor;
  out.encode_.ns_per_byte /= factor;
  out.decode_per_failure_.fixed_ns /= factor;
  out.decode_per_failure_.ns_per_byte /= factor;
  return out;
}

CostModel CostModel::defaults(Scheme scheme, std::size_t k, std::size_t m,
                              double cpu_speed_factor) {
  // Default constants keep the paper's Figure 4 *shape* — RS-Vandermonde
  // fastest across the KV range (1 KB - 1 MB) because the XOR-oriented
  // schemes carry larger per-operation setup (bit-matrix/schedule
  // construction) that only amortizes at much larger objects (~256 MB per
  // the paper) — but the magnitudes are refit to this repository's SIMD GF
  // kernels (ec/gf_kernels.h, AVX2 split-table multiply): tools/
  // calibrate_cost_model measures RS(3,2) encode of 1 MB at ~92 us and
  // single-failure reconstruct at ~33 us, roughly 5.5x faster than the
  // former scalar-kernel constants (which matched the paper's Westmere/
  // Jerasure magnitudes, ~509 us per MB). Rates are per byte of *value*
  // per parity fragment: encoding m parities touches every value byte once
  // per parity; reconstructing one lost fragment costs about one pass over
  // one value's worth of survivor bytes. The stylized CRS slope stays
  // below RS so the paper's large-object crossover survives, even though
  // the measured bitmatrix path vectorizes less well than the Vandermonde
  // one. Use calibrate() to refit against the real codecs on any host.
  double per_parity_byte_ns = 0.044;
  double decode_byte_ns = 0.028;
  double encode_fixed_ns = 1'500.0;
  double decode_fixed_ns = 2'500.0;  // includes survivor-matrix inversion
  switch (scheme) {
    case Scheme::kRsVandermonde:
      break;  // reference values above
    case Scheme::kCauchyRs:
      // Cheaper per byte (pure XOR packets) but pays bit-matrix schedule
      // construction on every operation.
      per_parity_byte_ns = 0.040;
      decode_byte_ns = 0.026;
      encode_fixed_ns = 12'000.0;
      decode_fixed_ns = 16'000.0;
      break;
    case Scheme::kRaid6:
      // P is pure XOR and Q one multiply-accumulate sweep; moderate setup.
      per_parity_byte_ns = 0.042;
      decode_byte_ns = 0.032;
      encode_fixed_ns = 6'000.0;
      decode_fixed_ns = 7'000.0;
      break;
  }
  (void)k;
  const AffineCost encode{encode_fixed_ns,
                          per_parity_byte_ns * static_cast<double>(m)};
  const AffineCost decode{decode_fixed_ns, decode_byte_ns};
  return CostModel(encode, decode).scaled_by_cpu(cpu_speed_factor);
}

namespace {

double time_encode_ns(const Codec& codec, std::size_t value_size,
                      int iterations) {
  const ChunkLayout layout =
      make_layout(value_size, codec.k(), codec.alignment());
  const Bytes value = make_pattern(value_size, /*seed=*/42);
  const std::vector<Bytes> frags = split_value(value, layout);
  std::vector<ConstByteSpan> data(frags.begin(), frags.end());
  std::vector<Bytes> parity(codec.m(), Bytes(layout.fragment_size));
  std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    codec.encode(data, parity_spans);
  }
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         iterations;
}

double time_decode_ns(const Codec& codec, std::size_t value_size,
                      int iterations) {
  const ChunkLayout layout =
      make_layout(value_size, codec.k(), codec.alignment());
  const Bytes value = make_pattern(value_size, /*seed=*/43);
  std::vector<Bytes> frags = split_value(value, layout);
  std::vector<ConstByteSpan> data(frags.begin(), frags.end());
  std::vector<Bytes> parity(codec.m(), Bytes(layout.fragment_size));
  std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
  codec.encode(data, parity_spans);

  std::vector<Bytes> all = frags;
  for (auto& p : parity) all.push_back(p);
  std::vector<bool> present(codec.n(), true);
  present[0] = false;  // one lost data fragment

  std::vector<ByteSpan> spans(all.begin(), all.end());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    (void)codec.reconstruct_data(spans, present);
  }
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         iterations;
}

AffineCost fit_affine(std::size_t x1, double y1, std::size_t x2, double y2) {
  if (x2 == x1) return AffineCost{y1, 0.0};
  const double slope =
      (y2 - y1) / (static_cast<double>(x2) - static_cast<double>(x1));
  const double fixed = y1 - slope * static_cast<double>(x1);
  return AffineCost{std::max(0.0, fixed), std::max(0.0, slope)};
}

}  // namespace

CostModel CostModel::calibrate(const Codec& codec, std::size_t probe_small,
                               std::size_t probe_large, int iterations) {
  const double enc_small = time_encode_ns(codec, probe_small, iterations);
  const double enc_large = time_encode_ns(codec, probe_large, iterations);
  const double dec_small = time_decode_ns(codec, probe_small, iterations);
  const double dec_large = time_decode_ns(codec, probe_large, iterations);
  return CostModel(fit_affine(probe_small, enc_small, probe_large, enc_large),
                   fit_affine(probe_small, dec_small, probe_large, dec_large));
}

}  // namespace hpres::ec
