#include "ec/cost_model.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"
#include "ec/chunker.h"

namespace hpres::ec {

CostModel CostModel::scaled_by_cpu(double factor) const noexcept {
  if (factor <= 0.0) factor = 1.0;
  CostModel out = *this;
  out.encode_.fixed_ns /= factor;
  out.encode_.ns_per_byte /= factor;
  out.decode_per_failure_.fixed_ns /= factor;
  out.decode_per_failure_.ns_per_byte /= factor;
  return out;
}

CostModel CostModel::defaults(Scheme scheme, std::size_t k, std::size_t m,
                              double cpu_speed_factor) {
  // Default constants are fit to the paper's Figure 4 magnitudes on its
  // Westmere reference (Jerasure v2.0): encoding 1 MB with RS(3,2) costs a
  // few hundred microseconds, and RS-Vandermonde is the fastest scheme
  // across the KV range (1 KB - 1 MB) because the XOR-oriented schemes
  // carry larger per-operation setup (bit-matrix/schedule construction)
  // that only amortizes at much larger objects (~256 MB per the paper).
  // Rates are per byte of *value* per parity fragment: encoding m parities
  // touches every value byte once per parity; reconstructing one lost
  // fragment costs about one pass over one value's worth of survivor
  // bytes. Use calibrate() to refit against this repo's real codecs.
  double per_parity_byte_ns = 0.24;
  double decode_byte_ns = 0.26;
  double encode_fixed_ns = 6'000.0;
  double decode_fixed_ns = 10'000.0;  // includes survivor-matrix inversion
  switch (scheme) {
    case Scheme::kRsVandermonde:
      break;  // reference values above
    case Scheme::kCauchyRs:
      // Cheaper per byte (pure XOR packets) but pays bit-matrix schedule
      // construction on every operation.
      per_parity_byte_ns = 0.22;
      decode_byte_ns = 0.24;
      encode_fixed_ns = 60'000.0;
      decode_fixed_ns = 80'000.0;
      break;
    case Scheme::kRaid6:
      // P is pure XOR and Q one doubling pass; moderate setup cost.
      per_parity_byte_ns = 0.23;
      decode_byte_ns = 0.30;
      encode_fixed_ns = 30'000.0;
      decode_fixed_ns = 35'000.0;
      break;
  }
  (void)k;
  const AffineCost encode{encode_fixed_ns,
                          per_parity_byte_ns * static_cast<double>(m)};
  const AffineCost decode{decode_fixed_ns, decode_byte_ns};
  return CostModel(encode, decode).scaled_by_cpu(cpu_speed_factor);
}

namespace {

double time_encode_ns(const Codec& codec, std::size_t value_size,
                      int iterations) {
  const ChunkLayout layout =
      make_layout(value_size, codec.k(), codec.alignment());
  const Bytes value = make_pattern(value_size, /*seed=*/42);
  const std::vector<Bytes> frags = split_value(value, layout);
  std::vector<ConstByteSpan> data(frags.begin(), frags.end());
  std::vector<Bytes> parity(codec.m(), Bytes(layout.fragment_size));
  std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    codec.encode(data, parity_spans);
  }
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         iterations;
}

double time_decode_ns(const Codec& codec, std::size_t value_size,
                      int iterations) {
  const ChunkLayout layout =
      make_layout(value_size, codec.k(), codec.alignment());
  const Bytes value = make_pattern(value_size, /*seed=*/43);
  std::vector<Bytes> frags = split_value(value, layout);
  std::vector<ConstByteSpan> data(frags.begin(), frags.end());
  std::vector<Bytes> parity(codec.m(), Bytes(layout.fragment_size));
  std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
  codec.encode(data, parity_spans);

  std::vector<Bytes> all = frags;
  for (auto& p : parity) all.push_back(p);
  std::vector<bool> present(codec.n(), true);
  present[0] = false;  // one lost data fragment

  std::vector<ByteSpan> spans(all.begin(), all.end());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    (void)codec.reconstruct_data(spans, present);
  }
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         iterations;
}

AffineCost fit_affine(std::size_t x1, double y1, std::size_t x2, double y2) {
  if (x2 == x1) return AffineCost{y1, 0.0};
  const double slope =
      (y2 - y1) / (static_cast<double>(x2) - static_cast<double>(x1));
  const double fixed = y1 - slope * static_cast<double>(x1);
  return AffineCost{std::max(0.0, fixed), std::max(0.0, slope)};
}

}  // namespace

CostModel CostModel::calibrate(const Codec& codec, std::size_t probe_small,
                               std::size_t probe_large, int iterations) {
  const double enc_small = time_encode_ns(codec, probe_small, iterations);
  const double enc_large = time_encode_ns(codec, probe_large, iterations);
  const double dec_small = time_decode_ns(codec, probe_small, iterations);
  const double dec_large = time_decode_ns(codec, probe_large, iterations);
  return CostModel(fit_affine(probe_small, enc_small, probe_large, enc_large),
                   fit_affine(probe_small, dec_small, probe_large, dec_large));
}

}  // namespace hpres::ec
