// Cauchy Reed-Solomon coding (the paper's CRS scheme): the systematic
// Cauchy generator is expanded into a bit matrix and applied with pure XOR
// packet operations. Data is bit-sliced, so reconstruction also goes
// through bit matrices built from the inverted survivor submatrix.
#pragma once

#include "ec/bitmatrix.h"
#include "ec/codec.h"

namespace hpres::ec {

class CauchyRsCodec final : public MatrixCodec {
 public:
  static constexpr unsigned kW = 8;  ///< bits per field element / packets per fragment

  /// Requires k >= 1, m >= 0, k + m <= 256.
  CauchyRsCodec(std::size_t k, std::size_t m);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "crs";
  }
  [[nodiscard]] std::size_t alignment() const noexcept override { return kW; }

  void encode(std::span<const ConstByteSpan> data,
              std::span<ByteSpan> parity) const override;
  [[nodiscard]] Status reconstruct(
      std::span<ByteSpan> fragments,
      const std::vector<bool>& present) const override;
  [[nodiscard]] Status reconstruct_data(
      std::span<ByteSpan> fragments,
      const std::vector<bool>& present) const override;

 private:
  [[nodiscard]] Status bit_solve(std::span<ByteSpan> fragments,
                                 const std::vector<bool>& present,
                                 bool data_only) const;

  BitMatrix parity_bits_;  // (m*8) x (k*8) expansion of the Cauchy block
};

}  // namespace hpres::ec
