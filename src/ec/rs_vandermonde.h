// Reed-Solomon coding with a systematized Vandermonde generator matrix —
// the paper's RS_Van scheme (its chosen codec for 1 KB - 1 MB values).
#pragma once

#include "ec/codec.h"

namespace hpres::ec {

class RsVandermondeCodec final : public MatrixCodec {
 public:
  /// Requires k >= 1, m >= 0, k + m <= 256 (distinct GF(256) evaluation
  /// points per fragment).
  RsVandermondeCodec(std::size_t k, std::size_t m);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rs_van";
  }
};

}  // namespace hpres::ec
