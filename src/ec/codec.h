// Erasure codec interface and the shared generator-matrix implementation.
//
// A codec over (k, m) turns k equal-sized data fragments into m parity
// fragments such that the original data survives the loss of any m of the
// k+m fragments (maximum distance separable property). Fragment indices
// 0..k-1 are data, k..k+m-1 are parity, matching the paper's RS(K,M)
// terminology where N = K + M fragments are spread over N servers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ec/gf_kernels.h"
#include "ec/gf_matrix.h"

namespace hpres::ec {

class Codec {
 public:
  Codec(std::size_t k, std::size_t m) : k_(k), m_(m) {}
  virtual ~Codec() = default;
  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return k_ + m_; }

  /// Stable scheme name for reports ("rs_van", "crs", "raid6").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Computes the m parity fragments from the k data fragments. All spans
  /// must have identical size; `data.size() == k`, `parity.size() == m`.
  /// Fragment sizes must be a multiple of alignment() bytes.
  virtual void encode(std::span<const ConstByteSpan> data,
                      std::span<ByteSpan> parity) const = 0;

  /// Restores every absent fragment in place. `fragments` holds k+m spans
  /// of identical size; `present[i]` says whether fragments[i] currently
  /// holds valid content. Absent spans must point at writable storage.
  /// Fails with kTooManyFailures when fewer than k fragments are present.
  [[nodiscard]] virtual Status reconstruct(
      std::span<ByteSpan> fragments, const std::vector<bool>& present) const = 0;

  /// Like reconstruct, but restores only the *data* fragments (0..k-1) —
  /// the cheap path a Get needs to rebuild a value after failures.
  [[nodiscard]] virtual Status reconstruct_data(
      std::span<ByteSpan> fragments, const std::vector<bool>& present) const = 0;

  /// Required fragment-size alignment in bytes (1 for pure GF codecs, the
  /// packet word size for bit-matrix codecs).
  [[nodiscard]] virtual std::size_t alignment() const noexcept { return 1; }

  /// Minimal set of source fragments from which the single fragment `slot`
  /// can be rebuilt, given the present map — the repair-locality interface
  /// of locally repairable codes. nullopt means "no shortcut: fetch any k"
  /// (the default for MDS codes, where every repair reads k fragments).
  [[nodiscard]] virtual std::optional<std::vector<std::size_t>>
  minimal_repair_sources(std::size_t slot,
                         const std::vector<bool>& present) const {
    (void)slot;
    (void)present;
    return std::nullopt;
  }

  /// Chooses which fragments a reader should fetch, given which slots are
  /// available: k fragments whose generator rows span the data (data slots
  /// preferred). For MDS codes any k available slots work; non-MDS codes
  /// (LRC) must pick an information-complete subset. kTooManyFailures when
  /// no decodable subset exists.
  [[nodiscard]] virtual Result<std::vector<std::size_t>> select_read_set(
      const std::vector<bool>& available) const {
    std::vector<std::size_t> chosen;
    chosen.reserve(k());
    for (std::size_t i = 0; i < n() && chosen.size() < k(); ++i) {
      if (i < available.size() && available[i]) chosen.push_back(i);
    }
    if (chosen.size() < k()) {
      return Status{StatusCode::kTooManyFailures,
                    "fewer than k fragments available"};
    }
    return chosen;
  }

  /// select_read_set with a caller-supplied preference order (e.g. least
  /// loaded server first): picks k decodable slots, trying slots in
  /// `preference` order before the remaining available slots in natural
  /// order. The result preserves preference order — callers that rank by
  /// load want the cheap slots fetched, not a sorted list. An empty
  /// preference degrades to natural order (NOT necessarily the same set as
  /// select_read_set, which may prefer data slots).
  [[nodiscard]] virtual Result<std::vector<std::size_t>>
  select_read_set_ordered(const std::vector<bool>& available,
                          std::span<const std::size_t> preference) const {
    std::vector<std::size_t> chosen = ordered_candidates(available, preference);
    if (chosen.size() < k()) {
      return Status{StatusCode::kTooManyFailures,
                    "fewer than k fragments available"};
    }
    chosen.resize(k());
    return chosen;
  }

  /// Rebuilds fragment `slot` from exactly the fragments named by
  /// minimal_repair_sources (same order). Only meaningful for codecs with
  /// repair locality; the default reports kInvalidArgument.
  [[nodiscard]] virtual Status rebuild_from_sources(
      std::size_t slot, std::span<const ConstByteSpan> sources,
      ByteSpan out) const {
    (void)slot;
    (void)sources;
    (void)out;
    return Status{StatusCode::kInvalidArgument,
                  "codec has no repair locality"};
  }

 protected:
  /// Available slots ordered preference-first (duplicates and unavailable
  /// entries in `preference` are skipped), then the remaining available
  /// slots in natural order.
  [[nodiscard]] std::vector<std::size_t> ordered_candidates(
      const std::vector<bool>& available,
      std::span<const std::size_t> preference) const {
    std::vector<std::size_t> out;
    out.reserve(n());
    std::vector<bool> taken(n(), false);
    for (const std::size_t s : preference) {
      if (s < available.size() && s < n() && available[s] && !taken[s]) {
        out.push_back(s);
        taken[s] = true;
      }
    }
    for (std::size_t i = 0; i < n() && i < available.size(); ++i) {
      if (available[i] && !taken[i]) out.push_back(i);
    }
    return out;
  }

 private:
  std::size_t k_;
  std::size_t m_;
};

/// Codec driven by a systematic (k+m) x k generator matrix over GF(2^8).
/// Encoding applies the parity block with the fused single-pass stripe
/// kernel (ec/gf_kernels.h) cached at construction; reconstruction inverts
/// the survivor-row submatrix (the textbook RS decode) and runs the erased
/// rows through the same fused kernel. Concrete codecs differ only in
/// generator construction and, optionally, a faster encode.
class MatrixCodec : public Codec {
 public:
  MatrixCodec(std::size_t k, std::size_t m, GfMatrix generator);

  void encode(std::span<const ConstByteSpan> data,
              std::span<ByteSpan> parity) const override;
  [[nodiscard]] Status reconstruct(
      std::span<ByteSpan> fragments,
      const std::vector<bool>& present) const override;
  [[nodiscard]] Status reconstruct_data(
      std::span<ByteSpan> fragments,
      const std::vector<bool>& present) const override;

  [[nodiscard]] const GfMatrix& generator() const noexcept {
    return generator_;
  }

  /// Rank-aware fetch selection: the survivors of the recovery plan (for
  /// MDS generators this matches the default first-k choice; for LRC it
  /// skips linearly dependent rows such as a redundant local parity).
  [[nodiscard]] Result<std::vector<std::size_t>> select_read_set(
      const std::vector<bool>& available) const override;

  /// Rank-aware preference-ordered selection: tries the first k candidates
  /// in preference order; when their generator rows are dependent (non-MDS
  /// patterns) falls back to the greedy spanning pass, still walking
  /// candidates in preference order so load ranking survives.
  [[nodiscard]] Result<std::vector<std::size_t>> select_read_set_ordered(
      const std::vector<bool>& available,
      std::span<const std::size_t> preference) const override;

 protected:
  /// How to rebuild the erased fragments from a chosen set of k survivors:
  /// erased data fragment erased_data[j] = sum_i coeffs(j, i) * fragment
  /// survivors[i]; erased parity is re-encoded from the completed data.
  struct RecoveryPlan {
    std::vector<std::size_t> survivors;    // exactly k present indices
    std::vector<std::size_t> erased_data;  // absent indices < k
    std::vector<std::size_t> erased_parity;  // absent indices >= k
    GfMatrix coeffs;  // erased_data.size() x k
  };

  /// Computes the plan, preferring data rows as survivors (their rows of
  /// the generator are unit vectors, keeping the inversion well-behaved).
  [[nodiscard]] Result<RecoveryPlan> plan_recovery(
      const std::vector<bool>& present) const;

  /// Re-encodes one parity fragment from complete data fragments.
  void encode_parity_row(std::size_t parity_index,
                         std::span<const ByteSpan> data,
                         ByteSpan out) const;

 private:
  [[nodiscard]] Status solve_erased(std::span<ByteSpan> fragments,
                                    const std::vector<bool>& present,
                                    bool data_only) const;

  GfMatrix generator_;  // (k+m) x k, top block identity
  StripeCoder parity_coder_;  // m x k parity block, cached for fused encode
};

/// Factory for the three schemes studied in the paper's Figure 4.
enum class Scheme : std::uint8_t { kRsVandermonde, kCauchyRs, kRaid6 };

[[nodiscard]] std::string_view to_string(Scheme s) noexcept;

/// Creates a codec; kRaid6 requires m <= 2.
[[nodiscard]] std::unique_ptr<Codec> make_codec(Scheme scheme, std::size_t k,
                                                std::size_t m);

}  // namespace hpres::ec
