// Encode/decode compute-time model charged inside the simulation.
//
// The paper's T_encode(D)/T_decode(D) terms (Equations 3 and 5) are the
// compute costs the ARPE must overlap with communication. In this
// reproduction the simulated clusters charge these costs from an affine
// model — T = fixed + bytes_processed / throughput — whose default
// constants were calibrated against this repository's real codecs (see
// `calibrate()` and bench/fig04_ec_study). A per-cluster CPU speed factor
// scales the model between the paper's Westmere / Haswell / Broadwell
// generations.
#pragma once

#include <cstddef>
#include <memory>

#include "common/units.h"
#include "ec/codec.h"

namespace hpres::ec {

/// Affine cost: fixed overhead plus per-byte time.
struct AffineCost {
  double fixed_ns = 0.0;
  double ns_per_byte = 0.0;

  [[nodiscard]] SimDur at(std::size_t bytes) const noexcept {
    const double ns = fixed_ns + ns_per_byte * static_cast<double>(bytes);
    return ns <= 0.0 ? 0 : static_cast<SimDur>(ns);
  }
};

/// Compute-time model for one codec configuration.
class CostModel {
 public:
  CostModel() = default;
  CostModel(AffineCost encode, AffineCost decode_per_failure)
      : encode_(encode), decode_per_failure_(decode_per_failure) {}

  /// Time to encode a value of `value_size` bytes (produce all m parities).
  [[nodiscard]] SimDur encode_ns(std::size_t value_size) const noexcept {
    return encode_.at(value_size);
  }

  /// Time to decode a value of `value_size` bytes with `failures` missing
  /// data fragments. No failures => no decode work (systematic code).
  [[nodiscard]] SimDur decode_ns(std::size_t value_size,
                                 unsigned failures) const noexcept {
    if (failures == 0) return 0;
    SimDur total = 0;
    for (unsigned f = 0; f < failures; ++f) {
      total += decode_per_failure_.at(value_size);
    }
    return total;
  }

  /// Scales all throughputs by `factor` (>1 = faster CPU). Models the
  /// paper's cluster generations relative to the calibration host.
  [[nodiscard]] CostModel scaled_by_cpu(double factor) const noexcept;

  /// Built-in constants calibrated on the reference host for a given
  /// scheme and (k, m). `cpu_speed_factor` as in scaled_by_cpu.
  static CostModel defaults(Scheme scheme, std::size_t k, std::size_t m,
                            double cpu_speed_factor = 1.0);

  /// Measures the real codec on this machine (wall-clock timing of encode
  /// and single-failure reconstruct at two probe sizes) and fits the
  /// affine model. Used by calibration tooling; sim benches use defaults()
  /// so their output is machine-independent.
  static CostModel calibrate(const Codec& codec, std::size_t probe_small,
                             std::size_t probe_large, int iterations);

 private:
  AffineCost encode_{};
  AffineCost decode_per_failure_{};
};

}  // namespace hpres::ec
