#include "ec/stripe.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hpres::ec {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16(ConstByteSpan in, std::size_t at) {
  return static_cast<std::uint16_t>(std::to_integer<unsigned>(in[at]) |
                                    (std::to_integer<unsigned>(in[at + 1])
                                     << 8));
}

std::uint32_t get_u32(ConstByteSpan in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<unsigned>(in[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::size_t stripe_append(Bytes& stripe, std::string_view key,
                          ConstByteSpan value) {
  assert(key.size() <= 0xFFFF);
  assert(value.size() <= 0xFFFFFFFFULL);
  put_u16(stripe, static_cast<std::uint16_t>(key.size()));
  put_u32(stripe, static_cast<std::uint32_t>(value.size()));
  const auto* kb = reinterpret_cast<const std::byte*>(key.data());
  stripe.insert(stripe.end(), kb, kb + key.size());
  const std::size_t value_offset = stripe.size();
  stripe.insert(stripe.end(), value.begin(), value.end());
  return value_offset;
}

Result<std::vector<StripeRecord>> stripe_parse(ConstByteSpan stripe) {
  std::vector<StripeRecord> out;
  std::size_t at = 0;
  while (at < stripe.size()) {
    if (stripe.size() - at < kStripeRecordHeader) {
      return Status{StatusCode::kInvalidArgument, "truncated record header"};
    }
    const std::size_t klen = get_u16(stripe, at);
    const std::size_t vlen = get_u32(stripe, at + 2);
    at += kStripeRecordHeader;
    if (stripe.size() - at < klen + vlen) {
      return Status{StatusCode::kInvalidArgument, "truncated record body"};
    }
    StripeRecord rec;
    rec.key.assign(reinterpret_cast<const char*>(stripe.data() + at), klen);
    rec.value_offset = at + klen;
    rec.value_len = vlen;
    out.push_back(std::move(rec));
    at += klen + vlen;
  }
  return out;
}

FragmentRange owning_fragments(const ChunkLayout& layout, std::size_t offset,
                               std::size_t len) {
  assert(layout.fragment_size > 0);
  FragmentRange r;
  r.first = offset / layout.fragment_size;
  const std::size_t last_byte = len > 0 ? offset + len - 1 : offset;
  r.last = last_byte / layout.fragment_size;
  if (r.last >= layout.k) r.last = layout.k - 1;
  if (r.first > r.last) r.first = r.last;
  return r;
}

Result<Bytes> extract_from_fragments(std::span<const ConstByteSpan> fragments,
                                     const FragmentRange& range,
                                     const ChunkLayout& layout,
                                     std::size_t offset, std::size_t len) {
  if (fragments.size() != range.count()) {
    return Status{StatusCode::kInvalidArgument, "fragment count != range"};
  }
  for (const auto& f : fragments) {
    if (f.size() != layout.fragment_size) {
      return Status{StatusCode::kInvalidArgument, "fragment size mismatch"};
    }
  }
  if (offset + len > layout.k * layout.fragment_size) {
    return Status{StatusCode::kInvalidArgument, "range overflows stripe"};
  }
  Bytes out(len);
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const std::size_t slot = range.first + i;
    const std::size_t frag_begin = slot * layout.fragment_size;
    const std::size_t seg_begin = std::max(offset, frag_begin);
    const std::size_t seg_end =
        std::min(offset + len, frag_begin + layout.fragment_size);
    if (seg_begin >= seg_end) continue;
    std::memcpy(out.data() + (seg_begin - offset),
                fragments[i].data() + (seg_begin - frag_begin),
                seg_end - seg_begin);
  }
  return out;
}

StorageFootprint predict_footprint(const FootprintParams& p) {
  StorageFootprint out;
  const std::size_t n = p.k + p.m;

  // Per-key striping: n fragments, each stored under a key.size()+2 chunk
  // key with its own item overhead and ChunkInfo.
  const ChunkLayout per_key = make_layout(p.value_size, p.k, p.alignment);
  out.striped_per_key =
      static_cast<double>(n) *
      static_cast<double>(p.key_size + 2 + per_key.fragment_size +
                          p.item_overhead + p.chunk_info_bytes);

  // Packed: records share one stripe. Amortize the stripe's n fragments
  // over the records it holds, then add the replicated locator entries.
  const std::size_t record =
      stripe_record_bytes(p.key_size, p.value_size);
  const std::size_t records_per_stripe =
      record > 0 ? std::max<std::size_t>(1, p.stripe_capacity / record) : 1;
  const std::size_t stripe_bytes = records_per_stripe * record;
  const ChunkLayout packed = make_layout(stripe_bytes, p.k, p.alignment);
  const double stripe_stored =
      static_cast<double>(n) *
      static_cast<double>(p.stripe_key_size + 2 + packed.fragment_size +
                          p.item_overhead + p.chunk_info_bytes);
  const double locator =
      static_cast<double>(p.locator_copies) *
      static_cast<double>(p.key_size + p.stripe_key_size +
                          p.locator_entry_overhead);
  out.packed_per_key =
      stripe_stored / static_cast<double>(records_per_stripe) + locator;
  out.savings_ratio =
      out.packed_per_key > 0 ? out.striped_per_key / out.packed_per_key : 0.0;
  return out;
}

}  // namespace hpres::ec
