#include "ec/gf_kernels.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdlib>

#include "ec/gf256.h"

namespace hpres::ec {

std::string_view to_string(GfKernelVariant v) noexcept {
  switch (v) {
    case GfKernelVariant::kScalar: return "scalar";
    case GfKernelVariant::kSsse3: return "ssse3";
    case GfKernelVariant::kAvx2: return "avx2";
  }
  return "unknown";
}

namespace detail {

namespace {

// --- Scalar reference kernels ------------------------------------------------
// The pre-SIMD loops, kept verbatim as the correctness baseline every other
// variant is tested against, and as the fallback on non-x86 hosts.

void scalar_mul_region(std::uint8_t c, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t n) {
  const std::uint8_t* row = GF256::instance().mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void scalar_mul_region_acc(std::uint8_t c, const std::uint8_t* src,
                           std::uint8_t* dst, std::size_t n) {
  const std::uint8_t* row = GF256::instance().mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void scalar_xor_region(const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  std::size_t i = 0;
  // Word-wide main loop; memcpy keeps this free of alignment UB and
  // compiles to plain 8-byte loads/stores.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// --- Dispatch ----------------------------------------------------------------

bool force_scalar_env() {
  const char* env = std::getenv("HPRES_FORCE_SCALAR_GF");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const GfKernelOps* resolve() {
  if (force_scalar_env()) return &scalar_ops();
#if defined(HPRES_GF_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return &avx2_ops();
#endif
#if defined(HPRES_GF_HAVE_SSSE3)
  if (__builtin_cpu_supports("ssse3")) return &ssse3_ops();
#endif
  return &scalar_ops();
}

// Resolved once on first use; refresh_dispatch() re-resolves (tests only).
const GfKernelOps* g_active = nullptr;

}  // namespace

const GfKernelOps& scalar_ops() noexcept {
  static const GfKernelOps ops{GfKernelVariant::kScalar, &scalar_mul_region,
                               &scalar_mul_region_acc, &scalar_xor_region};
  return ops;
}

const NibbleTables* nibble_tables() noexcept {
  static const std::array<NibbleTables, 256> tables = [] {
    std::array<NibbleTables, 256> t{};
    const GF256& gf = GF256::instance();
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned i = 0; i < 16; ++i) {
        t[c].lo[i] = gf.mul(static_cast<std::uint8_t>(c),
                            static_cast<std::uint8_t>(i));
        t[c].hi[i] = gf.mul(static_cast<std::uint8_t>(c),
                            static_cast<std::uint8_t>(i << 4));
      }
    }
    return t;
  }();
  return tables.data();
}

void refresh_dispatch() noexcept { g_active = resolve(); }

}  // namespace detail

const GfKernelOps& active_kernels() noexcept {
  if (detail::g_active == nullptr) detail::g_active = detail::resolve();
  return *detail::g_active;
}

GfKernelVariant active_variant() noexcept { return active_kernels().variant; }

const GfKernelOps* kernels_for(GfKernelVariant v) noexcept {
  switch (v) {
    case GfKernelVariant::kScalar:
      return &detail::scalar_ops();
    case GfKernelVariant::kSsse3:
#if defined(HPRES_GF_HAVE_SSSE3)
      if (__builtin_cpu_supports("ssse3")) return &detail::ssse3_ops();
#endif
      return nullptr;
    case GfKernelVariant::kAvx2:
#if defined(HPRES_GF_HAVE_AVX2)
      if (__builtin_cpu_supports("avx2")) return &detail::avx2_ops();
#endif
      return nullptr;
  }
  return nullptr;
}

std::vector<GfKernelVariant> available_variants() {
  std::vector<GfKernelVariant> out;
  for (const GfKernelVariant v : {GfKernelVariant::kScalar,
                                  GfKernelVariant::kSsse3,
                                  GfKernelVariant::kAvx2}) {
    if (kernels_for(v) != nullptr) out.push_back(v);
  }
  return out;
}

void StripeCoder::apply_with(const GfKernelOps& ops,
                             std::span<const ConstByteSpan> sources,
                             std::span<ByteSpan> outputs) const noexcept {
  assert(sources.size() == cols_ && outputs.size() == rows_);
  if (rows_ == 0) return;
  const std::size_t len = outputs[0].size();
#ifndef NDEBUG
  for (const auto& s : sources) assert(s.size() == len);
  for (const auto& o : outputs) assert(o.size() == len);
#endif
  if (cols_ == 0) {
    for (auto& o : outputs) std::memset(o.data(), 0, len);
    return;
  }
  for (std::size_t off = 0; off < len; off += kTileBytes) {
    const std::size_t tile = std::min(kTileBytes, len - off);
    for (std::size_t c = 0; c < cols_; ++c) {
      const auto* s =
          reinterpret_cast<const std::uint8_t*>(sources[c].data()) + off;
      for (std::size_t r = 0; r < rows_; ++r) {
        auto* d = reinterpret_cast<std::uint8_t*>(outputs[r].data()) + off;
        const std::uint8_t coeff = coeffs_[r * cols_ + c];
        if (c == 0) {
          // First source initializes each output (a zero coefficient
          // zero-fills), so tiles never need a separate clearing pass.
          gf_mul_region(ops, coeff, s, d, tile);
        } else {
          gf_mul_region_acc(ops, coeff, s, d, tile);
        }
      }
    }
  }
}

}  // namespace hpres::ec
