// Value <-> fragment conversion: splits a key-value pair's value of size D
// into K equal fragments of size ceil(D/K) (zero-padded, aligned for the
// codec), and joins any reconstructed fragments back into the original
// value. Fragment size and original size travel with every fragment so a
// Get can size its reassembly buffers from any single chunk's metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hpres::ec {

struct ChunkLayout {
  std::size_t original_size = 0;  ///< bytes in the value before padding
  std::size_t fragment_size = 0;  ///< bytes per fragment (padded, aligned)
  std::size_t k = 0;              ///< data fragments

  [[nodiscard]] bool operator==(const ChunkLayout&) const = default;
};

/// Computes the layout for a value of `value_size` split into k fragments,
/// with fragment size rounded up to `alignment` bytes (codec requirement).
/// A zero-size value still yields fragments of one alignment unit so that
/// parity math stays well-defined.
[[nodiscard]] ChunkLayout make_layout(std::size_t value_size, std::size_t k,
                                      std::size_t alignment);

/// Splits `value` into layout.k owned fragments, zero-padding the tail.
[[nodiscard]] std::vector<Bytes> split_value(ConstByteSpan value,
                                             const ChunkLayout& layout);

/// Reassembles the original value from the k data fragments (in index
/// order). Fails if sizes disagree with the layout.
[[nodiscard]] Result<Bytes> join_fragments(
    std::span<const ConstByteSpan> data_fragments, const ChunkLayout& layout);

}  // namespace hpres::ec
