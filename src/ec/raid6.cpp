#include "ec/raid6.h"

#include <cassert>
#include <cstring>

namespace hpres::ec {

Raid6Codec::Raid6Codec(std::size_t k, std::size_t m)
    : MatrixCodec(k, m, raid6_generator(k, m)) {
  assert(m <= 2);
}

void Raid6Codec::encode(std::span<const ConstByteSpan> data,
                        std::span<ByteSpan> parity) const {
  assert(data.size() == k() && parity.size() == m());
  if (m() == 0 || data.empty()) return;
  const GF256& gf = GF256::instance();

  // P = d_0 ^ d_1 ^ ... ^ d_{k-1}
  ByteSpan p = parity[0];
  std::memcpy(p.data(), data[0].data(), p.size());
  for (std::size_t i = 1; i < k(); ++i) GF256::xor_region(data[i], p);

  if (m() == 2) {
    // Q = sum g^i * d_i via Horner: Q = ((d_{k-1} g + d_{k-2}) g + ...) + d_0
    ByteSpan q = parity[1];
    std::memcpy(q.data(), data[k() - 1].data(), q.size());
    for (std::size_t i = k() - 1; i-- > 0;) {
      gf.mul_region(GF256::kGenerator, q, q);  // in-place doubling
      GF256::xor_region(data[i], q);
    }
  }
}

}  // namespace hpres::ec
