#include "ec/raid6.h"

#include <cassert>

namespace hpres::ec {

Raid6Codec::Raid6Codec(std::size_t k, std::size_t m)
    : MatrixCodec(k, m, raid6_generator(k, m)) {
  assert(m <= 2);
}

}  // namespace hpres::ec
