#include "ec/gf_matrix.h"

#include <cassert>

namespace hpres::ec {

namespace {
const GF256& gf() { return GF256::instance(); }
}  // namespace

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1;
  return out;
}

GfMatrix GfMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  assert(rows <= GF256::kFieldSize && "need distinct field elements per row");
  GfMatrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.at(r, c) =
          gf().pow(static_cast<std::uint8_t>(r), static_cast<unsigned>(c));
    }
  }
  return out;
}

GfMatrix GfMatrix::cauchy(std::size_t rows, std::size_t cols) {
  assert(rows + cols <= GF256::kFieldSize &&
         "x and y element sets must be disjoint in GF(256)");
  GfMatrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(rows + c);
      out.at(r, c) = gf().inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
  return out;
}

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const std::uint8_t a = at(r, i);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) ^= gf().mul(a, other.at(i, c));
      }
    }
  }
  return out;
}

Result<GfMatrix> GfMatrix::inverted() const {
  if (rows_ != cols_) {
    return Status{StatusCode::kInvalidArgument, "inverse of non-square matrix"};
  }
  const std::size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot (any nonzero element works in a field).
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return Status{StatusCode::kInternal, "singular matrix"};
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize pivot row.
    const std::uint8_t scale = gf().inv(work.at(col, col));
    if (scale != 1) {
      for (std::size_t c = 0; c < n; ++c) {
        work.at(col, c) = gf().mul(work.at(col, c), scale);
        inv.at(col, c) = gf().mul(inv.at(col, c), scale);
      }
    }
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) ^= gf().mul(factor, work.at(col, c));
        inv.at(r, c) ^= gf().mul(factor, inv.at(col, c));
      }
    }
  }
  return inv;
}

GfMatrix GfMatrix::select_rows(const std::vector<std::size_t>& idx) const {
  GfMatrix out(idx.size(), cols_);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    assert(idx[r] < rows_);
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(idx[r], c);
  }
  return out;
}

void GfMatrix::swap_cols(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t r = 0; r < rows_; ++r) std::swap(at(r, a), at(r, b));
}

void GfMatrix::scale_col(std::size_t c, std::uint8_t factor) {
  for (std::size_t r = 0; r < rows_; ++r) at(r, c) = gf().mul(at(r, c), factor);
}

void GfMatrix::add_scaled_col(std::size_t dst, std::size_t src,
                              std::uint8_t factor) {
  if (factor == 0) return;
  for (std::size_t r = 0; r < rows_; ++r) {
    at(r, dst) ^= gf().mul(factor, at(r, src));
  }
}

GfMatrix systematic_rs_generator(std::size_t k, std::size_t m) {
  GfMatrix v = GfMatrix::vandermonde(k + m, k);
  // Column-reduce the top k x k block to the identity. Column operations
  // right-multiply by an invertible matrix, which preserves the "any k rows
  // are independent" (MDS) property of the Vandermonde matrix.
  for (std::size_t i = 0; i < k; ++i) {
    if (v.at(i, i) == 0) {
      std::size_t c = i + 1;
      while (c < k && v.at(i, c) == 0) ++c;
      assert(c < k && "Vandermonde row cannot be all-zero in its top block");
      v.swap_cols(i, c);
    }
    const std::uint8_t scale = GF256::instance().inv(v.at(i, i));
    v.scale_col(i, scale);
    for (std::size_t c = 0; c < k; ++c) {
      if (c == i) continue;
      v.add_scaled_col(c, i, v.at(i, c));
    }
  }
  return v;
}

GfMatrix systematic_cauchy_generator(std::size_t k, std::size_t m) {
  GfMatrix out(k + m, k);
  for (std::size_t i = 0; i < k; ++i) out.at(i, i) = 1;
  const GfMatrix c = GfMatrix::cauchy(m, k);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t col = 0; col < k; ++col) {
      out.at(k + r, col) = c.at(r, col);
    }
  }
  return out;
}

GfMatrix raid6_generator(std::size_t k, std::size_t m) {
  assert(m <= 2 && "RAID-6 style codes support at most two parities");
  GfMatrix out(k + m, k);
  for (std::size_t i = 0; i < k; ++i) out.at(i, i) = 1;
  if (m >= 1) {
    for (std::size_t c = 0; c < k; ++c) out.at(k, c) = 1;  // P row
  }
  if (m >= 2) {
    for (std::size_t c = 0; c < k; ++c) {
      out.at(k + 1, c) =
          GF256::instance().pow(GF256::kGenerator, static_cast<unsigned>(c));
    }
  }
  return out;
}

}  // namespace hpres::ec
