// RAID-6 P/Q coding: parity P is the plain XOR of the data fragments and Q
// is the generator-weighted sum evaluated by Horner's rule, exactly as in
// Linux md RAID-6. This codec stands in for the paper's "R6-Lib"
// (Liberation) scheme: same m=2 fault tolerance and the same XOR-dominated
// cost profile, per the substitution note in DESIGN.md.
#pragma once

#include "ec/codec.h"

namespace hpres::ec {

class Raid6Codec final : public MatrixCodec {
 public:
  /// Requires m <= 2 (P-only degenerates to simple XOR parity).
  Raid6Codec(std::size_t k, std::size_t m);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "raid6";
  }

  /// Fast path: P via running XOR, Q via Horner (one doubling + one XOR per
  /// data fragment) — byte-compatible with the generator-matrix form, so
  /// the base-class reconstruction applies unchanged.
  void encode(std::span<const ConstByteSpan> data,
              std::span<ByteSpan> parity) const override;
};

}  // namespace hpres::ec
