// RAID-6 P/Q coding: parity P is the plain XOR of the data fragments and Q
// the generator-weighted sum (coefficients 1, g, g^2, ...), exactly the
// Linux md RAID-6 construction. This codec stands in for the paper's
// "R6-Lib" (Liberation) scheme: same m=2 fault tolerance and the same
// XOR-dominated cost profile, per the substitution note in DESIGN.md.
//
// Encode runs through the fused stripe kernel of the MatrixCodec base: the
// all-ones P row degenerates to wide vector XOR and the Q row to one
// multiply-accumulate sweep per data fragment — one pass over the data,
// strictly fewer memory sweeps than the former Horner-doubling fast path
// (which re-walked Q once per fragment), and byte-identical output.
#pragma once

#include "ec/codec.h"

namespace hpres::ec {

class Raid6Codec final : public MatrixCodec {
 public:
  /// Requires m <= 2 (P-only degenerates to simple XOR parity).
  Raid6Codec(std::size_t k, std::size_t m);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "raid6";
  }
};

}  // namespace hpres::ec
