// Arithmetic over GF(2^8), the finite field underlying all Reed-Solomon
// style codes in this project.
//
// Representation: polynomial basis modulo the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by Jerasure, ISA-L and
// Linux RAID-6. Scalar multiplication is table-driven (a 64 KiB full product
// table, one lookup per byte); the region operations dispatch to the SIMD
// kernel layer in ec/gf_kernels.h (SSSE3/AVX2 split-table nibble multiply
// with the scalar loops as reference and fallback), which is what makes
// "online" encoding of KV-sized values practical on a general-purpose CPU.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace hpres::ec {

class GF256 {
 public:
  static constexpr unsigned kFieldSize = 256;
  static constexpr unsigned kPrimitivePoly = 0x11D;
  static constexpr std::uint8_t kGenerator = 2;  // primitive element

  /// Shared immutable instance (tables are built once).
  static const GF256& instance();

  /// Field product a*b.
  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept {
    return mul_table_[static_cast<std::size_t>(a) << 8 | b];
  }

  /// Field quotient a/b. Precondition: b != 0.
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const noexcept;

  /// Multiplicative inverse. Precondition: a != 0.
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const noexcept;

  /// kGenerator^i (i taken mod 255).
  [[nodiscard]] std::uint8_t exp(unsigned i) const noexcept {
    return exp_table_[i % 255];
  }

  /// Discrete log base kGenerator. Precondition: a != 0.
  [[nodiscard]] std::uint8_t log(std::uint8_t a) const noexcept {
    return log_table_[a];
  }

  /// a^e by log/exp. pow(0, 0) == 1 by convention; pow(0, e>0) == 0.
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned e) const noexcept;

  /// Row of the full product table for a fixed first factor:
  /// mul_row(c)[b] == mul(c, b). The scalar region kernels index it.
  [[nodiscard]] const std::uint8_t* mul_row(std::uint8_t c) const noexcept {
    return &mul_table_[static_cast<std::size_t>(c) << 8];
  }

  /// dst[i] = c * src[i] for a whole region. Spans must be equal length and
  /// must not partially overlap (dst == src is allowed). Dispatches to the
  /// widest GF kernel the CPU supports (ec/gf_kernels.h).
  void mul_region(std::uint8_t c, ConstByteSpan src, ByteSpan dst) const noexcept;

  /// dst[i] ^= c * src[i] (multiply-accumulate) for a whole region.
  void mul_region_acc(std::uint8_t c, ConstByteSpan src,
                      ByteSpan dst) const noexcept;

  /// dst[i] ^= src[i]. Vector-wide XOR; spans must be equal length.
  static void xor_region(ConstByteSpan src, ByteSpan dst) noexcept;

 private:
  GF256();

  std::array<std::uint8_t, 255> exp_table_{};
  std::array<std::uint8_t, 256> log_table_{};
  // Flat 256x256 product table: mul_table_[a << 8 | b] = a*b.
  std::array<std::uint8_t, 256 * 256> mul_table_{};
};

}  // namespace hpres::ec
