#include "ec/lrc.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hpres::ec {

namespace {

const GF256& gf() { return GF256::instance(); }

/// Rank of the selected rows of `gen` (columns = k), via Gaussian
/// elimination over GF(2^8).
std::size_t rank_of_rows(const GfMatrix& gen,
                         const std::vector<std::size_t>& rows) {
  const std::size_t k = gen.cols();
  std::vector<std::vector<std::uint8_t>> work;
  work.reserve(rows.size());
  for (const std::size_t r : rows) {
    std::vector<std::uint8_t> row(k);
    for (std::size_t c = 0; c < k; ++c) row[c] = gen.at(r, c);
    work.push_back(std::move(row));
  }
  std::size_t rank = 0;
  for (std::size_t col = 0; col < k && rank < work.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < work.size() && work[pivot][col] == 0) ++pivot;
    if (pivot == work.size()) continue;
    std::swap(work[rank], work[pivot]);
    const std::uint8_t inv = gf().inv(work[rank][col]);
    for (std::size_t c = col; c < k; ++c) {
      work[rank][c] = gf().mul(work[rank][c], inv);
    }
    for (std::size_t r = 0; r < work.size(); ++r) {
      if (r == rank || work[r][col] == 0) continue;
      const std::uint8_t factor = work[r][col];
      for (std::size_t c = col; c < k; ++c) {
        work[r][c] ^= gf().mul(factor, work[rank][c]);
      }
    }
    ++rank;
  }
  return rank;
}

/// True if the code decodes every erasure pattern of exactly `failures`
/// fragments (survivor rows span rank k).
bool all_patterns_decodable(const GfMatrix& gen, std::size_t k,
                            std::size_t failures) {
  const std::size_t n = gen.rows();
  std::vector<bool> failed(n, false);
  std::fill(failed.begin(), failed.begin() + static_cast<std::ptrdiff_t>(failures),
            true);
  // Enumerate combinations via prev_permutation over the failure mask.
  std::sort(failed.begin(), failed.end(), std::greater<>());
  do {
    std::vector<std::size_t> survivors;
    survivors.reserve(n - failures);
    for (std::size_t i = 0; i < n; ++i) {
      if (!failed[i]) survivors.push_back(i);
    }
    if (rank_of_rows(gen, survivors) < k) return false;
  } while (std::prev_permutation(failed.begin(), failed.end()));
  return true;
}

}  // namespace

GfMatrix LrcCodec::build_generator(std::size_t k, std::size_t l,
                                   std::size_t g) {
  assert(l >= 1 && k % l == 0 && k + l + g <= GF256::kFieldSize);
  const std::size_t gs = k / l;
  const std::size_t n = k + l + g;

  for (unsigned seed = 0; seed < 64; ++seed) {
    GfMatrix gen(n, k);
    for (std::size_t i = 0; i < k; ++i) gen.at(i, i) = 1;
    // Local parities: plain XOR over each group.
    for (std::size_t j = 0; j < l; ++j) {
      for (std::size_t c = j * gs; c < (j + 1) * gs; ++c) {
        gen.at(k + j, c) = 1;
      }
    }
    // Global parities: geometric rows over distinct field elements; the
    // seed walks the element choice until the decodability check passes.
    for (std::size_t r = 0; r < g; ++r) {
      const std::uint8_t alpha =
          gf().exp(static_cast<unsigned>(seed * 17 + 2 * r + 1));
      for (std::size_t c = 0; c < k; ++c) {
        gen.at(k + l + r, c) = gf().pow(alpha, static_cast<unsigned>(c + 1));
      }
    }
    // Azure LRC guarantee: every pattern of up to g+1 failures decodes.
    bool ok = true;
    for (std::size_t f = 1; f <= g + 1 && ok; ++f) {
      ok = all_patterns_decodable(gen, k, f);
    }
    if (ok) return gen;
  }
  assert(false && "no LRC coefficient assignment found (code too large?)");
  return GfMatrix(n, k);
}

LrcCodec::LrcCodec(std::size_t k, std::size_t l, std::size_t g)
    : MatrixCodec(k, l + g, build_generator(k, l, g)), l_(l), g_(g) {}

std::optional<std::size_t> LrcCodec::group_of(std::size_t slot) const {
  if (slot < k()) return slot / group_size();
  if (slot < k() + l_) return slot - k();
  return std::nullopt;  // global parity
}

std::optional<std::vector<std::size_t>> LrcCodec::minimal_repair_sources(
    std::size_t slot, const std::vector<bool>& present) const {
  const std::optional<std::size_t> group = group_of(slot);
  if (!group) return std::nullopt;  // global parity: generic path
  std::vector<std::size_t> sources;
  sources.reserve(group_size());
  // Group members (data) plus the local parity, minus the slot itself.
  for (std::size_t c = *group * group_size(); c < (*group + 1) * group_size();
       ++c) {
    if (c != slot) sources.push_back(c);
  }
  const std::size_t local_parity = k() + *group;
  if (slot != local_parity) sources.push_back(local_parity);
  for (const std::size_t s : sources) {
    if (s >= present.size() || !present[s]) {
      return std::nullopt;  // a second loss in the group: generic path
    }
  }
  return sources;
}

Status LrcCodec::rebuild_from_sources(std::size_t slot,
                                      std::span<const ConstByteSpan> sources,
                                      ByteSpan out) const {
  if (!group_of(slot)) {
    return Status{StatusCode::kInvalidArgument,
                  "global parities have no local repair"};
  }
  if (sources.size() != group_size()) {
    return Status{StatusCode::kInvalidArgument, "wrong source arity"};
  }
  std::memcpy(out.data(), sources[0].data(), out.size());
  for (std::size_t i = 1; i < sources.size(); ++i) {
    GF256::xor_region(sources[i], out);
  }
  return Status::Ok();
}

}  // namespace hpres::ec
