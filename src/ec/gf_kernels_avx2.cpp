// AVX2 GF(2^8) region kernels: the SSSE3 split-table nibble multiply widened
// to 32 lanes with VPSHUFB (the 16-entry tables broadcast to both 128-bit
// halves), main loop unrolled to 64 bytes per iteration. Compiled with
// -mavx2 (this file only); dispatch calls in only when the host CPU reports
// AVX2.
#include "ec/gf_kernels.h"

#if defined(HPRES_GF_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace hpres::ec::detail {

namespace {

struct Tables256 {
  __m256i lo;
  __m256i hi;
  __m256i mask;
};

inline Tables256 load_tables(std::uint8_t c) {
  const NibbleTables& t = nibble_tables()[c];
  return Tables256{
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo))),
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi))),
      _mm256_set1_epi8(0x0F)};
}

inline __m256i mul32(const Tables256& t, __m256i v) {
  const __m256i lo_n = _mm256_and_si256(v, t.mask);
  const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi64(v, 4), t.mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(t.lo, lo_n),
                          _mm256_shuffle_epi8(t.hi, hi_n));
}

void avx2_mul_region(std::uint8_t c, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n) {
  const Tables256 t = load_tables(c);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul32(t, a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        mul32(t, b));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul32(t, v));
  }
  const NibbleTables& nt = nibble_tables()[c];
  for (; i < n; ++i) dst[i] = nt.lo[src[i] & 0x0F] ^ nt.hi[src[i] >> 4];
}

void avx2_mul_region_acc(std::uint8_t c, const std::uint8_t* src,
                         std::uint8_t* dst, std::size_t n) {
  const Tables256 t = load_tables(c);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i da =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i db =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(da, mul32(t, a)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(db, mul32(t, b)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul32(t, v)));
  }
  const NibbleTables& nt = nibble_tables()[c];
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(
        dst[i] ^ nt.lo[src[i] & 0x0F] ^ nt.hi[src[i] >> 4]);
  }
}

void avx2_xor_region(const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i da =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i db =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, da));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(b, db));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, d));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

const GfKernelOps& avx2_ops() noexcept {
  static const GfKernelOps ops{GfKernelVariant::kAvx2, &avx2_mul_region,
                               &avx2_mul_region_acc, &avx2_xor_region};
  return ops;
}

}  // namespace hpres::ec::detail

#endif  // HPRES_GF_HAVE_AVX2 && x86
