// Vectorized GF(2^8) region kernels with runtime CPU dispatch — the compute
// layer under every codec in src/ec/.
//
// Multiplying a region by a constant c is the hot loop of online erasure
// coding (the paper's T_encode/T_decode terms). The scalar reference walks a
// 256-entry product-table row one byte at a time; the SIMD variants use the
// ISA-L/Jerasure split-table trick instead: because GF multiplication is
// linear over XOR, c*x = c*(x_lo) ^ c*(x_hi << 4), so two 16-entry tables
// (products of c with the low and high nibbles) evaluated with a byte
// shuffle (PSHUFB/VPSHUFB) multiply 16 or 32 bytes per instruction pair.
//
// Dispatch picks the widest variant the host CPU supports once at startup
// (SSSE3 -> AVX2 on x86; scalar elsewhere). HPRES_FORCE_SCALAR_GF=1 in the
// environment forces the scalar reference — every variant is byte-identical
// by construction and by test (tests/ec/gf_kernels_test.cpp).
//
// On top of the flat kernels, StripeCoder implements the fused single-pass
// stripe transform: outputs[r] = sum_c coeff(r,c) * sources[c], processed in
// cache-sized tiles so each source tile is read once while it accumulates
// into every output — instead of rows x cols full-length sweeps that fall
// out of cache between passes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace hpres::ec {

enum class GfKernelVariant : std::uint8_t { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

[[nodiscard]] std::string_view to_string(GfKernelVariant v) noexcept;

/// Function table for one ISA variant. All entry points are elementwise over
/// `n` bytes; `dst == src` full aliasing is allowed, partial overlap is not.
/// The mul entry points require c >= 2 — the c == 0 / c == 1 fast paths live
/// in the inline front-ends below so every variant shares them.
struct GfKernelOps {
  GfKernelVariant variant = GfKernelVariant::kScalar;
  void (*mul_region)(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t n) = nullptr;
  void (*mul_region_acc)(std::uint8_t c, const std::uint8_t* src,
                         std::uint8_t* dst, std::size_t n) = nullptr;
  void (*xor_region)(const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t n) = nullptr;
};

/// The ops table selected at startup (widest supported ISA, unless
/// HPRES_FORCE_SCALAR_GF forces the scalar reference). Resolved once and
/// cached; like the simulator, dispatch is single-threaded by design.
[[nodiscard]] const GfKernelOps& active_kernels() noexcept;
[[nodiscard]] GfKernelVariant active_variant() noexcept;

/// Ops table for a specific variant, or nullptr when this build/CPU cannot
/// run it. Lets tests and benches compare every runnable variant against the
/// scalar reference regardless of what dispatch picked.
[[nodiscard]] const GfKernelOps* kernels_for(GfKernelVariant v) noexcept;

/// Every variant runnable on this host, scalar first, widest last.
[[nodiscard]] std::vector<GfKernelVariant> available_variants();

namespace detail {

/// Re-reads HPRES_FORCE_SCALAR_GF and the CPU features and re-resolves the
/// active table. Test hook only — never needed in normal operation.
void refresh_dispatch() noexcept;

/// Split multiplication tables for one coefficient c:
/// lo[i] = c * i, hi[i] = c * (i << 4); c * x == lo[x & 15] ^ hi[x >> 4].
/// 16-byte alignment lets the SIMD kernels load each half as one register.
struct alignas(32) NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

/// All 256 coefficients' split tables (8 KiB, built once, shared by every
/// codec — this is the per-coefficient cache the fused encode runs on).
[[nodiscard]] const NibbleTables* nibble_tables() noexcept;

// Per-ISA tables, defined only in translation units built with the matching
// target flags; referenced by dispatch only when the build enables them.
[[nodiscard]] const GfKernelOps& scalar_ops() noexcept;
[[nodiscard]] const GfKernelOps& ssse3_ops() noexcept;
[[nodiscard]] const GfKernelOps& avx2_ops() noexcept;

}  // namespace detail

/// dst[i] = c * src[i], with the shared c == 0 (zero-fill) and c == 1 (copy)
/// fast paths applied before the variant kernel.
inline void gf_mul_region(const GfKernelOps& ops, std::uint8_t c,
                          const std::uint8_t* src, std::uint8_t* dst,
                          std::size_t n) noexcept {
  if (n == 0) return;  // empty spans may carry null pointers
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  ops.mul_region(c, src, dst, n);
}

/// dst[i] ^= c * src[i], with c == 0 (no-op) and c == 1 (XOR) fast paths.
inline void gf_mul_region_acc(const GfKernelOps& ops, std::uint8_t c,
                              const std::uint8_t* src, std::uint8_t* dst,
                              std::size_t n) noexcept {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    ops.xor_region(src, dst, n);
    return;
  }
  ops.mul_region_acc(c, src, dst, n);
}

/// Fused single-pass stripe transform over a coefficient matrix:
///   outputs[r][i] = XOR over c of coeff(r, c) * sources[c][i]
/// for r in [0, rows), c in [0, cols). Encoding uses the generator's parity
/// block as the matrix; erased-data recovery uses the inverted survivor
/// rows. The fragment range is processed in kTileBytes tiles: within a tile
/// every source is read once while all outputs stay cache-resident, so the
/// stripe makes one pass over memory instead of rows x cols sweeps.
/// Outputs must not alias sources or each other.
class StripeCoder {
 public:
  /// Tile span per fragment. (cols + rows) * kTileBytes working-set bytes:
  /// 40 KiB for RS(3,2) — L1-resident — and still L2-resident for wide
  /// codes like RS(10,4).
  static constexpr std::size_t kTileBytes = 8192;

  StripeCoder() = default;
  StripeCoder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), coeffs_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  void set(std::size_t r, std::size_t c, std::uint8_t v) noexcept {
    coeffs_[r * cols_ + c] = v;
  }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const noexcept {
    return coeffs_[r * cols_ + c];
  }

  /// Runs the transform with the dispatched kernels. sources.size() must be
  /// cols(), outputs.size() rows(); all spans equal length.
  void apply(std::span<const ConstByteSpan> sources,
             std::span<ByteSpan> outputs) const noexcept {
    apply_with(active_kernels(), sources, outputs);
  }

  /// Same, with an explicit ops table (tests/benches pin a variant).
  void apply_with(const GfKernelOps& ops,
                  std::span<const ConstByteSpan> sources,
                  std::span<ByteSpan> outputs) const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> coeffs_;  // row-major rows_ x cols_
};

}  // namespace hpres::ec
