#include "ec/codec.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "ec/cauchy_rs.h"
#include "ec/raid6.h"
#include "ec/rs_vandermonde.h"

namespace hpres::ec {

namespace {
const GF256& gf() { return GF256::instance(); }

/// Greedy rank-building pass: walks `candidates` in order, accepting each
/// row of `generator` that is independent of the rows accepted so far,
/// until k rows span the data space. Pivot columns are cached per accepted
/// row so each candidate reduces in O(k^2). nullopt when the candidates
/// never reach rank k (erasure pattern not decodable).
std::optional<std::vector<std::size_t>> greedy_spanning_subset(
    const GfMatrix& generator, std::size_t k,
    const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> survivors;
  GfMatrix echelon(k, k);  // row-reduced rows accepted so far
  std::vector<std::size_t> pivot_cols;
  pivot_cols.reserve(k);
  std::size_t rank = 0;
  for (const std::size_t idx : candidates) {
    if (rank == k) break;
    // Reduce the candidate row against the accepted basis.
    std::vector<std::uint8_t> row(k);
    for (std::size_t c = 0; c < k; ++c) row[c] = generator.at(idx, c);
    for (std::size_t r = 0; r < rank; ++r) {
      const std::size_t pivot = pivot_cols[r];
      if (row[pivot] == 0) continue;
      const std::uint8_t factor = gf().div(row[pivot], echelon.at(r, pivot));
      for (std::size_t c = 0; c < k; ++c) {
        row[c] ^= gf().mul(factor, echelon.at(r, c));
      }
    }
    // The reduced row's first nonzero column becomes its pivot.
    std::size_t pivot = 0;
    while (pivot < k && row[pivot] == 0) ++pivot;
    if (pivot == k) continue;  // dependent on rows already accepted
    for (std::size_t c = 0; c < k; ++c) echelon.at(rank, c) = row[c];
    pivot_cols.push_back(pivot);
    ++rank;
    survivors.push_back(idx);
  }
  if (rank < k) return std::nullopt;
  return survivors;
}
}  // namespace

MatrixCodec::MatrixCodec(std::size_t k, std::size_t m, GfMatrix generator)
    : Codec(k, m),
      generator_(std::move(generator)),
      parity_coder_(m, k) {
  assert(generator_.rows() == k + m && generator_.cols() == k);
#ifndef NDEBUG
  // The generator must be systematic: top k x k block == identity.
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      assert(generator_.at(r, c) == (r == c ? 1 : 0));
    }
  }
#endif
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t c = 0; c < k; ++c) {
      parity_coder_.set(p, c, generator_.at(k + p, c));
    }
  }
}

void MatrixCodec::encode(std::span<const ConstByteSpan> data,
                         std::span<ByteSpan> parity) const {
  assert(data.size() == k() && parity.size() == m());
  // Single fused pass: every data tile is read once while it accumulates
  // into all m parity outputs (ec/gf_kernels.h).
  parity_coder_.apply(data, parity);
}

void MatrixCodec::encode_parity_row(std::size_t parity_index,
                                    std::span<const ByteSpan> data,
                                    ByteSpan out) const {
  bool first = true;
  for (std::size_t c = 0; c < k(); ++c) {
    const std::uint8_t coeff = generator_.at(k() + parity_index, c);
    if (first) {
      gf().mul_region(coeff, data[c], out);
      first = false;
    } else {
      gf().mul_region_acc(coeff, data[c], out);
    }
  }
}

Result<std::vector<std::size_t>> MatrixCodec::select_read_set(
    const std::vector<bool>& available) const {
  Result<RecoveryPlan> plan = plan_recovery(available);
  if (!plan.ok()) return plan.status();
  std::vector<std::size_t> chosen = plan->survivors;
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Result<std::vector<std::size_t>> MatrixCodec::select_read_set_ordered(
    const std::vector<bool>& available,
    std::span<const std::size_t> preference) const {
  const std::vector<std::size_t> candidates =
      ordered_candidates(available, preference);
  if (candidates.size() < k()) {
    return Status{StatusCode::kTooManyFailures,
                  "fewer than k fragments available"};
  }
  std::vector<std::size_t> chosen(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(k()));
  // MDS fast path: any k rows are independent, so the top-k-by-preference
  // choice stands.
  if (generator_.select_rows(chosen).inverted().ok()) return chosen;
  std::optional<std::vector<std::size_t>> spanning =
      greedy_spanning_subset(generator_, k(), candidates);
  if (!spanning) {
    return Status{StatusCode::kTooManyFailures,
                  "erasure pattern not decodable by this code"};
  }
  return *spanning;
}

Status MatrixCodec::reconstruct(std::span<ByteSpan> fragments,
                                const std::vector<bool>& present) const {
  return solve_erased(fragments, present, /*data_only=*/false);
}

Status MatrixCodec::reconstruct_data(std::span<ByteSpan> fragments,
                                     const std::vector<bool>& present) const {
  return solve_erased(fragments, present, /*data_only=*/true);
}

Result<MatrixCodec::RecoveryPlan> MatrixCodec::plan_recovery(
    const std::vector<bool>& present) const {
  if (present.size() != n()) {
    return Status{StatusCode::kInvalidArgument,
                  "present arity must equal k+m"};
  }
  RecoveryPlan plan;
  // Prefer data rows as survivors: a present data fragment contributes
  // itself verbatim, keeping the inverted matrix sparse.
  std::vector<std::size_t> candidates;
  candidates.reserve(n());
  for (std::size_t i = 0; i < k(); ++i) {
    if (present[i]) {
      candidates.push_back(i);
    } else {
      plan.erased_data.push_back(i);
    }
  }
  for (std::size_t i = k(); i < n(); ++i) {
    if (present[i]) {
      candidates.push_back(i);
    } else {
      plan.erased_parity.push_back(i);
    }
  }
  if (candidates.size() < k()) {
    return Status{StatusCode::kTooManyFailures,
                  "fewer than k fragments available"};
  }

  // Select k candidates whose generator rows are linearly independent. For
  // MDS codes the first k always work; for non-MDS codes (LRC) a greedy
  // rank-building pass over all survivors finds a spanning subset whenever
  // the erasure pattern is information-theoretically decodable.
  plan.survivors.assign(candidates.begin(),
                        candidates.begin() + static_cast<std::ptrdiff_t>(k()));
  Result<GfMatrix> inv = generator_.select_rows(plan.survivors).inverted();
  if (!inv.ok() && candidates.size() > k()) {
    std::optional<std::vector<std::size_t>> spanning =
        greedy_spanning_subset(generator_, k(), candidates);
    if (!spanning) {
      return Status{StatusCode::kTooManyFailures,
                    "erasure pattern not decodable by this code"};
    }
    plan.survivors = std::move(*spanning);
    inv = generator_.select_rows(plan.survivors).inverted();
  }
  if (!inv.ok()) {
    return Status{StatusCode::kTooManyFailures,
                  "erasure pattern not decodable by this code"};
  }

  if (!plan.erased_data.empty()) {
    plan.coeffs = GfMatrix(plan.erased_data.size(), k());
    for (std::size_t j = 0; j < plan.erased_data.size(); ++j) {
      for (std::size_t i = 0; i < k(); ++i) {
        plan.coeffs.at(j, i) = inv->at(plan.erased_data[j], i);
      }
    }
  }
  return plan;
}

Status MatrixCodec::solve_erased(std::span<ByteSpan> fragments,
                                 const std::vector<bool>& present,
                                 bool data_only) const {
  if (fragments.size() != n()) {
    return Status{StatusCode::kInvalidArgument,
                  "fragment arity must equal k+m"};
  }
  Result<RecoveryPlan> plan = plan_recovery(present);
  if (!plan.ok()) return plan.status();

  if (!plan->erased_data.empty()) {
    // Fused pass over the survivors: each survivor tile is read once while
    // it accumulates into every erased-data output.
    StripeCoder recover(plan->erased_data.size(), k());
    for (std::size_t j = 0; j < plan->erased_data.size(); ++j) {
      for (std::size_t i = 0; i < k(); ++i) {
        recover.set(j, i, plan->coeffs.at(j, i));
      }
    }
    std::vector<ConstByteSpan> sources;
    sources.reserve(k());
    for (const std::size_t s : plan->survivors) sources.push_back(fragments[s]);
    std::vector<ByteSpan> outputs;
    outputs.reserve(plan->erased_data.size());
    for (const std::size_t d : plan->erased_data) {
      outputs.push_back(fragments[d]);
    }
    recover.apply(sources, outputs);
  }

  if (!data_only) {
    // Parity re-encode needs all data fragments, which are now complete.
    std::vector<ByteSpan> data(
        fragments.begin(),
        fragments.begin() + static_cast<std::ptrdiff_t>(k()));
    for (const std::size_t p : plan->erased_parity) {
      encode_parity_row(p - k(), data, fragments[p]);
    }
  }
  return Status::Ok();
}

std::string_view to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kRsVandermonde: return "rs_van";
    case Scheme::kCauchyRs: return "crs";
    case Scheme::kRaid6: return "raid6";
  }
  return "unknown";
}

std::unique_ptr<Codec> make_codec(Scheme scheme, std::size_t k,
                                  std::size_t m) {
  switch (scheme) {
    case Scheme::kRsVandermonde:
      return std::make_unique<RsVandermondeCodec>(k, m);
    case Scheme::kCauchyRs:
      return std::make_unique<CauchyRsCodec>(k, m);
    case Scheme::kRaid6:
      return std::make_unique<Raid6Codec>(k, m);
  }
  return nullptr;
}

}  // namespace hpres::ec
