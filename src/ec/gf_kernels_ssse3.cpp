// SSSE3 GF(2^8) region kernels: split-table nibble multiply via PSHUFB,
// 16 bytes per step. Compiled with -mssse3 (this file only); dispatch calls
// in only when the host CPU reports SSSE3.
#include "ec/gf_kernels.h"

#if defined(HPRES_GF_HAVE_SSSE3) && (defined(__x86_64__) || defined(__i386__))

#include <tmmintrin.h>

namespace hpres::ec::detail {

namespace {

void ssse3_mul_region(std::uint8_t c, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables()[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo_n = _mm_and_si128(v, mask);
    const __m128i hi_n = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), prod);
  }
  for (; i < n; ++i) dst[i] = t.lo[src[i] & 0x0F] ^ t.hi[src[i] >> 4];
}

void ssse3_mul_region_acc(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables()[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i lo_n = _mm_and_si128(v, mask);
    const __m128i hi_n = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(
        dst[i] ^ t.lo[src[i] & 0x0F] ^ t.hi[src[i] >> 4]);
  }
}

void ssse3_xor_region(const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

const GfKernelOps& ssse3_ops() noexcept {
  static const GfKernelOps ops{GfKernelVariant::kSsse3, &ssse3_mul_region,
                               &ssse3_mul_region_acc, &ssse3_xor_region};
  return ops;
}

}  // namespace hpres::ec::detail

#endif  // HPRES_GF_HAVE_SSSE3 && x86
