#include "ec/cauchy_rs.h"

#include <cassert>

namespace hpres::ec {

namespace {

/// Extracts the m x k parity block of a systematic generator as a matrix.
GfMatrix parity_block(const GfMatrix& generator, std::size_t k,
                      std::size_t m) {
  GfMatrix out(m, k);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < k; ++c) out.at(r, c) = generator.at(k + r, c);
  }
  return out;
}

}  // namespace

CauchyRsCodec::CauchyRsCodec(std::size_t k, std::size_t m)
    : MatrixCodec(k, m, systematic_cauchy_generator(k, m)),
      parity_bits_(BitMatrix::from_gf_matrix(parity_block(generator(), k, m))) {
  assert(k >= 1 && k + m <= GF256::kFieldSize);
}

void CauchyRsCodec::encode(std::span<const ConstByteSpan> data,
                           std::span<ByteSpan> parity) const {
  bitmatrix_apply(parity_bits_, kW, data, parity);
}

Status CauchyRsCodec::reconstruct(std::span<ByteSpan> fragments,
                                  const std::vector<bool>& present) const {
  return bit_solve(fragments, present, /*data_only=*/false);
}

Status CauchyRsCodec::reconstruct_data(std::span<ByteSpan> fragments,
                                       const std::vector<bool>& present) const {
  return bit_solve(fragments, present, /*data_only=*/true);
}

Status CauchyRsCodec::bit_solve(std::span<ByteSpan> fragments,
                                const std::vector<bool>& present,
                                bool data_only) const {
  if (fragments.size() != n()) {
    return Status{StatusCode::kInvalidArgument,
                  "fragment arity must equal k+m"};
  }
  Result<RecoveryPlan> plan = plan_recovery(present);
  if (!plan.ok()) return plan.status();

  if (!plan->erased_data.empty()) {
    // The GF-domain recovery coefficients remain valid in the bit-sliced
    // domain after bit expansion: multiplication by a field element is the
    // same linear map either way.
    const BitMatrix recovery_bits = BitMatrix::from_gf_matrix(plan->coeffs);
    std::vector<ConstByteSpan> sources;
    sources.reserve(k());
    for (const std::size_t s : plan->survivors) sources.push_back(fragments[s]);
    std::vector<ByteSpan> outputs;
    outputs.reserve(plan->erased_data.size());
    for (const std::size_t d : plan->erased_data) outputs.push_back(fragments[d]);
    bitmatrix_apply(recovery_bits, kW, sources, outputs);
  }

  if (!data_only && !plan->erased_parity.empty()) {
    // Re-encode just the missing parity rows from the (now complete) data.
    for (const std::size_t p : plan->erased_parity) {
      GfMatrix row(1, k());
      for (std::size_t c = 0; c < k(); ++c) {
        row.at(0, c) = generator().at(p, c);
      }
      const BitMatrix row_bits = BitMatrix::from_gf_matrix(row);
      std::vector<ConstByteSpan> sources;
      sources.reserve(k());
      for (std::size_t i = 0; i < k(); ++i) sources.push_back(fragments[i]);
      std::vector<ByteSpan> outputs{fragments[p]};
      bitmatrix_apply(row_bits, kW, sources, outputs);
    }
  }
  return Status::Ok();
}

}  // namespace hpres::ec
