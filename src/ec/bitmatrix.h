// Bit matrices over GF(2): the machinery of Cauchy Reed-Solomon coding,
// where every GF(2^w) multiplication is unrolled into w XOR-packet
// operations (Blomer et al.'s XOR-based erasure-resilient coding, the
// technique behind Jerasure's CRS).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "ec/gf_matrix.h"

namespace hpres::ec {

/// Dense bit matrix, row-major, one byte per bit (simple and fast enough —
/// the matrix is tiny; the work is in the region XORs it schedules).
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), bits_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const noexcept {
    return bits_[r * cols_ + c] != 0;
  }
  void set(std::size_t r, std::size_t c, bool v) noexcept {
    bits_[r * cols_ + c] = v ? 1 : 0;
  }

  /// Number of set bits — the XOR cost of applying this matrix (used by
  /// tests to confirm the density advantage of RAID-6 style codes).
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Expands a GF(2^8) matrix into its (rows*8) x (cols*8) bit form: the
  /// block for element a has column c equal to the bit pattern of a * x^c,
  /// so block-times-bit-vector equals multiplication by a in the field.
  static BitMatrix from_gf_matrix(const GfMatrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Applies a (outputs*w x sources*w) bit matrix to source fragments. Each
/// fragment is split into w packets; output packet r is the XOR of every
/// source packet whose bit is set in row r. All fragments must share a size
/// divisible by w. Data is interpreted bit-sliced: the field element at
/// byte offset b, bit t is spread across the w packets — both encode and
/// decode must therefore go through a bit matrix (they do).
void bitmatrix_apply(const BitMatrix& bits, unsigned w,
                     std::span<const ConstByteSpan> sources,
                     std::span<ByteSpan> outputs);

}  // namespace hpres::ec
