// Packed-stripe record format and sub-slot addressing for the batched
// small-object write path.
//
// A stripe is a flat byte buffer into which multiple (key, value) records
// are appended back to back:
//
//   record := u16 key_len | u32 value_len | key bytes | value bytes
//
// The 6-byte header embeds the key so a stripe is self-describing: the
// locator directory can be rebuilt from stripe contents alone. Writers
// remember each value's {offset, len} within the stripe payload (the
// sub-slot index); readers fetch only the data fragments whose byte ranges
// overlap [offset, offset+len) and splice the value back out — no whole
// stripe decode on the healthy path.
//
// The stripe payload is encoded with the ordinary sequential split
// (ec::split_value): data fragment i holds stripe bytes
// [i*fragment_size, (i+1)*fragment_size), so sub-slot -> fragment-range
// math is plain division.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ec/chunker.h"

namespace hpres::ec {

/// Bytes of framing prepended to every packed record (u16 keylen + u32
/// vallen). Keys are bounded well below 64 KiB and packed values below the
/// pack threshold, so the narrow fields are safe.
inline constexpr std::size_t kStripeRecordHeader = 6;

/// Total stripe bytes consumed by one (key, value) record.
[[nodiscard]] constexpr std::size_t stripe_record_bytes(
    std::size_t key_size, std::size_t value_size) noexcept {
  return kStripeRecordHeader + key_size + value_size;
}

/// Appends one record to `stripe` and returns the offset of the *value*
/// bytes within the stripe payload (what the locator stores).
std::size_t stripe_append(Bytes& stripe, std::string_view key,
                          ConstByteSpan value);

/// One record parsed back out of a stripe buffer.
struct StripeRecord {
  std::string key;
  std::size_t value_offset = 0;  ///< offset of value bytes in the stripe
  std::size_t value_len = 0;
};

/// Parses every record out of a stripe payload (directory rebuild / test
/// oracle). Fails on truncated framing.
[[nodiscard]] Result<std::vector<StripeRecord>> stripe_parse(
    ConstByteSpan stripe);

/// Inclusive range of data-fragment slots whose byte ranges overlap
/// [offset, offset+len) under `layout`. Empty ranges (len == 0) pin to the
/// fragment containing `offset` so callers need no special case.
struct FragmentRange {
  std::size_t first = 0;
  std::size_t last = 0;  ///< inclusive

  [[nodiscard]] std::size_t count() const noexcept { return last - first + 1; }
};

[[nodiscard]] FragmentRange owning_fragments(const ChunkLayout& layout,
                                             std::size_t offset,
                                             std::size_t len);

/// Splices the value bytes at [offset, offset+len) out of the data
/// fragments covering that range. `fragments[i]` must be the data fragment
/// for slot `range.first + i` (whole fragments, layout.fragment_size each).
[[nodiscard]] Result<Bytes> extract_from_fragments(
    std::span<const ConstByteSpan> fragments, const FragmentRange& range,
    const ChunkLayout& layout, std::size_t offset, std::size_t len);

/// Per-key stored-bytes accounting for the value-size sweep and the fig10
/// footprint assertion. All figures count what the store actually charges:
/// key + payload + kv::Store per-item overhead (+ ChunkInfo when present),
/// plus the locator directory's per-entry bytes for the packed path.
struct StorageFootprint {
  double striped_per_key = 0.0;  ///< per-key striping, n fragments
  double packed_per_key = 0.0;   ///< amortized share of a packed stripe
  double savings_ratio = 0.0;    ///< striped / packed
};

struct FootprintParams {
  std::size_t key_size = 0;
  std::size_t value_size = 0;
  std::size_t k = 0;
  std::size_t m = 0;
  std::size_t alignment = 1;
  std::size_t stripe_capacity = 0;   ///< packed stripe payload budget
  std::size_t stripe_key_size = 0;   ///< synthetic stripe base key bytes
  std::size_t item_overhead = 0;     ///< kv::Store per-item overhead
  std::size_t chunk_info_bytes = 0;  ///< stored ChunkInfo bytes per fragment
  std::size_t locator_entry_overhead = 0;  ///< per directory entry, per copy
  std::size_t locator_copies = 0;          ///< directory replication (m+1)
};

/// Predicts per-key stored bytes for both paths. Mirrors the simulator's
/// accounting exactly — fig10 asserts measured == predicted on the striped
/// path and the value-size sweep derives its crossover from the ratio.
[[nodiscard]] StorageFootprint predict_footprint(const FootprintParams& p);

}  // namespace hpres::ec
