// Conservative parallel discrete-event runtime: N independent Simulator
// shards advanced in lockstep windows by real threads.
//
// Synchronization model (classic conservative PDES with lookahead):
// execution proceeds in rounds. In each round every shard first drains its
// inbound cross-shard queues — merging each message into its own event
// queue at the message's exact due time — and publishes the timestamp of
// its earliest pending event. A barrier then computes the global window
//   window_end = min over shards of next_event_time + lookahead
// and every shard runs all events strictly before window_end in parallel.
// Safety: a cross-shard message sent at local time t is due at >= t + L
// (L = lookahead, derived from the minimum fabric wire latency), and every
// event executed this round has t >= min(next_event_time), so every message
// produced inside a window is due at or after the window's end — it is
// always merged before the receiver's clock reaches it, and simulated
// causality holds without rollback.
//
// Determinism: for a fixed (program, seeds, shard count) the execution is
// bit-reproducible. Each shard's event loop is deterministic, and inbound
// messages are merged in a canonical order (due time, then source shard,
// then per-lane FIFO), independent of thread interleaving. Different shard
// counts are statistically equivalent, not bit-identical: cross-shard
// receive-side NIC contention resolves in arrival order rather than send
// order. `shards == 1` is the deterministic oracle mode — a single inline
// event loop, zero threads, byte-identical to the pre-shard runtime.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace hpres::sim {

class ShardRuntime {
 public:
  /// `shards` event loops (0 is normalized to 1 — oracle mode) connected by
  /// channels with `lookahead_ns` of guaranteed cross-shard delay. Every
  /// cross-shard message posted from a shard at local time t must be due at
  /// >= t + lookahead_ns; the fabric derives the bound from its wire
  /// latency. Must be > 0 when shards > 1 or windows cannot advance.
  ShardRuntime(std::size_t shards, SimDur lookahead_ns);
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  /// True when more than one shard exists (worker threads will be used).
  [[nodiscard]] bool parallel() const noexcept { return shards_.size() > 1; }
  [[nodiscard]] SimDur lookahead_ns() const noexcept { return lookahead_; }

  [[nodiscard]] Simulator& shard(std::size_t s) {
    assert(s < shards_.size());
    return *shards_[s];
  }

  /// Sum of events executed across all shards (diagnostic; read at
  /// quiescence).
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

  /// Barrier rounds completed by parallel runs (diagnostic).
  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

  /// Enqueues `fn` to run on shard `to` at simulated time `due`. Must be
  /// called from shard `from`'s thread (each (from, to) lane is a bounded
  /// SPSC ring; overflow falls back to a mutexed spill vector). The due
  /// time must respect the lookahead contract: due >= sender now + L.
  void post(std::size_t from, std::size_t to, SimTime due,
            std::function<void()> fn);

  /// Runs every shard to global quiescence: no shard has a pending event
  /// and no cross-shard message is in flight. Returns the final simulated
  /// time (identical on every shard up to the last window boundary).
  /// Callable repeatedly — the harness pattern "spawn, run, spawn, run"
  /// works exactly as with a single Simulator.
  SimTime run();

 private:
  struct Msg {
    SimTime due = 0;
    std::uint32_t from = 0;
    std::function<void()> fn;
  };

  /// Bounded single-producer/single-consumer ring; the producer is the
  /// `from` shard's thread (run phase), the consumer the `to` shard's
  /// thread (drain phase). Rounds are barrier-separated so the two never
  /// overlap, but the ring stays correct even if draining ever becomes
  /// opportunistic mid-window.
  class SpscRing {
   public:
    explicit SpscRing(std::size_t capacity) : slots_(capacity) {}

    [[nodiscard]] bool try_push(Msg&& m) {
      const std::size_t t = tail_.load(std::memory_order_relaxed);
      if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
        return false;
      }
      slots_[t % slots_.size()] = std::move(m);
      tail_.store(t + 1, std::memory_order_release);
      return true;
    }

    [[nodiscard]] bool try_pop(Msg& out) {
      const std::size_t h = head_.load(std::memory_order_relaxed);
      if (tail_.load(std::memory_order_acquire) == h) return false;
      out = std::move(slots_[h % slots_.size()]);
      head_.store(h + 1, std::memory_order_release);
      return true;
    }

   private:
    std::vector<Msg> slots_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
  };

  /// One inbound lane per (from, to) shard pair.
  struct Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    SpscRing ring;
    std::mutex spill_mu;
    std::vector<Msg> spill;  ///< unbounded fallback when the ring is full
  };

  static constexpr std::size_t kLaneCapacity = 256;

  [[nodiscard]] Lane& lane(std::size_t from, std::size_t to) {
    return *lanes_[from * shards_.size() + to];
  }

  /// Merges every queued inbound message into shard `s`'s event queue at
  /// its due time, in canonical (due, source shard, FIFO) order.
  void drain(std::size_t s);

  /// Barrier completion step: computes the next window (or termination)
  /// from the published per-shard horizons. Runs on exactly one thread
  /// while the others are blocked in the barrier.
  void compute_window() noexcept;

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // [from * n + to]
  std::vector<std::vector<Msg>> scratch_;     // per-shard drain buffer
  SimDur lookahead_;

  // Round state. Plain-ish values written either before a barrier arrival
  // or inside its completion step; the barrier's phase transition provides
  // the happens-before edges. Relaxed atomics keep TSan provably quiet.
  std::unique_ptr<std::atomic<SimTime>[]> next_time_;
  std::atomic<SimTime> window_{0};
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> rounds_{0};
};

}  // namespace hpres::sim
