// Conservative parallel discrete-event runtime: N independent Simulator
// shards advanced in lockstep windows by real threads.
//
// Synchronization model (classic conservative PDES with lookahead):
// execution proceeds in rounds. In each round every shard first drains its
// inbound cross-shard queues — merging each message into its own event
// queue at the message's exact due time — and publishes the timestamp of
// its earliest pending event. A barrier then computes the global window
//   window_end = min over shards of next_event_time + lookahead
// and every shard runs all events strictly before window_end in parallel.
// Safety: a cross-shard message sent at local time t is due at >= t + L
// (L = lookahead, derived from the minimum fabric wire latency), and every
// event executed this round has t >= min(next_event_time), so every message
// produced inside a window is due at or after the window's end — it is
// always merged before the receiver's clock reaches it, and simulated
// causality holds without rollback.
//
// Determinism: for a fixed (program, seeds, shard count) the execution is
// bit-reproducible. Each shard's event loop is deterministic, and inbound
// messages are merged in a canonical order (due time, then source shard,
// then per-lane FIFO), independent of thread interleaving. Different shard
// counts are statistically equivalent, not bit-identical: cross-shard
// receive-side NIC contention resolves in arrival order rather than send
// order. `shards == 1` is the deterministic oracle mode — a single inline
// event loop, zero threads, byte-identical to the pre-shard runtime.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace hpres::sim {

/// Per-shard execution profile. Every field is written by exactly one
/// thread (the owning shard's worker) and read at quiescence, so the
/// counters need no atomics. Wall-clock fields vary run-over-run; the
/// event/message fields are simulation-deterministic.
struct ShardProfile {
  std::uint64_t events = 0;      ///< events executed by the shard's Simulator
  std::uint64_t msgs_out = 0;    ///< cross-shard messages posted by the shard
  std::uint64_t spills_out = 0;  ///< posts that overflowed an SPSC ring
  std::uint64_t msgs_in = 0;     ///< cross-shard messages merged on drain
  std::uint64_t lane_occupancy_hw = 0;  ///< max msgs from one lane per drain
  std::uint64_t stall_wall_ns = 0;  ///< wall time blocked on round barriers
  std::uint64_t busy_wall_ns = 0;   ///< wall time draining + running windows
};

/// Snapshot of the runtime's execution profile (see profile()). The window
/// advance statistics measure simulated time gained per barrier round — a
/// small mean advance means the run is barrier-bound, the first thing to
/// check when a scaling curve flattens.
struct RuntimeProfile {
  std::size_t shards = 0;
  SimDur lookahead_ns = 0;
  std::uint64_t rounds = 0;       ///< barrier rounds (0 in oracle mode)
  SimDur min_advance_ns = 0;      ///< smallest per-round sim-time advance
  SimDur max_advance_ns = 0;
  double mean_advance_ns = 0.0;
  std::vector<ShardProfile> per_shard;

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (const ShardProfile& p : per_shard) total += p.events;
    return total;
  }
  /// Fraction of a shard's measured wall time spent blocked on barriers.
  [[nodiscard]] static double stall_fraction(const ShardProfile& p) noexcept {
    const double total =
        static_cast<double>(p.stall_wall_ns + p.busy_wall_ns);
    return total > 0.0 ? static_cast<double>(p.stall_wall_ns) / total : 0.0;
  }
};

class ShardRuntime {
 public:
  /// `shards` event loops (0 is normalized to 1 — oracle mode) connected by
  /// channels with `lookahead_ns` of guaranteed cross-shard delay. Every
  /// cross-shard message posted from a shard at local time t must be due at
  /// >= t + lookahead_ns; the fabric derives the bound from its wire
  /// latency. Must be > 0 when shards > 1 or windows cannot advance.
  ShardRuntime(std::size_t shards, SimDur lookahead_ns);
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  /// True when more than one shard exists (worker threads will be used).
  [[nodiscard]] bool parallel() const noexcept { return shards_.size() > 1; }
  [[nodiscard]] SimDur lookahead_ns() const noexcept { return lookahead_; }

  [[nodiscard]] Simulator& shard(std::size_t s) {
    assert(s < shards_.size());
    return *shards_[s];
  }

  /// Sum of events executed across all shards (diagnostic; read at
  /// quiescence).
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

  /// Barrier rounds completed by parallel runs (diagnostic).
  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

  /// Enqueues `fn` to run on shard `to` at simulated time `due`. Must be
  /// called from shard `from`'s thread (each (from, to) lane is a bounded
  /// SPSC ring; overflow falls back to a mutexed spill vector). The due
  /// time must respect the lookahead contract: due >= sender now + L.
  void post(std::size_t from, std::size_t to, SimTime due,
            std::function<void()> fn);

  /// Runs every shard to global quiescence: no shard has a pending event
  /// and no cross-shard message is in flight. Returns the final simulated
  /// time (identical on every shard up to the last window boundary).
  /// Callable repeatedly — the harness pattern "spawn, run, spawn, run"
  /// works exactly as with a single Simulator.
  SimTime run();

  /// A quiesce hook runs inside the barrier completion step of every
  /// parallel round — all shard threads are parked, so the hook may touch
  /// any cross-shard state (topology flags, membership, observability
  /// sinks) without synchronization; the barrier's phase transition
  /// publishes its writes to every shard. Contract:
  ///   * the hook receives min_next, the earliest pending event time across
  ///     all shards (kNever at quiescence);
  ///   * it must apply every pending action due at or before min_next, in
  ///     time order, stamped at the action's own due time — and at
  ///     min_next == kNever it must flush everything that remains;
  ///   * it returns the earliest remaining action time (> min_next), or
  ///     kNever when none remain; the next window is capped at that time,
  ///     so no simulated event at or after it runs before the hook acts;
  ///   * it must not throw and must not schedule simulator events (flag
  ///     flips and recorder writes only) — the round's horizon was computed
  ///     before the hook ran.
  /// Oracle (shards <= 1) runs never invoke hooks; single-shard users keep
  /// their classic in-sim coroutines, byte-identical to the pre-hook
  /// runtime. Hooks run in registration order. Returns an id for
  /// remove_quiesce_hook(); register/remove only between run() calls.
  using QuiesceHook = std::function<SimTime(SimTime min_next)>;
  std::size_t add_quiesce_hook(QuiesceHook hook);
  void remove_quiesce_hook(std::size_t id);

  /// Execution profile snapshot; read at quiescence (never mid-run). The
  /// per-shard counters are cumulative since construction.
  [[nodiscard]] RuntimeProfile profile() const;

 private:
  struct Msg {
    SimTime due = 0;
    std::uint32_t from = 0;
    std::function<void()> fn;
  };

  /// Bounded single-producer/single-consumer ring; the producer is the
  /// `from` shard's thread (run phase), the consumer the `to` shard's
  /// thread (drain phase). Rounds are barrier-separated so the two never
  /// overlap, but the ring stays correct even if draining ever becomes
  /// opportunistic mid-window.
  class SpscRing {
   public:
    explicit SpscRing(std::size_t capacity) : slots_(capacity) {}

    [[nodiscard]] bool try_push(Msg&& m) {
      const std::size_t t = tail_.load(std::memory_order_relaxed);
      if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
        return false;
      }
      slots_[t % slots_.size()] = std::move(m);
      tail_.store(t + 1, std::memory_order_release);
      return true;
    }

    [[nodiscard]] bool try_pop(Msg& out) {
      const std::size_t h = head_.load(std::memory_order_relaxed);
      if (tail_.load(std::memory_order_acquire) == h) return false;
      out = std::move(slots_[h % slots_.size()]);
      head_.store(h + 1, std::memory_order_release);
      return true;
    }

   private:
    std::vector<Msg> slots_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
  };

  /// One inbound lane per (from, to) shard pair.
  struct Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    SpscRing ring;
    std::mutex spill_mu;
    std::vector<Msg> spill;  ///< unbounded fallback when the ring is full
  };

  static constexpr std::size_t kLaneCapacity = 256;

  [[nodiscard]] Lane& lane(std::size_t from, std::size_t to) {
    return *lanes_[from * shards_.size() + to];
  }

  /// Merges every queued inbound message into shard `s`'s event queue at
  /// its due time, in canonical (due, source shard, FIFO) order.
  void drain(std::size_t s);

  /// Barrier completion step: runs the quiesce hooks, then computes the
  /// next window (or termination) from the published per-shard horizons,
  /// capped at the earliest pending hook action. Runs on exactly one
  /// thread while the others are blocked in the barrier.
  void compute_window() noexcept;

  /// False-sharing pad: each shard's profile lives on its own cache line.
  struct alignas(64) PaddedProfile {
    ShardProfile p;
  };

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // [from * n + to]
  std::vector<std::vector<Msg>> scratch_;     // per-shard drain buffer
  SimDur lookahead_;
  std::vector<QuiesceHook> hooks_;  ///< removed slots stay as empty fns
  std::vector<PaddedProfile> prof_;

  // Round state. Plain-ish values written either before a barrier arrival
  // or inside its completion step; the barrier's phase transition provides
  // the happens-before edges. Relaxed atomics keep TSan provably quiet.
  std::unique_ptr<std::atomic<SimTime>[]> next_time_;
  std::atomic<SimTime> window_{0};
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> rounds_{0};

  // Window-advance statistics, updated only inside the barrier completion
  // step (same synchronization story as window_ / rounds_ above).
  std::atomic<SimTime> prev_window_end_{0};
  std::atomic<std::uint64_t> adv_count_{0};
  std::atomic<SimTime> adv_min_{0};
  std::atomic<SimTime> adv_max_{0};
  std::atomic<SimTime> adv_sum_{0};
};

}  // namespace hpres::sim
