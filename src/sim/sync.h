// Synchronization primitives for simulator coroutines: one-shot Event,
// MPMC Channel, counting Semaphore, countdown Latch, and WorkerPool (a
// semaphore-guarded compute resource that charges simulated time).
//
// Lifetime invariant shared by all primitives: a coroutine suspended on a
// primitive must be kept alive until it resumes (the simulator never drops
// scheduled handles), and the primitive must outlive its waiters.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulator.h"
#include "sim/task.h"

namespace hpres::sim {

namespace detail {

/// Parks a coroutine on an external waiter list; resumption is triggered by
/// the owning primitive scheduling the handle through the simulator.
struct ParkAwaiter {
  std::deque<std::coroutine_handle<>>* waiters;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    waiters->push_back(h);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

/// One-shot broadcast event. `wait()` suspends until `set()`; waiting on an
/// already-set event completes immediately (same simulated time).
class Event {
 public:
  explicit Event(Simulator& sim) noexcept : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

  Task<void> wait() {
    while (!set_) co_await detail::ParkAwaiter{&waiters_};
  }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel. Multiple producers and consumers are supported;
/// `recv()` returns nullopt once the channel is closed and drained.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) noexcept : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues an item. Valid until close(); sends after close are dropped
  /// (the peer has gone away — mirrors writing to a dead connection).
  void send(T item) {
    if (closed_) return;
    items_.push_back(std::move(item));
    wake_one();
  }

  /// Closes the channel: queued items remain receivable; subsequent recv()
  /// on an empty channel yields nullopt.
  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Receives the next item, suspending while the channel is empty and open.
  Task<std::optional<T>> recv() {
    for (;;) {
      if (!items_.empty()) {
        T item = std::move(items_.front());
        items_.pop_front();
        co_return std::optional<T>{std::move(item)};
      }
      if (closed_) co_return std::nullopt;
      co_await detail::ParkAwaiter{&waiters_};
    }
  }

  /// Non-suspending receive; nullopt when empty.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  void wake_one() {
    if (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool closed_ = false;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::uint32_t initial) noexcept
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::uint32_t available() const noexcept { return count_; }

  Task<void> acquire() {
    while (count_ == 0) co_await detail::ParkAwaiter{&waiters_};
    --count_;
  }

  /// Acquires without suspending if a permit is free; false otherwise.
  bool try_acquire() noexcept {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release() {
    ++count_;
    if (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

 private:
  Simulator* sim_;
  std::uint32_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Condition variable: waiters park until notify_all(), then re-check their
/// predicate (wait() must be used inside a while-loop, as with
/// std::condition_variable).
class Condition {
 public:
  explicit Condition(Simulator& sim) noexcept : sim_(&sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  Task<void> wait() { co_await detail::ParkAwaiter{&waiters_}; }

  void notify_all() {
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: wait() completes once count_down() has been called
/// `expected` times. Used by engines to join fan-out sub-operations.
class Latch {
 public:
  Latch(Simulator& sim, std::uint32_t expected)
      : remaining_(expected), event_(sim) {
    if (remaining_ == 0) event_.set();
  }
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down() {
    assert(remaining_ > 0 && "Latch::count_down past zero");
    if (--remaining_ == 0) event_.set();
  }

  [[nodiscard]] std::uint32_t remaining() const noexcept { return remaining_; }

  Task<void> wait() { return event_.wait(); }

 private:
  std::uint32_t remaining_;
  Event event_;
};

/// A pool of identical compute workers (e.g. a server's worker threads or a
/// client's encoding cores). `execute(d)` occupies one worker for `d`
/// simulated nanoseconds, queueing when all workers are busy.
class WorkerPool {
 public:
  WorkerPool(Simulator& sim, std::uint32_t workers)
      : sim_(&sim), sem_(sim, workers), workers_(workers) {}

  [[nodiscard]] std::uint32_t size() const noexcept { return workers_; }
  [[nodiscard]] SimDur busy_time() const noexcept { return busy_ns_; }

  Task<void> execute(SimDur duration) {
    co_await sem_.acquire();
    co_await sim_->delay(duration);
    busy_ns_ += duration;
    sem_.release();
  }

 private:
  Simulator* sim_;
  Semaphore sem_;
  std::uint32_t workers_;
  SimDur busy_ns_ = 0;
};

}  // namespace hpres::sim
