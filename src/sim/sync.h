// Synchronization primitives for simulator coroutines: one-shot Event,
// MPMC Channel, counting Semaphore, countdown Latch, and WorkerPool (a
// semaphore-guarded compute resource that charges simulated time).
//
// Lifetime invariant shared by all primitives: a coroutine suspended on a
// primitive must be kept alive until it resumes (the simulator never drops
// scheduled handles), and the primitive must outlive its waiters.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.h"
#include "sim/task.h"

namespace hpres::sim {

namespace detail {

/// Parks a coroutine on an external waiter list; resumption is triggered by
/// the owning primitive scheduling the handle through the simulator.
struct ParkAwaiter {
  std::deque<std::coroutine_handle<>>* waiters;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    waiters->push_back(h);
  }
  void await_resume() const noexcept {}
};

/// One waiter with a deadline. Both the signalling primitive and a timer
/// coroutine race to resume the parked handle; `fired` makes the wake-up
/// one-shot so the loser becomes a no-op (no double resume).
struct TimedWaiter {
  std::coroutine_handle<> handle;
  bool fired = false;     ///< the handle has been (re)scheduled
  bool signaled = false;  ///< woken by the primitive, not the deadline
};

/// Parks a coroutine as a TimedWaiter on the owning primitive's list.
/// Must stay trivially destructible (raw pointers only, like ParkAwaiter):
/// g++-12 destroys a non-trivial awaiter temporary twice (once at the end
/// of the co_await full-expression, once during frame cleanup), so an
/// owning shared_ptr member here would be double-released. The deque takes
/// its own reference inside await_suspend instead.
struct TimedParkAwaiter {
  std::deque<std::shared_ptr<TimedWaiter>>* waiters;
  const std::shared_ptr<TimedWaiter>* waiter;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    (*waiter)->handle = h;
    waiters->push_back(*waiter);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

/// One-shot broadcast event. `wait()` suspends until `set()`; waiting on an
/// already-set event completes immediately (same simulated time).
class Event {
 public:
  explicit Event(Simulator& sim) noexcept : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
    while (!timed_waiters_.empty()) {
      const auto& waiter = timed_waiters_.front();
      if (!waiter->fired) {  // timed-out waiters were already resumed
        waiter->fired = true;
        waiter->signaled = true;
        sim_->schedule(waiter->handle, 0);
      }
      timed_waiters_.pop_front();
    }
  }

  Task<void> wait() {
    while (!set_) co_await detail::ParkAwaiter{&waiters_};
  }

  /// Suspends until `set()` or until `timeout` simulated nanoseconds pass,
  /// whichever comes first. Returns true when the event fired, false on
  /// timeout. An already-set event returns true without suspending. The
  /// deadline is driven by a spawned timer coroutine, so a wait_for whose
  /// event fires early still holds one queued timer event until the
  /// deadline passes (harmless: it wakes nobody).
  Task<bool> wait_for(SimDur timeout) {
    if (set_) co_return true;
    auto waiter = std::make_shared<detail::TimedWaiter>();
    sim_->spawn(deadline_coro(sim_, waiter, timeout));
    co_await detail::TimedParkAwaiter{&timed_waiters_, &waiter};
    co_return waiter->signaled;
  }

 private:
  static Task<void> deadline_coro(Simulator* sim,
                                  std::shared_ptr<detail::TimedWaiter> waiter,
                                  SimDur timeout) {
    co_await sim->delay(timeout);
    if (waiter->fired) co_return;  // lost the race: set() already woke it
    waiter->fired = true;
    sim->schedule(waiter->handle, 0);
  }

  Simulator* sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
  std::deque<std::shared_ptr<detail::TimedWaiter>> timed_waiters_;
};

/// Unbounded FIFO channel. Multiple producers and consumers are supported;
/// `recv()` returns nullopt once the channel is closed and drained.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) noexcept : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues an item. Valid until close(); sends after close are dropped
  /// (the peer has gone away — mirrors writing to a dead connection).
  void send(T item) {
    if (closed_) return;
    items_.push_back(std::move(item));
    wake_one();
  }

  /// Closes the channel: queued items remain receivable; subsequent recv()
  /// on an empty channel yields nullopt.
  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Receives the next item, suspending while the channel is empty and open.
  Task<std::optional<T>> recv() {
    for (;;) {
      if (!items_.empty()) {
        T item = std::move(items_.front());
        items_.pop_front();
        co_return std::optional<T>{std::move(item)};
      }
      if (closed_) co_return std::nullopt;
      co_await detail::ParkAwaiter{&waiters_};
    }
  }

  /// Non-suspending receive; nullopt when empty.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  void wake_one() {
    if (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool closed_ = false;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::uint32_t initial) noexcept
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::uint32_t available() const noexcept { return count_; }

  /// Coroutines currently parked in acquire() (queue-depth signal).
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  Task<void> acquire() {
    while (count_ == 0) co_await detail::ParkAwaiter{&waiters_};
    --count_;
  }

  /// Acquires without suspending if a permit is free; false otherwise.
  bool try_acquire() noexcept {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release() {
    ++count_;
    if (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

 private:
  Simulator* sim_;
  std::uint32_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Condition variable: waiters park until notify_all(), then re-check their
/// predicate (wait() must be used inside a while-loop, as with
/// std::condition_variable).
class Condition {
 public:
  explicit Condition(Simulator& sim) noexcept : sim_(&sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  Task<void> wait() { co_await detail::ParkAwaiter{&waiters_}; }

  void notify_all() {
    while (!waiters_.empty()) {
      sim_->schedule(waiters_.front(), 0);
      waiters_.pop_front();
    }
  }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: wait() completes once count_down() has been called
/// `expected` times. Used by engines to join fan-out sub-operations.
class Latch {
 public:
  Latch(Simulator& sim, std::uint32_t expected)
      : remaining_(expected), event_(sim) {
    if (remaining_ == 0) event_.set();
  }
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down() {
    assert(remaining_ > 0 && "Latch::count_down past zero");
    if (--remaining_ == 0) event_.set();
  }

  [[nodiscard]] std::uint32_t remaining() const noexcept { return remaining_; }

  Task<void> wait() { return event_.wait(); }

 private:
  std::uint32_t remaining_;
  Event event_;
};

/// A pool of identical compute workers (e.g. a server's worker threads or a
/// client's encoding cores). `execute(d)` occupies one worker for `d`
/// simulated nanoseconds, queueing when all workers are busy.
class WorkerPool {
 public:
  WorkerPool(Simulator& sim, std::uint32_t workers)
      : sim_(&sim), sem_(sim, workers), workers_(workers) {}

  [[nodiscard]] std::uint32_t size() const noexcept { return workers_; }
  [[nodiscard]] SimDur busy_time() const noexcept { return busy_ns_; }

  /// Tasks queued behind busy workers right now. Servers piggyback this on
  /// responses as a load signal for client-side read-set selection.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return sem_.waiting();
  }

  Task<void> execute(SimDur duration) {
    co_await sem_.acquire();
    co_await sim_->delay(duration);
    busy_ns_ += duration;
    sem_.release();
  }

 private:
  Simulator* sim_;
  Semaphore sem_;
  std::uint32_t workers_;
  SimDur busy_ns_ = 0;
};

}  // namespace hpres::sim
