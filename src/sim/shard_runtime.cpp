#include "sim/shard_runtime.h"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "sim/task.h"

namespace hpres::sim {
namespace {

/// Cross-shard message body, run on the destination shard at its due time.
Task<void> apply_msg(std::function<void()> fn) {
  fn();
  co_return;
}

}  // namespace

ShardRuntime::ShardRuntime(std::size_t shards, SimDur lookahead_ns)
    : lookahead_(lookahead_ns) {
  const std::size_t n = shards == 0 ? 1 : shards;
  assert((n == 1 || lookahead_ns > 0) &&
         "parallel shards need a positive lookahead to make progress");
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  lanes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    lanes_.push_back(std::make_unique<Lane>(kLaneCapacity));
  }
  scratch_.resize(n);
  next_time_ = std::make_unique<std::atomic<SimTime>[]>(n);
  for (std::size_t i = 0; i < n; ++i) next_time_[i] = Simulator::kNever;
}

std::uint64_t ShardRuntime::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

void ShardRuntime::post(std::size_t from, std::size_t to, SimTime due,
                        std::function<void()> fn) {
  assert(from < shards_.size() && to < shards_.size());
  Lane& ln = lane(from, to);
  Msg m{due, static_cast<std::uint32_t>(from), std::move(fn)};
  if (ln.ring.try_push(std::move(m))) return;
  // Ring full: spill under a lock. The spill preserves lane FIFO order
  // because a full ring stays full until the next barrier drain, so all
  // later pushes in this window spill too.
  const std::lock_guard<std::mutex> lock(ln.spill_mu);
  ln.spill.push_back(std::move(m));
}

void ShardRuntime::drain(std::size_t s) {
  std::vector<Msg>& msgs = scratch_[s];
  msgs.clear();
  for (std::size_t from = 0; from < shards_.size(); ++from) {
    Lane& ln = lane(from, s);
    Msg m;
    while (ln.ring.try_pop(m)) msgs.push_back(std::move(m));
    const std::lock_guard<std::mutex> lock(ln.spill_mu);
    for (Msg& sp : ln.spill) msgs.push_back(std::move(sp));
    ln.spill.clear();
  }
  if (msgs.empty()) return;
  // Canonical merge order — independent of thread interleaving: due time,
  // then source shard, then per-lane FIFO (stable sort keeps push order).
  std::stable_sort(msgs.begin(), msgs.end(), [](const Msg& a, const Msg& b) {
    if (a.due != b.due) return a.due < b.due;
    return a.from < b.from;
  });
  for (Msg& m : msgs) {
    shards_[s]->spawn_at(m.due, apply_msg(std::move(m.fn)));
  }
  msgs.clear();
}

void ShardRuntime::compute_window() noexcept {
  SimTime min_next = Simulator::kNever;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    min_next =
        std::min(min_next, next_time_[i].load(std::memory_order_relaxed));
  }
  if (min_next == Simulator::kNever) {
    done_.store(true, std::memory_order_relaxed);
    return;
  }
  const SimTime end = min_next > Simulator::kNever - lookahead_
                          ? Simulator::kNever
                          : min_next + lookahead_;
  window_.store(end, std::memory_order_relaxed);
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

SimTime ShardRuntime::run() {
  if (!parallel()) {
    // Oracle mode: the plain single-threaded event loop, byte-identical to
    // the pre-shard runtime. Posts (none from the fabric in this mode) are
    // still honoured so tests can exercise the API uniformly.
    drain(0);
    return shards_[0]->run();
  }
  const std::size_t n = shards_.size();
  done_.store(false, std::memory_order_relaxed);

  const auto completion = [this]() noexcept { compute_window(); };
  std::barrier<std::decay_t<decltype(completion)>> horizon(
      static_cast<std::ptrdiff_t>(n), completion);
  std::barrier<> window_done(static_cast<std::ptrdiff_t>(n));

  const auto worker = [&](std::size_t s) {
    Simulator& sim = *shards_[s];
    while (true) {
      // Phase A: merge inbound messages, publish this shard's horizon.
      drain(s);
      next_time_[s].store(sim.next_event_time(), std::memory_order_relaxed);
      horizon.arrive_and_wait();  // completion computes window_ / done_
      if (done_.load(std::memory_order_relaxed)) break;
      // Phase B: run the window in parallel. Cross-shard sends land in the
      // lanes and are merged by their targets at the next Phase A.
      sim.run_window(window_.load(std::memory_order_relaxed));
      window_done.arrive_and_wait();  // all sends visible before next drain
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::size_t s = 1; s < n; ++s) threads.emplace_back(worker, s);
  worker(0);  // the calling thread drives shard 0
  for (std::thread& t : threads) t.join();

  SimTime end = 0;
  for (const auto& s : shards_) end = std::max(end, s->now());
  return end;
}

}  // namespace hpres::sim
