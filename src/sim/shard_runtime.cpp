#include "sim/shard_runtime.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>
#include <utility>

#include "sim/task.h"

namespace hpres::sim {
namespace {

/// Cross-shard message body, run on the destination shard at its due time.
Task<void> apply_msg(std::function<void()> fn) {
  fn();
  co_return;
}

[[nodiscard]] std::uint64_t wall_ns_since(
    std::chrono::steady_clock::time_point t0,
    std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

ShardRuntime::ShardRuntime(std::size_t shards, SimDur lookahead_ns)
    : lookahead_(lookahead_ns) {
  const std::size_t n = shards == 0 ? 1 : shards;
  assert((n == 1 || lookahead_ns > 0) &&
         "parallel shards need a positive lookahead to make progress");
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  lanes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    lanes_.push_back(std::make_unique<Lane>(kLaneCapacity));
  }
  scratch_.resize(n);
  prof_.resize(n);
  next_time_ = std::make_unique<std::atomic<SimTime>[]>(n);
  for (std::size_t i = 0; i < n; ++i) next_time_[i] = Simulator::kNever;
}

std::size_t ShardRuntime::add_quiesce_hook(QuiesceHook hook) {
  assert(hook && "quiesce hook must be callable");
  hooks_.push_back(std::move(hook));
  return hooks_.size() - 1;
}

void ShardRuntime::remove_quiesce_hook(std::size_t id) {
  assert(id < hooks_.size());
  hooks_[id] = nullptr;  // slot ids stay stable for other registrants
}

RuntimeProfile ShardRuntime::profile() const {
  RuntimeProfile out;
  out.shards = shards_.size();
  out.lookahead_ns = lookahead_;
  out.rounds = rounds_.load(std::memory_order_relaxed);
  const std::uint64_t advances = adv_count_.load(std::memory_order_relaxed);
  if (advances > 0) {
    out.min_advance_ns = adv_min_.load(std::memory_order_relaxed);
    out.max_advance_ns = adv_max_.load(std::memory_order_relaxed);
    out.mean_advance_ns =
        static_cast<double>(adv_sum_.load(std::memory_order_relaxed)) /
        static_cast<double>(advances);
  }
  out.per_shard.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardProfile p = prof_[s].p;
    p.events = shards_[s]->events_executed();
    out.per_shard.push_back(p);
  }
  return out;
}

std::uint64_t ShardRuntime::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

void ShardRuntime::post(std::size_t from, std::size_t to, SimTime due,
                        std::function<void()> fn) {
  assert(from < shards_.size() && to < shards_.size());
  Lane& ln = lane(from, to);
  ShardProfile& prof = prof_[from].p;  // post runs on `from`'s thread
  ++prof.msgs_out;
  Msg m{due, static_cast<std::uint32_t>(from), std::move(fn)};
  if (ln.ring.try_push(std::move(m))) return;
  // Ring full: spill under a lock. The spill preserves lane FIFO order
  // because a full ring stays full until the next barrier drain, so all
  // later pushes in this window spill too.
  ++prof.spills_out;
  const std::lock_guard<std::mutex> lock(ln.spill_mu);
  ln.spill.push_back(std::move(m));
}

void ShardRuntime::drain(std::size_t s) {
  std::vector<Msg>& msgs = scratch_[s];
  ShardProfile& prof = prof_[s].p;  // drain runs on `s`'s thread
  msgs.clear();
  for (std::size_t from = 0; from < shards_.size(); ++from) {
    Lane& ln = lane(from, s);
    const std::size_t before = msgs.size();
    Msg m;
    while (ln.ring.try_pop(m)) msgs.push_back(std::move(m));
    {
      const std::lock_guard<std::mutex> lock(ln.spill_mu);
      for (Msg& sp : ln.spill) msgs.push_back(std::move(sp));
      ln.spill.clear();
    }
    prof.lane_occupancy_hw =
        std::max<std::uint64_t>(prof.lane_occupancy_hw, msgs.size() - before);
  }
  if (msgs.empty()) return;
  prof.msgs_in += msgs.size();
  // Canonical merge order — independent of thread interleaving: due time,
  // then source shard, then per-lane FIFO (stable sort keeps push order).
  std::stable_sort(msgs.begin(), msgs.end(), [](const Msg& a, const Msg& b) {
    if (a.due != b.due) return a.due < b.due;
    return a.from < b.from;
  });
  for (Msg& m : msgs) {
    shards_[s]->spawn_at(m.due, apply_msg(std::move(m.fn)));
  }
  msgs.clear();
}

void ShardRuntime::compute_window() noexcept {
  SimTime min_next = Simulator::kNever;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    min_next =
        std::min(min_next, next_time_[i].load(std::memory_order_relaxed));
  }
  // Quiesce hooks: every shard thread is parked in the barrier, so hooks
  // may mutate cross-shard state freely. Each hook applies its pending
  // actions up to min_next and returns its next action time, which caps
  // the window so no event at or after it runs before the hook acts.
  SimTime cap = Simulator::kNever;
  for (const QuiesceHook& hook : hooks_) {
    if (!hook) continue;
    const SimTime due = hook(min_next);
    assert(due == Simulator::kNever || due > min_next);
    cap = std::min(cap, due);
  }
  if (min_next == Simulator::kNever) {
    done_.store(true, std::memory_order_relaxed);
    return;
  }
  SimTime end = min_next > Simulator::kNever - lookahead_
                    ? Simulator::kNever
                    : min_next + lookahead_;
  if (cap < end) end = cap;
  if (end != Simulator::kNever) {
    // Sim-time gained this round; hook caps shorten it deterministically.
    const SimTime prev = prev_window_end_.load(std::memory_order_relaxed);
    const SimTime adv = end > prev ? end - prev : 0;
    const std::uint64_t n = adv_count_.load(std::memory_order_relaxed);
    if (n == 0 || adv < adv_min_.load(std::memory_order_relaxed)) {
      adv_min_.store(adv, std::memory_order_relaxed);
    }
    if (adv > adv_max_.load(std::memory_order_relaxed)) {
      adv_max_.store(adv, std::memory_order_relaxed);
    }
    adv_sum_.fetch_add(adv, std::memory_order_relaxed);
    adv_count_.store(n + 1, std::memory_order_relaxed);
    prev_window_end_.store(end, std::memory_order_relaxed);
  }
  window_.store(end, std::memory_order_relaxed);
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

SimTime ShardRuntime::run() {
  if (!parallel()) {
    // Oracle mode: the plain single-threaded event loop, byte-identical to
    // the pre-shard runtime. Posts (none from the fabric in this mode) are
    // still honoured so tests can exercise the API uniformly. Quiesce hooks
    // never fire here — oracle users keep their in-sim coroutines.
    const auto t0 = std::chrono::steady_clock::now();
    drain(0);
    const SimTime end = shards_[0]->run();
    prof_[0].p.busy_wall_ns +=
        wall_ns_since(t0, std::chrono::steady_clock::now());
    return end;
  }
  const std::size_t n = shards_.size();
  done_.store(false, std::memory_order_relaxed);

  const auto completion = [this]() noexcept { compute_window(); };
  std::barrier<std::decay_t<decltype(completion)>> horizon(
      static_cast<std::ptrdiff_t>(n), completion);
  std::barrier<> window_done(static_cast<std::ptrdiff_t>(n));

  const auto worker = [&](std::size_t s) {
    Simulator& sim = *shards_[s];
    ShardProfile& prof = prof_[s].p;
    auto mark = std::chrono::steady_clock::now();
    const auto lap = [&mark]() {
      const auto now = std::chrono::steady_clock::now();
      const std::uint64_t ns = wall_ns_since(mark, now);
      mark = now;
      return ns;
    };
    while (true) {
      // Phase A: merge inbound messages, publish this shard's horizon.
      drain(s);
      next_time_[s].store(sim.next_event_time(), std::memory_order_relaxed);
      prof.busy_wall_ns += lap();
      horizon.arrive_and_wait();  // completion computes window_ / done_
      prof.stall_wall_ns += lap();
      if (done_.load(std::memory_order_relaxed)) break;
      // Phase B: run the window in parallel. Cross-shard sends land in the
      // lanes and are merged by their targets at the next Phase A.
      sim.run_window(window_.load(std::memory_order_relaxed));
      prof.busy_wall_ns += lap();
      window_done.arrive_and_wait();  // all sends visible before next drain
      prof.stall_wall_ns += lap();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::size_t s = 1; s < n; ++s) threads.emplace_back(worker, s);
  worker(0);  // the calling thread drives shard 0
  for (std::thread& t : threads) t.join();

  SimTime end = 0;
  for (const auto& s : shards_) end = std::max(end, s->now());
  return end;
}

}  // namespace hpres::sim
